// Figure 5: histogram of the optimal r chosen by Algorithm 1 across the
// trace, for Clone and S-Resume at theta = 1e-5 and theta = 1e-4.
//
// Planner-only experiment (no cluster simulation needed): replicates the
// paper's full 2700-job / ~1M-task scale.
#include <cstdio>

#include "bench_util.h"
#include "stats/histogram.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

}  // namespace

int main() {
  trace::TraceConfig config;
  config.num_jobs = 2700;
  config.duration_hours = 30.0;
  config.mean_tasks = 370.0;  // ~1M tasks in total
  config.seed = 7;
  const auto base_jobs = generate_trace(config);
  const trace::SpotPriceModel prices;

  std::printf(
      "Figure 5: histogram of optimal r (Algorithm 1) over the trace\n"
      "  %zu jobs, %lld tasks\n\n",
      base_jobs.size(),
      static_cast<long long>(trace::total_tasks(base_jobs)));

  struct Series {
    PolicyKind policy;
    double theta;
  };
  const std::vector<Series> series = {
      {PolicyKind::kClone, 1e-4},
      {PolicyKind::kClone, 1e-5},
      {PolicyKind::kSResume, 1e-4},
      {PolicyKind::kSResume, 1e-5},
  };

  std::vector<stats::IntHistogram> histograms(series.size());
  long long max_r = 0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    trace::PlannerConfig planner;
    planner.theta = series[s].theta;
    auto jobs = base_jobs;
    for (auto& job : jobs) {
      plan_job(job, series[s].policy, planner, prices);
      histograms[s].add(job.spec.stage(0).r);
      max_r = std::max(max_r, job.spec.stage(0).r);
    }
  }

  bench::Table table({"r", "Clone-1e-4", "Clone-1e-5", "S-Resume-1e-4",
                      "S-Resume-1e-5"});
  for (long long r = 0; r <= max_r; ++r) {
    table.add_row({bench::fmt_int(r),
                   bench::fmt_int(static_cast<long long>(
                       histograms[0].count(r))),
                   bench::fmt_int(static_cast<long long>(
                       histograms[1].count(r))),
                   bench::fmt_int(static_cast<long long>(
                       histograms[2].count(r))),
                   bench::fmt_int(static_cast<long long>(
                       histograms[3].count(r)))});
  }
  table.print();

  std::printf("\nModes: Clone-1e-4: r=%lld, Clone-1e-5: r=%lld, "
              "S-Resume-1e-4: r=%lld, S-Resume-1e-5: r=%lld\n",
              histograms[0].mode(), histograms[1].mode(),
              histograms[2].mode(), histograms[3].mode());
  std::printf(
      "\nExpected shape (paper Fig. 5): optimal r concentrates on small\n"
      "integers; increasing theta from 1e-5 to 1e-4 shifts the mode down\n"
      "(paper: Clone 2 -> 1, S-Resume 4 -> 3); S-Resume sustains a larger\n"
      "r than Clone at equal theta (its extra attempts are cheaper).\n");
  return 0;
}
