// Microbenchmarks of the analytic core: closed-form evaluation (including
// the closed-form vs. reference-quadrature S-Restart winner time),
// Algorithm 1, and the Monte-Carlo validator. These quantify the per-job
// planning overhead an Application Master would pay at submission (§VI).
#include <benchmark/benchmark.h>

#include "core/chronos.h"

namespace {

using namespace chronos::core;  // NOLINT

JobParams bench_job() {
  JobParams params;
  params.num_tasks = 100;
  params.deadline = 180.0;
  params.t_min = 30.0;
  params.beta = 1.5;
  params.tau_est = 9.0;
  params.tau_kill = 24.0;
  params.phi_est = default_phi_est(params);
  return params;
}

Economics bench_econ() {
  Economics econ;
  econ.price = 0.4;
  econ.theta = 1e-4;
  econ.r_min = 0.3;
  return econ;
}

void BM_PocdClone(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pocd_clone(params, 2.0));
  }
}
BENCHMARK(BM_PocdClone);

void BM_PocdSResume(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pocd_s_resume(params, 2.0));
  }
}
BENCHMARK(BM_PocdSResume);

void BM_CostClone(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine_time_clone(params, 2.0));
  }
}
BENCHMARK(BM_CostClone);

// The adaptive-quadrature winner time kept as the validation reference; it
// used to be the body of machine_time_s_restart (and what this benchmark
// measured before the closed form landed), so the before/after join for
// this name tracks the reference's own cost, ~unchanged.
void BM_CostSRestartQuadrature(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s_restart_winner_time_reference(params, 2.0));
  }
}
BENCHMARK(BM_CostSRestartQuadrature);

// The production path: closed-form winner time (log1p/expm1 + geometric
// 2F1 series), no quadrature.
void BM_CostSRestartClosedForm(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine_time_s_restart(params, 2.0));
  }
}
BENCHMARK(BM_CostSRestartClosedForm);

void BM_CostSResume(benchmark::State& state) {
  const auto params = bench_job();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine_time_s_resume(params, 2.0));
  }
}
BENCHMARK(BM_CostSResume);

void BM_OptimizeClone(benchmark::State& state) {
  const auto params = bench_job();
  const auto econ = bench_econ();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize(Strategy::kClone, params, econ));
  }
}
BENCHMARK(BM_OptimizeClone);

void BM_OptimizeSRestart(benchmark::State& state) {
  const auto params = bench_job();
  const auto econ = bench_econ();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize(Strategy::kSpeculativeRestart, params, econ));
  }
}
BENCHMARK(BM_OptimizeSRestart);

void BM_OptimizeSResume(benchmark::State& state) {
  const auto params = bench_job();
  const auto econ = bench_econ();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        optimize(Strategy::kSpeculativeResume, params, econ));
  }
}
BENCHMARK(BM_OptimizeSResume);

void BM_OptimizeAll(benchmark::State& state) {
  const auto params = bench_job();
  const auto econ = bench_econ();
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_all(params, econ));
  }
}
BENCHMARK(BM_OptimizeAll);

void BM_BruteForceOptimize(benchmark::State& state) {
  const auto params = bench_job();
  const auto econ = bench_econ();
  OptimizerOptions options;
  options.max_r = static_cast<long long>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brute_force_optimize(Strategy::kClone, params, econ, options));
  }
}
BENCHMARK(BM_BruteForceOptimize)->Arg(64)->Arg(512)->Arg(4096);

// Monte-Carlo kernels, parameterized by (jobs, r). The r = 16 points track
// the win from the order-statistic fast path (min of r+1 Pareto draws is one
// Pareto((r+1) beta) draw), which collapses the O(r) winner loops.
void BM_MonteCarloClone(benchmark::State& state) {
  const auto params = bench_job();
  chronos::Rng rng(1);
  const auto jobs = static_cast<std::uint64_t>(state.range(0));
  const auto r = static_cast<long long>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monte_carlo(Strategy::kClone, params, r, jobs, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonteCarloClone)->Args({1000, 2})->Args({1000, 16});

void BM_MonteCarloSRestart(benchmark::State& state) {
  const auto params = bench_job();
  chronos::Rng rng(2);
  const auto jobs = static_cast<std::uint64_t>(state.range(0));
  const auto r = static_cast<long long>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monte_carlo(Strategy::kSpeculativeRestart, params, r, jobs, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonteCarloSRestart)->Args({1000, 2})->Args({1000, 16});

void BM_MonteCarloSResume(benchmark::State& state) {
  const auto params = bench_job();
  chronos::Rng rng(3);
  const auto jobs = static_cast<std::uint64_t>(state.range(0));
  const auto r = static_cast<long long>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monte_carlo(Strategy::kSpeculativeResume, params, r, jobs, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MonteCarloSResume)->Args({1000, 2})->Args({1000, 16});

}  // namespace

BENCHMARK_MAIN();
