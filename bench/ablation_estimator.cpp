// Ablation: Hadoop's naive completion-time estimator vs the paper's
// JVM-startup-aware estimator (Eq. 30).
//
// §VI claims the Chronos estimator "significantly improves the estimation
// accuracy ... which in turn reduces the number of false positive decisions
// in straggler detection". This bench runs the same planned trace through
// S-Restart and S-Resume with each estimator and reports PoCD, cost, and
// the number of speculative attempts launched (the false-positive proxy).
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

}  // namespace

int main() {
  trace::TraceConfig trace_config;
  trace_config.num_jobs = 600;
  trace_config.duration_hours = 20.0;
  trace_config.mean_tasks = 60.0;
  trace_config.max_tasks = 600;
  // Pronounced JVM startup so the estimators differ measurably.
  trace_config.jvm_mean = 6.0;
  trace_config.jvm_jitter = 3.0;
  trace_config.seed = 555;
  const auto base_jobs = generate_trace(trace_config);
  const trace::SpotPriceModel prices;

  std::printf(
      "Ablation: naive (Hadoop) vs JVM-aware (Eq. 30) completion-time\n"
      "estimation. trace: %zu jobs, %lld tasks, JVM startup ~%g s\n\n",
      base_jobs.size(), static_cast<long long>(trace::total_tasks(base_jobs)),
      trace_config.jvm_mean);

  bench::Table table({"Strategy", "Estimator", "PoCD", "Cost",
                      "extra attempts", "killed"});
  for (const PolicyKind policy :
       {PolicyKind::kSRestart, PolicyKind::kSResume}) {
    for (const auto estimator :
         {mapreduce::EstimatorKind::kHadoopNaive,
          mapreduce::EstimatorKind::kChronos}) {
      trace::PlannerConfig planner;
      planner.theta = kTheta;
      auto jobs = base_jobs;
      plan_trace(jobs, policy, planner, prices);
      auto config = trace::ExperimentConfig::large_scale(policy, 91);
      config.scheduler.estimator = estimator;
      const auto result = run_experiment(jobs, config);
      const auto extras = result.metrics.attempts_launched() -
                          static_cast<std::uint64_t>(
                              trace::total_tasks(jobs));
      table.add_row(
          {result.policy_name,
           estimator == mapreduce::EstimatorKind::kChronos ? "Chronos"
                                                           : "naive",
           bench::fmt(result.pocd()), bench::fmt(result.mean_cost(), 1),
           bench::fmt_int(static_cast<long long>(extras)),
           bench::fmt_int(
               static_cast<long long>(result.metrics.attempts_killed()))});
    }
  }
  table.print();
  std::printf(
      "\nExpected: the naive estimator charges JVM startup as processing\n"
      "time, overestimates completion, and flags more false stragglers —\n"
      "more extra attempts and higher cost at equal or lower PoCD.\n");
  return 0;
}
