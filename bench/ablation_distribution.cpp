// Ablation: sensitivity of the Chronos conclusions to the task-duration
// distribution (§IV's remark that the analysis extends beyond Pareto).
//
// For four duration laws with matched lower bound and comparable scale —
// Pareto (the paper's model, infinite variance), shifted lognormal, shifted
// Weibull, and shifted exponential — this bench runs the generic analysis
// and optimizer and reports each strategy's optimal operating point.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/generic.h"

namespace {

using namespace chronos;  // NOLINT
using namespace chronos::core;  // NOLINT

}  // namespace

int main() {
  GenericJobParams job;
  job.num_tasks = 100;
  job.deadline = 180.0;
  job.tau_est = 9.0;
  job.tau_kill = 24.0;
  job.phi_est = 0.1;

  Economics econ;
  econ.price = 0.4;
  econ.theta = 1e-4;
  econ.r_min = 0.0;

  std::vector<std::unique_ptr<stats::Distribution>> dists;
  dists.push_back(std::make_unique<stats::ParetoDistribution>(30.0, 1.5));
  dists.push_back(std::make_unique<stats::ShiftedLogNormal>(30.0, 3.7, 0.9));
  dists.push_back(std::make_unique<stats::ShiftedWeibull>(30.0, 55.0, 0.8));
  dists.push_back(std::make_unique<stats::ShiftedExponential>(30.0, 1.0 / 60.0));

  std::printf(
      "Ablation: task-duration distribution (N=%d, D=%.0fs, theta=%g)\n\n",
      job.num_tasks, job.deadline, econ.theta);

  bench::Table table({"Distribution", "mean", "P(T>D)", "Strategy", "r*",
                      "PoCD", "E(T)", "Utility"});
  for (const auto& dist : dists) {
    for (const Strategy strategy :
         {Strategy::kClone, Strategy::kSpeculativeRestart,
          Strategy::kSpeculativeResume}) {
      const auto best = generic_optimize(strategy, job, *dist, econ, 32);
      table.add_row({dist->name(), bench::fmt(dist->mean(), 1),
                     bench::fmt(dist->survival(job.deadline), 4),
                     to_string(strategy), bench::fmt_int(best.r_opt),
                     bench::fmt(best.pocd, 4),
                     bench::fmt(best.machine_time, 1),
                     bench::fmt_utility(best.utility)});
    }
  }
  table.print();
  std::printf(
      "\nExpected: the qualitative conclusions survive the distribution\n"
      "change — speculation pays off whenever the tail is meaningful, the\n"
      "optimal r shrinks as tails lighten (exponential needs the least),\n"
      "and S-Resume remains the best or near-best strategy throughout.\n");
  return 0;
}
