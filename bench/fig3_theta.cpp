// Figure 3 (a, b, c): PoCD / Cost / Utility of Mantri, Clone, S-Restart and
// S-Resume as the tradeoff factor theta sweeps {1e-6, 1e-5, 1e-4, 1e-3}
// (trace-driven simulation, §VII-B).
//
// Mantri has no notion of theta: its measured PoCD and cost are constant
// across the sweep (only its reported utility changes).
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

std::vector<trace::TracedJob> make_trace() {
  trace::TraceConfig config;
  config.num_jobs = 900;
  config.duration_hours = 30.0;
  config.mean_tasks = 60.0;
  config.max_tasks = 600;
  config.seed = 77;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.t_min;
    params.beta = job.spec.beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;
  const auto base_jobs = make_trace();
  const double r_min = mean_baseline_pocd(base_jobs);
  const std::vector<double> thetas = {1e-6, 1e-5, 1e-4, 1e-3};

  std::printf(
      "Figure 3: PoCD / Cost / Utility vs tradeoff factor theta\n"
      "  trace: %zu jobs, %lld tasks; R_min=%.3f\n\n",
      base_jobs.size(), static_cast<long long>(trace::total_tasks(base_jobs)),
      r_min);

  bench::Table table(
      {"Strategy", "theta", "PoCD", "Cost", "Utility", "mean r"});

  for (const PolicyKind policy :
       {PolicyKind::kMantri, PolicyKind::kClone, PolicyKind::kSRestart,
        PolicyKind::kSResume}) {
    for (const double theta : thetas) {
      trace::PlannerConfig planner;
      planner.theta = theta;
      auto jobs = base_jobs;
      plan_trace(jobs, policy, planner, prices);
      auto config = trace::ExperimentConfig::large_scale(policy, 41);
      const auto result = run_experiment(jobs, config);
      double mean_r = 0.0;
      for (const auto& outcome : result.metrics.outcomes()) {
        mean_r += static_cast<double>(outcome.r_used);
      }
      mean_r /= static_cast<double>(result.metrics.jobs());
      char theta_text[32];
      std::snprintf(theta_text, sizeof(theta_text), "%g", theta);
      table.add_row({result.policy_name, theta_text,
                     bench::fmt(result.pocd()),
                     bench::fmt(result.mean_cost(), 1),
                     bench::fmt_utility(result.utility(theta, r_min)),
                     bench::fmt(mean_r, 2)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper Fig. 3): PoCD and cost of the Chronos\n"
      "strategies decrease as theta grows (smaller optimal r); Mantri's\n"
      "cost is the highest of all strategies and its utility degrades\n"
      "fastest; S-Resume attains the best utility at every theta.\n");
  return 0;
}
