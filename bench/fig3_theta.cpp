// Figure 3 (a, b, c): PoCD / Cost / Utility of Mantri, Clone, S-Restart and
// S-Resume as the tradeoff factor theta sweeps {1e-6, 1e-5, 1e-4, 1e-3}
// (trace-driven simulation, §VII-B), now driven by the sweep engine: each
// (policy, theta) cell is replicated with independent seeds and reported as
// mean +- 95% CI.
//
// Mantri has no notion of theta: its measured PoCD and cost are constant
// across the sweep (only its reported utility changes).
//
// The same grid exists as a config file (manifests/fig3_theta.ini); with
// equal --reps/--threads, `sweeprun` on that manifest writes a CSV
// byte-identical to this binary's.
//
//   ./fig3_theta [--threads N] [--reps N] [--csv PATH] [--json PATH]
//                [--journal PATH]
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr int kDefaultReps = 3;

std::vector<trace::TracedJob> make_trace() {
  trace::TraceConfig config;
  config.num_jobs = 900;
  config.duration_hours = 30.0;
  config.mean_tasks = 60.0;
  config.max_tasks = 600;
  config.seed = 77;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.stage(0).num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.stage(0).t_min;
    params.beta = job.spec.stage(0).beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_sweep_cli(argc, argv);
  const trace::SpotPriceModel prices;
  const auto base_jobs = make_trace();
  const double r_min = mean_baseline_pocd(base_jobs);

  exp::SweepSpec spec;
  spec.name = "fig3_theta";
  spec.policies = {PolicyKind::kMantri, PolicyKind::kClone,
                   PolicyKind::kSRestart, PolicyKind::kSResume};
  spec.axes = {{.name = "theta",
                .values = {1e-6, 1e-5, 1e-4, 1e-3},
                .labels = {}}};
  spec.replications = cli.reps > 0 ? cli.reps : kDefaultReps;
  spec.seed = 41;

  // Planning depends on the cell (policy, theta) but not the replication
  // seed: the engine's setup hook plans each cell's trace once and shares
  // it across that cell's replications.
  exp::SweepHooks hooks;
  hooks.setup = [&](const exp::SweepPoint& point) {
    trace::PlannerConfig planner;
    planner.theta = point.value("theta");
    auto jobs = base_jobs;
    plan_trace(jobs, point.policy, planner, prices);
    exp::SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    shared.r_min = r_min;
    return shared;
  };
  hooks.run = [&](const exp::SweepPoint& point, std::uint64_t seed,
                  const exp::SharedCell& shared) {
    exp::CellInstance instance;
    instance.jobs = shared.jobs;
    instance.config = trace::ExperimentConfig::large_scale(point.policy, seed);
    instance.report_utility = true;
    instance.theta = point.value("theta");
    instance.r_min = shared.r_min;
    return instance;
  };

  std::printf(
      "Figure 3: PoCD / Cost / Utility vs tradeoff factor theta\n"
      "  trace: %zu jobs, %lld tasks; R_min=%.3f; %d replications/cell\n\n",
      base_jobs.size(), static_cast<long long>(trace::total_tasks(base_jobs)),
      r_min, spec.replications);

  const auto result = exp::run_sweep(spec, hooks, bench::sweep_options(cli));
  exp::to_table(result).print();
  bench::dump_reports(cli, result);
  std::printf(
      "\nExpected shape (paper Fig. 3): PoCD and cost of the Chronos\n"
      "strategies decrease as theta grows (smaller optimal r); Mantri's\n"
      "cost is the highest of all strategies and its utility degrades\n"
      "fastest; S-Resume attains the best utility at every theta.\n");
  return 0;
}
