// Table I: PoCD / Cost / Utility for varying tau_est with fixed
// tau_kill - tau_est = 0.5 * t_min (trace-driven simulation, §VII-B).
//
// Clone has tau_est = 0 by construction (one row); S-Restart and S-Resume
// sweep tau_est in {0.1, 0.3, 0.5} * t_min.
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

std::vector<trace::TracedJob> make_trace() {
  trace::TraceConfig config;
  // Scaled-down replica of the paper's 2700-job / 30-hour trace (DESIGN.md):
  // the job mix keeps the same distributional shape; fewer tasks per job
  // keep the discrete-event run fast.
  config.num_jobs = 900;
  config.duration_hours = 30.0;
  config.mean_tasks = 60.0;
  config.max_tasks = 600;
  config.seed = 2024;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.stage(0).num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.stage(0).t_min;
    params.beta = job.spec.stage(0).beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;
  const auto base_jobs = make_trace();
  const double r_min = mean_baseline_pocd(base_jobs);

  std::printf(
      "Table I: varying tau_est, fixed tau_kill - tau_est = 0.5 t_min\n"
      "  trace: %zu jobs, %lld tasks; theta=%g, R_min=%.3f\n\n",
      base_jobs.size(), static_cast<long long>(trace::total_tasks(base_jobs)),
      kTheta, r_min);

  bench::Table table({"Strategy", "tau_est", "tau_kill", "PoCD", "Cost",
                      "Utility"});

  struct Row {
    PolicyKind policy;
    double tau_est_factor;
  };
  std::vector<Row> rows = {{PolicyKind::kClone, 0.0}};
  for (const PolicyKind policy :
       {PolicyKind::kSRestart, PolicyKind::kSResume}) {
    for (const double factor : {0.1, 0.3, 0.5}) {
      rows.push_back({policy, factor});
    }
  }

  for (const auto& row : rows) {
    trace::PlannerConfig planner;
    planner.theta = kTheta;
    planner.tau_est_factor = row.tau_est_factor;
    planner.tau_kill_factor = row.tau_est_factor + 0.5;
    auto jobs = base_jobs;
    plan_trace(jobs, row.policy, planner, prices);
    auto config = trace::ExperimentConfig::large_scale(row.policy, 31);
    const auto result = run_experiment(jobs, config);
    table.add_row(
        {result.policy_name,
         bench::fmt(row.tau_est_factor, 1) + "*t_min",
         bench::fmt(row.tau_est_factor + 0.5, 1) + "*t_min",
         bench::fmt(result.pocd()), bench::fmt(result.mean_cost(), 1),
         bench::fmt_utility(result.utility(kTheta, r_min))});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper Table I): PoCD and cost decrease as tau_est\n"
      "grows; best utility near tau_est = 0.3 t_min; S-Resume >= S-Restart.\n");
  return 0;
}
