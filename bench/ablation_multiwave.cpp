// Ablation: multi-wave execution (the paper's stated future work).
//
// The analysis of §IV assumes every task's attempts start at t = 0 (one
// wave). When the cluster has fewer containers than attempts, tasks queue
// and execute in waves; the single-wave closed forms then overestimate
// PoCD. This bench shrinks the cluster below the per-job attempt demand and
// measures how the strategies degrade — quantifying how much headroom the
// multi-wave extension would need to recover.
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"
#include "trace/workload.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

std::vector<trace::TracedJob> make_jobs(PolicyKind policy,
                                        const trace::SpotPriceModel& prices) {
  // One benchmark, jobs big enough that Clone's r+1 copies exceed small
  // clusters: 40 tasks per job.
  const auto& profile = trace::benchmark("Sort");
  std::vector<trace::TracedJob> jobs;
  for (int i = 0; i < 60; ++i) {
    trace::TracedJob job;
    job.submit_time = 400.0 * static_cast<double>(i);  // no inter-job load
    job.spec = profile.make_job(i, 40);
    job.spec.deadline = 160.0;
    auto& stage = job.spec.stage(0);
    stage.tau_est = 40.0;
    stage.tau_kill = 80.0;
    trace::PlannerConfig planner;
    planner.theta = kTheta;
    if (trace::has_analytic_strategy(policy)) {
      plan_job(job, policy, planner, prices);
      // plan_job rewrites the taus from factors; restore the absolute ones.
      stage.tau_est = 40.0;
      stage.tau_kill = 80.0;
    }
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;

  std::printf(
      "Ablation: waves (container capacity below per-job attempt demand)\n"
      "  60 jobs x 40 tasks, D=160s; single-wave analysis plans r\n\n");

  bench::Table table({"Strategy", "containers", "waves(approx)", "PoCD",
                      "Cost"});
  for (const char* name : {"clone", "s-restart", "s-resume"}) {
    const PolicyKind policy = *strategies::policy_from_name(name);
    for (const int containers : {160, 80, 40, 20}) {
      auto jobs = make_jobs(policy, prices);
      trace::ExperimentConfig config;
      config.policy = policy;
      config.seed = 71;
      sim::NodeConfig node;
      node.containers = containers / 10;
      config.cluster = sim::ClusterConfig::uniform(10, node);
      config.scheduler.noise = mapreduce::ProgressNoiseConfig::realistic();
      const auto result = run_experiment(jobs, config);
      // Rough wave count: 40 original attempts per job over the capacity.
      const double waves =
          40.0 / static_cast<double>(containers) * 1.0;
      table.add_row({result.policy_name, bench::fmt_int(containers),
                     bench::fmt(std::max(1.0, waves), 1),
                     bench::fmt(result.pocd()),
                     bench::fmt(result.mean_cost(), 1)});
    }
  }
  table.print();
  std::printf(
      "\nExpected: with capacity >= (r+1) x tasks all strategies match the\n"
      "single-wave analysis; as containers shrink, queueing forms waves and\n"
      "PoCD collapses — Clone first (it needs (r+1) x tasks containers),\n"
      "then the speculative strategies. This is the regime the paper's\n"
      "future work (multi-wave execution) targets.\n");
  return 0;
}
