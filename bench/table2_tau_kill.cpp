// Table II: PoCD / Cost / Utility for varying tau_kill with fixed tau_est
// (= 0.3 t_min for S-Restart/S-Resume, 0 for Clone).
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

std::vector<trace::TracedJob> make_trace() {
  trace::TraceConfig config;
  config.num_jobs = 900;
  config.duration_hours = 30.0;
  config.mean_tasks = 60.0;
  config.max_tasks = 600;
  config.seed = 2025;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.stage(0).num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.stage(0).t_min;
    params.beta = job.spec.stage(0).beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;
  const auto base_jobs = make_trace();
  const double r_min = mean_baseline_pocd(base_jobs);

  std::printf(
      "Table II: varying tau_kill, fixed tau_est (0.3 t_min; Clone: 0)\n"
      "  trace: %zu jobs, %lld tasks; theta=%g, R_min=%.3f\n\n",
      base_jobs.size(), static_cast<long long>(trace::total_tasks(base_jobs)),
      kTheta, r_min);

  bench::Table table({"Strategy", "tau_est", "tau_kill", "PoCD", "Cost",
                      "Utility"});

  for (const PolicyKind policy :
       {PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    for (const double kill_factor : {0.4, 0.6, 0.8}) {
      trace::PlannerConfig planner;
      planner.theta = kTheta;
      planner.tau_est_factor = 0.3;
      planner.tau_kill_factor = kill_factor;
      auto jobs = base_jobs;
      plan_trace(jobs, policy, planner, prices);
      auto config = trace::ExperimentConfig::large_scale(policy, 33);
      const auto result = run_experiment(jobs, config);
      const bool clone = policy == PolicyKind::kClone;
      table.add_row(
          {result.policy_name, clone ? "0" : "0.3*t_min",
           bench::fmt(kill_factor, 1) + "*t_min", bench::fmt(result.pocd()),
           bench::fmt(result.mean_cost(), 1),
           bench::fmt_utility(result.utility(kTheta, r_min))});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper Table II): cost increases with tau_kill\n"
      "(speculative attempts run longer); PoCD is non-monotone; S-Resume\n"
      "keeps the best utility.\n");
  return 0;
}
