// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.h"
#include "exp/threadpool.h"

namespace chronos::bench {

/// The fixed-width table printer now lives in exp/report.h so that sweep
/// reports and the bench binaries share one implementation.
using Table = exp::Table;

/// Formats a utility that may be -infinity.
inline std::string fmt_utility(double u) {
  if (std::isinf(u)) {
    return u < 0 ? "-inf" : "+inf";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", u);
  return buffer;
}

inline std::string fmt(double v, int precision = 3) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Flags shared by the sweep-engine bench binaries:
///   --threads N   worker threads (0 = all hardware threads)
///   --reps N      replications per cell (0 = binary default)
///   --csv PATH    also write the aggregated sweep as CSV
///   --json PATH   also write the aggregated sweep as JSON
struct SweepCli {
  int threads = 0;
  int reps = 0;
  std::string csv;
  std::string json;
};

/// Parses a bounded non-negative integer flag value or exits with usage.
inline int parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed < 0 || parsed > 1000000) {
    std::fprintf(stderr, "invalid value '%s' for %s\n", text, flag);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

inline SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value after %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      cli.threads = parse_count(value(i), "--threads");
    } else if (arg == "--reps") {
      cli.reps = parse_count(value(i), "--reps");
    } else if (arg == "--csv") {
      cli.csv = value(i);
    } else if (arg == "--json") {
      cli.json = value(i);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return cli;
}

/// Plans one trace per (policy, axis value) cell across a thread pool and
/// returns the planned traces keyed by that pair, ready for replications to
/// share. `plan(policy, value)` must be thread-safe and return the planned
/// job list for one cell; planning is deterministic, so the parallelism
/// cannot change results. `threads` <= 0 means all hardware threads; the
/// pool is clamped to the number of cells.
template <typename PlanFn>
std::map<std::pair<strategies::PolicyKind, double>,
         std::shared_ptr<const std::vector<trace::TracedJob>>>
parallel_plan_cells(const std::vector<strategies::PolicyKind>& policies,
                    const std::vector<double>& values, int threads,
                    PlanFn&& plan) {
  std::vector<std::pair<strategies::PolicyKind, double>> keys;
  for (const strategies::PolicyKind policy : policies) {
    for (const double value : values) {
      keys.emplace_back(policy, value);
    }
  }
  std::vector<std::shared_ptr<const std::vector<trace::TracedJob>>> slots(
      keys.size());
  {
    int workers = threads > 0 ? threads : exp::ThreadPool::hardware_threads();
    workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(workers), keys.size()));
    exp::ThreadPool pool(workers);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      pool.submit([&keys, &slots, &plan, i] {
        slots[i] = std::make_shared<const std::vector<trace::TracedJob>>(
            plan(keys[i].first, keys[i].second));
      });
    }
    pool.wait();
  }
  std::map<std::pair<strategies::PolicyKind, double>,
           std::shared_ptr<const std::vector<trace::TracedJob>>>
      planned;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    planned.emplace(keys[i], std::move(slots[i]));
  }
  return planned;
}

/// Applies the --csv / --json flags to a finished sweep.
inline void dump_reports(const SweepCli& cli, const exp::SweepResult& result) {
  if (!cli.csv.empty()) {
    exp::write_file(cli.csv, exp::to_csv(result));
    std::printf("\nCSV written to %s\n", cli.csv.c_str());
  }
  if (!cli.json.empty()) {
    exp::write_file(cli.json, exp::to_json(result));
    std::printf("\nJSON written to %s\n", cli.json.c_str());
  }
}

}  // namespace chronos::bench
