// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/numeric.h"
#include "exp/report.h"
#include "exp/sweep.h"

namespace chronos::bench {

/// The fixed-width table printer now lives in exp/report.h so that sweep
/// reports and the bench binaries share one implementation.
using Table = exp::Table;

/// Formats a utility that may be -infinity.
inline std::string fmt_utility(double u) {
  return numeric::format_double_fixed(u, 3);
}

inline std::string fmt(double v, int precision = 3) {
  return numeric::format_double_fixed(v, precision);
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Flags shared by the sweep-engine bench binaries:
///   --threads N     worker threads (0 = all hardware threads)
///   --reps N        replications per cell (0 = binary default)
///   --csv PATH      also write the aggregated sweep as CSV
///   --json PATH     also write the aggregated sweep as JSON
///   --journal PATH  checkpoint finished cells; reruns resume from it
struct SweepCli {
  int threads = 0;
  int reps = 0;
  std::string csv;
  std::string json;
  std::string journal;
};

/// Parses a bounded non-negative integer flag value or exits with usage.
inline int parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed < 0 || parsed > 1000000) {
    std::fprintf(stderr, "invalid value '%s' for %s\n", text, flag);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

inline SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value after %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      cli.threads = parse_count(value(i), "--threads");
    } else if (arg == "--reps") {
      cli.reps = parse_count(value(i), "--reps");
    } else if (arg == "--csv") {
      cli.csv = value(i);
    } else if (arg == "--json") {
      cli.json = value(i);
    } else if (arg == "--journal") {
      cli.journal = value(i);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return cli;
}

/// Sweep options carrying the CLI's --threads and --journal flags.
inline exp::SweepOptions sweep_options(const SweepCli& cli) {
  exp::SweepOptions options;
  options.threads = cli.threads;
  options.journal = cli.journal;
  return options;
}

/// Applies the --csv / --json flags to a finished sweep.
inline void dump_reports(const SweepCli& cli, const exp::SweepResult& result) {
  if (!cli.csv.empty()) {
    exp::write_file(cli.csv, exp::to_csv(result));
    std::printf("\nCSV written to %s\n", cli.csv.c_str());
  }
  if (!cli.json.empty()) {
    exp::write_file(cli.json, exp::to_json(result));
    std::printf("\nJSON written to %s\n", cli.json.c_str());
  }
}

}  // namespace chronos::bench
