// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace chronos::bench {

/// Formats a utility that may be -infinity.
inline std::string fmt_utility(double u) {
  if (std::isinf(u)) {
    return u < 0 ? "-inf" : "+inf";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", u);
  return buffer;
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    print_row(headers_, widths);
    std::string rule;
    for (const auto w : widths) {
      rule += std::string(w + 2, '-');
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      print_row(row, widths);
    }
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

}  // namespace chronos::bench
