// Microbenchmarks of the planner service (src/serve/): plans per second
// through the quantized plan cache. Cold = cache off (every request pays a
// full optimize_all), warm-exact = a pre-warmed exact-key cache replaying
// the identical request pool (pure hits), warm-quantized = a pre-warmed
// geometric-grid cache fed jittered shapes that land in warmed buckets.
// The warm/cold ratio is the headline number in BENCH_PR8.json.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "mapreduce/job.h"
#include "serve/plan_cache.h"
#include "serve/planner.h"
#include "strategies/policies.h"
#include "trace/planner.h"

namespace {

using chronos::serve::CacheMode;
using chronos::serve::PlannerService;
using chronos::serve::PlannerServiceConfig;
using chronos::serve::PlanRequest;

constexpr std::size_t kPoolSize = 64;

/// A pool of distinct auto-mode planning requests: shapes spread across
/// num_tasks / t_min / beta / deadline / price like an arrival stream.
struct RequestPool {
  std::vector<chronos::mapreduce::JobSpec> specs;
  std::vector<double> prices;

  explicit RequestPool(double jitter = 0.0) {
    specs.reserve(kPoolSize);
    prices.reserve(kPoolSize);
    for (std::size_t i = 0; i < kPoolSize; ++i) {
      chronos::mapreduce::JobSpec spec;
      spec.stage(0).num_tasks = 20 + static_cast<int>(i % 7) * 20;
      spec.stage(0).t_min = 20.0 + static_cast<double>(i % 5) + jitter;
      spec.stage(0).beta = 1.5 + 0.05 * static_cast<double>(i % 4) + jitter;
      spec.deadline = 150.0 + 10.0 * static_cast<double>(i % 8) + jitter;
      specs.push_back(spec);
      prices.push_back(0.3 + 0.01 * static_cast<double>(i % 6) + jitter);
    }
  }

  PlanRequest request(std::size_t i, chronos::mapreduce::JobSpec& scratch) {
    scratch = specs[i % kPoolSize];
    PlanRequest request;
    request.spec = &scratch;
    request.price = prices[i % kPoolSize];
    request.auto_strategy = true;
    request.policy = chronos::strategies::PolicyKind::kSResume;
    return request;
  }
};

PlannerServiceConfig config_for(CacheMode mode, double grid = 0.0) {
  PlannerServiceConfig config;
  config.cache.mode = mode;
  config.cache.grid = grid;
  return config;
}

void drive(benchmark::State& state, PlannerService& service,
           RequestPool& pool) {
  chronos::mapreduce::JobSpec scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    auto request = pool.request(i++, scratch);
    benchmark::DoNotOptimize(service.plan(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Every request runs the full Algorithm 1 sweep over all three strategies.
void BM_PlansPerSecondCold(benchmark::State& state) {
  PlannerService service(config_for(CacheMode::kOff));
  RequestPool pool;
  drive(state, service, pool);
}
BENCHMARK(BM_PlansPerSecondCold);

// The same pool replayed against a pre-warmed exact-key cache: pure hits.
void BM_PlansPerSecondWarmExact(benchmark::State& state) {
  PlannerService service(config_for(CacheMode::kExact));
  RequestPool pool;
  chronos::mapreduce::JobSpec scratch;
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    auto request = pool.request(i, scratch);
    service.plan(request);
  }
  drive(state, service, pool);
}
BENCHMARK(BM_PlansPerSecondWarmExact);

// A jittered pool against a cache warmed with the unjittered shapes: the
// jitter (well under one 5% grid step) keeps every request inside a warmed
// bucket, so this measures quantized hits on near-miss inputs.
void BM_PlansPerSecondWarmQuantized(benchmark::State& state) {
  PlannerService service(config_for(CacheMode::kQuantized, 0.05));
  RequestPool warm_pool;
  chronos::mapreduce::JobSpec scratch;
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    auto request = warm_pool.request(i, scratch);
    service.plan(request);
  }
  RequestPool jittered(1e-4);
  drive(state, service, jittered);
}
BENCHMARK(BM_PlansPerSecondWarmQuantized);

// Full staged planning on a 3-stage chain: critical-path deadline split
// plus one Algorithm-1 run per stage, with SharedAnalytics reused across
// the two same-shape reduce stages. The staged analogue of
// BM_PlansPerSecondCold.
void BM_StagedJobPlan(benchmark::State& state) {
  chronos::mapreduce::JobSpec proto;
  proto.stage(0).num_tasks = 40;
  proto.stage(0).t_min = 25.0;
  proto.stage(0).beta = 1.4;
  proto.deadline = 900.0;
  proto.add_reduce_stage(/*reduce_tasks=*/10, /*reduce_t_min=*/45.0,
                         /*reduce_beta=*/1.7);
  proto.add_reduce_stage(/*reduce_tasks=*/10, /*reduce_t_min=*/45.0,
                         /*reduce_beta=*/1.7);
  const chronos::trace::PlannerConfig planner;
  for (auto _ : state) {
    auto spec = proto;
    benchmark::DoNotOptimize(chronos::trace::plan_staged_spec(
        spec, chronos::strategies::PolicyKind::kSResume, planner, 0.4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StagedJobPlan);

}  // namespace

BENCHMARK_MAIN();
