// Figure 4 (a, b, c): PoCD / Cost / Utility of Hadoop-NS, Hadoop-S, Clone,
// S-Restart and S-Resume as the Pareto tail index beta sweeps 1.1 .. 1.9
// (trace-driven simulation; deadline = 2 x mean task execution time).
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

std::vector<trace::TracedJob> make_trace(double beta) {
  trace::TraceConfig config;
  config.num_jobs = 500;
  config.duration_hours = 30.0;
  config.mean_tasks = 50.0;
  config.max_tasks = 500;
  config.beta_lo = beta;
  config.beta_hi = beta;
  config.deadline_factor_lo = 2.0;
  config.deadline_factor_hi = 2.0;
  config.seed = 99;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.t_min;
    params.beta = job.spec.beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;

  std::printf(
      "Figure 4: PoCD / Cost / Utility vs Pareto tail index beta\n"
      "  deadline = 2 x mean task execution time; theta=%g\n\n",
      kTheta);

  bench::Table table({"beta", "Strategy", "PoCD", "Cost", "Utility"});

  for (double beta = 1.1; beta <= 1.901; beta += 0.2) {
    const auto base_jobs = make_trace(beta);
    const double r_min = mean_baseline_pocd(base_jobs);
    for (const PolicyKind policy :
         {PolicyKind::kHadoopNS, PolicyKind::kHadoopS, PolicyKind::kClone,
          PolicyKind::kSRestart, PolicyKind::kSResume}) {
      trace::PlannerConfig planner;
      planner.theta = kTheta;
      auto jobs = base_jobs;
      plan_trace(jobs, policy, planner, prices);
      auto config = trace::ExperimentConfig::large_scale(policy, 43);
      const auto result = run_experiment(jobs, config);
      // Report utility against the analytic no-speculation R_min, slightly
      // offset so the baselines stay finite when they sit exactly at R_min.
      const double report_r_min = std::max(0.0, r_min - 0.05);
      table.add_row({bench::fmt(beta, 1), result.policy_name,
                     bench::fmt(result.pocd()),
                     bench::fmt(result.mean_cost(), 1),
                     bench::fmt_utility(result.utility(kTheta,
                                                       report_r_min))});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper Fig. 4): cost decreases as beta grows (mean\n"
      "task time t_min*beta/(beta-1) shrinks); the Chronos strategies beat\n"
      "Hadoop-NS and Hadoop-S on utility across beta in [1.1, 1.9].\n");
  return 0;
}
