// Figure 4 (a, b, c): PoCD / Cost / Utility of Hadoop-NS, Hadoop-S, Clone,
// S-Restart and S-Resume as the Pareto tail index beta sweeps 1.1 .. 1.9
// (trace-driven simulation; deadline = 2 x mean task execution time), now
// driven by the sweep engine with replicated cells.
//
//   ./fig4_beta [--threads N] [--reps N] [--csv PATH] [--json PATH]
//               [--journal PATH]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;
constexpr int kDefaultReps = 3;

std::vector<trace::TracedJob> make_trace(double beta) {
  trace::TraceConfig config;
  config.num_jobs = 500;
  config.duration_hours = 30.0;
  config.mean_tasks = 50.0;
  config.max_tasks = 500;
  config.beta_lo = beta;
  config.beta_hi = beta;
  config.deadline_factor_lo = 2.0;
  config.deadline_factor_hi = 2.0;
  config.seed = 99;
  return generate_trace(config);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.stage(0).num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.stage(0).t_min;
    params.beta = job.spec.stage(0).beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

/// Per-beta shared inputs, generated once instead of per replication.
struct BetaTrace {
  std::vector<trace::TracedJob> jobs;  ///< unplanned base trace
  double r_min = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_sweep_cli(argc, argv);
  const trace::SpotPriceModel prices;
  const std::vector<double> betas = {1.1, 1.3, 1.5, 1.7, 1.9};

  // One shared base trace per beta, indexed in axis order (cells look it up
  // by axis index — float-keyed maps can alias nearly-equal values).
  std::vector<BetaTrace> traces;
  traces.reserve(betas.size());
  for (const double beta : betas) {
    BetaTrace entry;
    entry.jobs = make_trace(beta);
    entry.r_min = mean_baseline_pocd(entry.jobs);
    traces.push_back(std::move(entry));
  }

  exp::SweepSpec spec;
  spec.name = "fig4_beta";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kHadoopS,
                   PolicyKind::kClone, PolicyKind::kSRestart,
                   PolicyKind::kSResume};
  spec.axes = {{.name = "beta", .values = betas, .labels = {}}};
  spec.replications = cli.reps > 0 ? cli.reps : kDefaultReps;
  spec.seed = 43;

  // Planning depends on the cell (policy, beta) but not the replication
  // seed: the engine's setup hook plans each cell's trace once and shares
  // it across that cell's replications.
  exp::SweepHooks hooks;
  hooks.setup = [&](const exp::SweepPoint& point) {
    const BetaTrace& base = traces[point.index("beta")];
    trace::PlannerConfig planner;
    planner.theta = kTheta;
    auto jobs = base.jobs;
    plan_trace(jobs, point.policy, planner, prices);
    exp::SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    // Report utility against the analytic no-speculation R_min, slightly
    // offset so the baselines stay finite when they sit exactly at R_min.
    shared.r_min = std::max(0.0, base.r_min - 0.05);
    return shared;
  };
  hooks.run = [](const exp::SweepPoint& point, std::uint64_t seed,
                 const exp::SharedCell& shared) {
    exp::CellInstance instance;
    instance.jobs = shared.jobs;
    instance.config = trace::ExperimentConfig::large_scale(point.policy, seed);
    instance.report_utility = true;
    instance.theta = kTheta;
    instance.r_min = shared.r_min;
    return instance;
  };

  std::printf(
      "Figure 4: PoCD / Cost / Utility vs Pareto tail index beta\n"
      "  deadline = 2 x mean task execution time; theta=%g; "
      "%d replications/cell\n\n",
      kTheta, spec.replications);

  const auto result = exp::run_sweep(spec, hooks, bench::sweep_options(cli));
  exp::to_table(result).print();
  bench::dump_reports(cli, result);
  std::printf(
      "\nExpected shape (paper Fig. 4): cost decreases as beta grows (mean\n"
      "task time t_min*beta/(beta-1) shrinks); the Chronos strategies beat\n"
      "Hadoop-NS and Hadoop-S on utility across beta in [1.1, 1.9].\n");
  return 0;
}
