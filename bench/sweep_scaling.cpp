// Multi-core scaling of the sweep engine on a 108-cell grid
// (3 policies x 3 theta x 4 beta x 3 tau_est factors).
//
// Runs the whole grid once at 1 thread and once at --threads (default: all
// hardware threads), reports the wall-clock speedup and verifies the
// aggregated CSV output is byte-identical — the engine's determinism
// guarantee. Exits non-zero if the outputs differ.
//
//   ./sweep_scaling [--threads N] [--reps N] [--csv PATH] [--json PATH]
#include <chrono>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/threadpool.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

exp::SweepSpec make_spec(int reps) {
  exp::SweepSpec spec;
  spec.name = "sweep_scaling";
  spec.policies = {PolicyKind::kClone, PolicyKind::kSRestart,
                   PolicyKind::kSResume};
  spec.axes = {
      {.name = "theta", .values = {1e-5, 1e-4, 1e-3}, .labels = {}},
      {.name = "beta", .values = {1.2, 1.4, 1.6, 1.8}, .labels = {}},
      {.name = "tau_est_factor", .values = {0.2, 0.3, 0.4}, .labels = {}},
  };
  spec.replications = reps;
  spec.seed = 2018;
  return spec;
}

exp::CellInstance make_cell(const exp::SweepPoint& point, std::uint64_t seed,
                            const trace::SpotPriceModel& prices) {
  trace::TraceConfig trace_config;
  trace_config.num_jobs = 60;
  trace_config.duration_hours = 2.0;
  trace_config.mean_tasks = 40.0;
  trace_config.max_tasks = 200;
  trace_config.beta_lo = point.value("beta");
  trace_config.beta_hi = point.value("beta");
  trace_config.seed = 7;  // shared base workload; the cell varies the rest

  auto jobs = generate_trace(trace_config);
  trace::PlannerConfig planner;
  planner.theta = point.value("theta");
  planner.tau_est_factor = point.value("tau_est_factor");
  plan_trace(jobs, point.policy, planner, prices);

  exp::CellInstance instance;
  instance.set_jobs(std::move(jobs));
  instance.config = trace::ExperimentConfig::large_scale(point.policy, seed);
  return instance;
}

double run_timed(const exp::SweepSpec& spec, const exp::CellFactory& factory,
                 int threads, exp::SweepResult& result) {
  const auto start = std::chrono::steady_clock::now();
  exp::SweepOptions options;
  options.threads = threads;
  result = exp::run_sweep(spec, factory, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = bench::parse_sweep_cli(argc, argv);
  const int threads =
      cli.threads > 0 ? cli.threads : exp::ThreadPool::hardware_threads();
  const trace::SpotPriceModel prices;
  const auto spec = make_spec(cli.reps > 0 ? cli.reps : 1);
  const exp::CellFactory factory = [&prices](const exp::SweepPoint& point,
                                             std::uint64_t seed) {
    return make_cell(point, seed, prices);
  };

  std::printf("sweep_scaling: %zu cells x %d replication(s)\n",
              spec.num_cells(), spec.replications);

  exp::SweepResult parallel_result;
  const double parallel_seconds =
      run_timed(spec, factory, threads, parallel_result);
  std::printf("  %2d threads: %.3f s\n", threads, parallel_seconds);

  exp::SweepResult serial_result;
  const double serial_seconds = run_timed(spec, factory, 1, serial_result);
  std::printf("   1 thread : %.3f s\n", serial_seconds);
  std::printf("  speedup   : %.2fx\n", serial_seconds / parallel_seconds);

  const std::string parallel_csv = exp::to_csv(parallel_result);
  const std::string serial_csv = exp::to_csv(serial_result);
  if (parallel_csv != serial_csv) {
    std::fprintf(stderr,
                 "FAIL: aggregated CSV differs between 1 and %d threads\n",
                 threads);
    return 1;
  }
  std::printf("  output    : byte-identical CSV at both thread counts\n");

  if (!cli.csv.empty() || !cli.json.empty()) {
    bench::dump_reports(cli, parallel_result);
  }
  return 0;
}
