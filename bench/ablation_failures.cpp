// Ablation: strategy robustness under VM/node crash failures.
//
// §VII remarks that S-Resume "may not be possible in certain (extreme)
// scenarios such as system breakdown or VM crash, where only S-Restart is
// feasible". This bench injects exponential crash failures into running
// attempts and sweeps the crash rate: crashed attempts lose their partial
// output and are retried from byte 0, which specifically erodes S-Resume's
// work-preservation advantage.
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

}  // namespace

int main() {
  trace::TraceConfig trace_config;
  trace_config.num_jobs = 500;
  trace_config.duration_hours = 20.0;
  trace_config.mean_tasks = 50.0;
  trace_config.max_tasks = 500;
  trace_config.seed = 4242;
  const auto base_jobs = generate_trace(trace_config);
  const trace::SpotPriceModel prices;

  std::printf(
      "Ablation: crash-failure injection (exponential rate per attempt-s)\n"
      "  trace: %zu jobs, %lld tasks; crashed attempts retried from byte 0\n\n",
      base_jobs.size(),
      static_cast<long long>(trace::total_tasks(base_jobs)));

  bench::Table table({"Strategy", "crash rate", "PoCD", "Cost", "failures"});
  for (const PolicyKind policy :
       {PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    for (const double rate : {0.0, 1e-4, 1e-3, 5e-3}) {
      trace::PlannerConfig planner;
      planner.theta = kTheta;
      auto jobs = base_jobs;
      plan_trace(jobs, policy, planner, prices);
      auto config = trace::ExperimentConfig::large_scale(policy, 95);
      config.scheduler.failures.rate = rate;
      config.scheduler.failures.lose_partial_output = true;
      const auto result = run_experiment(jobs, config);
      char rate_text[32];
      std::snprintf(rate_text, sizeof(rate_text), "%g", rate);
      table.add_row({result.policy_name, rate_text,
                     bench::fmt(result.pocd()),
                     bench::fmt(result.mean_cost(), 1),
                     bench::fmt_int(static_cast<long long>(
                         result.metrics.attempts_failed()))});
    }
  }
  table.print();
  std::printf(
      "\nExpected: PoCD degrades and cost grows with the crash rate for\n"
      "every strategy; replication (Clone) buys the most robustness since\n"
      "any surviving copy completes the task.\n");
  return 0;
}
