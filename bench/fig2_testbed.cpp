// Figure 2 (a, b, c): PoCD, Cost and Utility of Hadoop-NS, Hadoop-S, Clone,
// S-Restart and S-Resume on the four benchmarks (Sort, SecondarySort,
// TeraSort, WordCount).
//
// Testbed substitute: 40-node / 8-container simulated cluster (§VII-A).
// 100 jobs of 10 tasks per benchmark; deadlines 100 s (Sort, TeraSort) and
// 150 s (SecondarySort, WordCount); tau_est = 40 s, tau_kill = 80 s;
// theta = 1e-4. The optimal r per job is computed with Algorithm 1.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/chronos.h"
#include "trace/harness.h"
#include "trace/planner.h"
#include "trace/spot_price.h"
#include "trace/workload.h"

namespace {

using namespace chronos;           // NOLINT
using strategies::PolicyKind;

constexpr int kJobs = 100;
constexpr int kTasksPerJob = 10;
constexpr double kTauEst = 40.0;
constexpr double kTauKill = 80.0;
constexpr double kTheta = 1e-4;

core::JobParams analytic_params(const mapreduce::JobSpec& spec,
                                core::Strategy strategy) {
  core::JobParams params;
  params.num_tasks = spec.num_tasks;
  params.deadline = spec.deadline;
  params.t_min = spec.t_min;
  params.beta = spec.beta;
  params.tau_est = strategy == core::Strategy::kClone ? 0.0 : kTauEst;
  params.tau_kill = kTauKill;
  params.phi_est = core::default_phi_est(params);
  return params;
}

std::vector<trace::TracedJob> make_jobs(const trace::WorkloadProfile& profile,
                                        PolicyKind policy,
                                        const trace::SpotPriceModel& prices) {
  std::vector<trace::TracedJob> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    trace::TracedJob job;
    // One job every ~72 s: a lightly loaded testbed, as in the experiments.
    job.submit_time = 72.0 * static_cast<double>(i);
    job.spec = profile.make_job(i, kTasksPerJob);
    job.spec.tau_est = kTauEst;
    job.spec.tau_kill = kTauKill;
    job.spec.price = prices.price_at(job.submit_time);
    if (trace::has_analytic_strategy(policy)) {
      const auto strategy = trace::analytic_strategy(policy);
      const auto params = analytic_params(job.spec, strategy);
      core::Economics econ;
      econ.price = job.spec.price;
      econ.theta = kTheta;
      econ.r_min = core::pocd_no_speculation(params);
      const auto result = core::optimize(strategy, params, econ);
      job.spec.r = result.feasible ? result.r_opt : 1;
    }
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace

int main() {
  const trace::SpotPriceModel prices;
  const std::vector<PolicyKind> policies = {
      PolicyKind::kHadoopNS, PolicyKind::kHadoopS, PolicyKind::kClone,
      PolicyKind::kSRestart, PolicyKind::kSResume};

  std::printf(
      "Figure 2: PoCD / Cost / Utility per benchmark (testbed simulation)\n"
      "  %d jobs x %d tasks, tau_est=%.0fs tau_kill=%.0fs theta=%g\n\n",
      kJobs, kTasksPerJob, kTauEst, kTauKill, kTheta);

  bench::Table table({"Benchmark", "Strategy", "PoCD", "Cost", "Utility",
                      "mean r"});
  for (const auto& profile : trace::benchmark_suite()) {
    // R_min for the utility report: measured Hadoop-NS PoCD (paper §VII-A);
    // Hadoop-NS itself then has utility -inf by construction.
    double r_min = 0.0;
    std::map<PolicyKind, trace::ExperimentResult> results;
    for (const PolicyKind policy : policies) {
      auto jobs = make_jobs(profile, policy, prices);
      auto config = trace::ExperimentConfig::testbed(policy, /*seed=*/17);
      results.emplace(policy, trace::run_experiment(jobs, config));
      if (policy == PolicyKind::kHadoopNS) {
        r_min = results.at(policy).pocd();
      }
    }
    for (const PolicyKind policy : policies) {
      const auto& result = results.at(policy);
      double mean_r = 0.0;
      for (const auto& outcome : result.metrics.outcomes()) {
        mean_r += static_cast<double>(outcome.r_used);
      }
      mean_r /= static_cast<double>(result.metrics.jobs());
      table.add_row({profile.name, result.policy_name,
                     bench::fmt(result.pocd()),
                     bench::fmt(result.mean_cost(), 1),
                     bench::fmt_utility(result.utility(kTheta, r_min)),
                     bench::fmt(mean_r, 2)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): Hadoop-NS lowest PoCD; Clone highest PoCD\n"
      "and highest cost; S-Resume best utility; Chronos strategies beat\n"
      "Hadoop-NS/Hadoop-S on net utility.\n");
  return 0;
}
