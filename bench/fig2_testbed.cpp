// Figure 2 (a, b, c): PoCD, Cost and Utility of Hadoop-NS, Hadoop-S, Clone,
// S-Restart and S-Resume on the four benchmarks (Sort, SecondarySort,
// TeraSort, WordCount), driven by the sweep engine over a categorical
// benchmark axis with replicated cells.
//
// Testbed substitute: 40-node / 8-container simulated cluster (§VII-A).
// 100 jobs of 10 tasks per benchmark; deadlines 100 s (Sort, TeraSort) and
// 150 s (SecondarySort, WordCount); tau_est = 40 s, tau_kill = 80 s;
// theta = 1e-4. The optimal r per job is computed with Algorithm 1.
//
// R_min for the utility report is the measured Hadoop-NS PoCD per benchmark
// (paper §VII-A), so utility is derived from the cell aggregates after the
// sweep; Hadoop-NS itself has utility -inf by construction. Because of this
// cross-cell dependency the --csv/--json exports carry empty utility
// columns — Figure 2(c)'s utility lives in the printed table only.
//
//   ./fig2_testbed [--threads N] [--reps N] [--csv PATH] [--json PATH]
//                  [--journal PATH]
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_util.h"
#include "core/chronos.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/harness.h"
#include "trace/planner.h"
#include "trace/spot_price.h"
#include "trace/workload.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr int kJobs = 100;
constexpr int kTasksPerJob = 10;
constexpr double kTauEst = 40.0;
constexpr double kTauKill = 80.0;
constexpr double kTheta = 1e-4;
constexpr int kDefaultReps = 3;

core::JobParams analytic_params(const mapreduce::JobSpec& spec,
                                core::Strategy strategy) {
  core::JobParams params;
  params.num_tasks = spec.stage(0).num_tasks;
  params.deadline = spec.deadline;
  params.t_min = spec.stage(0).t_min;
  params.beta = spec.stage(0).beta;
  params.tau_est = strategy == core::Strategy::kClone ? 0.0 : kTauEst;
  params.tau_kill = kTauKill;
  params.phi_est = core::default_phi_est(params);
  return params;
}

std::vector<trace::TracedJob> make_jobs(const trace::WorkloadProfile& profile,
                                        PolicyKind policy,
                                        const trace::SpotPriceModel& prices) {
  std::vector<trace::TracedJob> jobs;
  jobs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    trace::TracedJob job;
    // One job every ~72 s: a lightly loaded testbed, as in the experiments.
    job.submit_time = 72.0 * static_cast<double>(i);
    job.spec = profile.make_job(i, kTasksPerJob);
    job.spec.stage(0).tau_est = kTauEst;
    job.spec.stage(0).tau_kill = kTauKill;
    job.spec.price = prices.price_at(job.submit_time);
    if (trace::has_analytic_strategy(policy)) {
      const auto strategy = trace::analytic_strategy(policy);
      const auto params = analytic_params(job.spec, strategy);
      core::Economics econ;
      econ.price = job.spec.price;
      econ.theta = kTheta;
      econ.r_min = core::pocd_no_speculation(params);
      const auto result = core::optimize(strategy, params, econ);
      job.spec.stage(0).r = result.feasible ? result.r_opt : 1;
    }
    jobs.push_back(job);
  }
  return jobs;
}

/// Utility evaluated on cell means, via the canonical §VII formula.
double utility_of(const exp::CellAggregate& aggregate, double r_min) {
  return sim::utility_from(aggregate.pocd.mean, aggregate.cost.mean, kTheta,
                           r_min);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = bench::parse_sweep_cli(argc, argv);
  const trace::SpotPriceModel prices;
  const auto& suite = trace::benchmark_suite();

  exp::Axis benchmarks;
  benchmarks.name = "benchmark";
  for (std::size_t i = 0; i < suite.size(); ++i) {
    benchmarks.values.push_back(static_cast<double>(i));
    benchmarks.labels.push_back(suite[i].name);
  }

  exp::SweepSpec spec;
  spec.name = "fig2_testbed";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kHadoopS,
                   PolicyKind::kClone, PolicyKind::kSRestart,
                   PolicyKind::kSResume};
  spec.axes = {benchmarks};
  spec.replications = cli.reps > 0 ? cli.reps : kDefaultReps;
  spec.seed = 17;

  // The job list depends on the cell (policy, benchmark) but not the
  // replication seed: the engine's setup hook builds each cell's jobs once
  // (keyed by the benchmark's axis *index*, never its float value) and the
  // cell's replications share them.
  exp::SweepHooks hooks;
  hooks.setup = [&](const exp::SweepPoint& point) {
    exp::SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        make_jobs(suite[point.index("benchmark")], point.policy, prices));
    return shared;
  };
  hooks.run = [](const exp::SweepPoint& point, std::uint64_t seed,
                 const exp::SharedCell& shared) {
    exp::CellInstance instance;
    instance.jobs = shared.jobs;
    instance.config = trace::ExperimentConfig::testbed(point.policy, seed);
    return instance;
  };

  std::printf(
      "Figure 2: PoCD / Cost / Utility per benchmark (testbed simulation)\n"
      "  %d jobs x %d tasks, tau_est=%.0fs tau_kill=%.0fs theta=%g; "
      "%d replications/cell\n\n",
      kJobs, kTasksPerJob, kTauEst, kTauKill, kTheta, spec.replications);

  const auto result = exp::run_sweep(spec, hooks, bench::sweep_options(cli));

  // R_min per benchmark: mean Hadoop-NS PoCD of that benchmark's cell.
  std::vector<double> r_min(suite.size(), 0.0);
  for (const auto& cell : result.cells) {
    if (cell.point.policy == PolicyKind::kHadoopNS) {
      r_min[cell.point.index("benchmark")] = cell.aggregate.pocd.mean;
    }
  }

  bench::Table table({"Benchmark", "Strategy", "PoCD", "Cost", "Utility",
                      "mean r"});
  for (std::size_t b = 0; b < suite.size(); ++b) {
    for (const auto& cell : result.cells) {
      if (cell.point.index("benchmark") != b) {
        continue;
      }
      const auto& agg = cell.aggregate;
      table.add_row({suite[b].name, cell.policy_name,
                     bench::fmt(agg.pocd.mean),
                     bench::fmt(agg.cost.mean, 1),
                     bench::fmt_utility(utility_of(agg, r_min[b])),
                     bench::fmt(agg.mean_r.mean, 2)});
    }
  }
  table.print();
  bench::dump_reports(cli, result);
  std::printf(
      "\nExpected shape (paper): Hadoop-NS lowest PoCD; Clone highest PoCD\n"
      "and highest cost; S-Resume best utility; Chronos strategies beat\n"
      "Hadoop-NS/Hadoop-S on net utility.\n");
  return 0;
}
