// Ablation: the Eq. 31 resume-offset anticipation of Speculative-Resume.
//
// S-Resume's new attempts skip b_extra — the bytes the original attempt
// will process while the new attempts' JVMs start — so the handover wastes
// no work. This bench disables the anticipation (attempts resume exactly at
// the observed offset, reprocessing those bytes) and compares.
#include <cstdio>

#include "bench_util.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

constexpr double kTheta = 1e-4;

}  // namespace

int main() {
  trace::TraceConfig trace_config;
  trace_config.num_jobs = 600;
  trace_config.duration_hours = 20.0;
  trace_config.mean_tasks = 60.0;
  trace_config.max_tasks = 600;
  trace_config.jvm_mean = 6.0;  // pronounced startup: anticipation matters
  trace_config.jvm_jitter = 3.0;
  trace_config.seed = 777;
  auto jobs = generate_trace(trace_config);
  const trace::SpotPriceModel prices;
  trace::PlannerConfig planner;
  planner.theta = kTheta;
  plan_trace(jobs, PolicyKind::kSResume, planner, prices);

  std::printf(
      "Ablation: Eq. 31 resume-offset anticipation in S-Resume\n"
      "  trace: %zu jobs, %lld tasks, JVM startup ~%g s\n\n",
      jobs.size(), static_cast<long long>(trace::total_tasks(jobs)),
      trace_config.jvm_mean);

  bench::Table table({"Variant", "PoCD", "Cost", "mean machine time"});
  for (const bool anticipate : {true, false}) {
    auto config = trace::ExperimentConfig::large_scale(
        PolicyKind::kSResume, 92);
    config.scheduler.anticipate_resume_offset = anticipate;
    const auto result = run_experiment(jobs, config);
    table.add_row({anticipate ? "Eq. 31 anticipation" : "observed offset",
                   bench::fmt(result.pocd()),
                   bench::fmt(result.mean_cost(), 1),
                   bench::fmt(result.metrics.mean_machine_time(), 1)});
  }
  table.print();
  std::printf(
      "\nExpected: without anticipation the resumed attempts reprocess the\n"
      "bytes the original handles during their JVM startup — slightly more\n"
      "machine time for the same or lower PoCD.\n");
  return 0;
}
