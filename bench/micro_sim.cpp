// Microbenchmarks of the simulation substrate: event-queue throughput and
// end-to-end scheduler runs per strategy.
#include <benchmark/benchmark.h>

#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/open_system.h"
#include "sim/simulator.h"
#include "strategies/policies.h"

namespace {

using namespace chronos;  // NOLINT

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (long long i = 0; i < n; ++i) {
      queue.schedule(static_cast<double>((i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHalf(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (long long i = 0; i < n; ++i) {
      ids.push_back(
          queue.schedule(static_cast<double>(i % 977), [] {}));
    }
    for (long long i = 0; i < n; i += 2) {
      queue.cancel(ids[static_cast<std::size_t>(i)]);
    }
    while (!queue.empty()) {
      queue.pop().fn();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelHalf)->Arg(10000);

mapreduce::JobSpec bench_job(int tasks) {
  mapreduce::JobSpec spec;
  spec.stage(0).num_tasks = tasks;
  spec.deadline = 180.0;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.5;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.stage(0).r = 2;
  return spec;
}

void run_one_job(strategies::PolicyKind kind, int tasks,
                 std::uint64_t seed) {
  sim::Simulator simulator;
  sim::NodeConfig node;
  node.containers = 64;
  sim::Cluster cluster(sim::ClusterConfig::uniform(16, node));
  auto policy = strategies::make_policy(kind);
  mapreduce::Scheduler scheduler(simulator, cluster, *policy,
                                 mapreduce::SchedulerConfig{}, Rng(seed));
  scheduler.submit(bench_job(tasks));
  simulator.run();
}

void BM_SchedulerHadoopNS(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_one_job(strategies::PolicyKind::kHadoopNS,
                static_cast<int>(state.range(0)), seed++);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerHadoopNS)->Arg(100);

void BM_SchedulerClone(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_one_job(strategies::PolicyKind::kClone,
                static_cast<int>(state.range(0)), seed++);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerClone)->Arg(100);

void BM_SchedulerSResume(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_one_job(strategies::PolicyKind::kSResume,
                static_cast<int>(state.range(0)), seed++);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerSResume)->Arg(100);

void BM_SchedulerMantri(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    run_one_job(strategies::PolicyKind::kMantri,
                static_cast<int>(state.range(0)), seed++);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerMantri)->Arg(100);

void BM_OpenSystemEventsPerSec(benchmark::State& state) {
  // End-to-end open-system throughput: Poisson arrivals at ~60% offered
  // load on a 256-container cluster, fixed S-Resume planning and admission
  // control on — the hot path a million-job day exercises. Items are
  // simulator events, the unit the "million events per second" ROADMAP
  // target is stated in.
  sim::OpenSystemConfig config;
  config.arrivals.kind = trace::ArrivalKind::kPoisson;
  config.arrivals.rate = 1.2;
  config.workload.mean_tasks = 20.0;
  config.workload.max_tasks = 64;
  config.workload.t_min_lo = 2.0;
  config.workload.t_min_hi = 8.0;
  config.policy = strategies::PolicyKind::kSResume;
  config.planner.r_min_from_baseline = false;
  sim::NodeConfig node;
  node.containers = 16;
  config.cluster = sim::ClusterConfig::uniform(16, node);
  config.duration = 1000.0;
  config.warm_up = 100.0;
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    config.seed = seed++;
    const auto result = sim::run_open_system(config);
    benchmark::DoNotOptimize(result.utilization);
    events += result.events_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_OpenSystemEventsPerSec)->Unit(benchmark::kMillisecond);

void BM_OpenSystemStagedEventsPerSec(benchmark::State& state) {
  // The same open-system hot path with every arrival extended into a
  // 3-stage DAG (chain + fan-in from the root): measures the cost of the
  // barrier bookkeeping, per-stage samplers, and multi-stage planning
  // relative to BM_OpenSystemEventsPerSec.
  sim::OpenSystemConfig config;
  config.arrivals.kind = trace::ArrivalKind::kPoisson;
  config.arrivals.rate = 0.6;
  config.workload.mean_tasks = 20.0;
  config.workload.max_tasks = 64;
  config.workload.t_min_lo = 2.0;
  config.workload.t_min_hi = 8.0;
  config.workload.extra_stages = {
      mapreduce::StageSpec{8, 4.0, 1.6, 0.0, 0.0, 0, {}},
      mapreduce::StageSpec{4, 3.0, 1.5, 0.0, 0.0, 0, {0, 1}},
  };
  config.policy = strategies::PolicyKind::kSResume;
  config.planner.r_min_from_baseline = false;
  sim::NodeConfig node;
  node.containers = 16;
  config.cluster = sim::ClusterConfig::uniform(16, node);
  config.duration = 1000.0;
  config.warm_up = 100.0;
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    config.seed = seed++;
    const auto result = sim::run_open_system(config);
    benchmark::DoNotOptimize(result.utilization);
    events += result.events_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_OpenSystemStagedEventsPerSec)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
