// Theorem 7: PoCD orderings between the three strategies.
#include "core/comparison.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/pocd.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_job;

TEST(Theorem7, CloneAlwaysBeatsRestart) {
  auto p = default_job();
  for (double beta = 1.1; beta <= 1.9; beta += 0.2) {
    p.beta = beta;
    for (double r = 1.0; r <= 6.0; r += 1.0) {
      EXPECT_GT(pocd_clone(p, r), pocd_s_restart(p, r))
          << "beta=" << beta << " r=" << r;
      EXPECT_LT(clone_vs_restart_ratio(p, r), 1.0);
    }
  }
}

TEST(Theorem7, CloneEqualsRestartAtRZero) {
  const auto p = default_job();
  EXPECT_NEAR(clone_vs_restart_ratio(p, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(pocd_clone(p, 0.0), pocd_s_restart(p, 0.0), 1e-12);
}

TEST(Theorem7, ResumeBeatsRestart) {
  // Condition D - tau_est >= (1 - phi) t_min holds for all valid params.
  auto p = default_job();
  for (double phi = 0.0; phi <= 0.6; phi += 0.2) {
    p.phi_est = phi;
    for (double r = 0.0; r <= 5.0; r += 1.0) {
      EXPECT_GT(pocd_s_resume(p, r), pocd_s_restart(p, r))
          << "phi=" << phi << " r=" << r;
      EXPECT_GT(restart_vs_resume_ratio(p, r), 1.0);
    }
  }
}

TEST(Theorem7, RatiosMatchDirectPocdComputation) {
  const auto p = default_job();
  const double n = static_cast<double>(p.num_tasks);
  for (double r = 0.0; r <= 4.0; r += 1.0) {
    // Per-task failure probability: 1 - R^{1/N} (the paper's Eqs. 57-59
    // notation (1-R)^{1/N} denotes these per-task quantities).
    const double clone_fail = 1.0 - std::pow(pocd_clone(p, r), 1.0 / n);
    const double restart_fail =
        1.0 - std::pow(pocd_s_restart(p, r), 1.0 / n);
    const double resume_fail = 1.0 - std::pow(pocd_s_resume(p, r), 1.0 / n);
    EXPECT_NEAR(clone_vs_restart_ratio(p, r), clone_fail / restart_fail,
                1e-6 * clone_fail / restart_fail + 1e-12);
    EXPECT_NEAR(restart_vs_resume_ratio(p, r), restart_fail / resume_fail,
                1e-6 * restart_fail / resume_fail + 1e-12);
    EXPECT_NEAR(clone_vs_resume_ratio(p, r), clone_fail / resume_fail,
                1e-6 * clone_fail / resume_fail + 1e-12);
  }
}

class CloneVsResumeThreshold
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CloneVsResumeThreshold, PredicateConsistentWithPocdOrdering) {
  const auto [beta, tau_est, phi] = GetParam();
  auto p = default_job();
  p.beta = beta;
  p.tau_est = tau_est;
  p.tau_kill = tau_est + 40.0;
  p.phi_est = phi;
  const double threshold = clone_beats_resume_threshold(p);
  for (double r = 0.0; r <= 10.0; r += 1.0) {
    const bool predicate = clone_beats_resume(p, r);
    const bool direct = pocd_clone(p, r) > pocd_s_resume(p, r);
    if (std::abs(r - threshold) > 1e-6) {  // away from the boundary
      EXPECT_EQ(predicate, direct)
          << "beta=" << beta << " tau=" << tau_est << " phi=" << phi
          << " r=" << r << " threshold=" << threshold;
      EXPECT_EQ(r > threshold, direct);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CloneVsResumeThreshold,
    ::testing::Combine(::testing::Values(1.2, 1.5, 1.8),
                       ::testing::Values(20.0, 40.0, 60.0),
                       ::testing::Values(0.1, 0.3, 0.5)));

TEST(Theorem7, ResumeWinsForSmallR) {
  // The paper's intuition: for small r, killing the straggler and resuming
  // beats cloning from scratch.
  auto p = default_job();
  p.phi_est = 0.4;
  EXPECT_GT(pocd_s_resume(p, 0.0), pocd_clone(p, 0.0));
}

}  // namespace
}  // namespace chronos::core
