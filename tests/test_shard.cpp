// Sharded multi-process sweeps: the cell partitioner (disjoint, covering,
// balanced — property-tested over random grids), journal merge (fingerprint
// validation, overlap dedup, conflict and gap detection), journal
// compaction (atomic, idempotent, resume-identical), the headline
// guarantee — per-shard journals, one shard crash-resumed, merge to reports
// byte-identical to a single unsharded run of manifests/tiny.ini, checked
// against committed goldens — and the sweeprun CLI's error behavior.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "exp/checkpoint.h"
#include "exp/manifest.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/planner.h"

namespace chronos::exp {
namespace {

using strategies::PolicyKind;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chronos_shard_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// --- partitioner -----------------------------------------------------------

void expect_partition(std::size_t num_cells, std::size_t count) {
  std::vector<int> covered(num_cells, 0);
  std::size_t smallest = num_cells + 1;
  std::size_t largest = 0;
  std::size_t previous_end = 0;
  for (std::size_t index = 0; index < count; ++index) {
    const ShardRange range =
        shard_cell_range(num_cells, {.index = index, .count = count});
    ASSERT_LE(range.begin, range.end);
    ASSERT_LE(range.end, num_cells);
    // Contiguous in shard order: no gaps, no overlap.
    ASSERT_EQ(range.begin, previous_end)
        << num_cells << " cells / " << count << " shards, shard " << index;
    previous_end = range.end;
    for (std::size_t c = range.begin; c < range.end; ++c) {
      ++covered[c];
    }
    smallest = std::min(smallest, range.size());
    largest = std::max(largest, range.size());
  }
  ASSERT_EQ(previous_end, num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    ASSERT_EQ(covered[c], 1) << "cell " << c << " covered " << covered[c]
                             << " times";
  }
  if (num_cells > 0) {
    ASSERT_LE(largest - smallest, 1u) << "unbalanced partition";
  }
}

TEST(ShardPartition, RangesAreDisjointCoveringAndBalanced) {
  for (const std::size_t num_cells : {0u, 1u, 2u, 5u, 6u, 24u, 107u}) {
    for (std::size_t count = 1; count <= 16; ++count) {
      expect_partition(num_cells, count);
    }
  }
}

TEST(ShardPartition, RandomGridsPartitionCorrectly) {
  Rng rng(987654321);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const auto num_cells =
        static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const auto count = static_cast<std::size_t>(rng.uniform_int(1, 64));
    expect_partition(num_cells, count);
  }
}

TEST(ShardPartition, ValidatesIndexAndCount) {
  EXPECT_THROW(ShardSpec({.index = 0, .count = 0}).validate(),
               PreconditionError);
  EXPECT_THROW(ShardSpec({.index = 3, .count = 3}).validate(),
               PreconditionError);
  EXPECT_NO_THROW(ShardSpec({.index = 2, .count = 3}).validate());
  EXPECT_THROW(shard_cell_range(10, {.index = 5, .count = 2}),
               PreconditionError);
}

TEST(ShardPartition, JournalPathsFollowTheSharedDirectoryConvention) {
  EXPECT_EQ(shard_journal_path("journals", "tiny", 0, 2),
            "journals/tiny.shard-1-of-2.journal");
  EXPECT_EQ(shard_journal_path("journals/", "tiny", 1, 2),
            "journals/tiny.shard-2-of-2.journal");
  EXPECT_EQ(shard_journal_path("", "fig3", 4, 5),
            "./fig3.shard-5-of-5.journal");
  EXPECT_THROW(shard_journal_path("d", "x", 2, 2), PreconditionError);
}

// --- a small real sweep (mirrors test_checkpoint.cpp) ----------------------

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "shard";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kSResume};
  spec.axes = {{.name = "x", .values = {0.0, 1.0, 2.0}, .labels = {}}};
  spec.replications = 2;
  spec.seed = 21;
  return spec;
}

SweepHooks small_hooks() {
  SweepHooks hooks;
  hooks.setup = [](const SweepPoint& point) {
    trace::TraceConfig config;
    config.num_jobs = 5;
    config.duration_hours = 0.2;
    config.mean_tasks = 4.0;
    config.max_tasks = 10;
    config.seed = 5;
    auto jobs = generate_trace(config);
    trace::PlannerConfig planner;
    const trace::SpotPriceModel prices;
    plan_trace(jobs, point.policy, planner, prices);
    SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    return shared;
  };
  hooks.run = [](const SweepPoint& point, std::uint64_t seed,
                 const SharedCell& shared) {
    CellInstance instance;
    instance.jobs = shared.jobs;
    sim::NodeConfig node;
    node.containers = 4;
    instance.config.policy = point.policy;
    instance.config.cluster = sim::ClusterConfig::uniform(4, node);
    instance.config.seed = seed;
    return instance;
  };
  return hooks;
}

std::map<std::size_t, std::string> encoded_cells(
    const std::map<std::size_t, CellAggregate>& cells) {
  std::map<std::size_t, std::string> encoded;
  for (const auto& [cell, aggregate] : cells) {
    encoded.emplace(cell, encode_journal_entry({cell, aggregate}));
  }
  return encoded;
}

TEST(ShardedSweep, RunsOnlyTheOwnedCellRange) {
  const SweepSpec spec = small_spec();
  SweepOptions options;
  options.threads = 2;
  options.shard = {.index = 0, .count = 2};
  const SweepResult result = run_sweep(spec, small_hooks(), options);
  const ShardRange owned = shard_cell_range(spec.num_cells(), options.shard);
  ASSERT_EQ(result.cells.size(), owned.size());
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    EXPECT_EQ(result.cells[i].point.cell, owned.begin + i);
  }
}

TEST(ShardedSweep, AnyShardCountMergesToTheSingleRunResult) {
  const SweepSpec spec = small_spec();
  const SweepHooks hooks = small_hooks();
  const std::string fingerprint = spec_fingerprint(spec);
  const std::size_t cells = spec.num_cells();

  // Ground truth: one journaled, unsharded run.
  const std::string full_path = temp_path("full.journal");
  std::remove(full_path.c_str());
  SweepOptions full_options;
  full_options.threads = 2;
  full_options.journal = full_path;
  const std::string expected_csv =
      to_csv(run_sweep(spec, hooks, full_options));
  const auto expected_cells =
      encoded_cells(read_journal(full_path, fingerprint).cells);
  ASSERT_EQ(expected_cells.size(), cells);

  for (const std::size_t count : {1u, 2u, 3u, 4u, 7u}) {
    std::vector<std::string> paths;
    for (std::size_t index = 0; index < count; ++index) {
      const std::string path = temp_path(
          "part_" + std::to_string(count) + "_" + std::to_string(index));
      std::remove(path.c_str());
      SweepOptions options;
      // Vary the thread count per shard: numbers must not depend on it.
      options.threads = 1 + static_cast<int>(index % 3);
      options.shard = {.index = index, .count = count};
      options.journal = path;
      run_sweep(spec, hooks, options);
      paths.push_back(path);
    }
    const MergeStats merged = merge_journals(paths, fingerprint, cells);
    EXPECT_EQ(merged.duplicates, 0u);
    // The fused map is entry-for-entry the single run's journal...
    EXPECT_EQ(encoded_cells(merged.cells), expected_cells)
        << count << " shards";
    // ...and renders to the same report bytes.
    EXPECT_EQ(to_csv(assemble_result(spec, merged.cells)), expected_csv)
        << count << " shards";
    for (const std::string& path : paths) {
      std::remove(path.c_str());
    }
  }
  std::remove(full_path.c_str());
}

// --- merge error handling --------------------------------------------------

CellAggregate tagged_aggregate(double tag) {
  CellAggregate aggregate;
  aggregate.runs = 1;
  aggregate.jobs = 1;
  aggregate.pocd = {1, tag, 0.0, 0.0, tag, tag};
  return aggregate;
}

/// Writes a journal holding `entries` under `fingerprint`.
void write_journal(const std::string& path, const std::string& fingerprint,
                   const std::vector<JournalEntry>& entries) {
  JournalWriter writer(path, fingerprint, /*resume=*/false);
  for (const JournalEntry& entry : entries) {
    writer.append(entry);
  }
}

void expect_merge_error(const std::vector<std::string>& paths,
                        const std::string& fingerprint,
                        std::size_t num_cells, const std::string& needle) {
  try {
    merge_journals(paths, fingerprint, num_cells);
    FAIL() << "merge accepted; expected error containing '" << needle << "'";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << error.what();
  }
}

TEST(JournalMerge, DetectsMissingForeignConflictGapAndOverflow) {
  const std::string a = temp_path("merge_a");
  const std::string b = temp_path("merge_b");

  // Missing journal.
  std::remove(a.c_str());
  expect_merge_error({a}, "fp1", 2, "missing or unreadable");

  // Foreign fingerprint.
  write_journal(a, "other", {{0, tagged_aggregate(1.0)}});
  expect_merge_error({a}, "fp1", 1, "fingerprint mismatch");

  // Conflict: same cell, different aggregate — a hard error naming both.
  write_journal(a, "fp1", {{0, tagged_aggregate(1.0)}});
  write_journal(b, "fp1", {{0, tagged_aggregate(2.0)}, {1, tagged_aggregate(3.0)}});
  expect_merge_error({a, b}, "fp1", 2, "different aggregates");

  // Gap: nobody finished cell 2.
  write_journal(b, "fp1", {{1, tagged_aggregate(3.0)}});
  expect_merge_error({a, b}, "fp1", 3, "missing cell(s): 2");

  // An entry beyond the grid: the journal is not this sweep's.
  write_journal(b, "fp1", {{5, tagged_aggregate(3.0)}});
  expect_merge_error({a, b}, "fp1", 2, "beyond the 2-cell grid");

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(JournalMerge, DeduplicatesIdenticalOverlap) {
  // Two shards that (say, after a mis-configured overlap or a re-run with
  // count 1) both finished cell 0 with identical bytes: merge succeeds and
  // reports the duplicate instead of failing.
  const std::string a = temp_path("dup_a");
  const std::string b = temp_path("dup_b");
  write_journal(a, "fp1",
                {{0, tagged_aggregate(1.0)}, {1, tagged_aggregate(2.0)}});
  write_journal(b, "fp1",
                {{0, tagged_aggregate(1.0)}, {2, tagged_aggregate(3.0)}});
  const MergeStats merged = merge_journals({a, b}, "fp1", 3);
  EXPECT_EQ(merged.duplicates, 1u);
  EXPECT_EQ(merged.cells.size(), 3u);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

// --- compaction ------------------------------------------------------------

TEST(JournalCompaction, RewritesDedupedSortedAndDropsTornTail) {
  const std::string path = temp_path("compact.journal");
  // Entries out of order, cell 1 superseded once, plus a torn tail.
  write_journal(path, "fp1",
                {{2, tagged_aggregate(4.0)},
                 {1, tagged_aggregate(1.0)},
                 {0, tagged_aggregate(2.0)},
                 {1, tagged_aggregate(3.0)}});
  const std::string torn =
      encode_journal_entry({3, tagged_aggregate(5.0)});
  spill(path, slurp(path) + torn.substr(0, torn.size() / 2));

  const auto before = read_journal(path, "fp1");
  const CompactStats stats = compact_journal(path, "fp1");
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_LT(stats.bytes_after, stats.bytes_before);
  EXPECT_EQ(stats.bytes_after, slurp(path).size());

  // Same logical contents (cell 1 keeps its last value), tidied file: the
  // header plus one line per cell in index order.
  const auto after = read_journal(path, "fp1");
  EXPECT_TRUE(after.compatible);
  EXPECT_EQ(encoded_cells(after.cells), encoded_cells(before.cells));
  EXPECT_EQ(after.valid_bytes, stats.bytes_after);
  std::string expected = "chronos-journal v1 fp=fp1\n";
  expected += encode_journal_entry({0, tagged_aggregate(2.0)}) + "\n";
  expected += encode_journal_entry({1, tagged_aggregate(3.0)}) + "\n";
  expected += encode_journal_entry({2, tagged_aggregate(4.0)}) + "\n";
  EXPECT_EQ(slurp(path), expected);

  // Idempotent: compacting a compacted journal changes nothing.
  const CompactStats again = compact_journal(path, "fp1");
  EXPECT_EQ(again.bytes_before, again.bytes_after);
  EXPECT_EQ(slurp(path), expected);

  // No temp file left behind.
  std::FILE* leftover = std::fopen((path + ".compact.tmp").c_str(), "rb");
  EXPECT_EQ(leftover, nullptr);
  if (leftover != nullptr) std::fclose(leftover);
  std::remove(path.c_str());
}

TEST(JournalCompaction, RejectsMissingAndForeignJournals) {
  const std::string path = temp_path("compact_missing");
  std::remove(path.c_str());
  EXPECT_THROW(compact_journal(path, "fp1"), PreconditionError);
  spill(path, "chronos-journal v1 fp=other\n");
  EXPECT_THROW(compact_journal(path, "fp1"), PreconditionError);
  std::remove(path.c_str());
}

TEST(JournalCompaction, StaleTempFromACrashedCompactionIsConsumed) {
  // A crash between writing .compact.tmp and renaming it leaves the temp
  // behind. The next compaction must overwrite it and still end with
  // exactly one file: the compacted journal.
  const std::string path = temp_path("compact_stale.journal");
  const std::string temp = path + ".compact.tmp";
  write_journal(path, "fp1",
                {{1, tagged_aggregate(1.0)}, {0, tagged_aggregate(2.0)}});
  spill(temp, "half-written garbage from a crashed compaction");

  const CompactStats stats = compact_journal(path, "fp1");
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_TRUE(read_journal(path, "fp1").compatible);
  std::FILE* leftover = std::fopen(temp.c_str(), "rb");
  EXPECT_EQ(leftover, nullptr) << "stale temp survived compaction";
  if (leftover != nullptr) std::fclose(leftover);
  std::remove(path.c_str());
}

TEST(JournalCompaction, FailedCompactionStrandsNoTempAndKeepsTheJournal) {
  // Regression for a temp-file leak: every failure path must unlink the
  // temp and leave the original journal byte-identical.
  const std::string path = temp_path("compact_fail.journal");
  const std::string temp = path + ".compact.tmp";
  write_journal(path, "fp1", {{0, tagged_aggregate(1.0)}});
  const std::string original = slurp(path);

  // Fingerprint mismatch: fails before any temp exists.
  EXPECT_THROW(compact_journal(path, "fp2"), PreconditionError);
  std::FILE* leftover = std::fopen(temp.c_str(), "rb");
  EXPECT_EQ(leftover, nullptr);
  if (leftover != nullptr) std::fclose(leftover);
  EXPECT_EQ(slurp(path), original);

  // Unwritable temp (the path is occupied by a directory): the write
  // fails mid-compaction, the journal must be untouched.
  ASSERT_TRUE(std::filesystem::create_directory(temp));
  EXPECT_THROW(compact_journal(path, "fp1"), PreconditionError);
  EXPECT_EQ(slurp(path), original);
  EXPECT_TRUE(read_journal(path, "fp1").compatible);
  std::filesystem::remove(temp);
  std::remove(path.c_str());
}

TEST(JournalCompaction, CompactedJournalResumesIdentically) {
  const SweepSpec spec = small_spec();
  const SweepHooks hooks = small_hooks();
  const std::string expected =
      to_csv(run_sweep(spec, hooks, {.threads = 1}));

  const std::string path = temp_path("compact_resume.journal");
  std::remove(path.c_str());
  SweepOptions options;
  options.threads = 2;
  options.journal = path;
  run_sweep(spec, hooks, options);

  // Tear the last entry (a crash), then compact: the torn tail is dropped
  // and the file is canonical. Resume must reproduce the same bytes as the
  // uncompacted resume would have.
  const std::string content = slurp(path);
  spill(path, content.substr(0, content.size() - 25));
  compact_journal(path, spec_fingerprint(spec));
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, options)), expected);
  std::remove(path.c_str());
}

// --- the tiny.ini golden equivalence ---------------------------------------

const std::string kGoldenDir = std::string(CHRONOS_TEST_DIR) + "/golden/";
const std::string kTinyManifest =
    std::string(CHRONOS_MANIFEST_DIR) + "/tiny.ini";

std::string read_golden(const std::string& name) {
  std::ifstream in(kGoldenDir + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << kGoldenDir + name;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void check_or_regold(const std::string& name, const std::string& actual) {
  if (std::getenv("CHRONOS_REGOLD") != nullptr) {
    write_file(kGoldenDir + name, actual);
    return;
  }
  EXPECT_EQ(actual, read_golden(name)) << "golden mismatch: " << name;
}

/// Runs every shard of manifests/tiny.ini into per-shard journals and
/// merges them. When `kill_shard` is set, that shard's journal is torn
/// mid-entry after its run and the shard re-run, exactly like a crashed
/// cluster machine that was restarted.
SweepResult run_tiny_sharded(const Manifest& manifest, std::size_t count,
                             std::optional<std::size_t> kill_shard) {
  const SweepHooks hooks = make_hooks(manifest);
  const std::string salt = manifest_journal_salt(manifest);
  const std::string fingerprint = spec_fingerprint(manifest.spec, salt);
  std::vector<std::string> paths;
  for (std::size_t index = 0; index < count; ++index) {
    const std::string path = shard_journal_path(
        ::testing::TempDir(), manifest.spec.name, index, count);
    std::remove(path.c_str());
    SweepOptions options;
    options.threads = 1 + static_cast<int>(index % 4);
    options.shard = {.index = index, .count = count};
    options.journal = path;
    options.journal_salt = salt;
    run_sweep(manifest.spec, hooks, options);

    if (kill_shard.has_value() && *kill_shard == index) {
      const std::string content = slurp(path);
      EXPECT_GT(content.size(), 40u);
      spill(path, content.substr(0, content.size() - 40));
      options.threads = 2;  // restart on a "different machine"
      run_sweep(manifest.spec, hooks, options);
    }
    paths.push_back(path);
  }
  const MergeStats merged =
      merge_journals(paths, fingerprint, manifest.spec.num_cells());
  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }
  return assemble_result(manifest.spec, merged.cells);
}

TEST(GoldenShardEquivalence, TinyManifestShardsMergeToTheCommittedBytes) {
  Manifest manifest;
  try {
    manifest = load_manifest(kTinyManifest);
  } catch (const std::exception& error) {
    FAIL() << error.what();
  }

  // Ground truth: one unsharded in-process run, pinned by committed
  // goldens so a regression in any layer (engine, journal, reports) shows
  // up as a byte diff.
  const SweepResult full =
      run_sweep(manifest.spec, make_hooks(manifest), {.threads = 4});
  const std::string csv = to_csv(full);
  const std::string json = to_json(full);
  const std::string table = to_table(full).str();
  check_or_regold("tiny_sweep.csv", csv);
  check_or_regold("tiny_sweep.json", json);
  check_or_regold("tiny_sweep.txt", table);

  // 2 shards, shard 0 killed mid-run and resumed; 5 shards clean.
  for (const auto& [count, kill] :
       std::vector<std::pair<std::size_t, std::optional<std::size_t>>>{
           {2, std::size_t{0}}, {5, std::nullopt}}) {
    const SweepResult merged = run_tiny_sharded(manifest, count, kill);
    EXPECT_EQ(to_csv(merged), csv) << count << " shards";
    EXPECT_EQ(to_json(merged), json) << count << " shards";
    EXPECT_EQ(to_table(merged).str(), table) << count << " shards";
  }
}

// --- sweeprun CLI error behavior -------------------------------------------

struct CommandResult {
  int status = -1;
  std::string output;  ///< stdout + stderr
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int raw = pclose(pipe);
  result.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return result;
}

const std::string kSweeprun = CHRONOS_SWEEPRUN_BIN;

TEST(SweeprunCli, MalformedManifestExitsNonzeroWithFileAndLine) {
  const std::string path = temp_path("bad_manifest.ini");
  spill(path, "[sweep]\npolicies = clone\n\nnot a key value line\n");
  const CommandResult result = run_command(kSweeprun + " " + path);
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find(path), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("manifest line 4"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(SweeprunCli, MissingManifestFileExitsNonzero) {
  const std::string path = temp_path("no_such.ini");
  std::remove(path.c_str());
  const CommandResult result = run_command(kSweeprun + " " + path);
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("cannot open manifest"), std::string::npos)
      << result.output;
}

TEST(SweeprunCli, UnknownFlagsAndBadShardSpecsExitWithUsage) {
  const std::string manifest = temp_path("ok_manifest.ini");
  spill(manifest, "[sweep]\npolicies = clone\n");

  CommandResult result =
      run_command(kSweeprun + " " + manifest + " --frobnicate");
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find("sweeprun: unknown flag '--frobnicate'"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("usage:"), std::string::npos)
      << result.output;

  for (const char* bad : {"0/3", "4/3", "x/3", "2", "2/"}) {
    result = run_command(kSweeprun + " " + manifest + " --shard " +
                         std::string(bad));
    EXPECT_EQ(result.status, 2) << bad << ": " << result.output;
    EXPECT_NE(result.output.find("sweeprun: --shard wants I/N"),
              std::string::npos)
        << result.output;
  }

  // Flag diagnostics consistently carry the tool-name prefix so cluster
  // logs attribute them.
  result = run_command(kSweeprun + " " + manifest + " --journal");
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find("sweeprun: missing value after --journal"),
            std::string::npos)
      << result.output;

  result = run_command(kSweeprun + " " + manifest + " --merge --compact");
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find(
                "sweeprun: --merge and --compact are mutually exclusive"),
            std::string::npos)
      << result.output;

  // No manifest at all.
  result = run_command(kSweeprun);
  EXPECT_EQ(result.status, 2) << result.output;

  // --merge with no shard count anywhere.
  result = run_command(kSweeprun + " " + manifest + " --merge");
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find("--merge needs a shard count"),
            std::string::npos)
      << result.output;

  // --compact with no journal anywhere.
  result = run_command(kSweeprun + " " + manifest + " --compact");
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find("--compact needs a journal"),
            std::string::npos)
      << result.output;

  std::remove(manifest.c_str());
}

TEST(SweeprunCli, MergeFailsCleanlyOnMissingShardJournals) {
  const std::string manifest = temp_path("merge_manifest.ini");
  spill(manifest,
        "[sweep]\nname = lost\npolicies = clone\n[shard]\ncount = 2\ndir = " +
            ::testing::TempDir() + "\n");
  const CommandResult result =
      run_command(kSweeprun + " " + manifest + " --merge");
  EXPECT_EQ(result.status, 1) << result.output;
  EXPECT_NE(result.output.find("missing or unreadable"), std::string::npos)
      << result.output;
  std::remove(manifest.c_str());
}

}  // namespace
}  // namespace chronos::exp
