#include "common/log.h"

#include <gtest/gtest.h>

namespace chronos::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_level(Level::kWarn);
  EXPECT_EQ(level(), Level::kWarn);
  set_level(Level::kDebug);
  EXPECT_EQ(level(), Level::kDebug);
}

TEST(Log, OffSuppressesEverything) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  // Nothing observable to assert beyond "does not crash"; the level gate
  // is the contract.
  CHRONOS_LOG(kError) << "suppressed";
  write(Level::kError, "also suppressed");
  SUCCEED();
}

TEST(Log, MacroShortCircuitsBelowLevel) {
  LogLevelGuard guard;
  set_level(Level::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  CHRONOS_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // argument not evaluated below the level
  set_level(Level::kOff);
  CHRONOS_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesAtOrAboveLevel) {
  LogLevelGuard guard;
  set_level(Level::kOff);  // gate the actual write
  // Re-enable to Debug but write to a level >= current: evaluated.
  set_level(Level::kDebug);
  int evaluations = 0;
  // Temporarily silence output by restoring Off right after; the statement
  // below must still evaluate its stream arguments.
  const auto counted = [&] {
    ++evaluations;
    return 42;
  };
  set_level(Level::kDebug);
  CHRONOS_LOG(kDebug) << counted();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace chronos::log
