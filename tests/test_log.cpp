#include "common/log.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

namespace chronos::log {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(level()) {}
  ~LogLevelGuard() { set_level(saved_); }

 private:
  Level saved_;
};

class LogPrefixGuard {
 public:
  LogPrefixGuard() : saved_(prefix()) {}
  ~LogPrefixGuard() { set_prefix(saved_); }

 private:
  bool saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_level(Level::kWarn);
  EXPECT_EQ(level(), Level::kWarn);
  set_level(Level::kDebug);
  EXPECT_EQ(level(), Level::kDebug);
}

TEST(Log, OffSuppressesEverything) {
  LogLevelGuard guard;
  set_level(Level::kOff);
  // Nothing observable to assert beyond "does not crash"; the level gate
  // is the contract.
  CHRONOS_LOG(kError) << "suppressed";
  write(Level::kError, "also suppressed");
  SUCCEED();
}

TEST(Log, MacroShortCircuitsBelowLevel) {
  LogLevelGuard guard;
  set_level(Level::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  CHRONOS_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // argument not evaluated below the level
  set_level(Level::kOff);
  CHRONOS_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(Log, MacroEvaluatesAtOrAboveLevel) {
  LogLevelGuard guard;
  set_level(Level::kOff);  // gate the actual write
  // Re-enable to Debug but write to a level >= current: evaluated.
  set_level(Level::kDebug);
  int evaluations = 0;
  // Temporarily silence output by restoring Off right after; the statement
  // below must still evaluate its stream arguments.
  const auto counted = [&] {
    ++evaluations;
    return 42;
  };
  set_level(Level::kDebug);
  CHRONOS_LOG(kDebug) << counted();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, PrefixIsOffByDefaultAndLinesKeepTheBareFormat) {
  LogLevelGuard level_guard;
  LogPrefixGuard prefix_guard;
  set_level(Level::kInfo);
  set_prefix(false);
  EXPECT_FALSE(prefix());
  ::testing::internal::CaptureStderr();
  write(Level::kInfo, "hello");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured, "[INFO] hello\n");
}

TEST(Log, PrefixAddsIso8601TimestampAndThreadId) {
  LogLevelGuard level_guard;
  LogPrefixGuard prefix_guard;
  set_level(Level::kInfo);
  set_prefix(true);
  EXPECT_TRUE(prefix());
  ::testing::internal::CaptureStderr();
  write(Level::kWarn, "spaced message");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // [2026-08-08T12:34:56.789Z t1] [WARN] spaced message
  const std::regex line_re(
      "^\\[\\d{4}-\\d{2}-\\d{2}T\\d{2}:\\d{2}:\\d{2}\\.\\d{3}Z t\\d+\\] "
      "\\[WARN\\] spaced message\n$");
  EXPECT_TRUE(std::regex_match(captured, line_re)) << captured;
}

TEST(Log, PrefixThreadIdsAreStablePerThread) {
  LogLevelGuard level_guard;
  LogPrefixGuard prefix_guard;
  set_level(Level::kInfo);
  set_prefix(true);
  ::testing::internal::CaptureStderr();
  write(Level::kInfo, "first");
  write(Level::kInfo, "second");
  const std::string captured = ::testing::internal::GetCapturedStderr();
  const std::regex tid_re("Z (t\\d+)\\]");
  std::vector<std::string> tids;
  for (auto it = std::sregex_iterator(captured.begin(), captured.end(),
                                      tid_re);
       it != std::sregex_iterator(); ++it) {
    tids.push_back((*it)[1].str());
  }
  ASSERT_EQ(tids.size(), 2u) << captured;
  EXPECT_EQ(tids[0], tids[1]) << captured;
}

}  // namespace
}  // namespace chronos::log
