// Shared helpers for the Chronos test suite.
#pragma once

#include "core/model.h"

namespace chronos::testing {

/// A representative deadline-sensitive job (matches the §VII-A testbed
/// scale: 10 tasks, 100 s deadline, detection at 40 s, kill at 80 s).
inline core::JobParams default_job() {
  core::JobParams params;
  params.num_tasks = 10;
  params.deadline = 100.0;
  params.t_min = 30.0;
  params.beta = 1.5;
  params.tau_est = 40.0;
  params.tau_kill = 80.0;
  params.phi_est = 0.25;
  return params;
}

inline core::Economics default_econ() {
  core::Economics econ;
  econ.price = 0.4;
  econ.theta = 1e-4;
  econ.r_min = 0.0;
  return econ;
}

}  // namespace chronos::testing
