// Checkpoint journal: entry encode/decode round-trips, checksum and
// torn-tail handling, spec fingerprints, and the headline crash-resume
// guarantee — truncate the journal mid-cell, restart at a different thread
// count, and the final CSV is byte-identical to an uninterrupted
// single-threaded run.
#include "exp/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/planner.h"

namespace chronos::exp {
namespace {

using strategies::PolicyKind;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chronos_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

CellAggregate sample_aggregate() {
  CellAggregate aggregate;
  aggregate.runs = 3;
  aggregate.jobs = 18;
  aggregate.attempts_launched = 70;
  aggregate.attempts_killed = 12;
  aggregate.attempts_failed = 1;
  aggregate.events_executed = 12345;
  aggregate.pocd = {3, 0.75, 0.1, 0.2484, 0.6, 0.9};
  aggregate.cost = {3, 123.456, 7.5, 18.63, 110.0, 130.5};
  aggregate.machine_time = {3, 0.1 + 0.2, 0.0, 0.0, 0.3, 0.3};
  aggregate.mean_r = {3, 2.5, 0.5, 1.242, 2.0, 3.0};
  aggregate.utility = {2, -std::numeric_limits<double>::infinity(), 0.0,
                       0.0, -std::numeric_limits<double>::infinity(), -0.5};
  return aggregate;
}

void expect_summary_eq(const MetricSummary& a, const MetricSummary& b) {
  EXPECT_EQ(a.count, b.count);
  // Bit-exact comparison: the journal must round-trip doubles exactly.
  EXPECT_TRUE(std::memcmp(&a.mean, &b.mean, sizeof(double)) == 0);
  EXPECT_TRUE(std::memcmp(&a.stddev, &b.stddev, sizeof(double)) == 0);
  EXPECT_TRUE(std::memcmp(&a.ci95, &b.ci95, sizeof(double)) == 0);
  EXPECT_TRUE(std::memcmp(&a.min, &b.min, sizeof(double)) == 0);
  EXPECT_TRUE(std::memcmp(&a.max, &b.max, sizeof(double)) == 0);
}

TEST(Journal, EntryRoundTripsBitExactly) {
  JournalEntry entry;
  entry.cell = 42;
  entry.aggregate = sample_aggregate();
  const std::string line = encode_journal_entry(entry);
  const auto decoded = decode_journal_entry(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->cell, 42u);
  const CellAggregate& a = decoded->aggregate;
  const CellAggregate& b = entry.aggregate;
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.attempts_launched, b.attempts_launched);
  EXPECT_EQ(a.attempts_killed, b.attempts_killed);
  EXPECT_EQ(a.attempts_failed, b.attempts_failed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  expect_summary_eq(a.pocd, b.pocd);
  expect_summary_eq(a.cost, b.cost);
  expect_summary_eq(a.machine_time, b.machine_time);
  expect_summary_eq(a.mean_r, b.mean_r);
  expect_summary_eq(a.utility, b.utility);
}

TEST(Journal, DecodeRejectsCorruption) {
  JournalEntry entry;
  entry.cell = 7;
  entry.aggregate = sample_aggregate();
  const std::string line = encode_journal_entry(entry);

  EXPECT_FALSE(decode_journal_entry("").has_value());
  EXPECT_FALSE(decode_journal_entry("garbage").has_value());
  // Truncated anywhere — a torn write — must not decode.
  for (std::size_t cut : {line.size() - 1, line.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(decode_journal_entry(line.substr(0, cut)).has_value());
  }
  // A flipped payload byte fails the checksum.
  std::string flipped = line;
  flipped[6] = flipped[6] == '1' ? '2' : '1';
  EXPECT_FALSE(decode_journal_entry(flipped).has_value());
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "ckpt";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kSResume};
  spec.axes = {{.name = "x", .values = {0.0, 1.0}, .labels = {}}};
  spec.replications = 2;
  spec.seed = 21;
  return spec;
}

TEST(Journal, FingerprintTracksEverythingThatChangesNumbers) {
  const SweepSpec base = small_spec();
  const std::string fp = spec_fingerprint(base);
  EXPECT_EQ(fp, spec_fingerprint(base));  // stable

  SweepSpec changed = base;
  changed.seed = 22;
  EXPECT_NE(fp, spec_fingerprint(changed));

  changed = base;
  changed.replications = 3;
  EXPECT_NE(fp, spec_fingerprint(changed));

  changed = base;
  changed.axes[0].values[1] = 1.0000000001;
  EXPECT_NE(fp, spec_fingerprint(changed));

  changed = base;
  changed.policies.push_back(PolicyKind::kClone);
  EXPECT_NE(fp, spec_fingerprint(changed));

  changed = base;
  changed.adaptive.target_ci95 = 0.01;
  changed.adaptive.max_replications = 8;
  EXPECT_NE(fp, spec_fingerprint(changed));
}

TEST(Journal, ReadHandlesMissingAndForeignFiles) {
  const auto missing = read_journal(temp_path("no_such_journal"), "abc");
  EXPECT_FALSE(missing.found);
  EXPECT_FALSE(missing.compatible);

  const std::string path = temp_path("foreign_journal");
  spill(path, "chronos-journal v1 fp=deadbeef\n");
  const auto foreign = read_journal(path, "abc");
  EXPECT_TRUE(foreign.found);
  EXPECT_FALSE(foreign.compatible);
  std::remove(path.c_str());
}

TEST(Journal, ReadStopsAtTornTail) {
  const std::string path = temp_path("torn_journal");
  JournalEntry first;
  first.cell = 0;
  first.aggregate = sample_aggregate();
  JournalEntry second = first;
  second.cell = 1;
  {
    JournalWriter writer(path, "fp123", /*resume=*/false);
    writer.append(first);
    writer.append(second);
  }
  std::string content = slurp(path);
  // Tear the last line in half, as a crash mid-write would.
  spill(path, content.substr(0, content.size() - 20));

  const auto contents = read_journal(path, "fp123");
  EXPECT_TRUE(contents.compatible);
  ASSERT_EQ(contents.cells.size(), 1u);
  EXPECT_EQ(contents.cells.count(0), 1u);
  std::remove(path.c_str());
}

// --- crash-resume on a real sweep ------------------------------------------

/// Tiny but real experiment (mirrors test_sweep.cpp); setup counts its
/// invocations so restarts can prove they skipped journaled cells.
SharedCell make_tiny_shared(const SweepPoint& point) {
  trace::TraceConfig config;
  config.num_jobs = 5;
  config.duration_hours = 0.2;
  config.mean_tasks = 4.0;
  config.max_tasks = 10;
  config.seed = 5;
  auto jobs = generate_trace(config);
  trace::PlannerConfig planner;
  const trace::SpotPriceModel prices;
  plan_trace(jobs, point.policy, planner, prices);
  SharedCell shared;
  shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
      std::move(jobs));
  return shared;
}

SweepHooks counting_hooks(std::atomic<int>& setups) {
  SweepHooks hooks;
  hooks.setup = [&setups](const SweepPoint& point) {
    setups.fetch_add(1);
    return make_tiny_shared(point);
  };
  hooks.run = [](const SweepPoint& point, std::uint64_t seed,
                 const SharedCell& shared) {
    CellInstance instance;
    instance.jobs = shared.jobs;
    sim::NodeConfig node;
    node.containers = 4;
    instance.config.policy = point.policy;
    instance.config.cluster = sim::ClusterConfig::uniform(4, node);
    instance.config.seed = seed;
    return instance;
  };
  return hooks;
}

TEST(CrashResume, TruncatedJournalRestartIsByteIdentical) {
  const SweepSpec spec = small_spec();
  std::atomic<int> setups{0};
  const SweepHooks hooks = counting_hooks(setups);

  // Ground truth: uninterrupted, single-threaded, no journal.
  const std::string expected = to_csv(run_sweep(spec, hooks, {.threads = 1}));

  // A journaled multi-threaded run produces the same bytes.
  const std::string path = temp_path("crash_resume_journal");
  std::remove(path.c_str());
  SweepOptions journaled;
  journaled.threads = 4;
  journaled.journal = path;
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, journaled)), expected);

  // Simulate a crash mid-cell: keep the header and the first two entries,
  // then tear the third entry's line in half.
  const std::string content = slurp(path);
  std::size_t cut = 0;
  for (int lines = 0; lines < 3; ++cut) {
    lines += content[cut] == '\n' ? 1 : 0;
  }
  const std::size_t third_end = content.find('\n', cut);
  ASSERT_NE(third_end, std::string::npos);
  spill(path, content.substr(0, cut + (third_end - cut) / 2));

  // Restart at yet another thread count: only the lost cells re-run...
  setups.store(0);
  SweepOptions restarted;
  restarted.threads = 3;
  restarted.journal = path;
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, restarted)), expected);
  EXPECT_EQ(setups.load(), 2);  // 4 cells, 2 journaled, 2 recomputed

  // ...and a second restart replays everything from the journal.
  setups.store(0);
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, restarted)), expected);
  EXPECT_EQ(setups.load(), 0);
  std::remove(path.c_str());
}

TEST(CrashResume, IncompatibleJournalIsDiscardedAndRewritten) {
  const SweepSpec spec = small_spec();
  std::atomic<int> setups{0};
  const SweepHooks hooks = counting_hooks(setups);
  const std::string expected = to_csv(run_sweep(spec, hooks, {.threads = 1}));

  const std::string path = temp_path("incompatible_journal");
  spill(path, "chronos-journal v1 fp=0000000000000000\ncell 0 junk\n");
  SweepOptions options;
  options.threads = 2;
  options.journal = path;
  setups.store(0);
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, options)), expected);
  EXPECT_EQ(setups.load(), 4);  // nothing was reusable

  // The rewritten journal now carries the right fingerprint.
  const auto contents = read_journal(path, spec_fingerprint(spec));
  EXPECT_TRUE(contents.compatible);
  EXPECT_EQ(contents.cells.size(), 4u);
  std::remove(path.c_str());
}

TEST(CrashResume, ChangedJournalSaltInvalidatesTheJournal) {
  // The salt carries cell-factory state the spec cannot see (a manifest's
  // trace template, say). Changing it must discard the journal — resuming
  // another configuration's results would be silent corruption.
  const SweepSpec spec = small_spec();
  EXPECT_NE(spec_fingerprint(spec, "trace-v1"),
            spec_fingerprint(spec, "trace-v2"));
  EXPECT_EQ(spec_fingerprint(spec, ""), spec_fingerprint(spec));

  std::atomic<int> setups{0};
  const SweepHooks hooks = counting_hooks(setups);
  const std::string path = temp_path("salted_journal");
  std::remove(path.c_str());

  SweepOptions options;
  options.threads = 2;
  options.journal = path;
  options.journal_salt = "trace-v1";
  run_sweep(spec, hooks, options);
  EXPECT_EQ(setups.load(), 4);

  setups.store(0);
  run_sweep(spec, hooks, options);  // same salt: full resume
  EXPECT_EQ(setups.load(), 0);

  setups.store(0);
  options.journal_salt = "trace-v2";  // edited templates: start over
  run_sweep(spec, hooks, options);
  EXPECT_EQ(setups.load(), 4);
  std::remove(path.c_str());
}

TEST(CrashResume, AdaptiveSweepRestartIsByteIdentical) {
  SweepSpec spec = small_spec();
  spec.adaptive.metric = "machine_time";
  spec.adaptive.target_ci95 = 1e-9;  // unreachable: every cell hits the cap
  spec.adaptive.batch = 2;
  spec.adaptive.max_replications = 6;

  std::atomic<int> setups{0};
  const SweepHooks hooks = counting_hooks(setups);
  const std::string expected = to_csv(run_sweep(spec, hooks, {.threads = 1}));

  const std::string path = temp_path("adaptive_journal");
  std::remove(path.c_str());
  SweepOptions journaled;
  journaled.threads = 4;
  journaled.journal = path;
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, journaled)), expected);

  // Drop the last full entry and restart: same bytes.
  const std::string content = slurp(path);
  const std::size_t cut = content.rfind(
      '\n', content.size() - 2);  // start of the final entry line
  spill(path, content.substr(0, cut + 1));
  EXPECT_EQ(to_csv(run_sweep(spec, hooks, journaled)), expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chronos::exp
