#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace chronos::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().fn();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleEventSkipsIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const auto id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  const auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, PopReportsScheduledTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_EQ(q.pop().time, 4.5);
}

TEST(EventQueue, RejectsInvalidSchedules) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule(1.0, std::function<void()>{}), PreconditionError);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), PreconditionError);
  EXPECT_THROW(q.next_time(), PreconditionError);
}

// --- slot-arena semantics ---------------------------------------------------

TEST(EventQueue, StaleIdCannotCancelSlotReuse) {
  // After an event fires, its arena slot is recycled. The old handle's
  // generation tag no longer matches, so it must not cancel the newcomer.
  EventQueue q;
  const auto old_id = q.schedule(1.0, [] {});
  q.pop().fn();
  bool fired = false;
  q.schedule(2.0, [&] { fired = true; });  // likely reuses the slot
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleIdAfterCancelCannotCancelSlotReuse) {
  EventQueue q;
  const auto old_id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(old_id));
  q.schedule(2.0, [] {});
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ReserveDoesNotDisturbSemantics) {
  EventQueue q;
  q.reserve(64);
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  const auto id = q.schedule(1.5, [&] { order.push_back(-1); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.cancel(id);
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ChurnReusesSlotsWithCorrectOrdering) {
  // Heavy schedule/cancel/fire churn across recycled slots: (time, seq)
  // determinism and cancellation must survive arbitrary slot reuse.
  EventQueue q;
  std::vector<int> fired;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i) {
      const int tag = round * 100 + i;
      ids.push_back(q.schedule(static_cast<double>(i % 7),
                               [&fired, tag] { fired.push_back(tag); }));
    }
    for (int i = 0; i < 20; i += 3) {
      q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    double last = -1.0;
    while (!q.empty()) {
      const auto f = q.pop();
      EXPECT_GE(f.time, last);
      last = f.time;
      f.fn();
    }
  }
  // 50 rounds x 20 events, minus 7 cancellations per round.
  EXPECT_EQ(fired.size(), 50u * 13u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  double last = -1.0;
  for (int i = 0; i < 5000; ++i) {
    q.schedule(static_cast<double>((i * 7919) % 1000), [] {});
  }
  while (!q.empty()) {
    const auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace chronos::sim
