#!/usr/bin/env python3
"""Self-test for tools/benchjson.py (stdlib only; registered with ctest).

Covers the cross-binary duplicate-name guard (pooling samples from two
binaries under one name used to silently corrupt the recorded median), the
`diff --max-regress` gate, and baselining a fresh run against a committed
diff report.
"""

import contextlib
import importlib.util
import io
import json
import os
import pathlib
import stat
import sys
import tempfile
import unittest

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load_benchjson():
    spec = importlib.util.spec_from_file_location(
        "benchjson", _TOOLS / "benchjson.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


benchjson = _load_benchjson()


def make_fake_binary(directory, filename, benchmarks):
    """Writes an executable script that prints Google-Benchmark JSON.

    `benchmarks` is a list of (name, run_type, real_time_ns) tuples.
    """
    doc = {
        "context": {"num_cpus": 2, "mhz_per_cpu": 1000,
                    "library_build_type": "release"},
        "benchmarks": [
            {"name": name, "run_type": run_type, "real_time": real_time,
             "time_unit": "ns"}
            for name, run_type, real_time in benchmarks
        ],
    }
    path = os.path.join(directory, filename)
    with open(path, "w") as fh:
        fh.write(f"#!{sys.executable}\nimport json\n"
                 f"print(json.dumps({doc!r}))\n")
    os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR)
    return path


def write_run_file(path, medians):
    doc = {
        "schema": "chronos-benchjson-run-v1",
        "date": "2026-07-30T00:00:00+00:00",
        "host": "test",
        "repetitions": 3,
        "benchmarks": {
            name: {"median_real_time_ns": ns, "repetitions": 3}
            for name, ns in medians.items()
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh)


class RunCommandTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def test_records_median_and_skips_aggregates(self):
        binary = make_fake_binary(
            self.dir.name, "bench_a",
            [("BM_X", "iteration", 10.0), ("BM_X", "iteration", 30.0),
             ("BM_X", "iteration", 20.0), ("BM_X", "aggregate", 999.0)])
        out = self.path("out.json")
        rc = benchjson.main(
            ["run", "--out", out, "--repetitions", "3", binary])
        self.assertEqual(rc, 0)
        with open(out) as fh:
            doc = json.load(fh)
        self.assertEqual(doc["benchmarks"]["BM_X"]["median_real_time_ns"],
                         20.0)
        self.assertEqual(doc["benchmarks"]["BM_X"]["repetitions"], 3)

    def test_rejects_cross_binary_duplicate(self):
        first = make_fake_binary(self.dir.name, "bench_a",
                                 [("BM_Dup", "iteration", 10.0)])
        second = make_fake_binary(self.dir.name, "bench_b",
                                  [("BM_Dup", "iteration", 50.0)])
        with self.assertRaises(SystemExit) as ctx:
            benchjson.main(["run", "--out", self.path("out.json"),
                            first, second])
        message = str(ctx.exception)
        self.assertIn("BM_Dup", message)
        self.assertIn(first, message)
        self.assertIn(second, message)
        self.assertFalse(os.path.exists(self.path("out.json")))

    def test_distinct_names_across_binaries_are_fine(self):
        first = make_fake_binary(self.dir.name, "bench_a",
                                 [("BM_A", "iteration", 10.0)])
        second = make_fake_binary(self.dir.name, "bench_b",
                                  [("BM_B", "iteration", 50.0)])
        out = self.path("out.json")
        rc = benchjson.main(["run", "--out", out, first, second])
        self.assertEqual(rc, 0)
        with open(out) as fh:
            doc = json.load(fh)
        self.assertEqual(sorted(doc["benchmarks"]), ["BM_A", "BM_B"])


class DiffCommandTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def diff(self, before, after, *extra):
        return benchjson.main(
            ["diff", "--before", before, "--after", after,
             "--out", self.path("report.json"), *extra])

    def test_gate_passes_within_threshold(self):
        write_run_file(self.path("before.json"), {"BM_A": 100.0})
        write_run_file(self.path("after.json"), {"BM_A": 105.0})
        rc = self.diff(self.path("before.json"), self.path("after.json"),
                       "--max-regress", "10")
        self.assertEqual(rc, 0)

    def test_gate_fails_past_threshold(self):
        write_run_file(self.path("before.json"),
                       {"BM_A": 100.0, "BM_B": 100.0})
        write_run_file(self.path("after.json"),
                       {"BM_A": 100.0, "BM_B": 125.0})
        rc = self.diff(self.path("before.json"), self.path("after.json"),
                       "--max-regress", "10")
        self.assertEqual(rc, 1)
        # The report is still written for inspection.
        with open(self.path("report.json")) as fh:
            report = json.load(fh)
        self.assertEqual(report["benchmarks"]["BM_B"]["after_ns"], 125.0)

    def test_no_gate_never_fails_on_regression(self):
        write_run_file(self.path("before.json"), {"BM_A": 100.0})
        write_run_file(self.path("after.json"), {"BM_A": 1000.0})
        self.assertEqual(
            self.diff(self.path("before.json"), self.path("after.json")), 0)

    def test_gate_fails_on_missing_baseline_benchmark(self):
        # A baseline benchmark that vanishes from the fresh run (renamed or
        # dropped from the filter) must fail the gate naming it — it used to
        # sail through because the gate only compared paired benchmarks.
        write_run_file(self.path("before.json"),
                       {"BM_A": 100.0, "BM_Gone": 100.0, "BM_Lost": 50.0})
        write_run_file(self.path("after.json"), {"BM_A": 100.0})
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            rc = self.diff(self.path("before.json"), self.path("after.json"),
                           "--max-regress", "10")
        self.assertEqual(rc, 1)
        self.assertIn("BM_Gone", stderr.getvalue())
        self.assertIn("BM_Lost", stderr.getvalue())
        # The report is still written for inspection.
        self.assertTrue(os.path.exists(self.path("report.json")))

    def test_missing_baseline_without_gate_is_not_fatal(self):
        # Plain diffs (no --max-regress) document transitions across PRs
        # where benchmarks legitimately come and go; only the gate hardens.
        write_run_file(self.path("before.json"),
                       {"BM_A": 100.0, "BM_Gone": 100.0})
        write_run_file(self.path("after.json"), {"BM_A": 100.0})
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            rc = self.diff(self.path("before.json"), self.path("after.json"))
        self.assertEqual(rc, 0)
        self.assertIn("BM_Gone", stderr.getvalue())  # still warned about

    def test_new_benchmark_in_after_does_not_trip_gate(self):
        write_run_file(self.path("before.json"), {"BM_A": 100.0})
        write_run_file(self.path("after.json"),
                       {"BM_A": 100.0, "BM_New": 1e9})
        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            rc = self.diff(self.path("before.json"), self.path("after.json"),
                           "--max-regress", "10")
        self.assertEqual(rc, 0)

    def test_accepts_committed_diff_report_as_baseline(self):
        # A committed BENCH_*.json diff report serves as the --before side:
        # its after_ns medians are the baseline.
        report = {
            "schema": "chronos-benchjson-diff-v1",
            "label": "PR N",
            "after_date": "2026-07-29T00:00:00+00:00",
            "benchmarks": {
                "BM_A": {"before_ns": 500.0, "after_ns": 100.0,
                         "speedup": 5.0},
                "BM_OnlyBefore": {"before_ns": 1.0},
            },
        }
        with open(self.path("baseline.json"), "w") as fh:
            json.dump(report, fh)
        write_run_file(self.path("after.json"), {"BM_A": 130.0})
        rc = self.diff(self.path("baseline.json"), self.path("after.json"),
                       "--max-regress", "50")
        self.assertEqual(rc, 0)
        rc = self.diff(self.path("baseline.json"), self.path("after.json"),
                       "--max-regress", "20")
        self.assertEqual(rc, 1)


if __name__ == "__main__":
    unittest.main()
