// Planner service + plan cache (src/serve/).
//
// The load-bearing properties: exact-key caching is bit-identical to
// uncached planning (a hit is only ever served for bit-identical inputs,
// and the per-request fields — price, tau timers — are recomputed, never
// cached), quantized keys bucket on the geometric grid exactly where
// quantize_bucket says they do, plan_batch is result- and stats-equivalent
// to sequential plan() calls while doing strictly fewer optimizer runs,
// and the lock-free table survives a multi-threaded reader/inserter hammer
// (run under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/optimizer.h"
#include "serve/plan_cache.h"
#include "serve/planner.h"
#include "trace/planner.h"

namespace chronos {
namespace {

using serve::CacheMode;
using serve::CachedPlan;
using serve::PlanCache;
using serve::PlanCacheConfig;
using serve::PlanKey;
using serve::PlannerService;
using serve::PlannerServiceConfig;
using serve::PlanReply;
using serve::PlanRequest;

mapreduce::JobSpec make_spec(int num_tasks, double t_min, double beta,
                             double deadline) {
  mapreduce::JobSpec spec;
  spec.stage(0).num_tasks = num_tasks;
  spec.stage(0).t_min = t_min;
  spec.stage(0).beta = beta;
  spec.deadline = deadline;
  return spec;
}

PlannerServiceConfig service_config(CacheMode mode, double grid = 0.0) {
  PlannerServiceConfig config;
  config.cache.mode = mode;
  config.cache.grid = grid;
  return config;
}

PlanRequest request_for(mapreduce::JobSpec& spec, double price,
                        bool auto_strategy,
                        strategies::PolicyKind policy) {
  PlanRequest request;
  request.spec = &spec;
  request.price = price;
  request.auto_strategy = auto_strategy;
  request.policy = policy;
  return request;
}

/// Bitwise equality of every field the planner writes, on every stage.
void expect_same_plan(const mapreduce::JobSpec& a,
                      const mapreduce::JobSpec& b) {
  EXPECT_EQ(a.price, b.price);
  ASSERT_EQ(a.num_stages(), b.num_stages());
  for (int s = 0; s < a.num_stages(); ++s) {
    EXPECT_EQ(a.stage(s).tau_est, b.stage(s).tau_est) << "stage " << s;
    EXPECT_EQ(a.stage(s).tau_kill, b.stage(s).tau_kill) << "stage " << s;
    EXPECT_EQ(a.stage(s).r, b.stage(s).r) << "stage " << s;
  }
}

// --- exact mode: bit identity with uncached planning ------------------------

TEST(PlannerService, ExactHitsAreBitIdenticalToPlanSpec) {
  // A grid of shapes planned twice through an exact-key service: the second
  // pass must be all hits and every planned field must equal what the
  // uncached trace::plan_spec path computes, bit for bit.
  PlannerService service(service_config(CacheMode::kExact));
  const trace::PlannerConfig planner = service.config().planner;
  for (const auto policy :
       {strategies::PolicyKind::kSResume, strategies::PolicyKind::kSRestart,
        strategies::PolicyKind::kClone, strategies::PolicyKind::kHadoopNS}) {
    for (const double t_min : {20.0, 35.0}) {
      for (const double price : {0.3, 0.7}) {
        auto cold = make_spec(50, t_min, 1.8, 6.0 * t_min);
        auto warm = cold;
        auto reference = cold;

        const PlanReply first =
            service.plan(request_for(cold, price, false, policy));
        EXPECT_FALSE(first.cache_hit);
        const PlanReply second =
            service.plan(request_for(warm, price, false, policy));
        EXPECT_TRUE(second.cache_hit);

        trace::plan_spec(reference, policy, planner, price);
        expect_same_plan(cold, reference);
        expect_same_plan(warm, reference);
        EXPECT_EQ(first.r, second.r);
        EXPECT_EQ(first.kind, second.kind);
      }
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.hits, stats.misses);
  EXPECT_EQ(stats.inserts, stats.misses);
  EXPECT_EQ(stats.drops, 0u);
}

TEST(PlannerService, AutoModeMatchesOptimizeAll) {
  PlannerService service(service_config(CacheMode::kExact));
  const trace::PlannerConfig planner = service.config().planner;
  auto spec = make_spec(80, 30.0, 1.6, 200.0);
  const double price = 0.45;

  const auto params = trace::to_job_params(
      spec, planner, core::Strategy::kSpeculativeResume);
  const auto econ = trace::to_economics(spec, planner, price);
  const auto best = core::optimize_all(params, econ, planner.optimizer);

  auto cold = spec;
  const PlanReply miss = service.plan(request_for(cold, price, true,
                                                  strategies::PolicyKind::kSResume));
  auto warm = spec;
  const PlanReply hit = service.plan(request_for(warm, price, true,
                                                 strategies::PolicyKind::kSResume));
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  for (const PlanReply& reply : {miss, hit}) {
    EXPECT_EQ(reply.kind, trace::policy_of(best.strategy));
    EXPECT_EQ(reply.r, best.result.feasible ? best.result.r_opt : 1);
    EXPECT_EQ(reply.feasible, best.result.feasible);
  }
  expect_same_plan(cold, warm);
  EXPECT_EQ(cold.stage(0).r, best.result.feasible ? best.result.r_opt : 1);
  EXPECT_EQ(cold.stage(0).tau_kill, params.tau_kill);
  EXPECT_EQ(cold.stage(0).tau_est, best.strategy == core::Strategy::kClone
                                       ? 0.0
                                       : params.tau_est);
}

TEST(PlannerService, OffModeNeverCaches) {
  PlannerService service(service_config(CacheMode::kOff));
  auto spec = make_spec(40, 25.0, 2.0, 120.0);
  for (int i = 0; i < 3; ++i) {
    auto copy = spec;
    const PlanReply reply = service.plan(
        request_for(copy, 0.5, false, strategies::PolicyKind::kSResume));
    EXPECT_FALSE(reply.cache_hit);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.cache_size, 0u);
}

// --- per-request fields are never served from the cache ---------------------

TEST(PlannerService, QuantizedHitKeepsTheRequestsOwnPrice) {
  // Two prices in the same geometric bucket share a plan, but the spec's
  // price field must carry each request's OWN spot price — a cached plan
  // must never leak the first arrival's price clock into a later job.
  const double grid = 0.1;
  PlannerService service(service_config(CacheMode::kQuantized, grid));
  ASSERT_EQ(serve::quantize_bucket(1.0, grid),
            serve::quantize_bucket(1.04, grid));
  auto first = make_spec(50, 20.0, 1.8, 120.0);
  auto second = first;
  const PlanReply miss = service.plan(
      request_for(first, 1.0, false, strategies::PolicyKind::kSResume));
  const PlanReply hit = service.plan(
      request_for(second, 1.04, false, strategies::PolicyKind::kSResume));
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(first.price, 1.0);
  EXPECT_EQ(second.price, 1.04);  // its own clock, not the cached job's
  EXPECT_EQ(first.stage(0).r, second.stage(0).r);  // same shared plan
}

// --- quantization-boundary bucketing ----------------------------------------

TEST(PlanCacheQuantization, BoundaryValuesLandInTheIntendedBucket) {
  // Buckets are powers of (1 + grid): bucket(x) = floor(log(x)/log1p(grid)).
  const double grid = 0.1;
  const double ratio = 1.0 + grid;
  // Values within one ratio of each other share a bucket...
  EXPECT_EQ(serve::quantize_bucket(1.0, grid),
            serve::quantize_bucket(ratio * 0.999, grid));
  // ...and the bucket index steps exactly at powers of the ratio.
  for (const int k : {1, 3, 7}) {
    const double edge = std::pow(ratio, k);
    EXPECT_EQ(serve::quantize_bucket(edge * 1.0001, grid),
              serve::quantize_bucket(edge * ratio * 0.9999, grid));
    EXPECT_NE(serve::quantize_bucket(edge * 0.9999, grid),
              serve::quantize_bucket(edge * 1.0001, grid));
  }
}

TEST(PlanCacheQuantization, ServiceKeysBucketJobsTogether) {
  const double grid = 0.1;
  PlannerService service(service_config(CacheMode::kQuantized, grid));
  auto a = make_spec(50, 20.0, 1.8, 120.0);
  auto b = make_spec(50, 21.0, 1.8, 121.0);   // same buckets as a
  auto c = make_spec(50, 20.0, 1.8, 140.0);   // deadline crosses a boundary
  ASSERT_EQ(serve::quantize_bucket(20.0, grid),
            serve::quantize_bucket(21.0, grid));
  ASSERT_EQ(serve::quantize_bucket(120.0, grid),
            serve::quantize_bucket(121.0, grid));
  ASSERT_NE(serve::quantize_bucket(120.0, grid),
            serve::quantize_bucket(140.0, grid));
  auto req_a = request_for(a, 0.4, false, strategies::PolicyKind::kSResume);
  auto req_b = request_for(b, 0.4, false, strategies::PolicyKind::kSResume);
  auto req_c = request_for(c, 0.4, false, strategies::PolicyKind::kSResume);
  EXPECT_EQ(service.make_key(req_a), service.make_key(req_b));
  EXPECT_FALSE(service.make_key(req_a) == service.make_key(req_c));

  EXPECT_FALSE(service.plan(req_a).cache_hit);
  EXPECT_TRUE(service.plan(req_b).cache_hit);   // same bucket: shared plan
  EXPECT_FALSE(service.plan(req_c).cache_hit);  // new bucket: own plan
  EXPECT_EQ(a.stage(0).r, b.stage(0).r);
  // Different planning modes never share a bucket even on equal shapes.
  auto d = a;
  auto req_d = request_for(d, 0.4, true, strategies::PolicyKind::kSResume);
  EXPECT_FALSE(service.make_key(req_a) == service.make_key(req_d));
}

// --- staged keys (regression) -----------------------------------------------

TEST(PlannerService, KeyCoversEveryStagesFields) {
  // Regression: the cache key used to encode only the root stage's shape,
  // so two jobs differing only in their reduce stage hashed identically and
  // the second arrival was served the first one's plan. Every stage field
  // must enter the key.
  PlannerService service(service_config(CacheMode::kExact));
  auto base = make_spec(50, 20.0, 1.8, 240.0);
  base.add_reduce_stage(/*reduce_tasks=*/10, /*reduce_t_min=*/45.0,
                        /*reduce_beta=*/1.7, /*reduce_r=*/0);
  auto wider = make_spec(50, 20.0, 1.8, 240.0);
  wider.add_reduce_stage(/*reduce_tasks=*/25, /*reduce_t_min=*/45.0,
                         /*reduce_beta=*/1.7, /*reduce_r=*/0);
  auto slower = make_spec(50, 20.0, 1.8, 240.0);
  slower.add_reduce_stage(/*reduce_tasks=*/10, /*reduce_t_min=*/60.0,
                          /*reduce_beta=*/1.7, /*reduce_r=*/0);
  auto req_base =
      request_for(base, 0.4, false, strategies::PolicyKind::kSResume);
  auto req_wider =
      request_for(wider, 0.4, false, strategies::PolicyKind::kSResume);
  auto req_slower =
      request_for(slower, 0.4, false, strategies::PolicyKind::kSResume);
  EXPECT_FALSE(service.make_key(req_base) == service.make_key(req_wider));
  EXPECT_FALSE(service.make_key(req_base) == service.make_key(req_slower));
  // And through the service: the differing job must NOT hit base's entry.
  EXPECT_FALSE(service.plan(req_base).cache_hit);
  EXPECT_FALSE(service.plan(req_wider).cache_hit);
  EXPECT_FALSE(service.plan(req_slower).cache_hit);
}

TEST(PlannerService, KeyCoversStageWiring) {
  // Two three-stage jobs with identical stage shapes but different DAG
  // edges (chain vs fan-in from the root) must never share a plan.
  PlannerService service(service_config(CacheMode::kExact));
  auto chain = make_spec(20, 20.0, 1.8, 300.0);
  chain.add_reduce_stage(10, 40.0, 1.6, 0);
  chain.add_reduce_stage(5, 30.0, 1.5, 0);  // deps default: {1}
  auto fan = make_spec(20, 20.0, 1.8, 300.0);
  fan.add_reduce_stage(10, 40.0, 1.6, 0);
  fan.add_reduce_stage(5, 30.0, 1.5, 0);
  fan.stage(2).deps = {0};  // same shapes, different wiring
  auto req_chain =
      request_for(chain, 0.4, false, strategies::PolicyKind::kSResume);
  auto req_fan =
      request_for(fan, 0.4, false, strategies::PolicyKind::kSResume);
  EXPECT_FALSE(service.make_key(req_chain) == service.make_key(req_fan));
}

TEST(PlannerService, StagedExactHitsMatchStagedPlanning) {
  // A staged job through an exact-key service twice: the second pass is a
  // hit and every per-stage planned field equals the uncached
  // trace::plan_staged_spec output, bit for bit.
  PlannerService service(service_config(CacheMode::kExact));
  const trace::PlannerConfig planner = service.config().planner;
  auto cold = make_spec(40, 25.0, 1.4, 500.0);
  cold.add_reduce_stage(10, 45.0, 1.7);
  auto warm = cold;
  auto reference = cold;
  const PlanReply miss = service.plan(
      request_for(cold, 0.4, false, strategies::PolicyKind::kSResume));
  const PlanReply hit = service.plan(
      request_for(warm, 0.4, false, strategies::PolicyKind::kSResume));
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  trace::plan_staged_spec(reference, strategies::PolicyKind::kSResume,
                          planner, 0.4);
  expect_same_plan(cold, reference);
  expect_same_plan(warm, reference);
  EXPECT_EQ(miss.r, reference.stage(0).r);
}

TEST(PlannerService, WideDagsBypassTheCache) {
  // Jobs wider than kMaxKeyStages cannot be keyed: they are planned from
  // scratch per request (correctly), never counting hits or misses.
  PlannerService service(service_config(CacheMode::kExact));
  const trace::PlannerConfig planner = service.config().planner;
  auto spec = make_spec(8, 25.0, 1.4, 900.0);
  for (int s = 0; s < serve::kMaxKeyStages; ++s) {
    spec.add_reduce_stage(4, 30.0, 1.5);
  }
  ASSERT_GT(spec.num_stages(), serve::kMaxKeyStages);
  auto reference = spec;
  for (int i = 0; i < 2; ++i) {
    auto copy = spec;
    const PlanReply reply = service.plan(
        request_for(copy, 0.4, false, strategies::PolicyKind::kSResume));
    EXPECT_FALSE(reply.cache_hit);
    trace::plan_staged_spec(reference, strategies::PolicyKind::kSResume,
                            planner, 0.4);
    expect_same_plan(copy, reference);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.cache_size, 0u);
}

// --- batch API ---------------------------------------------------------------

TEST(PlannerService, BatchMatchesSequentialPlans) {
  // The same request stream through plan_batch and through sequential
  // plan() calls on a twin service: bit-identical specs, identical replies
  // and identical hit/miss accounting.
  const auto shapes = std::vector<mapreduce::JobSpec>{
      make_spec(50, 20.0, 1.8, 120.0), make_spec(80, 30.0, 1.6, 200.0),
      make_spec(50, 20.0, 1.8, 120.0),  // duplicate of [0]
      make_spec(12, 8.0, 2.4, 60.0)};
  const std::vector<double> prices = {0.4, 0.5, 0.4, 0.6};
  const std::vector<bool> autos = {false, true, false, false};
  const std::vector<strategies::PolicyKind> policies = {
      strategies::PolicyKind::kSResume, strategies::PolicyKind::kSResume,
      strategies::PolicyKind::kSResume, strategies::PolicyKind::kHadoopS};

  for (const CacheMode mode :
       {CacheMode::kOff, CacheMode::kExact, CacheMode::kQuantized}) {
    const double grid = mode == CacheMode::kQuantized ? 0.05 : 0.0;
    PlannerService batched(service_config(mode, grid));
    PlannerService sequential(service_config(mode, grid));

    auto batch_specs = shapes;
    std::vector<PlanRequest> requests;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      requests.push_back(request_for(batch_specs[i], prices[i], autos[i],
                                     policies[i]));
    }
    const auto batch_replies = batched.plan_batch(requests);

    auto seq_specs = shapes;
    std::vector<PlanReply> seq_replies;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      seq_replies.push_back(sequential.plan(request_for(
          seq_specs[i], prices[i], autos[i], policies[i])));
    }

    ASSERT_EQ(batch_replies.size(), seq_replies.size());
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      expect_same_plan(batch_specs[i], seq_specs[i]);
      EXPECT_EQ(batch_replies[i].kind, seq_replies[i].kind) << i;
      EXPECT_EQ(batch_replies[i].r, seq_replies[i].r) << i;
      EXPECT_EQ(batch_replies[i].cache_hit, seq_replies[i].cache_hit) << i;
    }
    const auto lhs = batched.stats();
    const auto rhs = sequential.stats();
    EXPECT_EQ(lhs.requests, rhs.requests);
    EXPECT_EQ(lhs.hits, rhs.hits);
    EXPECT_EQ(lhs.misses, rhs.misses);
    EXPECT_EQ(lhs.inserts, rhs.inserts);
    EXPECT_EQ(lhs.cache_size, rhs.cache_size);
  }
}

TEST(PlannerService, BatchWarmPassIsAllHits) {
  PlannerService service(service_config(CacheMode::kExact));
  auto specs = std::vector<mapreduce::JobSpec>{
      make_spec(50, 20.0, 1.8, 120.0), make_spec(80, 30.0, 1.6, 200.0)};
  std::vector<PlanRequest> requests;
  for (auto& spec : specs) {
    requests.push_back(
        request_for(spec, 0.4, true, strategies::PolicyKind::kSResume));
  }
  for (const auto& reply : service.plan_batch(requests)) {
    EXPECT_FALSE(reply.cache_hit);
  }
  auto warm_specs = specs;
  std::vector<PlanRequest> warm;
  for (auto& spec : warm_specs) {
    warm.push_back(
        request_for(spec, 0.4, true, strategies::PolicyKind::kSResume));
  }
  for (const auto& reply : service.plan_batch(warm)) {
    EXPECT_TRUE(reply.cache_hit);
  }
  expect_same_plan(specs[0], warm_specs[0]);
  expect_same_plan(specs[1], warm_specs[1]);
}

// --- the lock-free table ----------------------------------------------------

TEST(PlanCacheTable, InsertFindRoundTrip) {
  PlanCache cache(64);
  PlanKey key;
  key.mode = 2;
  key.num_stages = 1;
  key.stages[0].num_tasks = 50;
  key.stages[0].t_min = 123;
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_TRUE(cache.insert(
      key, CachedPlan{strategies::PolicyKind::kClone, 1, {3}, true}));
  const CachedPlan* found = cache.find(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->kind, strategies::PolicyKind::kClone);
  EXPECT_EQ(found->r[0], 3);
  EXPECT_TRUE(found->feasible);
  // Re-inserting the same key reports failure and keeps the first value.
  EXPECT_FALSE(cache.insert(
      key, CachedPlan{strategies::PolicyKind::kMantri, 1, {9}, false}));
  EXPECT_EQ(cache.find(key)->r[0], 3);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTable, FullTableDropsInsertsButStaysCorrect) {
  PlanCache cache(1);  // a single slot: the second distinct key must drop
  PlanKey a;
  a.stages[0].t_min = 1;
  PlanKey b;
  b.stages[0].t_min = 2;
  EXPECT_TRUE(cache.insert(
      a, CachedPlan{strategies::PolicyKind::kClone, 1, {1}, true}));
  EXPECT_FALSE(cache.insert(
      b, CachedPlan{strategies::PolicyKind::kClone, 1, {2}, true}));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.find(a), nullptr);
  EXPECT_EQ(cache.find(b), nullptr);
}

TEST(PlannerService, TinyCacheStillPlansCorrectly) {
  // With a one-slot cache most inserts drop; every plan must still be
  // correct (computed fresh when it cannot be shared).
  PlannerServiceConfig config = service_config(CacheMode::kExact);
  config.cache.capacity = 1;
  PlannerService service(config);
  const trace::PlannerConfig planner = service.config().planner;
  for (const double deadline : {100.0, 110.0, 120.0, 130.0}) {
    auto spec = make_spec(50, 20.0, 1.8, deadline);
    auto reference = spec;
    service.plan(request_for(spec, 0.4, false,
                             strategies::PolicyKind::kSResume));
    trace::plan_spec(reference, strategies::PolicyKind::kSResume, planner,
                     0.4);
    expect_same_plan(spec, reference);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.cache_size, 1u);
  EXPECT_GT(stats.drops, 0u);
}

TEST(PlanCacheConfigValidation, RejectsBadKnobs) {
  PlanCacheConfig bad_grid;
  bad_grid.mode = CacheMode::kQuantized;
  bad_grid.grid = 0.0;
  EXPECT_THROW(bad_grid.validate(), PreconditionError);
  bad_grid.grid = -0.5;
  EXPECT_THROW(bad_grid.validate(), PreconditionError);
  PlanCacheConfig bad_capacity;
  bad_capacity.mode = CacheMode::kExact;
  bad_capacity.capacity = 0;
  EXPECT_THROW(bad_capacity.validate(), PreconditionError);
  PlanCacheConfig off;  // off ignores the other knobs entirely
  off.capacity = 0;
  EXPECT_NO_THROW(off.validate());
}

// --- multi-threaded hammer (readers + inserters, ASan/UBSan in CI) ----------

TEST(PlannerServiceConcurrency, HammerReadersAndInserters) {
  // One shared exact-key service, 6 threads planning overlapping slices of
  // a 96-shape pool in different orders: early threads insert while late
  // ones read. Afterwards every plan must equal the uncached reference.
  PlannerService service(service_config(CacheMode::kExact));
  const trace::PlannerConfig planner = service.config().planner;
  constexpr int kShapes = 96;
  constexpr int kThreads = 6;
  constexpr int kRounds = 40;

  const auto shape_of = [](int s) {
    return make_spec(20 + (s % 7), 15.0 + s, 1.5 + 0.01 * (s % 11),
                     130.0 + 2.0 * s);
  };
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &shape_of, &mismatches, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int s = 0; s < kShapes; ++s) {
          const int shape = (s * (t + 1) + round) % kShapes;
          auto spec = shape_of(shape);
          PlanRequest request;
          request.spec = &spec;
          request.price = 0.25 + 0.005 * shape;
          request.auto_strategy = (shape % 2) == 0;
          request.policy = strategies::PolicyKind::kSResume;
          const PlanReply reply = service.plan(request);
          if (reply.r != spec.stage(0).r || spec.price != request.price) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads) * kRounds * kShapes);
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  // Every shape was eventually cached (the table is big enough) and every
  // cached plan equals the uncached reference.
  EXPECT_EQ(stats.cache_size, static_cast<std::size_t>(kShapes));
  for (int s = 0; s < kShapes; ++s) {
    auto spec = shape_of(s);
    auto reference = shape_of(s);
    PlanRequest request;
    request.spec = &spec;
    request.price = 0.25 + 0.005 * s;
    request.auto_strategy = (s % 2) == 0;
    request.policy = strategies::PolicyKind::kSResume;
    const PlanReply reply = service.plan(request);
    EXPECT_TRUE(reply.cache_hit) << s;
    if (request.auto_strategy) {
      const auto params = trace::to_job_params(
          reference, planner, core::Strategy::kSpeculativeResume);
      const auto econ =
          trace::to_economics(reference, planner, request.price);
      const auto best = core::optimize_all(params, econ, planner.optimizer);
      EXPECT_EQ(reply.kind, trace::policy_of(best.strategy)) << s;
      EXPECT_EQ(spec.stage(0).r, best.result.feasible ? best.result.r_opt : 1) << s;
    } else {
      trace::plan_spec(reference, request.policy, planner, request.price);
      expect_same_plan(spec, reference);
    }
  }
}

}  // namespace
}  // namespace chronos
