// Validates the PoCD closed forms (Theorems 1, 3, 5) against hand
// computations, structural properties, and Monte-Carlo simulation of the
// exact model semantics.
#include "core/pocd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/montecarlo.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_job;

TEST(PocdClone, MatchesHandComputation) {
  auto p = default_job();
  // Per-attempt failure: (30/100)^1.5; task fail with r=1: that squared.
  const double p1 = std::pow(0.3, 1.5);
  const double expected = std::pow(1.0 - p1 * p1, 10);
  EXPECT_NEAR(pocd_clone(p, 1.0), expected, 1e-12);
}

TEST(PocdClone, RZeroEqualsNoSpeculation) {
  const auto p = default_job();
  EXPECT_NEAR(pocd_clone(p, 0.0), pocd_no_speculation(p), 1e-12);
}

TEST(PocdSRestart, RZeroEqualsNoSpeculation) {
  const auto p = default_job();
  EXPECT_NEAR(pocd_s_restart(p, 0.0), pocd_no_speculation(p), 1e-12);
}

TEST(PocdSRestart, MatchesHandComputation) {
  const auto p = default_job();
  // Theorem 3 with r=2: 1 - t^{3b} / (D^b (D-tau)^{2b}) per task.
  const double b = p.beta;
  const double fail = std::pow(p.t_min, 3.0 * b) /
                      (std::pow(p.deadline, b) *
                       std::pow(p.deadline - p.tau_est, 2.0 * b));
  EXPECT_NEAR(pocd_s_restart(p, 2.0), std::pow(1.0 - fail, 10), 1e-12);
}

TEST(PocdSResume, MatchesHandComputation) {
  const auto p = default_job();
  const double b = p.beta;
  const double r = 1.0;
  const double fail =
      std::pow(1.0 - p.phi_est, b * (r + 1.0)) *
      std::pow(p.t_min, b * (r + 2.0)) /
      (std::pow(p.deadline, b) *
       std::pow(p.deadline - p.tau_est, b * (r + 1.0)));
  EXPECT_NEAR(pocd_s_resume(p, r), std::pow(1.0 - fail, 10), 1e-12);
}

TEST(Pocd, DispatchMatchesDirectCalls) {
  const auto p = default_job();
  EXPECT_EQ(pocd(Strategy::kClone, p, 2.0), pocd_clone(p, 2.0));
  EXPECT_EQ(pocd(Strategy::kSpeculativeRestart, p, 2.0),
            pocd_s_restart(p, 2.0));
  EXPECT_EQ(pocd(Strategy::kSpeculativeResume, p, 2.0),
            pocd_s_resume(p, 2.0));
}

TEST(Pocd, TaskPocdIsNthRoot) {
  const auto p = default_job();
  const double job = pocd_clone(p, 1.0);
  EXPECT_NEAR(std::pow(task_pocd(Strategy::kClone, p, 1.0), p.num_tasks), job,
              1e-12);
}

TEST(Pocd, RejectsNegativeR) {
  const auto p = default_job();
  EXPECT_THROW(pocd_clone(p, -1.0), PreconditionError);
}

TEST(Pocd, MonotoneIncreasingInR) {
  const auto p = default_job();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    double prev = pocd(s, p, 0.0);
    for (double r = 1.0; r <= 8.0; r += 1.0) {
      const double cur = pocd(s, p, r);
      EXPECT_GT(cur, prev) << to_string(s) << " r=" << r;
      prev = cur;
    }
  }
}

TEST(Pocd, MonotoneIncreasingInDeadline) {
  auto p = default_job();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    double prev = 0.0;
    for (double d = 90.0; d <= 200.0; d += 10.0) {
      p.deadline = d;
      const double cur = pocd(s, p, 2.0);
      EXPECT_GE(cur, prev) << to_string(s) << " D=" << d;
      prev = cur;
    }
  }
}

TEST(Pocd, DecreasesWithMoreTasks) {
  auto p = default_job();
  p.num_tasks = 1;
  const double one = pocd_clone(p, 1.0);
  p.num_tasks = 100;
  const double hundred = pocd_clone(p, 1.0);
  EXPECT_LT(hundred, one);
  EXPECT_NEAR(hundred, std::pow(one, 100.0), 1e-9);
}

TEST(Pocd, ApproachesOneForLargeR) {
  const auto p = default_job();
  EXPECT_GT(pocd_clone(p, 50.0), 1.0 - 1e-12);
}

// --- Monte-Carlo validation over a parameter grid --------------------------

struct McCase {
  Strategy strategy;
  double beta;
  double deadline;
  long long r;
};

class PocdMonteCarlo : public ::testing::TestWithParam<McCase> {};

TEST_P(PocdMonteCarlo, ClosedFormWithinConfidenceInterval) {
  const auto& c = GetParam();
  auto p = default_job();
  p.beta = c.beta;
  p.deadline = c.deadline;
  const double analytic = pocd(c.strategy, p, static_cast<double>(c.r));
  Rng rng(1234 + static_cast<std::uint64_t>(c.r) +
          static_cast<std::uint64_t>(c.beta * 100));
  const auto mc = monte_carlo(c.strategy, p, c.r, 40000, rng);
  EXPECT_NEAR(mc.pocd, analytic, mc.pocd_ci + 0.005)
      << to_string(c.strategy) << " beta=" << c.beta << " D=" << c.deadline
      << " r=" << c.r;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PocdMonteCarlo,
    ::testing::Values(
        McCase{Strategy::kClone, 1.2, 100.0, 0},
        McCase{Strategy::kClone, 1.2, 100.0, 2},
        McCase{Strategy::kClone, 1.5, 120.0, 1},
        McCase{Strategy::kClone, 1.8, 90.0, 3},
        McCase{Strategy::kSpeculativeRestart, 1.2, 100.0, 0},
        McCase{Strategy::kSpeculativeRestart, 1.2, 100.0, 2},
        McCase{Strategy::kSpeculativeRestart, 1.5, 120.0, 1},
        McCase{Strategy::kSpeculativeRestart, 1.8, 90.0, 3},
        McCase{Strategy::kSpeculativeResume, 1.2, 100.0, 0},
        McCase{Strategy::kSpeculativeResume, 1.2, 100.0, 2},
        McCase{Strategy::kSpeculativeResume, 1.5, 120.0, 1},
        McCase{Strategy::kSpeculativeResume, 1.8, 90.0, 3}));

TEST(PocdNoSpeculation, MonteCarloAgrees) {
  const auto p = default_job();
  Rng rng(55);
  const auto mc = monte_carlo_no_speculation(p, 40000, rng);
  EXPECT_NEAR(mc.pocd, pocd_no_speculation(p), mc.pocd_ci + 0.005);
}

}  // namespace
}  // namespace chronos::core
