// End-to-end integration: planned traces replayed through the discrete-event
// cluster under every strategy, checking the qualitative orderings the paper
// reports and global simulation invariants.
#include <gtest/gtest.h>

#include <map>

#include "trace/harness.h"
#include "trace/planner.h"

namespace chronos::trace {
namespace {

using strategies::PolicyKind;

std::vector<TracedJob> small_trace(std::uint64_t seed = 5) {
  TraceConfig config;
  config.num_jobs = 120;
  config.duration_hours = 2.0;
  config.mean_tasks = 25.0;
  config.max_tasks = 200;
  config.seed = seed;
  return generate_trace(config);
}

ExperimentResult run_policy(PolicyKind policy, std::uint64_t seed = 5) {
  auto jobs = small_trace();
  PlannerConfig planner;
  const SpotPriceModel prices;
  plan_trace(jobs, policy, planner, prices);
  auto config = ExperimentConfig::large_scale(policy, seed);
  return run_experiment(jobs, config);
}

TEST(Integration, EveryPolicyCompletesTheTrace) {
  for (const PolicyKind policy :
       {PolicyKind::kHadoopNS, PolicyKind::kHadoopS, PolicyKind::kMantri,
        PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    const auto result = run_policy(policy);
    EXPECT_EQ(result.metrics.jobs(), 120u) << result.policy_name;
    EXPECT_GT(result.events_executed, 0u);
  }
}

TEST(Integration, DeterministicForSameSeed) {
  const auto a = run_policy(PolicyKind::kSResume, 9);
  const auto b = run_policy(PolicyKind::kSResume, 9);
  EXPECT_EQ(a.pocd(), b.pocd());
  EXPECT_EQ(a.mean_cost(), b.mean_cost());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Integration, ChronosStrategiesBeatNoSpeculationOnPoCD) {
  const auto baseline = run_policy(PolicyKind::kHadoopNS);
  for (const PolicyKind policy :
       {PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    const auto result = run_policy(policy);
    EXPECT_GT(result.pocd(), baseline.pocd()) << result.policy_name;
  }
}

TEST(Integration, CloneCostsMoreThanResume) {
  // Clone replicates every task; S-Resume only replicates stragglers and
  // preserves work (Figure 3(b) ordering).
  const auto clone = run_policy(PolicyKind::kClone);
  const auto resume = run_policy(PolicyKind::kSResume);
  EXPECT_GT(clone.mean_cost(), resume.mean_cost());
}

TEST(Integration, ResumeCheaperThanRestart) {
  const auto restart = run_policy(PolicyKind::kSRestart);
  const auto resume = run_policy(PolicyKind::kSResume);
  EXPECT_LT(resume.mean_cost(), restart.mean_cost());
}

TEST(Integration, MachineTimeBoundedBelowByWork) {
  // Every job's machine time is at least num_tasks * t_min: each task needs
  // at least one attempt processing the whole split.
  auto jobs = small_trace();
  PlannerConfig planner;
  const SpotPriceModel prices;
  plan_trace(jobs, PolicyKind::kHadoopNS, planner, prices);
  const auto config =
      ExperimentConfig::large_scale(PolicyKind::kHadoopNS, 5);
  const auto result = run_experiment(jobs, config);
  std::map<int, double> min_work;
  for (const auto& job : jobs) {
    min_work[job.spec.job_id] = job.spec.stage(0).num_tasks * job.spec.stage(0).t_min;
  }
  for (const auto& outcome : result.metrics.outcomes()) {
    EXPECT_GE(outcome.machine_time, 0.99 * min_work[outcome.job_id]);
  }
}

TEST(Integration, TestbedConfigMatchesPaper) {
  const auto config = ExperimentConfig::testbed(PolicyKind::kClone);
  EXPECT_EQ(config.cluster.nodes.size(), 40u);
  EXPECT_EQ(config.cluster.nodes.front().containers, 8);
}

TEST(Integration, MeetingDeadlineConsistentWithCompletionTime) {
  const auto result = run_policy(PolicyKind::kSRestart);
  for (const auto& outcome : result.metrics.outcomes()) {
    EXPECT_EQ(outcome.met_deadline,
              outcome.completion_time <= outcome.deadline);
  }
}

TEST(Integration, UtilityOrderingFavoursChronosStrategies) {
  // Net utility with the paper's theta: the three Chronos strategies must
  // beat Hadoop-S (Figure 2(c) shape). Use the measured Hadoop-NS PoCD as
  // R_min, offset slightly so every strategy's utility stays finite.
  const double r_min =
      std::max(0.0, run_policy(PolicyKind::kHadoopNS).pocd() - 0.05);
  const double theta = 1e-4;
  const auto hadoop_s = run_policy(PolicyKind::kHadoopS);
  for (const PolicyKind policy :
       {PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    const auto result = run_policy(policy);
    EXPECT_GT(result.utility(theta, r_min),
              hadoop_s.utility(theta, r_min))
        << result.policy_name;
  }
}

}  // namespace
}  // namespace chronos::trace
