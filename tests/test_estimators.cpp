#include "stats/estimators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace chronos::stats {
namespace {

std::vector<double> sample_pareto(double t_min, double beta, int n,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs.push_back(rng.pareto(t_min, beta));
  }
  return xs;
}

TEST(FitParetoMle, RecoversParameters) {
  const auto xs = sample_pareto(2.0, 1.5, 50000, 11);
  const auto fit = fit_pareto_mle(xs);
  EXPECT_NEAR(fit.t_min, 2.0, 0.01);
  EXPECT_NEAR(fit.beta, 1.5, 0.03);
  EXPECT_NEAR(fit.beta_stderr, fit.beta / std::sqrt(50000.0), 1e-9);
}

TEST(FitParetoMle, RecoversHeavyTail) {
  const auto xs = sample_pareto(10.0, 1.1, 50000, 13);
  const auto fit = fit_pareto_mle(xs);
  EXPECT_NEAR(fit.beta, 1.1, 0.03);
}

TEST(FitParetoMle, RejectsDegenerateInput) {
  EXPECT_THROW(fit_pareto_mle(std::vector<double>{1.0}), PreconditionError);
  EXPECT_THROW(fit_pareto_mle(std::vector<double>{2.0, 2.0}),
               PreconditionError);
  EXPECT_THROW(fit_pareto_mle(std::vector<double>{-1.0, 2.0}),
               PreconditionError);
}

TEST(KsStatistic, SmallForTrueModel) {
  const auto xs = sample_pareto(2.0, 1.5, 20000, 17);
  const double d = ks_statistic(xs, Pareto(2.0, 1.5));
  EXPECT_LT(d, 0.02);
}

TEST(KsStatistic, LargeForWrongModel) {
  const auto xs = sample_pareto(2.0, 1.5, 20000, 17);
  const double d = ks_statistic(xs, Pareto(2.0, 3.0));
  EXPECT_GT(d, 0.1);
}

TEST(KsStatistic, RejectsEmptySample) {
  EXPECT_THROW(ks_statistic(std::vector<double>{}, Pareto(1.0, 1.0)),
               PreconditionError);
}

TEST(ExceedanceFraction, MatchesSurvival) {
  const auto xs = sample_pareto(1.0, 2.0, 100000, 19);
  const Pareto model(1.0, 2.0);
  EXPECT_NEAR(exceedance_fraction(xs, 3.0), model.survival(3.0), 0.005);
}

TEST(ExceedanceFraction, BoundaryCases) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(exceedance_fraction(xs, 0.5), 1.0);
  EXPECT_EQ(exceedance_fraction(xs, 3.0), 0.0);
  EXPECT_NEAR(exceedance_fraction(xs, 1.5), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace chronos::stats
