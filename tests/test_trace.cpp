// Workload profiles, spot-price model, and the synthetic Google trace.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "trace/google_trace.h"
#include "trace/spot_price.h"
#include "trace/workload.h"

namespace chronos::trace {
namespace {

TEST(Workload, SuiteHasFourBenchmarks) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "Sort");
  EXPECT_EQ(suite[1].name, "SecondarySort");
  EXPECT_EQ(suite[2].name, "TeraSort");
  EXPECT_EQ(suite[3].name, "WordCount");
}

TEST(Workload, DeadlinesMatchPaper) {
  EXPECT_EQ(benchmark("Sort").deadline, 100.0);
  EXPECT_EQ(benchmark("TeraSort").deadline, 100.0);
  EXPECT_EQ(benchmark("SecondarySort").deadline, 150.0);
  EXPECT_EQ(benchmark("WordCount").deadline, 150.0);
}

TEST(Workload, IoBoundFlagsMatchPaper) {
  EXPECT_TRUE(benchmark("Sort").io_bound);
  EXPECT_TRUE(benchmark("SecondarySort").io_bound);
  EXPECT_FALSE(benchmark("TeraSort").io_bound);
  EXPECT_FALSE(benchmark("WordCount").io_bound);
}

TEST(Workload, HeavyTailRegime) {
  // §VII-A: testbed execution times are Pareto with beta < 2.
  for (const auto& profile : benchmark_suite()) {
    EXPECT_GT(profile.beta, 1.0) << profile.name;
    EXPECT_LT(profile.beta, 2.0) << profile.name;
    EXPECT_GT(profile.deadline, profile.t_min) << profile.name;
  }
}

TEST(Workload, MakeJobCopiesProfileFields) {
  const auto spec = benchmark("Sort").make_job(7, 10);
  EXPECT_EQ(spec.job_id, 7);
  EXPECT_EQ(spec.stage(0).num_tasks, 10);
  EXPECT_EQ(spec.deadline, 100.0);
  EXPECT_EQ(spec.stage(0).t_min, benchmark("Sort").t_min);
  EXPECT_NO_THROW(spec.validate());
}

TEST(Workload, UnknownBenchmarkThrows) {
  EXPECT_THROW(benchmark("Grep"), PreconditionError);
}

TEST(SpotPrice, DeterministicForSeed) {
  const SpotPriceModel a;
  const SpotPriceModel b;
  for (double t = 0.0; t < 30.0 * 3600.0; t += 7000.0) {
    EXPECT_EQ(a.price_at(t), b.price_at(t));
  }
}

TEST(SpotPrice, AlwaysPositive) {
  SpotPriceConfig config;
  config.volatility = 0.5;  // violent market
  const SpotPriceModel model(config);
  for (double t = 0.0; t < config.horizon_seconds; t += 1800.0) {
    EXPECT_GT(model.price_at(t), 0.0);
  }
}

TEST(SpotPrice, MeanNearBase) {
  const SpotPriceModel model;
  EXPECT_NEAR(model.mean_price(), model.base_price(),
              0.2 * model.base_price());
}

TEST(SpotPrice, ClampsBeyondHorizon) {
  const SpotPriceModel model;
  EXPECT_EQ(model.price_at(1e12), model.price_at(1e12 + 1.0));
  EXPECT_THROW(model.price_at(-1.0), PreconditionError);
}

TEST(SpotPrice, ConstantWhenVolatilityZero) {
  SpotPriceConfig config;
  config.volatility = 0.0;
  const SpotPriceModel model(config);
  EXPECT_NEAR(model.price_at(0.0), config.base_price, 1e-12);
  EXPECT_NEAR(model.price_at(3600.0 * 20.0), config.base_price, 1e-12);
}

TEST(GoogleTrace, DeterministicForSeed) {
  TraceConfig config;
  config.num_jobs = 50;
  const auto a = generate_trace(config);
  const auto b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].spec.stage(0).num_tasks, b[i].spec.stage(0).num_tasks);
    EXPECT_EQ(a[i].spec.stage(0).t_min, b[i].spec.stage(0).t_min);
  }
}

TEST(GoogleTrace, SortedBysubmitTimeWithSequentialIds) {
  TraceConfig config;
  config.num_jobs = 200;
  const auto jobs = generate_trace(config);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_LE(jobs[i - 1].submit_time, jobs[i].submit_time);
    EXPECT_EQ(jobs[i].spec.job_id, static_cast<int>(i));
  }
}

TEST(GoogleTrace, ParametersWithinConfiguredRanges) {
  TraceConfig config;
  config.num_jobs = 500;
  const auto jobs = generate_trace(config);
  const double horizon = config.duration_hours * 3600.0;
  for (const auto& job : jobs) {
    EXPECT_GE(job.submit_time, 0.0);
    EXPECT_LT(job.submit_time, horizon);
    EXPECT_GE(job.spec.stage(0).num_tasks, config.min_tasks);
    EXPECT_LE(job.spec.stage(0).num_tasks, config.max_tasks);
    EXPECT_GE(job.spec.stage(0).t_min, config.t_min_lo * (1.0 - 1e-9));
    EXPECT_LE(job.spec.stage(0).t_min, config.t_min_hi * (1.0 + 1e-9));
    EXPECT_GE(job.spec.stage(0).beta, config.beta_lo);
    EXPECT_LE(job.spec.stage(0).beta, config.beta_hi);
    // Deadline = 2 x mean execution time by default.
    const double mean = job.spec.stage(0).t_min * job.spec.stage(0).beta / (job.spec.stage(0).beta - 1.0);
    EXPECT_NEAR(job.spec.deadline, 2.0 * mean, 1e-6 * mean);
    EXPECT_NO_THROW(job.spec.validate());
  }
}

TEST(GoogleTrace, MeanTaskCountApproximatelyConfigured) {
  TraceConfig config;
  config.num_jobs = 2700;
  const auto jobs = generate_trace(config);
  const double mean = static_cast<double>(total_tasks(jobs)) /
                      static_cast<double>(jobs.size());
  // Lognormal with clamping biases slightly low; allow 25%.
  EXPECT_NEAR(mean, config.mean_tasks, 0.25 * config.mean_tasks);
}

TEST(GoogleTrace, TaskCountsAreHeavyTailed) {
  TraceConfig config;
  config.num_jobs = 2000;
  const auto jobs = generate_trace(config);
  int small = 0;
  int large = 0;
  for (const auto& job : jobs) {
    small += job.spec.stage(0).num_tasks < 100 ? 1 : 0;
    large += job.spec.stage(0).num_tasks > 1000 ? 1 : 0;
  }
  EXPECT_GT(small, 0);
  EXPECT_GT(large, 0);
}

TEST(GoogleTrace, RejectsInvalidConfig) {
  TraceConfig config;
  config.num_jobs = 0;
  EXPECT_THROW(generate_trace(config), PreconditionError);
  config = TraceConfig{};
  config.beta_lo = 1.0;  // infinite mean breaks deadline scaling
  EXPECT_THROW(generate_trace(config), PreconditionError);
  config = TraceConfig{};
  config.deadline_factor_lo = 0.9;
  EXPECT_THROW(generate_trace(config), PreconditionError);
}

TEST(GoogleTrace, DifferentSeedsDiffer) {
  TraceConfig a;
  a.num_jobs = 50;
  TraceConfig b = a;
  b.seed = a.seed + 1;
  const auto ja = generate_trace(a);
  const auto jb = generate_trace(b);
  int differing = 0;
  for (std::size_t i = 0; i < ja.size(); ++i) {
    differing += ja[i].spec.stage(0).num_tasks != jb[i].spec.stage(0).num_tasks ? 1 : 0;
  }
  EXPECT_GT(differing, 10);
}

}  // namespace
}  // namespace chronos::trace
