// Distribution-generic analysis: must agree with the Pareto closed forms,
// with Monte Carlo for other distributions, and preserve the Theorem 7
// orderings beyond the Pareto case.
#include "core/generic.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/cost.h"
#include "core/pocd.h"
#include "test_util.h"

namespace chronos::core {
namespace {

GenericJobParams generic_from(const JobParams& p) {
  GenericJobParams g;
  g.num_tasks = p.num_tasks;
  g.deadline = p.deadline;
  g.tau_est = p.tau_est;
  g.tau_kill = p.tau_kill;
  g.phi_est = p.phi_est;
  return g;
}

TEST(Generic, PocdMatchesParetoClosedForms) {
  const auto p = chronos::testing::default_job();
  const auto g = generic_from(p);
  const stats::ParetoDistribution dist(p.t_min, p.beta);
  for (double r = 0.0; r <= 5.0; r += 1.0) {
    EXPECT_NEAR(generic_pocd(Strategy::kClone, g, dist, r),
                pocd_clone(p, r), 1e-10)
        << "r=" << r;
    EXPECT_NEAR(generic_pocd(Strategy::kSpeculativeRestart, g, dist, r),
                pocd_s_restart(p, r), 1e-10)
        << "r=" << r;
    EXPECT_NEAR(generic_pocd(Strategy::kSpeculativeResume, g, dist, r),
                pocd_s_resume(p, r), 1e-10)
        << "r=" << r;
  }
}

TEST(Generic, MachineTimeMatchesParetoClosedForms) {
  const auto p = chronos::testing::default_job();
  const auto g = generic_from(p);
  const stats::ParetoDistribution dist(p.t_min, p.beta);
  for (double r = 0.0; r <= 4.0; r += 1.0) {
    EXPECT_NEAR(generic_machine_time(Strategy::kClone, g, dist, r),
                machine_time_clone(p, r),
                1e-5 * machine_time_clone(p, r))
        << "r=" << r;
    EXPECT_NEAR(
        generic_machine_time(Strategy::kSpeculativeRestart, g, dist, r),
        machine_time_s_restart(p, r),
        1e-5 * machine_time_s_restart(p, r))
        << "r=" << r;
    // Generic S-Resume uses the exact winner expectation (see header note).
    EXPECT_NEAR(
        generic_machine_time(Strategy::kSpeculativeResume, g, dist, r),
        machine_time_s_resume_exact(p, r),
        1e-5 * machine_time_s_resume_exact(p, r))
        << "r=" << r;
  }
}

class GenericMonteCarlo
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(GenericMonteCarlo, AnalysisMatchesSimulation) {
  const auto [strategy, dist_index] = GetParam();
  std::unique_ptr<stats::Distribution> dist;
  switch (dist_index) {
    case 0:
      dist = std::make_unique<stats::ShiftedLogNormal>(30.0, 3.2, 0.9);
      break;
    case 1:
      dist = std::make_unique<stats::ShiftedWeibull>(30.0, 45.0, 0.85);
      break;
    default:
      dist = std::make_unique<stats::ShiftedExponential>(30.0, 0.018);
      break;
  }
  GenericJobParams g;
  g.num_tasks = 10;
  g.deadline = 150.0;
  g.tau_est = 40.0;
  g.tau_kill = 80.0;
  g.phi_est = 0.25;

  const long long r = 2;
  const double pocd =
      generic_pocd(strategy, g, *dist, static_cast<double>(r));
  const double machine =
      generic_machine_time(strategy, g, *dist, static_cast<double>(r));
  Rng rng(31 + static_cast<std::uint64_t>(dist_index));
  const auto mc = generic_monte_carlo(strategy, g, *dist, r, 40000, rng);
  EXPECT_NEAR(mc.pocd, pocd, mc.pocd_ci + 0.005)
      << dist->name() << " " << to_string(strategy);
  EXPECT_NEAR(mc.machine_time, machine,
              5.0 * mc.machine_time_sem + 0.01 * machine)
      << dist->name() << " " << to_string(strategy);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GenericMonteCarlo,
    ::testing::Combine(::testing::Values(Strategy::kClone,
                                         Strategy::kSpeculativeRestart,
                                         Strategy::kSpeculativeResume),
                       ::testing::Values(0, 1, 2)));

TEST(Generic, Theorem7OrderingsHoldBeyondPareto) {
  // Clone > S-Restart and S-Resume > S-Restart at equal r, for every
  // distribution (the proof only uses survival monotonicity).
  GenericJobParams g;
  g.num_tasks = 10;
  g.deadline = 150.0;
  g.tau_est = 40.0;
  g.tau_kill = 80.0;
  g.phi_est = 0.25;
  const stats::ShiftedLogNormal lognormal(30.0, 3.2, 0.9);
  const stats::ShiftedWeibull weibull(30.0, 45.0, 0.85);
  const stats::ShiftedExponential expo(30.0, 0.018);
  for (const stats::Distribution* dist :
       {static_cast<const stats::Distribution*>(&lognormal),
        static_cast<const stats::Distribution*>(&weibull),
        static_cast<const stats::Distribution*>(&expo)}) {
    for (double r = 1.0; r <= 4.0; r += 1.0) {
      const double clone = generic_pocd(Strategy::kClone, g, *dist, r);
      const double restart =
          generic_pocd(Strategy::kSpeculativeRestart, g, *dist, r);
      const double resume =
          generic_pocd(Strategy::kSpeculativeResume, g, *dist, r);
      EXPECT_GT(clone, restart) << dist->name() << " r=" << r;
      EXPECT_GT(resume, restart) << dist->name() << " r=" << r;
    }
  }
}

TEST(Generic, OptimizeFindsInteriorOptimum) {
  GenericJobParams g;
  g.num_tasks = 100;
  g.deadline = 150.0;
  g.tau_est = 10.0;
  g.tau_kill = 25.0;
  g.phi_est = 0.1;
  const stats::ShiftedLogNormal dist(30.0, 3.2, 0.9);
  Economics econ;
  econ.price = 0.4;
  econ.theta = 1e-4;
  econ.r_min = 0.0;
  const auto best =
      generic_optimize(Strategy::kSpeculativeResume, g, dist, econ, 32);
  EXPECT_TRUE(best.feasible);
  EXPECT_GT(best.r_opt, 0);
  EXPECT_LT(best.r_opt, 32);
  // Neighbours are not better.
  EXPECT_GE(best.utility, generic_utility(Strategy::kSpeculativeResume, g,
                                          dist, econ, best.r_opt + 1));
  EXPECT_GE(best.utility, generic_utility(Strategy::kSpeculativeResume, g,
                                          dist, econ, best.r_opt - 1));
}

TEST(Generic, ValidateRejectsBadGeometry) {
  const stats::ParetoDistribution dist(30.0, 1.5);
  GenericJobParams g;
  g.num_tasks = 10;
  g.deadline = 20.0;  // below the lower bound
  g.tau_est = 0.0;
  g.tau_kill = 0.0;
  EXPECT_THROW(generic_pocd(Strategy::kClone, g, dist, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace chronos::core
