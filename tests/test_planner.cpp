// Planner: analytic-model mapping and per-job optimization at submission.
#include "trace/planner.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace chronos::trace {
namespace {

TracedJob sample_job() {
  TracedJob job;
  job.submit_time = 1000.0;
  job.spec.job_id = 3;
  job.spec.stage(0).num_tasks = 100;
  job.spec.stage(0).t_min = 30.0;
  job.spec.stage(0).beta = 1.5;
  job.spec.deadline = 180.0;  // 2 x mean (mean = 90)
  return job;
}

TEST(Planner, ToJobParamsMapsFields) {
  PlannerConfig config;
  const auto params =
      to_job_params(sample_job().spec, config,
                    core::Strategy::kSpeculativeRestart);
  EXPECT_EQ(params.num_tasks, 100);
  EXPECT_EQ(params.deadline, 180.0);
  EXPECT_NEAR(params.tau_est, 0.3 * 30.0, 1e-12);
  EXPECT_NEAR(params.tau_kill, 0.8 * 30.0, 1e-12);
  EXPECT_GT(params.phi_est, 0.0);
  EXPECT_LT(params.phi_est, 1.0);
  EXPECT_NO_THROW(params.validate());
}

TEST(Planner, CloneUsesZeroTauEst) {
  PlannerConfig config;
  const auto params =
      to_job_params(sample_job().spec, config, core::Strategy::kClone);
  EXPECT_EQ(params.tau_est, 0.0);
  EXPECT_NEAR(params.tau_kill, 0.8 * 30.0, 1e-12);
}

TEST(Planner, EconomicsUsesBaselinePocdAsRmin) {
  PlannerConfig config;
  const auto spec = sample_job().spec;
  const auto econ = to_economics(spec, config, 0.4);
  core::JobParams baseline;
  baseline.num_tasks = spec.stage(0).num_tasks;
  baseline.deadline = spec.deadline;
  baseline.t_min = spec.stage(0).t_min;
  baseline.beta = spec.stage(0).beta;
  EXPECT_NEAR(econ.r_min, core::pocd_no_speculation(baseline), 1e-12);
  EXPECT_EQ(econ.price, 0.4);
}

TEST(Planner, EconomicsFixedRmin) {
  PlannerConfig config;
  config.r_min_from_baseline = false;
  config.r_min = 0.42;
  const auto econ = to_economics(sample_job().spec, config, 0.4);
  EXPECT_EQ(econ.r_min, 0.42);
}

TEST(Planner, AnalyticStrategyMapping) {
  EXPECT_TRUE(has_analytic_strategy(strategies::PolicyKind::kClone));
  EXPECT_TRUE(has_analytic_strategy(strategies::PolicyKind::kSRestart));
  EXPECT_TRUE(has_analytic_strategy(strategies::PolicyKind::kSResume));
  EXPECT_FALSE(has_analytic_strategy(strategies::PolicyKind::kHadoopNS));
  EXPECT_FALSE(has_analytic_strategy(strategies::PolicyKind::kMantri));
  EXPECT_EQ(analytic_strategy(strategies::PolicyKind::kClone),
            core::Strategy::kClone);
  EXPECT_THROW(analytic_strategy(strategies::PolicyKind::kHadoopS),
               PreconditionError);
}

TEST(Planner, PlanJobFillsChronosFields) {
  auto job = sample_job();
  PlannerConfig config;
  const SpotPriceModel prices;
  const auto result =
      plan_job(job, strategies::PolicyKind::kSResume, config, prices);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(job.spec.price, 0.0);
  EXPECT_EQ(job.spec.price, prices.price_at(1000.0));
  EXPECT_EQ(job.spec.stage(0).r, result.r_opt);
  EXPECT_GT(job.spec.stage(0).r, 0);  // deadline-sensitive job wants speculation
  EXPECT_NEAR(job.spec.stage(0).tau_est, 9.0, 1e-12);
  EXPECT_NEAR(job.spec.stage(0).tau_kill, 24.0, 1e-12);
}

TEST(Planner, BaselinePoliciesGetPriceOnly) {
  auto job = sample_job();
  PlannerConfig config;
  const SpotPriceModel prices;
  const auto result =
      plan_job(job, strategies::PolicyKind::kMantri, config, prices);
  EXPECT_EQ(job.spec.stage(0).r, 0);
  EXPECT_GT(job.spec.price, 0.0);
  EXPECT_EQ(result.r_opt, 0);
}

TEST(Planner, HigherThetaNeverIncreasesR) {
  const SpotPriceModel prices;
  for (const auto policy :
       {strategies::PolicyKind::kClone, strategies::PolicyKind::kSResume}) {
    long long prev_r = 1 << 20;
    for (const double theta : {1e-6, 1e-5, 1e-4, 1e-3}) {
      auto job = sample_job();
      PlannerConfig config;
      config.theta = theta;
      plan_job(job, policy, config, prices);
      EXPECT_LE(job.spec.stage(0).r, prev_r) << "theta=" << theta;
      prev_r = job.spec.stage(0).r;
    }
  }
}

TEST(Planner, PlanTracePlansEveryJob) {
  TraceConfig trace_config;
  trace_config.num_jobs = 30;
  trace_config.mean_tasks = 50.0;
  auto jobs = generate_trace(trace_config);
  PlannerConfig config;
  const SpotPriceModel prices;
  plan_trace(jobs, strategies::PolicyKind::kSRestart, config, prices);
  for (const auto& job : jobs) {
    EXPECT_GT(job.spec.price, 0.0);
    EXPECT_GT(job.spec.stage(0).tau_kill, job.spec.stage(0).tau_est);
    EXPECT_NO_THROW(job.spec.validate());
  }
}

}  // namespace
}  // namespace chronos::trace
