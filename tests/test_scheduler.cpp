// Scheduler lifecycle tests: attempt execution, kills, container accounting,
// machine-time accrual, and metrics.
#include "mapreduce/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "strategies/policies.h"

namespace chronos::mapreduce {
namespace {

JobSpec small_job(int tasks = 4) {
  JobSpec spec;
  spec.job_id = 0;
  spec.stage(0).num_tasks = tasks;
  spec.deadline = 120.0;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.5;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.price = 2.0;
  return spec;
}

struct Rig {
  sim::Simulator simulator;
  sim::Cluster cluster;
  strategies::HadoopNoSpeculation policy;
  Scheduler scheduler;

  explicit Rig(int nodes = 4, int containers = 8, std::uint64_t seed = 1)
      : cluster(sim::ClusterConfig::uniform(
            nodes, [&] {
              sim::NodeConfig node;
              node.containers = containers;
              return node;
            }())),
        scheduler(simulator, cluster, policy, SchedulerConfig{}, Rng(seed)) {}
};

TEST(Scheduler, SingleJobRunsToCompletion) {
  Rig rig;
  rig.scheduler.submit(small_job());
  rig.simulator.run();
  const auto& job = rig.scheduler.job(0);
  EXPECT_TRUE(job.done);
  EXPECT_EQ(job.tasks_completed, 4);
  EXPECT_EQ(rig.scheduler.metrics().jobs(), 1u);
}

TEST(Scheduler, CompletionTimeIsMaxTaskTime) {
  Rig rig;
  rig.scheduler.submit(small_job());
  rig.simulator.run();
  const auto& job = rig.scheduler.job(0);
  double max_task = 0.0;
  for (const auto& task : job.tasks) {
    EXPECT_TRUE(task.completed);
    max_task = std::max(max_task, task.completion_time);
  }
  EXPECT_NEAR(job.completion_time, max_task, 1e-9);
  EXPECT_GE(job.completion_time, 30.0);  // every attempt takes >= t_min
}

TEST(Scheduler, MachineTimeEqualsSumOfAttemptDurations) {
  Rig rig;
  rig.scheduler.submit(small_job());
  rig.simulator.run();
  const auto& job = rig.scheduler.job(0);
  double sum = 0.0;
  for (const auto& attempt : job.attempts) {
    EXPECT_TRUE(attempt.ended());
    sum += attempt.end_time - attempt.launch_time;
  }
  EXPECT_NEAR(job.machine_time, sum, 1e-9);
  EXPECT_GE(job.machine_time, 4 * 30.0);
}

TEST(Scheduler, OutcomeCostUsesPrice) {
  Rig rig;
  rig.scheduler.submit(small_job());
  rig.simulator.run();
  const auto& outcome = rig.scheduler.metrics().outcomes().front();
  const auto& job = rig.scheduler.job(0);
  EXPECT_NEAR(outcome.cost, 2.0 * job.machine_time, 1e-9);
  EXPECT_EQ(outcome.met_deadline,
            job.completion_time <= job.spec.deadline);
}

TEST(Scheduler, AllContainersReleasedAtEnd) {
  Rig rig;
  rig.scheduler.submit(small_job(16));
  rig.simulator.run();
  EXPECT_EQ(rig.cluster.busy_containers(), 0);
  EXPECT_EQ(rig.cluster.pending_requests(), 0u);
}

TEST(Scheduler, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Rig rig(4, 8, seed);
    rig.scheduler.submit(small_job(8));
    rig.simulator.run();
    return rig.scheduler.job(0).completion_time;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Scheduler, QueuesWhenClusterSaturated) {
  Rig rig(1, 2);  // 2 containers, 6 tasks
  rig.scheduler.submit(small_job(6));
  rig.simulator.run();
  const auto& job = rig.scheduler.job(0);
  EXPECT_TRUE(job.done);
  // With only 2 containers, later attempts must have waited: their launch
  // time exceeds their request time.
  bool queued = false;
  for (const auto& attempt : job.attempts) {
    queued = queued || attempt.launch_time > attempt.request_time;
  }
  EXPECT_TRUE(queued);
}

TEST(Scheduler, JvmStartupDelaysProgress) {
  Rig rig;
  auto spec = small_job(1);
  spec.jvm_mean = 5.0;
  spec.jvm_jitter = 0.0;
  rig.scheduler.submit(spec);
  rig.simulator.run();
  const auto& attempt = rig.scheduler.job(0).attempts.front();
  EXPECT_GT(attempt.jvm_time, 0.0);
  EXPECT_NEAR(attempt.end_time,
              attempt.launch_time + attempt.jvm_time + attempt.work_duration,
              1e-9);
}

/// Policy used to exercise kills and sibling completion from tests.
class KillAtTime final : public SpeculationPolicy {
 public:
  std::string name() const override { return "test-kill"; }
  int initial_attempts(const JobSpec&, int) const override { return 2; }
  void on_job_start(int job, SchedulerApi& api) override {
    api.schedule_after(1.0, [job, &api] {
      // Kill the second attempt of task 0 early.
      const auto active = api.active_attempts(job, 0);
      if (active.size() > 1) {
        api.kill_attempt(job, active.back());
      }
    });
  }
};

TEST(Scheduler, PolicyKillsAreAccounted) {
  sim::Simulator simulator;
  sim::NodeConfig node;
  node.containers = 16;
  sim::Cluster cluster(sim::ClusterConfig::uniform(2, node));
  KillAtTime policy;
  Scheduler scheduler(simulator, cluster, policy, SchedulerConfig{}, Rng(3));
  scheduler.submit(small_job(2));
  simulator.run();
  const auto& job = scheduler.job(0);
  EXPECT_TRUE(job.done);
  // 2 tasks x 2 attempts launched; at least the killed one plus the loser
  // of task 1 are killed.
  EXPECT_EQ(job.attempts_launched, 4);
  EXPECT_GE(job.attempts_killed, 2);
  // Task 0 still completed via its surviving attempt.
  EXPECT_TRUE(job.tasks[0].completed);
}

TEST(Scheduler, SiblingAttemptsKilledOnTaskCompletion) {
  sim::Simulator simulator;
  sim::NodeConfig node;
  node.containers = 16;
  sim::Cluster cluster(sim::ClusterConfig::uniform(2, node));
  strategies::Clone policy;
  auto spec = small_job(3);
  spec.stage(0).r = 2;  // 3 attempts per task
  spec.stage(0).tau_kill = 1e9;  // never reap: completion does the killing
  Scheduler scheduler(simulator, cluster, policy, SchedulerConfig{}, Rng(5));
  scheduler.submit(spec);
  simulator.run();
  const auto& job = scheduler.job(0);
  EXPECT_EQ(job.attempts_launched, 9);
  EXPECT_EQ(job.attempts_killed, 6);  // 2 losers per task
  for (const auto& task : job.tasks) {
    int finished = 0;
    for (const int id : task.attempt_ids) {
      finished +=
          job.attempts[static_cast<std::size_t>(id)].state ==
                  AttemptState::kFinished
              ? 1
              : 0;
    }
    EXPECT_EQ(finished, 1);
  }
}

TEST(Scheduler, RejectsInvalidSpec) {
  Rig rig;
  auto spec = small_job();
  spec.stage(0).num_tasks = 0;
  EXPECT_THROW(rig.scheduler.submit(spec), PreconditionError);
}

TEST(Scheduler, MultipleJobsInterleave) {
  Rig rig(8, 8);
  rig.scheduler.submit(small_job(4));
  auto second = small_job(4);
  second.job_id = 1;
  second.price = 1.0;
  rig.scheduler.submit(second);
  rig.simulator.run();
  EXPECT_EQ(rig.scheduler.metrics().jobs(), 2u);
  // Outcomes are recorded in completion order; both jobs must be present.
  std::vector<int> ids;
  for (const auto& outcome : rig.scheduler.metrics().outcomes()) {
    ids.push_back(outcome.job_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace chronos::mapreduce
