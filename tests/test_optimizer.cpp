// Algorithm 1 (Theorem 9): the hybrid optimizer must return the global
// optimum; validated against an exhaustive scan over a parameter grid.
#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "core/thresholds.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_econ;
using chronos::testing::default_job;

TEST(Optimizer, AgreesWithBruteForceOnDefaultJob) {
  const auto p = default_job();
  const auto e = default_econ();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    const auto fast = optimize(s, p, e);
    const auto slow = brute_force_optimize(s, p, e);
    EXPECT_EQ(fast.r_opt, slow.r_opt) << to_string(s);
    EXPECT_NEAR(fast.best.utility, slow.best.utility, 1e-12) << to_string(s);
  }
}

struct GridCase {
  Strategy strategy;
  int num_tasks;
  double beta;
  double deadline;
  double theta;
  double r_min;
};

class OptimizerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(OptimizerGrid, MatchesBruteForce) {
  const auto& c = GetParam();
  auto p = default_job();
  p.num_tasks = c.num_tasks;
  p.beta = c.beta;
  p.deadline = c.deadline;
  auto e = default_econ();
  e.theta = c.theta;
  e.r_min = c.r_min;
  OptimizerOptions options;
  options.max_r = 512;

  const auto fast = optimize(c.strategy, p, e, options);
  const auto slow = brute_force_optimize(c.strategy, p, e, options);
  EXPECT_EQ(fast.feasible, slow.feasible);
  if (fast.feasible) {
    // Utilities must match exactly (same global optimum); r may only differ
    // on exact ties.
    EXPECT_NEAR(fast.best.utility, slow.best.utility, 1e-10)
        << to_string(c.strategy) << " N=" << c.num_tasks
        << " beta=" << c.beta << " D=" << c.deadline
        << " theta=" << c.theta << " rmin=" << c.r_min
        << " fast r=" << fast.r_opt << " slow r=" << slow.r_opt;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerGrid,
    ::testing::ValuesIn([] {
      std::vector<GridCase> cases;
      for (const Strategy s :
           {Strategy::kClone, Strategy::kSpeculativeRestart,
            Strategy::kSpeculativeResume}) {
        for (const int n : {1, 10, 200}) {
          for (const double beta : {1.2, 1.6}) {
            for (const double d : {95.0, 150.0}) {
              for (const double theta : {1e-6, 1e-4, 1e-3}) {
                for (const double r_min : {0.0, 0.5}) {
                  cases.push_back(GridCase{s, n, beta, d, theta, r_min});
                }
              }
            }
          }
        }
      }
      return cases;
    }()));

TEST(Optimizer, FewerEvaluationsThanBruteForce) {
  const auto p = default_job();
  const auto e = default_econ();
  OptimizerOptions options;
  options.max_r = 4096;
  const auto fast = optimize(Strategy::kClone, p, e, options);
  EXPECT_LT(fast.evaluations, 200);
}

TEST(Optimizer, InfeasibleWhenRminUnreachable) {
  auto p = default_job();
  auto e = default_econ();
  // PoCD can approach 1 but never reach it; r_min extremely close to 1 with
  // a small max_r makes the problem infeasible.
  e.r_min = 1.0 - 1e-15;
  OptimizerOptions options;
  options.max_r = 2;
  const auto result = optimize(Strategy::kSpeculativeRestart, p, e, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.r_opt, 0);
  EXPECT_TRUE(std::isinf(result.best.utility));
}

TEST(Optimizer, HighThetaPushesRToZero) {
  const auto p = default_job();
  auto e = default_econ();
  e.theta = 10.0;  // cost utterly dominates
  const auto result = optimize(Strategy::kClone, p, e);
  EXPECT_EQ(result.r_opt, 0);
}

TEST(Optimizer, LowThetaPushesRUp) {
  const auto p = default_job();
  auto low = default_econ();
  low.theta = 1e-6;
  auto high = default_econ();
  high.theta = 1e-3;
  const auto r_low = optimize(Strategy::kClone, p, low).r_opt;
  const auto r_high = optimize(Strategy::kClone, p, high).r_opt;
  EXPECT_GE(r_low, r_high);
  EXPECT_GT(r_low, 0);
}

TEST(Optimizer, GammaReportedMatchesThreshold) {
  const auto p = default_job();
  const auto e = default_econ();
  const auto result = optimize(Strategy::kClone, p, e);
  EXPECT_NEAR(result.gamma, gamma_threshold(Strategy::kClone, p), 1e-12);
}

TEST(Optimizer, RejectsNegativeMaxR) {
  const auto p = default_job();
  const auto e = default_econ();
  OptimizerOptions options;
  options.max_r = -1;
  EXPECT_THROW(optimize(Strategy::kClone, p, e, options), PreconditionError);
}

TEST(OptimizeAll, PicksBestStrategy) {
  const auto p = default_job();
  const auto e = default_econ();
  const auto best = optimize_all(p, e);
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    const auto result = optimize(s, p, e);
    EXPECT_GE(best.result.best.utility, result.best.utility - 1e-12)
        << to_string(s);
  }
}

// --- AnalyticContext + memoization -----------------------------------------

TEST(AnalyticContext, BitIdenticalToFreeFunctions) {
  // The context must hoist constants without perturbing a single bit, so
  // switching the optimizer onto it cannot move any planner decision.
  const auto e = default_econ();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    for (const int n : {1, 10, 200}) {
      for (const double beta : {1.2, 1.6}) {
        auto p = default_job();
        p.num_tasks = n;
        p.beta = beta;
        const AnalyticContext ctx(s, p, e);
        for (const double r : {0.0, 1.0, 2.0, 7.0, 33.0}) {
          const auto from_ctx = ctx.evaluate(r);
          const auto from_free = evaluate_utility(s, p, e, r);
          EXPECT_EQ(from_ctx.pocd, from_free.pocd)
              << to_string(s) << " n=" << n << " beta=" << beta << " r=" << r;
          EXPECT_EQ(from_ctx.machine_time, from_free.machine_time)
              << to_string(s) << " n=" << n << " beta=" << beta << " r=" << r;
          EXPECT_EQ(from_ctx.cost, from_free.cost)
              << to_string(s) << " n=" << n << " beta=" << beta << " r=" << r;
          EXPECT_EQ(from_ctx.utility, from_free.utility)
              << to_string(s) << " n=" << n << " beta=" << beta << " r=" << r;
        }
      }
    }
  }
}

TEST(AnalyticContext, GammaMatchesThreshold) {
  const auto p = default_job();
  const auto e = default_econ();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    const AnalyticContext ctx(s, p, e);
    EXPECT_EQ(ctx.gamma(), gamma_threshold(s, p)) << to_string(s);
  }
}

TEST(Optimizer, NeverEvaluatesTheSameRTwice) {
  // The context counts actual utility evaluations; the optimizer reports the
  // number of distinct r values it requested. Equality proves the memo
  // deduplicated every ternary-search revisit on a representative grid.
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    for (const int n : {1, 10, 200}) {
      for (const double theta : {1e-6, 1e-4, 1e-3}) {
        auto p = default_job();
        p.num_tasks = n;
        auto e = default_econ();
        e.theta = theta;
        const AnalyticContext ctx(s, p, e);
        const auto result = optimize(ctx);
        EXPECT_EQ(ctx.evaluations(), result.evaluations)
            << to_string(s) << " n=" << n << " theta=" << theta;
        EXPECT_GE(result.lookups, result.evaluations)
            << to_string(s) << " n=" << n << " theta=" << theta;
      }
    }
  }
}

TEST(Optimizer, MemoizationActuallyDeduplicates) {
  // On the default job the guarded ternary search revisits probe points, so
  // lookups must exceed unique evaluations somewhere on the grid.
  bool any_dedup = false;
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    const auto result = optimize(s, default_job(), default_econ());
    if (result.lookups > result.evaluations) {
      any_dedup = true;
    }
  }
  EXPECT_TRUE(any_dedup);
}

TEST(Optimizer, ContextOverloadMatchesConvenienceOverload) {
  const auto p = default_job();
  const auto e = default_econ();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    const AnalyticContext ctx(s, p, e);
    const auto via_ctx = optimize(ctx);
    const auto via_args = optimize(s, p, e);
    EXPECT_EQ(via_ctx.r_opt, via_args.r_opt) << to_string(s);
    EXPECT_EQ(via_ctx.best.utility, via_args.best.utility) << to_string(s);
    EXPECT_EQ(via_ctx.evaluations, via_args.evaluations) << to_string(s);
  }
}

TEST(OptimizeAll, ResumeWinsOnDefaultJob) {
  // S-Resume dominates on PoCD at equal r and is cheaper than S-Restart;
  // with the default economics it should be the chosen strategy.
  const auto best = optimize_all(default_job(), default_econ());
  EXPECT_EQ(best.strategy, Strategy::kSpeculativeResume);
}

}  // namespace
}  // namespace chronos::core
