#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace chronos::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0.0);
  std::vector<double> times;
  simulator.at(2.0, [&] { times.push_back(simulator.now()); });
  simulator.at(5.0, [&] { times.push_back(simulator.now()); });
  simulator.run();
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
  EXPECT_EQ(simulator.now(), 5.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.at(3.0, [&] {
    simulator.after(2.0, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 10) {
      simulator.after(1.0, chain);
    }
  };
  simulator.after(1.0, chain);
  simulator.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(simulator.now(), 10.0);
  EXPECT_EQ(simulator.events_executed(), 10u);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator simulator;
  std::vector<double> fired;
  for (double t = 1.0; t <= 10.0; t += 1.0) {
    simulator.at(t, [&, t] { fired.push_back(t); });
  }
  simulator.run_until(4.0);
  EXPECT_EQ(fired.size(), 4u);  // events at exactly the limit still fire
  EXPECT_EQ(simulator.pending(), 6u);
  simulator.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, CancelWorksThroughFacade) {
  Simulator simulator;
  bool fired = false;
  const auto id = simulator.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator simulator;
  simulator.at(5.0, [] {});
  simulator.run();
  EXPECT_THROW(simulator.at(4.0, [] {}), PreconditionError);
  EXPECT_THROW(simulator.after(-1.0, [] {}), PreconditionError);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator simulator;
  double fired_at = -1.0;
  simulator.at(3.0, [&] {
    simulator.after(0.0, [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, 3.0);
}

}  // namespace
}  // namespace chronos::sim
