// Fault-tolerant sweep fabric: wire-protocol strictness, fault-plan
// parsing, line transport, ControllerCore failure handling (driven with a
// fake clock — no sockets, no sleeps), full controller+worker socket runs
// under every injected fault, and a sweeprun CLI equivalence check. The
// load-bearing assertion throughout: whatever dies, hangs, or mangles its
// frames, the assembled reports are byte-identical to a single-process
// `--threads 1` run.
#include "fabric/controller.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/numeric.h"
#include "exp/aggregate.h"
#include "exp/checkpoint.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "fabric/fault.h"
#include "fabric/protocol.h"
#include "fabric/transport.h"
#include "fabric/worker.h"
#include "trace/planner.h"

namespace chronos::fabric {
namespace {

using exp::CellAggregate;
using strategies::PolicyKind;

// --- shared fixtures -------------------------------------------------------

/// Same tiny-but-real experiment the sweep tests use: 6 short jobs on a
/// small cluster, 2 policies x 3 axis values = 6 cells.
exp::CellInstance tiny_cell(const exp::SweepPoint& point,
                            std::uint64_t seed) {
  trace::TraceConfig config;
  config.num_jobs = 6;
  config.duration_hours = 0.2;
  config.mean_tasks = 4.0;
  config.max_tasks = 10;
  config.seed = 5;

  auto jobs = generate_trace(config);
  trace::PlannerConfig planner;
  const trace::SpotPriceModel prices;
  plan_trace(jobs, point.policy, planner, prices);

  exp::CellInstance instance;
  instance.set_jobs(std::move(jobs));
  sim::NodeConfig node;
  node.containers = 4;
  instance.config.policy = point.policy;
  instance.config.cluster = sim::ClusterConfig::uniform(4, node);
  instance.config.seed = seed;
  return instance;
}

exp::SweepSpec tiny_spec() {
  exp::SweepSpec spec;
  spec.name = "tiny";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kSResume};
  spec.axes = {{.name = "x", .values = {0.0, 1.0, 2.0}, .labels = {}}};
  spec.replications = 2;
  spec.seed = 33;
  return spec;
}

exp::SweepHooks tiny_hooks() {
  exp::SweepHooks hooks;
  hooks.run = [](const exp::SweepPoint& point, std::uint64_t seed,
                 const exp::SharedCell&) { return tiny_cell(point, seed); };
  return hooks;
}

/// A fixed, valid aggregate whose encoded bytes depend only on `base` —
/// lets fake-clock tests fabricate identical or conflicting results.
CellAggregate sample_aggregate(double base) {
  CellAggregate aggregate;
  aggregate.runs = 3;
  aggregate.jobs = 18;
  aggregate.attempts_launched = 70;
  aggregate.attempts_killed = 12;
  aggregate.attempts_failed = 1;
  aggregate.events_executed = 12345;
  aggregate.pocd = {3, 0.75 + base, 0.1, 0.2484, 0.6, 0.9};
  aggregate.cost = {3, 123.456, 7.5, 18.63, 110.0, 130.5};
  aggregate.machine_time = {3, 0.3, 0.0, 0.0, 0.3, 0.3};
  aggregate.mean_r = {3, 2.5, 0.5, 1.242, 2.0, 3.0};
  aggregate.utility = {2, -std::numeric_limits<double>::infinity(), 0.0,
                       0.0, -std::numeric_limits<double>::infinity(), -0.5};
  return aggregate;
}

std::string entry_line(std::size_t cell, double base = 0.0) {
  return exp::encode_journal_entry({cell, sample_aggregate(base)});
}

// --- protocol --------------------------------------------------------------

std::string with_crc(const std::string& payload) {
  return payload + " crc=" + numeric::hex64(numeric::fnv1a(payload));
}

TEST(FabricProtocol, EveryFrameTypeRoundTrips) {
  std::vector<Frame> frames;
  Frame hello;
  hello.type = FrameType::kHello;
  hello.value = kProtocolVersion;
  hello.fingerprint = "0123abcd";
  hello.name = "worker-1";
  frames.push_back(hello);
  Frame welcome;
  welcome.type = FrameType::kWelcome;
  welcome.worker = 7;
  welcome.value = 500;
  frames.push_back(welcome);
  Frame reject;
  reject.type = FrameType::kReject;
  reject.reason = "fingerprint-mismatch";
  frames.push_back(reject);
  Frame request;
  request.type = FrameType::kRequest;
  request.worker = 7;
  request.value = 4;
  frames.push_back(request);
  Frame lease;
  lease.type = FrameType::kLease;
  lease.lease = 3;
  lease.cells = {0, 2, 5};
  frames.push_back(lease);
  Frame wait;
  wait.type = FrameType::kWait;
  wait.value = 200;
  frames.push_back(wait);
  Frame done;
  done.type = FrameType::kDone;
  frames.push_back(done);
  Frame result;
  result.type = FrameType::kResult;
  result.worker = 7;
  result.lease = 3;
  result.entry = entry_line(11, 0.25);
  frames.push_back(result);
  Frame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.worker = 7;
  heartbeat.value = 9;
  frames.push_back(heartbeat);
  Frame bye;
  bye.type = FrameType::kBye;
  bye.worker = 7;
  frames.push_back(bye);

  for (const Frame& frame : frames) {
    const std::string line = encode_frame(frame);
    const std::optional<Frame> decoded = decode_frame(line);
    ASSERT_TRUE(decoded.has_value()) << line;
    EXPECT_EQ(decoded->type, frame.type) << line;
    EXPECT_EQ(decoded->worker, frame.worker);
    EXPECT_EQ(decoded->lease, frame.lease);
    EXPECT_EQ(decoded->value, frame.value);
    EXPECT_EQ(decoded->fingerprint, frame.fingerprint);
    EXPECT_EQ(decoded->name, frame.name);
    EXPECT_EQ(decoded->reason, frame.reason);
    EXPECT_EQ(decoded->cells, frame.cells);
    EXPECT_EQ(decoded->entry, frame.entry);
    EXPECT_EQ(encode_frame(*decoded), line);
  }
}

TEST(FabricProtocol, ResultFrameEmbedsTheJournalEntryVerbatim) {
  // The controller appends result entries to its journal unchanged; the
  // wire must hand them over byte for byte even though the entry carries
  // its own " crc=" field inside the frame payload.
  Frame result;
  result.type = FrameType::kResult;
  result.worker = 2;
  result.lease = 9;
  result.entry = entry_line(4, 0.5);
  const std::optional<Frame> decoded = decode_frame(encode_frame(result));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->entry, result.entry);
  EXPECT_TRUE(exp::decode_journal_entry(decoded->entry).has_value());
}

TEST(FabricProtocol, RejectsTamperedAndNonCanonicalLines) {
  Frame request;
  request.type = FrameType::kRequest;
  request.worker = 7;
  request.value = 4;
  const std::string line = encode_frame(request);

  // Flip one payload byte: the checksum catches it.
  std::string flipped = line;
  flipped[8] = flipped[8] == '7' ? '8' : '7';
  EXPECT_FALSE(decode_frame(flipped).has_value());

  // Corrupt the checksum itself.
  std::string bad_crc = line;
  bad_crc.back() = bad_crc.back() == '0' ? '1' : '0';
  EXPECT_FALSE(decode_frame(bad_crc).has_value());

  EXPECT_FALSE(decode_frame("").has_value());
  EXPECT_FALSE(decode_frame("request worker=7 want=4").has_value());

  // Valid checksum over an invalid payload: unknown type, reordered
  // fields, non-canonical numbers, bad lease cell lists.
  EXPECT_FALSE(decode_frame(with_crc("ping worker=7")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("request want=4 worker=7")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("request worker=07 want=4")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("request worker=7 want=4 x=1")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("lease id=1 cells=5,2")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("lease id=1 cells=2,2")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("lease id=1 cells=")).has_value());
  EXPECT_FALSE(decode_frame(with_crc("hello v=1 fp= name=w")).has_value());
}

TEST(FabricProtocol, RefusesToEncodeInvalidFrames) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.value = kProtocolVersion;
  hello.fingerprint = "abc";
  hello.name = "two words";  // tokens must be space-free
  EXPECT_THROW(encode_frame(hello), PreconditionError);

  Frame lease;
  lease.type = FrameType::kLease;
  lease.lease = 1;
  lease.cells = {3, 1};  // must be strictly increasing
  EXPECT_THROW(encode_frame(lease), PreconditionError);

  Frame result;
  result.type = FrameType::kResult;
  result.worker = 1;
  result.lease = 1;
  result.entry = "torn\nline";  // embedded newline would break framing
  EXPECT_THROW(encode_frame(result), PreconditionError);

  result.entry = std::string(kMaxFrameBytes, 'x');  // over the frame cap
  EXPECT_THROW(encode_frame(result), PreconditionError);
}

// --- fault plans ------------------------------------------------------------

TEST(FabricFaultPlan, ParsesSpecs) {
  const FaultPlan plan = parse_fault_plan(
      "kill-after=2,hang-after=4,delay-ms=40,drop=3,drop=5,dup=1,torn=7");
  EXPECT_EQ(plan.kill_after_cells, 2u);
  EXPECT_EQ(plan.hang_after_cells, 4u);
  EXPECT_EQ(plan.delay_cell_ms, 40u);
  EXPECT_EQ(plan.drop_frames, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(plan.dup_frames, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(plan.torn_frames, (std::vector<std::uint64_t>{7}));
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(parse_fault_plan("").any());
}

TEST(FabricFaultPlan, RejectsBadSpecs) {
  EXPECT_THROW(parse_fault_plan("explode=1"), PreconditionError);
  EXPECT_THROW(parse_fault_plan("kill-after"), PreconditionError);
  EXPECT_THROW(parse_fault_plan("drop=0"), PreconditionError);
  EXPECT_THROW(parse_fault_plan("dup=zero"), PreconditionError);
}

// --- transport --------------------------------------------------------------

TEST(FabricTransport, ParsesEndpoints) {
  Endpoint endpoint = parse_endpoint("unix:/tmp/fab.sock");
  EXPECT_FALSE(endpoint.tcp);
  EXPECT_EQ(endpoint.path_or_host, "/tmp/fab.sock");
  EXPECT_EQ(endpoint_to_string(endpoint), "unix:/tmp/fab.sock");

  endpoint = parse_endpoint("/tmp/bare.sock");  // bare path = unix
  EXPECT_FALSE(endpoint.tcp);
  EXPECT_EQ(endpoint.path_or_host, "/tmp/bare.sock");

  endpoint = parse_endpoint("tcp:127.0.0.1:9000");
  EXPECT_TRUE(endpoint.tcp);
  EXPECT_EQ(endpoint.path_or_host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 9000);
  EXPECT_EQ(endpoint_to_string(endpoint), "tcp:127.0.0.1:9000");

  EXPECT_THROW(parse_endpoint(""), PreconditionError);
  EXPECT_THROW(parse_endpoint("unix:"), PreconditionError);
  EXPECT_THROW(parse_endpoint("tcp:host"), PreconditionError);
  EXPECT_THROW(parse_endpoint("tcp:host:notaport"), PreconditionError);
  EXPECT_THROW(parse_endpoint("tcp:host:70000"), PreconditionError);
}

TEST(FabricTransport, LineStreamDropsTornTail) {
  const std::string path = testing::TempDir() + "fabric_transport.sock";
  Listener listener(parse_endpoint(path));
  std::unique_ptr<Stream> client = connect_endpoint(listener.local());
  ASSERT_NE(client, nullptr);
  std::unique_ptr<Stream> server = listener.accept(1000);
  ASSERT_NE(server, nullptr);

  EXPECT_TRUE(client->send_line("one"));
  EXPECT_TRUE(client->send_line("two"));
  std::string line;
  EXPECT_EQ(server->recv_line(line, 1000), Stream::Recv::kLine);
  EXPECT_EQ(line, "one");
  EXPECT_TRUE(server->has_buffered_line());
  EXPECT_EQ(server->recv_line(line, 0), Stream::Recv::kLine);
  EXPECT_EQ(line, "two");
  EXPECT_EQ(server->recv_line(line, 0), Stream::Recv::kTimeout);

  // A crash mid-write leaves a half line with no newline: the receiver
  // must report closed, never hand the fragment up as a frame.
  EXPECT_TRUE(client->send_bytes("half-a-fra"));
  client->close();
  EXPECT_EQ(server->recv_line(line, 1000), Stream::Recv::kClosed);
}

// --- controller core (fake clock) ------------------------------------------

std::string hello_line(const std::string& fingerprint = "feedface",
                       std::uint64_t version = kProtocolVersion) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.value = version;
  frame.fingerprint = fingerprint;
  frame.name = "w";
  return encode_frame(frame);
}

std::string request_line(std::uint64_t worker, std::uint64_t want = 2) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.worker = worker;
  frame.value = want;
  return encode_frame(frame);
}

std::string result_line(std::uint64_t worker, std::uint64_t lease,
                        std::size_t cell, double base = 0.0) {
  Frame frame;
  frame.type = FrameType::kResult;
  frame.worker = worker;
  frame.lease = lease;
  frame.entry = entry_line(cell, base);
  return encode_frame(frame);
}

std::string heartbeat_line(std::uint64_t worker, std::uint64_t done = 0) {
  Frame frame;
  frame.type = FrameType::kHeartbeat;
  frame.worker = worker;
  frame.value = done;
  return encode_frame(frame);
}

std::string bye_line(std::uint64_t worker) {
  Frame frame;
  frame.type = FrameType::kBye;
  frame.worker = worker;
  return encode_frame(frame);
}

ControllerConfig core_config() {
  ControllerConfig config;
  config.fingerprint = "feedface";
  config.num_cells = 8;
  config.todo = {0, 1, 2, 3, 4, 5};
  config.max_lease_cells = 2;
  config.heartbeat_ms = 100;
  config.lease_timeout_ms = 1000;
  config.worker_timeout_ms = 5000;
  config.wait_hint_ms = 50;
  return config;
}

/// The first frame an Actions batch sends; fails the test when absent.
Frame sent_frame(const Actions& actions, std::size_t index = 0) {
  const std::optional<Frame> frame =
      decode_frame(actions.send.at(index).second);
  EXPECT_TRUE(frame.has_value());
  return frame.value_or(Frame{});
}

/// Connects + hellos one worker, returning its assigned id.
std::uint64_t join_worker(ControllerCore& core, ConnId conn,
                          std::uint64_t now) {
  core.on_connect(conn, now);
  const Frame welcome = sent_frame(core.on_line(conn, hello_line(), now));
  EXPECT_EQ(welcome.type, FrameType::kWelcome);
  return welcome.worker;
}

TEST(ControllerCore, LeasesCellsAndCompletesWithConservation) {
  ControllerCore core(core_config());
  core.start(0);
  std::size_t journaled = 0;
  core.on_cell_finished = [&](const exp::JournalEntry&) { journaled += 1; };
  const std::uint64_t w1 = join_worker(core, 1, 0);
  ASSERT_NE(w1, 0u);

  std::uint64_t now = 10;
  while (!core.done()) {
    const Frame reply =
        sent_frame(core.on_line(1, request_line(w1), now));
    ASSERT_EQ(reply.type, FrameType::kLease);
    EXPECT_FALSE(reply.cells.empty());
    EXPECT_LE(reply.cells.size(), 2u);
    for (const std::uint64_t cell : reply.cells) {
      core.on_line(1, result_line(w1, reply.lease, cell), now);
      now += 10;
    }
  }
  const Frame done = sent_frame(core.on_line(1, request_line(w1), now));
  EXPECT_EQ(done.type, FrameType::kDone);

  EXPECT_EQ(core.finished().size(), 6u);
  EXPECT_EQ(journaled, 6u);
  EXPECT_EQ(core.stats().results, 6u);
  EXPECT_EQ(core.stats().leases_granted, 3u);
  EXPECT_EQ(core.stats().duplicates, 0u);
  EXPECT_EQ(core.stats().cells_reassigned, 0u);
  EXPECT_EQ(core.stats().workers_joined, 1u);
  EXPECT_EQ(core.stats().workers_lost, 0u);
  EXPECT_FALSE(core.failed());
}

TEST(ControllerCore, RejectsWrongFingerprintAndVersion) {
  ControllerCore core(core_config());
  core.start(0);
  core.on_connect(1, 0);
  Actions actions = core.on_line(1, hello_line("badfp"), 0);
  Frame reject = sent_frame(actions);
  EXPECT_EQ(reject.type, FrameType::kReject);
  EXPECT_EQ(reject.reason, "fingerprint-mismatch");
  EXPECT_EQ(actions.close, std::vector<ConnId>{1});

  core.on_connect(2, 0);
  actions = core.on_line(2, hello_line("feedface", kProtocolVersion + 1), 0);
  reject = sent_frame(actions);
  EXPECT_EQ(reject.type, FrameType::kReject);
  EXPECT_EQ(reject.reason, "version-mismatch");
  EXPECT_EQ(core.live_workers(), 0u);
  EXPECT_EQ(core.stats().workers_joined, 0u);
}

TEST(ControllerCore, DuplicateHelloIsIdempotent) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  // A dup-frame fault or a worker retry re-sends hello: same welcome, no
  // second worker.
  const Frame again = sent_frame(core.on_line(1, hello_line(), 5));
  EXPECT_EQ(again.type, FrameType::kWelcome);
  EXPECT_EQ(again.worker, w1);
  EXPECT_EQ(core.stats().workers_joined, 1u);
  EXPECT_EQ(core.live_workers(), 1u);
}

TEST(ControllerCore, HeartbeatDeadlineExpiresWorkerAndReassigns) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1), 0));
  ASSERT_EQ(lease.type, FrameType::kLease);
  ASSERT_EQ(lease.cells, (std::vector<std::uint64_t>{0, 1}));
  core.on_line(1, heartbeat_line(w1), 400);
  EXPECT_TRUE(core.on_tick(500).close.empty());  // 100 ms silent: fine

  // 1100 ms of silence beats the 1000 ms lease timeout: cut it loose.
  const Actions expiry = core.on_tick(1500);
  EXPECT_EQ(expiry.close, std::vector<ConnId>{1});
  EXPECT_EQ(core.stats().leases_expired, 1u);
  EXPECT_EQ(core.stats().cells_reassigned, 2u);
  EXPECT_EQ(core.stats().workers_lost, 1u);
  EXPECT_EQ(core.live_workers(), 0u);

  // The expired cells lead the queue: the next worker inherits them first.
  const std::uint64_t w2 = join_worker(core, 2, 1500);
  const Frame retry = sent_frame(core.on_line(2, request_line(w2), 1500));
  ASSERT_EQ(retry.type, FrameType::kLease);
  EXPECT_EQ(retry.cells, (std::vector<std::uint64_t>{0, 1}));
}

TEST(ControllerCore, RequestWithOutstandingLeaseRevokesIt) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1), 0));
  ASSERT_EQ(lease.cells, (std::vector<std::uint64_t>{0, 1}));
  core.on_line(1, result_line(w1, lease.lease, 0), 10);

  // The worker asks again while cell 1 is still outstanding — it has
  // provably lost that lease (e.g. our reply was dropped). Cell 1 returns
  // to the front of the queue and is re-granted immediately.
  const Frame retry = sent_frame(core.on_line(1, request_line(w1), 20));
  ASSERT_EQ(retry.type, FrameType::kLease);
  EXPECT_EQ(retry.cells, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(core.stats().cells_reassigned, 1u);
  EXPECT_EQ(core.stats().leases_expired, 0u);  // no timeout involved
}

TEST(ControllerCore, LateResultAfterProgressRevokeDedups) {
  ControllerConfig config = core_config();
  config.progress_timeout_ms = 300;
  ControllerCore core(config);
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1), 0));
  ASSERT_EQ(lease.cells, (std::vector<std::uint64_t>{0, 1}));

  // w1 heartbeats but never delivers: wedged, not dead. The progress
  // deadline revokes the lease but keeps the connection.
  core.on_line(1, heartbeat_line(w1), 200);
  EXPECT_TRUE(core.on_tick(350).close.empty());
  EXPECT_EQ(core.stats().leases_expired, 1u);
  EXPECT_EQ(core.stats().cells_reassigned, 2u);
  EXPECT_EQ(core.live_workers(), 1u);

  // w2 inherits and finishes the cells.
  const std::uint64_t w2 = join_worker(core, 2, 400);
  const Frame retry = sent_frame(core.on_line(2, request_line(w2), 400));
  ASSERT_EQ(retry.cells, (std::vector<std::uint64_t>{0, 1}));
  core.on_line(2, result_line(w2, retry.lease, 0), 410);
  core.on_line(2, result_line(w2, retry.lease, 1), 420);
  EXPECT_EQ(core.stats().results, 2u);

  // w1 wakes up and delivers cell 0 after all. Same seed stream => same
  // bytes => a counted duplicate, not a conflict, not a double count.
  core.on_line(1, result_line(w1, lease.lease, 0), 500);
  EXPECT_EQ(core.stats().results, 2u);
  EXPECT_EQ(core.stats().duplicates, 1u);
  EXPECT_FALSE(core.failed());
}

TEST(ControllerCore, ByteDifferentResultForFinishedCellFailsLoudly) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1), 0));
  core.on_line(1, result_line(w1, lease.lease, 0, 0.0), 10);
  // Different bytes for a finished cell can only mean corruption or a
  // foreign workload: poison, not a dedup.
  const Actions actions =
      core.on_line(1, result_line(w1, lease.lease, 0, 0.5), 20);
  EXPECT_TRUE(core.failed());
  EXPECT_NE(core.error().find("conflicting result for cell 0"),
            std::string::npos);
  EXPECT_FALSE(actions.close.empty());
  EXPECT_EQ(core.live_workers(), 0u);
}

TEST(ControllerCore, WaitsWhenAllCellsAreLeasedThenFinishes) {
  ControllerConfig config = core_config();
  config.max_lease_cells = 6;
  ControllerCore core(config);
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1, 6), 0));
  ASSERT_EQ(lease.cells.size(), 6u);

  // Everything is leased out: a second worker is told to come back.
  const std::uint64_t w2 = join_worker(core, 2, 10);
  const Frame wait = sent_frame(core.on_line(2, request_line(w2), 10));
  EXPECT_EQ(wait.type, FrameType::kWait);
  EXPECT_EQ(wait.value, config.wait_hint_ms);

  for (const std::uint64_t cell : lease.cells) {
    core.on_line(1, result_line(w1, lease.lease, cell), 20);
  }
  EXPECT_TRUE(core.done());
  const Frame done = sent_frame(core.on_line(2, request_line(w2), 30));
  EXPECT_EQ(done.type, FrameType::kDone);
}

TEST(ControllerCore, MidSweepJoinerSharesTheGrid) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame first = sent_frame(core.on_line(1, request_line(w1), 0));
  ASSERT_EQ(first.cells, (std::vector<std::uint64_t>{0, 1}));

  const std::uint64_t w2 = join_worker(core, 2, 100);
  const Frame second = sent_frame(core.on_line(2, request_line(w2), 100));
  ASSERT_EQ(second.type, FrameType::kLease);
  EXPECT_EQ(second.cells, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(core.stats().workers_joined, 2u);
}

TEST(ControllerCore, FailsAfterWorkerDrought) {
  ControllerCore core(core_config());
  core.start(0);
  EXPECT_TRUE(core.on_tick(4000).close.empty());
  EXPECT_FALSE(core.failed());
  core.on_tick(5001);  // worker_timeout_ms = 5000, none ever connected
  EXPECT_TRUE(core.failed());
  EXPECT_NE(core.error().find("no live worker"), std::string::npos);
}

TEST(ControllerCore, DroughtClockRestartsAfterLastWorkerLeaves) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  for (std::uint64_t now = 500; now <= 3000; now += 500) {
    core.on_line(1, heartbeat_line(w1), now);  // stays live the whole time
  }
  core.on_tick(3000);       // alive: the drought clock follows along
  core.on_disconnect(1, 3100);
  EXPECT_EQ(core.stats().workers_lost, 1u);
  core.on_tick(7900);       // 4900 ms without workers: still within budget
  EXPECT_FALSE(core.failed());
  core.on_tick(8100);       // 5100 ms: drought
  EXPECT_TRUE(core.failed());
}

TEST(ControllerCore, MalformedLineDropsTheWorkerAndReassigns) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  const Frame lease = sent_frame(core.on_line(1, request_line(w1), 0));
  ASSERT_EQ(lease.cells.size(), 2u);
  const Actions actions = core.on_line(1, "complete garbage", 10);
  EXPECT_EQ(actions.close, std::vector<ConnId>{1});
  EXPECT_EQ(core.stats().protocol_errors, 1u);
  EXPECT_EQ(core.stats().cells_reassigned, 2u);
  EXPECT_EQ(core.live_workers(), 0u);
}

TEST(ControllerCore, WrongWorkerIdAndForeignCellsAreProtocolErrors) {
  ControllerCore core(core_config());
  core.start(0);
  // Requesting before hello is a protocol error.
  core.on_connect(1, 0);
  Actions actions = core.on_line(1, request_line(1), 0);
  EXPECT_EQ(actions.close, std::vector<ConnId>{1});

  // A frame claiming someone else's id is a protocol error.
  const std::uint64_t w2 = join_worker(core, 2, 0);
  actions = core.on_line(2, request_line(w2 + 17), 0);
  EXPECT_EQ(actions.close, std::vector<ConnId>{2});

  // A result for a cell outside the todo set (cell 7 exists in the grid
  // but is not being swept) is a protocol error, not an accepted result.
  const std::uint64_t w3 = join_worker(core, 3, 0);
  const Frame lease = sent_frame(core.on_line(3, request_line(w3), 0));
  actions = core.on_line(3, result_line(w3, lease.lease, 7), 0);
  EXPECT_EQ(actions.close, std::vector<ConnId>{3});
  EXPECT_EQ(core.stats().results, 0u);
  EXPECT_EQ(core.stats().protocol_errors, 3u);
}

TEST(ControllerCore, ByeReturnsCellsWithoutCountingALoss) {
  ControllerCore core(core_config());
  core.start(0);
  const std::uint64_t w1 = join_worker(core, 1, 0);
  sent_frame(core.on_line(1, request_line(w1), 0));
  const Actions actions = core.on_line(1, bye_line(w1), 10);
  EXPECT_EQ(actions.close, std::vector<ConnId>{1});
  EXPECT_EQ(core.stats().cells_reassigned, 2u);
  EXPECT_EQ(core.stats().workers_lost, 0u);  // graceful exit, not a loss
  EXPECT_EQ(core.live_workers(), 0u);
}

TEST(ControllerCore, ValidatesItsConfig) {
  ControllerConfig config = core_config();
  config.fingerprint.clear();
  EXPECT_THROW(ControllerCore{config}, PreconditionError);
  config = core_config();
  config.todo = {0, 2, 1};  // not ascending
  EXPECT_THROW(ControllerCore{config}, PreconditionError);
  config = core_config();
  config.todo = {0, 9};  // out of range
  EXPECT_THROW(ControllerCore{config}, PreconditionError);
  config = core_config();
  config.lease_timeout_ms = config.heartbeat_ms;  // deadline <= beat
  EXPECT_THROW(ControllerCore{config}, PreconditionError);
}

// --- controller + workers over real sockets ---------------------------------

struct FabricRun {
  ControllerRunResult controller;
  std::vector<WorkerOutcome> outcomes;
};

/// Runs a controller and one worker thread per fault plan over a unix
/// socket, to completion. Throws whatever the controller threw.
FabricRun run_fabric(const exp::SweepSpec& spec,
                     const std::vector<FaultPlan>& faults,
                     const std::string& tag,
                     std::uint64_t lease_timeout_ms = 2000,
                     std::uint64_t stagger_ms = 0) {
  const exp::SweepHooks hooks = tiny_hooks();
  const std::string fingerprint = exp::spec_fingerprint(spec);
  const std::string address =
      "unix:" + testing::TempDir() + "fabric_" + tag + ".sock";
  ControllerConfig config;
  config.fingerprint = fingerprint;
  config.num_cells = spec.num_cells();
  for (std::size_t cell = 0; cell < spec.num_cells(); ++cell) {
    config.todo.push_back(cell);
  }
  config.max_lease_cells = 2;
  config.heartbeat_ms = 50;
  config.lease_timeout_ms = lease_timeout_ms;
  config.worker_timeout_ms = 10000;
  config.wait_hint_ms = 50;

  FabricRun run;
  run.outcomes.assign(faults.size(), WorkerOutcome::kLost);
  std::exception_ptr controller_error;
  std::thread controller_thread([&] {
    try {
      run.controller = run_controller(address, config, nullptr, nullptr);
    } catch (...) {
      controller_error = std::current_exception();
    }
  });
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    workers.emplace_back([&, i] {
      if (stagger_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stagger_ms * i));
      }
      WorkerOptions options;
      options.address = address;
      options.fingerprint = fingerprint;
      options.name = "w" + std::to_string(i);
      options.want = 2;
      options.fault = faults[i];
      run.outcomes[i] = run_worker(spec, hooks, options);
    });
  }
  for (std::thread& thread : workers) {
    thread.join();
  }
  controller_thread.join();
  if (controller_error) {
    std::rethrow_exception(controller_error);
  }
  return run;
}

std::string fabric_csv(const exp::SweepSpec& spec, const FabricRun& run) {
  return exp::to_csv(exp::assemble_result(spec, run.controller.cells));
}

std::string single_process_csv(const exp::SweepSpec& spec) {
  return exp::to_csv(exp::run_sweep(spec, tiny_cell, {.threads = 1}));
}

TEST(FabricIntegration, TwoCleanWorkersMatchSingleProcess) {
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(spec, {FaultPlan{}, FaultPlan{}}, "clean");
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kDone);
  EXPECT_EQ(run.outcomes[1], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.results, 6u);
  EXPECT_EQ(run.controller.stats.workers_joined, 2u);
  EXPECT_EQ(run.controller.stats.duplicates, 0u);
  EXPECT_EQ(run.controller.stats.cells_reassigned, 0u);
  EXPECT_EQ(run.controller.stats.workers_lost, 0u);
}

TEST(FabricIntegration, WorkerKilledMidLeaseIsByteIdentical) {
  // The tentpole scenario: one worker crashes (abrupt close, no bye) after
  // its first result, mid-lease. The survivor absorbs the orphaned cells
  // and the assembled report is byte-identical to --threads 1.
  // The survivor is slowed down (100 ms per result) so the faulty worker
  // always wins a lease before the grid runs dry — the scenario stays
  // deterministic instead of racing on scheduler luck.
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(
      spec,
      {parse_fault_plan("kill-after=1"), parse_fault_plan("delay-ms=100")},
      "killed");
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kFaultStop);
  EXPECT_EQ(run.outcomes[1], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.results, 6u);
  EXPECT_GE(run.controller.stats.cells_reassigned, 1u);
  EXPECT_GE(run.controller.stats.workers_lost, 1u);
}

TEST(FabricIntegration, HungWorkerExpiresByHeartbeatDeadline) {
  // The hung worker stops everything — results and heartbeats — while
  // holding a lease. Only the heartbeat deadline can free its cells.
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(
      spec,
      {parse_fault_plan("hang-after=1"), parse_fault_plan("delay-ms=100")},
      "hung", /*lease_timeout_ms=*/400);
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kFaultStop);
  EXPECT_EQ(run.outcomes[1], WorkerOutcome::kDone);
  EXPECT_GE(run.controller.stats.leases_expired, 1u);
  EXPECT_GE(run.controller.stats.cells_reassigned, 1u);
  EXPECT_EQ(run.controller.stats.results, 6u);
}

TEST(FabricIntegration, DroppedResultFrameRecoveredByRevokeOnRequest) {
  // Frame 3 is the worker's first result (hello=1, request=2). It vanishes
  // in transit; nobody times out. The worker's next request reveals the
  // loss and the controller re-leases the cell for a bit-identical rerun.
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run =
      run_fabric(spec, {parse_fault_plan("drop=3")}, "dropped");
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.results, 6u);
  EXPECT_EQ(run.controller.stats.cells_reassigned, 1u);
  EXPECT_EQ(run.controller.stats.duplicates, 0u);
}

TEST(FabricIntegration, DuplicatedResultFrameIsDeduplicated) {
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(spec, {parse_fault_plan("dup=3")}, "dup");
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.results, 6u);
  EXPECT_EQ(run.controller.stats.duplicates, 1u);
}

TEST(FabricIntegration, TornResultFrameNeverCorruptsTheSweep) {
  // The worker crashes mid-write: half a result line, no newline, closed
  // socket. The fragment must be discarded like a torn journal tail — not
  // parsed, not counted — and the cells rerun elsewhere.
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(
      spec,
      {parse_fault_plan("torn=3"), parse_fault_plan("delay-ms=100")},
      "torn");
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kFaultStop);
  EXPECT_EQ(run.outcomes[1], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.results, 6u);
  EXPECT_EQ(run.controller.stats.protocol_errors, 0u);
  EXPECT_GE(run.controller.stats.cells_reassigned, 1u);
}

TEST(FabricIntegration, LateJoinerSharesASlowedSweep) {
  // Worker 0 starts alone (each result delayed 150 ms, so the sweep is
  // still far from done); worker 1 joins 250 ms in and must be welcomed
  // and leased cells mid-sweep.
  const exp::SweepSpec spec = tiny_spec();
  const FabricRun run = run_fabric(
      spec, {parse_fault_plan("delay-ms=150"), parse_fault_plan("delay-ms=150")},
      "late", /*lease_timeout_ms=*/2000, /*stagger_ms=*/250);
  EXPECT_EQ(fabric_csv(spec, run), single_process_csv(spec));
  EXPECT_EQ(run.outcomes[0], WorkerOutcome::kDone);
  EXPECT_EQ(run.outcomes[1], WorkerOutcome::kDone);
  EXPECT_EQ(run.controller.stats.workers_joined, 2u);
  EXPECT_EQ(run.controller.stats.results, 6u);
}

TEST(FabricIntegration, ControllerFailsWhenNoWorkerEverConnects) {
  const exp::SweepSpec spec = tiny_spec();
  ControllerConfig config;
  config.fingerprint = exp::spec_fingerprint(spec);
  config.num_cells = spec.num_cells();
  for (std::size_t cell = 0; cell < spec.num_cells(); ++cell) {
    config.todo.push_back(cell);
  }
  config.heartbeat_ms = 50;
  config.lease_timeout_ms = 200;
  config.worker_timeout_ms = 300;
  const std::string address =
      "unix:" + testing::TempDir() + "fabric_noworkers.sock";
  EXPECT_THROW(run_controller(address, config, nullptr, nullptr),
               PreconditionError);
}

TEST(FabricIntegration, WrongFingerprintWorkerIsRejectedNotServed) {
  const exp::SweepSpec spec = tiny_spec();
  const exp::SweepHooks hooks = tiny_hooks();
  const std::string fingerprint = exp::spec_fingerprint(spec);
  const std::string address =
      "unix:" + testing::TempDir() + "fabric_reject.sock";
  ControllerConfig config;
  config.fingerprint = fingerprint;
  config.num_cells = spec.num_cells();
  for (std::size_t cell = 0; cell < spec.num_cells(); ++cell) {
    config.todo.push_back(cell);
  }
  config.heartbeat_ms = 50;
  config.lease_timeout_ms = 2000;
  config.worker_timeout_ms = 10000;

  ControllerRunResult result;
  std::exception_ptr controller_error;
  std::thread controller_thread([&] {
    try {
      result = run_controller(address, config, nullptr, nullptr);
    } catch (...) {
      controller_error = std::current_exception();
    }
  });
  WorkerOptions imposter;
  imposter.address = address;
  imposter.fingerprint = "deadbeef";  // a different sweep's journal bytes
  imposter.name = "imposter";
  const WorkerOutcome rejected = run_worker(spec, hooks, imposter);
  WorkerOptions honest;
  honest.address = address;
  honest.fingerprint = fingerprint;
  honest.name = "honest";
  const WorkerOutcome done = run_worker(spec, hooks, honest);
  controller_thread.join();
  if (controller_error) {
    std::rethrow_exception(controller_error);
  }
  EXPECT_EQ(rejected, WorkerOutcome::kRejected);
  EXPECT_EQ(worker_exit_code(rejected), 2);
  EXPECT_EQ(done, WorkerOutcome::kDone);
  EXPECT_EQ(result.stats.results, 6u);
  EXPECT_EQ(result.stats.workers_joined, 1u);
}

// --- sweeprun CLI ------------------------------------------------------------

struct CommandResult {
  int status = -1;
  std::string output;  ///< stdout + stderr
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int raw = pclose(pipe);
  result.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FabricCli, ControllerAndFaultyWorkersMatchSingleProcessByteForByte) {
  const std::string dir = testing::TempDir() + "fabric_cli";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string sweeprun = CHRONOS_SWEEPRUN_BIN;
  const std::string manifest =
      std::string(CHRONOS_MANIFEST_DIR) + "/tiny.ini";
  const std::string sock = dir + "/fab.sock";

  const CommandResult single = run_command(
      sweeprun + " " + manifest + " --threads 1 --fresh --journal " + dir +
      "/single.journal --csv " + dir + "/single.csv");
  ASSERT_EQ(single.status, 0) << single.output;

  CommandResult controller;
  std::thread controller_thread([&] {
    controller = run_command(
        sweeprun + " " + manifest + " --controller unix:" + sock +
        " --fresh --journal " + dir + "/fab.journal --csv " + dir +
        "/fab.csv --heartbeat-ms 50 --lease-timeout-ms 1000");
  });
  CommandResult steady;
  CommandResult killed;
  // The steady worker is slowed per result so the faulty one always wins a
  // lease (and so crashes as planned) before the grid runs dry.
  std::thread steady_thread([&] {
    steady = run_command(sweeprun + " " + manifest + " --worker unix:" +
                         sock + " --name steady --fault delay-ms=100");
  });
  std::thread killed_thread([&] {
    killed = run_command(sweeprun + " " + manifest + " --worker unix:" +
                         sock + " --name killed --fault kill-after=1");
  });
  steady_thread.join();
  killed_thread.join();
  controller_thread.join();

  EXPECT_EQ(controller.status, 0) << controller.output;
  EXPECT_EQ(steady.status, 0) << steady.output;
  EXPECT_EQ(killed.status, 3) << killed.output;  // planned fault stop

  const std::string expected = slurp(dir + "/single.csv");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(slurp(dir + "/fab.csv"), expected);
}

}  // namespace
}  // namespace chronos::fabric
