// Net utility (Eq. 23) and the Theorem-8 concavity thresholds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/cost.h"
#include "core/pocd.h"
#include "core/thresholds.h"
#include "core/utility.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_econ;
using chronos::testing::default_job;

TEST(UtilityShaping, LogBase10) {
  EXPECT_NEAR(utility_shaping(1.0), 0.0, 1e-12);
  EXPECT_NEAR(utility_shaping(0.1), -1.0, 1e-12);
  EXPECT_NEAR(utility_shaping(100.0), 2.0, 1e-12);
}

TEST(UtilityShaping, NegativeInfinityAtOrBelowZero) {
  EXPECT_TRUE(std::isinf(utility_shaping(0.0)));
  EXPECT_LT(utility_shaping(0.0), 0.0);
  EXPECT_TRUE(std::isinf(utility_shaping(-0.5)));
}

TEST(EvaluateUtility, CombinesPocdAndCost) {
  const auto p = default_job();
  const auto e = default_econ();
  const auto point = evaluate_utility(Strategy::kClone, p, e, 2.0);
  EXPECT_NEAR(point.pocd, pocd_clone(p, 2.0), 1e-12);
  EXPECT_NEAR(point.machine_time, machine_time_clone(p, 2.0), 1e-12);
  EXPECT_NEAR(point.cost, e.price * point.machine_time, 1e-12);
  EXPECT_NEAR(point.utility,
              std::log10(point.pocd - e.r_min) - e.theta * point.cost, 1e-12);
}

TEST(EvaluateUtility, InfeasibleWhenPocdBelowRmin) {
  const auto p = default_job();
  auto e = default_econ();
  e.r_min = 0.999;  // unreachable with r = 0
  const auto point = evaluate_utility(Strategy::kClone, p, e, 0.0);
  EXPECT_TRUE(std::isinf(point.utility));
  EXPECT_LT(point.utility, 0.0);
}

TEST(Thresholds, CloneMatchesClosedForm) {
  const auto p = default_job();
  const double base = p.t_min / p.deadline;
  const double expected =
      -std::log(static_cast<double>(p.num_tasks)) / std::log(base) / p.beta -
      1.0;
  EXPECT_NEAR(gamma_clone(p), expected, 1e-12);
}

TEST(Thresholds, TypicallySmall) {
  // The paper notes Gamma contains "typically less than 4" integer points.
  const auto p = default_job();
  EXPECT_LT(gamma_clone(p), 4.0);
  EXPECT_LT(gamma_s_restart(p), 4.0);
  EXPECT_LT(gamma_s_resume(p), 6.0);
}

TEST(Thresholds, ConcaveStartNonNegative) {
  const auto p = default_job();
  for (const Strategy s : {Strategy::kClone, Strategy::kSpeculativeRestart,
                           Strategy::kSpeculativeResume}) {
    EXPECT_GE(concave_start(s, p), 0);
    EXPECT_GE(static_cast<double>(concave_start(s, p)),
              gamma_threshold(s, p));
  }
}

TEST(Thresholds, DispatchConsistent) {
  const auto p = default_job();
  EXPECT_EQ(gamma_threshold(Strategy::kClone, p), gamma_clone(p));
  EXPECT_EQ(gamma_threshold(Strategy::kSpeculativeRestart, p),
            gamma_s_restart(p));
  EXPECT_EQ(gamma_threshold(Strategy::kSpeculativeResume, p),
            gamma_s_resume(p));
}

// --- Theorem 8: numerical concavity beyond Gamma ---------------------------

struct ConcavityCase {
  Strategy strategy;
  double beta;
  double deadline;
  int num_tasks;
};

class UtilityConcavity : public ::testing::TestWithParam<ConcavityCase> {};

TEST_P(UtilityConcavity, SecondDifferenceNonPositiveBeyondGamma) {
  const auto& c = GetParam();
  auto p = default_job();
  p.beta = c.beta;
  p.deadline = c.deadline;
  p.num_tasks = c.num_tasks;
  auto e = default_econ();
  e.r_min = 0.0;  // keep the log term finite over the scan

  const long long start = concave_start(c.strategy, p);
  const auto u = [&](long long r) {
    return evaluate_utility(c.strategy, p, e, static_cast<double>(r)).utility;
  };
  for (long long r = start; r < start + 12; ++r) {
    const double second = u(r + 2) - 2.0 * u(r + 1) + u(r);
    EXPECT_LE(second, 1e-7)
        << to_string(c.strategy) << " r=" << r << " beta=" << c.beta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UtilityConcavity,
    ::testing::Values(
        ConcavityCase{Strategy::kClone, 1.2, 100.0, 10},
        ConcavityCase{Strategy::kClone, 1.5, 150.0, 50},
        ConcavityCase{Strategy::kClone, 1.8, 90.0, 200},
        ConcavityCase{Strategy::kSpeculativeRestart, 1.2, 100.0, 10},
        ConcavityCase{Strategy::kSpeculativeRestart, 1.5, 150.0, 50},
        ConcavityCase{Strategy::kSpeculativeRestart, 1.8, 90.0, 200},
        ConcavityCase{Strategy::kSpeculativeResume, 1.2, 100.0, 10},
        ConcavityCase{Strategy::kSpeculativeResume, 1.5, 150.0, 50},
        ConcavityCase{Strategy::kSpeculativeResume, 1.8, 90.0, 200}));

TEST(Utility, LargeDeadlineDrivesOptimalRTowardZero) {
  // §V: for non-deadline-sensitive jobs the optimal r approaches zero.
  auto p = default_job();
  p.deadline = 5000.0;
  const auto e = default_econ();
  const double u0 = evaluate_utility(Strategy::kClone, p, e, 0.0).utility;
  const double u1 = evaluate_utility(Strategy::kClone, p, e, 1.0).utility;
  EXPECT_GT(u0, u1);
}

}  // namespace
}  // namespace chronos::core
