// Two-stage (map + reduce) jobs: shuffle barrier, per-stage durations,
// per-stage speculation, and the two-stage planner.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "strategies/policies.h"
#include "trace/planner.h"

namespace chronos {
namespace {

using mapreduce::AttemptState;
using mapreduce::JobSpec;
using mapreduce::Scheduler;
using mapreduce::SchedulerConfig;

JobSpec two_stage_job(long long r = 1) {
  JobSpec spec;
  spec.num_tasks = 8;
  spec.reduce_tasks = 4;
  spec.deadline = 400.0;
  spec.t_min = 30.0;
  spec.beta = 1.4;
  spec.tau_est = 40.0;
  spec.tau_kill = 80.0;
  spec.r = r;
  spec.reduce_t_min = 50.0;
  spec.reduce_beta = 1.6;
  spec.reduce_r = 2;
  spec.reduce_tau_est = 20.0;
  spec.reduce_tau_kill = 45.0;
  return spec;
}

struct StageRun {
  sim::Simulator simulator;
  sim::Cluster cluster;
  std::unique_ptr<mapreduce::SpeculationPolicy> policy;
  std::unique_ptr<Scheduler> scheduler;

  StageRun(strategies::PolicyKind kind, const JobSpec& spec,
           std::uint64_t seed = 21)
      : cluster(sim::ClusterConfig::uniform(8, [] {
          sim::NodeConfig node;
          node.containers = 32;
          return node;
        }())) {
    policy = strategies::make_policy(kind);
    scheduler = std::make_unique<Scheduler>(simulator, cluster, *policy,
                                            SchedulerConfig{}, Rng(seed));
    scheduler->submit(spec);
    simulator.run();
  }

  const mapreduce::JobRecord& job() const { return scheduler->job(0); }
};

TEST(TwoStage, SpecInheritanceDefaults) {
  JobSpec spec = two_stage_job();
  spec.reduce_t_min = 0.0;
  spec.reduce_beta = 0.0;
  spec.reduce_r = -1;
  spec.reduce_tau_est = -1.0;
  spec.reduce_tau_kill = -1.0;
  EXPECT_EQ(spec.effective_reduce_t_min(), spec.t_min);
  EXPECT_EQ(spec.effective_reduce_beta(), spec.beta);
  EXPECT_EQ(spec.effective_reduce_r(), spec.r);
  EXPECT_EQ(spec.effective_reduce_tau_est(), spec.tau_est);
  EXPECT_EQ(spec.effective_reduce_tau_kill(), spec.tau_kill);
  EXPECT_EQ(spec.total_tasks(), 12);
}

TEST(TwoStage, ValidateRejectsBadReduceParams) {
  JobSpec spec = two_stage_job();
  spec.reduce_tasks = -1;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec = two_stage_job();
  spec.reduce_tau_est = 10.0;
  spec.reduce_tau_kill = 5.0;
  EXPECT_THROW(spec.validate(), PreconditionError);
}

TEST(TwoStage, ReduceStartsOnlyAfterAllMapsComplete) {
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  EXPECT_TRUE(job.done);
  EXPECT_TRUE(job.reduce_started);
  double last_map_completion = 0.0;
  for (int t = 0; t < job.spec.num_tasks; ++t) {
    last_map_completion =
        std::max(last_map_completion,
                 job.tasks[static_cast<std::size_t>(t)].completion_time);
  }
  EXPECT_NEAR(job.reduce_stage_start - job.submit_time, last_map_completion,
              1e-9);
  // Every reduce attempt was requested at or after the barrier.
  for (const auto& attempt : job.attempts) {
    if (job.is_reduce_task(attempt.task_index)) {
      EXPECT_GE(attempt.request_time, job.reduce_stage_start - 1e-9);
    }
  }
}

TEST(TwoStage, CompletionRequiresBothStages) {
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  EXPECT_EQ(job.tasks_completed, 12);
  double last_reduce = 0.0;
  for (int t = job.spec.num_tasks; t < job.spec.total_tasks(); ++t) {
    last_reduce = std::max(
        last_reduce, job.tasks[static_cast<std::size_t>(t)].completion_time);
  }
  EXPECT_NEAR(job.completion_time, last_reduce, 1e-9);
}

TEST(TwoStage, ReduceDurationsUseReduceParameters) {
  // Reduce t_min = 50: every reduce attempt runs at least 50 s.
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  for (const auto& attempt : job.attempts) {
    if (job.is_reduce_task(attempt.task_index) &&
        attempt.state == AttemptState::kFinished) {
      EXPECT_GE(attempt.end_time - attempt.launch_time, 50.0 - 1e-9);
    }
  }
}

TEST(TwoStage, CloneReplicatesBothStages) {
  StageRun run(strategies::PolicyKind::kClone, two_stage_job(2));
  const auto& job = run.job();
  // Map: 8 tasks x (r+1 = 3); reduce: 4 tasks x 3 (initial_attempts uses
  // spec.r for both stages).
  EXPECT_EQ(job.attempts_launched, 8 * 3 + 4 * 3);
  for (int t = 0; t < job.spec.total_tasks(); ++t) {
    int finished = 0;
    for (const int id :
         job.tasks[static_cast<std::size_t>(t)].attempt_ids) {
      finished += job.attempts[static_cast<std::size_t>(id)].state ==
                          AttemptState::kFinished
                      ? 1
                      : 0;
    }
    EXPECT_EQ(finished, 1) << "task " << t;
  }
}

TEST(TwoStage, SResumeSpeculatesReduceStragglers) {
  // Give the reduce stage a tight detection point so stragglers appear.
  auto spec = two_stage_job(1);
  spec.deadline = 250.0;
  int reduce_speculations = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StageRun run(strategies::PolicyKind::kSResume, spec, seed);
    const auto& job = run.job();
    EXPECT_TRUE(job.done);
    for (int t = job.spec.num_tasks; t < job.spec.total_tasks(); ++t) {
      reduce_speculations +=
          job.tasks[static_cast<std::size_t>(t)].extra_attempts_launched;
    }
  }
  EXPECT_GT(reduce_speculations, 0);
}

TEST(TwoStage, MapOnlyJobsUnaffected) {
  JobSpec spec = two_stage_job();
  spec.reduce_tasks = 0;
  StageRun run(strategies::PolicyKind::kHadoopNS, spec);
  EXPECT_FALSE(run.job().reduce_started);
  EXPECT_EQ(run.job().tasks_completed, 8);
}

TEST(TwoStagePlanner, MakespanFormulaMatchesMonteCarlo) {
  Rng rng(5);
  const int n = 50;
  const double t_min = 30.0;
  const double beta = 1.6;
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    double worst = 0.0;
    for (int t = 0; t < n; ++t) {
      worst = std::max(worst, rng.pareto(t_min, beta));
    }
    sum += worst;
  }
  const double expected = trace::expected_stage_makespan(n, t_min, beta);
  EXPECT_NEAR(sum / trials, expected, 0.05 * expected);
}

TEST(TwoStagePlanner, MakespanGrowsWithTasksAndTail) {
  EXPECT_GT(trace::expected_stage_makespan(100, 30.0, 1.5),
            trace::expected_stage_makespan(10, 30.0, 1.5));
  EXPECT_GT(trace::expected_stage_makespan(10, 30.0, 1.2),
            trace::expected_stage_makespan(10, 30.0, 1.8));
  EXPECT_THROW(trace::expected_stage_makespan(0, 30.0, 1.5),
               PreconditionError);
  EXPECT_THROW(trace::expected_stage_makespan(10, 30.0, 1.0),
               PreconditionError);
}

TEST(TwoStagePlanner, SplitsDeadlineAndFillsBothStages) {
  trace::TracedJob job;
  job.submit_time = 100.0;
  job.spec = two_stage_job();
  job.spec.reduce_r = -1;  // let the planner decide
  job.spec.deadline = 600.0;
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_two_stage_job(
      job, strategies::PolicyKind::kSResume, config, prices);
  EXPECT_NEAR(plan.map_deadline + plan.reduce_deadline, 600.0, 1e-9);
  EXPECT_GT(plan.map_deadline, 0.0);
  EXPECT_GT(plan.reduce_deadline, 0.0);
  EXPECT_TRUE(plan.map.feasible);
  EXPECT_TRUE(plan.reduce.feasible);
  EXPECT_EQ(job.spec.r, plan.map.r_opt);
  EXPECT_EQ(job.spec.reduce_r, plan.reduce.r_opt);
  EXPECT_GE(job.spec.reduce_tau_est, 0.0);
  EXPECT_GT(job.spec.reduce_tau_kill, job.spec.reduce_tau_est);
  EXPECT_NO_THROW(job.spec.validate());
}

TEST(TwoStagePlanner, MapOnlyFallsBackToPlanJob) {
  trace::TracedJob job;
  job.submit_time = 0.0;
  job.spec = two_stage_job();
  job.spec.reduce_tasks = 0;
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_two_stage_job(
      job, strategies::PolicyKind::kClone, config, prices);
  EXPECT_EQ(plan.map_deadline, job.spec.deadline);
  EXPECT_TRUE(plan.map.feasible);
}

TEST(TwoStagePlanner, PlannedJobSimulatesEndToEnd) {
  trace::TracedJob job;
  job.submit_time = 0.0;
  job.spec = two_stage_job();
  job.spec.deadline = 700.0;
  job.spec.reduce_r = -1;
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  trace::plan_two_stage_job(job, strategies::PolicyKind::kSResume, config,
                            prices);
  StageRun run(strategies::PolicyKind::kSResume, job.spec, 99);
  EXPECT_TRUE(run.job().done);
  EXPECT_EQ(run.scheduler->metrics().jobs(), 1u);
}

}  // namespace
}  // namespace chronos
