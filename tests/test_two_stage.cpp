// Staged jobs: the legacy map+reduce shim, shuffle barriers asserted from
// the event stream, DAG fan-in, per-stage durations and speculation, and
// the critical-path staged planner.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "strategies/policies.h"
#include "trace/planner.h"

namespace chronos {
namespace {

using mapreduce::AttemptState;
using mapreduce::JobSpec;
using mapreduce::Scheduler;
using mapreduce::SchedulerConfig;
using mapreduce::StageSpec;

JobSpec two_stage_job(long long r = 1) {
  JobSpec spec;
  spec.stage(0).num_tasks = 8;
  spec.deadline = 400.0;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.4;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.stage(0).r = r;
  spec.add_reduce_stage(/*reduce_tasks=*/4, /*reduce_t_min=*/50.0,
                        /*reduce_beta=*/1.6, /*reduce_r=*/2,
                        /*reduce_tau_est=*/20.0, /*reduce_tau_kill=*/45.0);
  return spec;
}

/// Three-stage barrier chain with distinct per-stage shapes.
JobSpec chain_job() {
  JobSpec spec;
  spec.deadline = 600.0;
  spec.stages = {
      StageSpec{8, 30.0, 1.4, 40.0, 80.0, 1, {}},
      StageSpec{4, 50.0, 1.6, 20.0, 45.0, 1, {}},
      StageSpec{2, 20.0, 1.5, 15.0, 35.0, 1, {}},
  };
  return spec;
}

/// Diamond DAG: 1 -> {2, 3} -> 4 where stage 3 is the heavy branch.
JobSpec diamond_job() {
  JobSpec spec;
  spec.deadline = 800.0;
  spec.stages = {
      StageSpec{6, 25.0, 1.5, 30.0, 60.0, 1, {}},
      StageSpec{4, 30.0, 1.6, 20.0, 45.0, 1, {0}},
      StageSpec{8, 60.0, 1.3, 40.0, 90.0, 1, {0}},
      StageSpec{2, 20.0, 1.5, 15.0, 35.0, 1, {1, 2}},
  };
  return spec;
}

struct StageRun {
  sim::Simulator simulator;
  sim::Cluster cluster;
  std::unique_ptr<mapreduce::SpeculationPolicy> policy;
  std::unique_ptr<Scheduler> scheduler;

  StageRun(strategies::PolicyKind kind, const JobSpec& spec,
           std::uint64_t seed = 21)
      : cluster(sim::ClusterConfig::uniform(8, [] {
          sim::NodeConfig node;
          node.containers = 32;
          return node;
        }())) {
    policy = strategies::make_policy(kind);
    scheduler = std::make_unique<Scheduler>(simulator, cluster, *policy,
                                            SchedulerConfig{}, Rng(seed));
    scheduler->submit(spec);
    simulator.run();
  }

  const mapreduce::JobRecord& job() const { return scheduler->job(0); }
};

/// Absolute time the last task of stage `s` completed.
double stage_finish_abs(const mapreduce::JobRecord& job, int s) {
  double last = 0.0;
  const int first = job.spec.first_task(s);
  for (int t = first; t < first + job.spec.stage(s).num_tasks; ++t) {
    last = std::max(last,
                    job.tasks[static_cast<std::size_t>(t)].completion_time);
  }
  return job.submit_time + last;
}

TEST(StagedJobs, LegacyShimResolvesInheritanceSentinels) {
  JobSpec spec;
  spec.stage(0).num_tasks = 8;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.4;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.stage(0).r = 3;
  // All sentinels: 0 inherits t_min/beta, -1 inherits r and the timers.
  spec.add_reduce_stage(4);
  ASSERT_EQ(spec.num_stages(), 2);
  EXPECT_EQ(spec.stage(1).t_min, spec.stage(0).t_min);
  EXPECT_EQ(spec.stage(1).beta, spec.stage(0).beta);
  EXPECT_EQ(spec.stage(1).r, spec.stage(0).r);
  EXPECT_EQ(spec.stage(1).tau_est, spec.stage(0).tau_est);
  EXPECT_EQ(spec.stage(1).tau_kill, spec.stage(0).tau_kill);
  EXPECT_TRUE(spec.stage(1).deps.empty());  // barrier chain by default
  EXPECT_EQ(spec.resolved_deps(1), (std::vector<int>{0}));
  EXPECT_EQ(spec.total_tasks(), 12);
}

TEST(StagedJobs, LegacyShimMatchesExplicitStagedForm) {
  // Migration guarantee: a job built through the legacy add_reduce_stage
  // shim is indistinguishable — bit for bit — from the same job written
  // directly as a stage vector.
  const JobSpec legacy = two_stage_job(1);
  JobSpec staged;
  staged.deadline = 400.0;
  staged.stages = {
      StageSpec{8, 30.0, 1.4, 40.0, 80.0, 1, {}},
      StageSpec{4, 50.0, 1.6, 20.0, 45.0, 2, {}},
  };
  EXPECT_TRUE(legacy.stages == staged.stages);
  StageRun run_legacy(strategies::PolicyKind::kSResume, legacy, 77);
  StageRun run_staged(strategies::PolicyKind::kSResume, staged, 77);
  const auto& a = run_legacy.job();
  const auto& b = run_staged.job();
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.machine_time, b.machine_time);
  EXPECT_EQ(a.attempts_launched, b.attempts_launched);
  EXPECT_EQ(a.attempts_killed, b.attempts_killed);
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (std::size_t i = 0; i < a.attempts.size(); ++i) {
    EXPECT_EQ(a.attempts[i].request_time, b.attempts[i].request_time);
    EXPECT_EQ(a.attempts[i].end_time, b.attempts[i].end_time);
  }
}

TEST(StagedJobs, ValidateRejectsBadStageParams) {
  JobSpec spec = two_stage_job();
  spec.stage(1).num_tasks = -1;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec = two_stage_job();
  spec.stage(1).tau_est = 10.0;
  spec.stage(1).tau_kill = 5.0;
  EXPECT_THROW(spec.validate(), PreconditionError);
  // Deps must reference strictly earlier stages.
  spec = two_stage_job();
  spec.stage(1).deps = {1};
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec = two_stage_job();
  spec.stage(0).deps = {-1};
  EXPECT_THROW(spec.validate(), PreconditionError);
}

TEST(StagedJobs, ReduceStartsOnlyAfterAllMapsComplete) {
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  EXPECT_TRUE(job.done);
  EXPECT_TRUE(job.stage_started[1]);
  EXPECT_NEAR(job.stage_start_time[1], stage_finish_abs(job, 0), 1e-9);
  // Every reduce attempt was requested at or after the barrier.
  for (const auto& attempt : job.attempts) {
    if (job.stage_of_task(attempt.task_index) == 1) {
      EXPECT_GE(attempt.request_time, job.stage_start_time[1] - 1e-9);
    }
  }
}

TEST(StagedJobs, ShuffleBarrierHoldsInEventStream) {
  // The barrier law, asserted from the recorded event stream across a
  // 3-stage chain and several seeds: no attempt of stage s is *requested*
  // before the last task of every predecessor stage has completed.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    StageRun run(strategies::PolicyKind::kSResume, chain_job(), seed);
    const auto& job = run.job();
    ASSERT_TRUE(job.done);
    for (int s = 0; s < job.spec.num_stages(); ++s) {
      double barrier = job.submit_time;
      for (const int dep : job.spec.resolved_deps(s)) {
        barrier = std::max(barrier, stage_finish_abs(job, dep));
      }
      EXPECT_NEAR(job.stage_start_time[static_cast<std::size_t>(s)], barrier,
                  1e-9)
          << "stage " << s << " seed " << seed;
      for (const auto& attempt : job.attempts) {
        if (job.stage_of_task(attempt.task_index) == s) {
          EXPECT_GE(attempt.request_time, barrier - 1e-9)
              << "stage " << s << " seed " << seed;
        }
      }
    }
  }
}

TEST(StagedJobs, FanInWaitsForEveryPredecessor) {
  StageRun run(strategies::PolicyKind::kHadoopNS, diamond_job(), 13);
  const auto& job = run.job();
  ASSERT_TRUE(job.done);
  // Both middle branches launch at stage 0's barrier, not chained.
  const double root_done = stage_finish_abs(job, 0);
  EXPECT_NEAR(job.stage_start_time[1], root_done, 1e-9);
  EXPECT_NEAR(job.stage_start_time[2], root_done, 1e-9);
  // The sink waits for the LAST of its two predecessors.
  const double fan_in =
      std::max(stage_finish_abs(job, 1), stage_finish_abs(job, 2));
  EXPECT_NEAR(job.stage_start_time[3], fan_in, 1e-9);
  EXPECT_EQ(job.tasks_completed, job.spec.total_tasks());
}

TEST(StagedJobs, CompletionRequiresEveryStage) {
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  EXPECT_EQ(job.tasks_completed, 12);
  EXPECT_NEAR(job.submit_time + job.completion_time,
              stage_finish_abs(job, 1), 1e-9);
}

TEST(StagedJobs, StageDurationsUseStageParameters) {
  // Reduce t_min = 50: every reduce attempt runs at least 50 s.
  StageRun run(strategies::PolicyKind::kHadoopNS, two_stage_job());
  const auto& job = run.job();
  for (const auto& attempt : job.attempts) {
    if (job.stage_of_task(attempt.task_index) == 1 &&
        attempt.state == AttemptState::kFinished) {
      EXPECT_GE(attempt.end_time - attempt.launch_time, 50.0 - 1e-9);
    }
  }
}

TEST(StagedJobs, CloneReplicatesPerStagePlan) {
  StageRun run(strategies::PolicyKind::kClone, two_stage_job(2));
  const auto& job = run.job();
  // Map: 8 tasks x (r=2 + 1); reduce: 4 tasks x (r=2 + 1). Clone reads
  // each stage's own r.
  EXPECT_EQ(job.attempts_launched, 8 * 3 + 4 * 3);
  for (int t = 0; t < job.spec.total_tasks(); ++t) {
    int finished = 0;
    for (const int id :
         job.tasks[static_cast<std::size_t>(t)].attempt_ids) {
      finished += job.attempts[static_cast<std::size_t>(id)].state ==
                          AttemptState::kFinished
                      ? 1
                      : 0;
    }
    EXPECT_EQ(finished, 1) << "task " << t;
  }
}

TEST(StagedJobs, SResumeSpeculatesReduceStragglers) {
  // Give the reduce stage a tight detection point so stragglers appear.
  auto spec = two_stage_job(1);
  spec.deadline = 250.0;
  int reduce_speculations = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StageRun run(strategies::PolicyKind::kSResume, spec, seed);
    const auto& job = run.job();
    EXPECT_TRUE(job.done);
    for (int t = job.spec.first_task(1); t < job.spec.total_tasks(); ++t) {
      reduce_speculations +=
          job.tasks[static_cast<std::size_t>(t)].extra_attempts_launched;
    }
  }
  EXPECT_GT(reduce_speculations, 0);
}

TEST(StagedJobs, MapOnlyJobsUnaffected) {
  JobSpec spec = two_stage_job();
  spec.stages.resize(1);
  StageRun run(strategies::PolicyKind::kHadoopNS, spec);
  EXPECT_EQ(run.job().spec.num_stages(), 1);
  EXPECT_EQ(run.job().tasks_completed, 8);
}

TEST(StagedPlanner, MakespanFormulaMatchesMonteCarlo) {
  Rng rng(5);
  const int n = 50;
  const double t_min = 30.0;
  const double beta = 1.6;
  double sum = 0.0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    double worst = 0.0;
    for (int t = 0; t < n; ++t) {
      worst = std::max(worst, rng.pareto(t_min, beta));
    }
    sum += worst;
  }
  const double expected = trace::expected_stage_makespan(n, t_min, beta);
  EXPECT_NEAR(sum / trials, expected, 0.05 * expected);
}

TEST(StagedPlanner, MakespanGrowsWithTasksAndTail) {
  EXPECT_GT(trace::expected_stage_makespan(100, 30.0, 1.5),
            trace::expected_stage_makespan(10, 30.0, 1.5));
  EXPECT_GT(trace::expected_stage_makespan(10, 30.0, 1.2),
            trace::expected_stage_makespan(10, 30.0, 1.8));
  EXPECT_THROW(trace::expected_stage_makespan(0, 30.0, 1.5),
               PreconditionError);
  EXPECT_THROW(trace::expected_stage_makespan(10, 30.0, 1.0),
               PreconditionError);
}

TEST(StagedPlanner, SplitsDeadlineAndFillsEveryStage) {
  trace::TracedJob job;
  job.submit_time = 100.0;
  job.spec = two_stage_job();
  job.spec.stage(1).r = -1;  // let the planner decide
  job.spec.deadline = 600.0;
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_staged_job(
      job, strategies::PolicyKind::kSResume, config, prices);
  ASSERT_EQ(plan.stage_deadlines.size(), 2u);
  ASSERT_EQ(plan.stages.size(), 2u);
  // A barrier chain puts every stage on the critical path: the per-stage
  // shares partition the job deadline.
  EXPECT_NEAR(plan.stage_deadlines[0] + plan.stage_deadlines[1], 600.0, 1e-9);
  EXPECT_GT(plan.stage_deadlines[0], 0.0);
  EXPECT_GT(plan.stage_deadlines[1], 0.0);
  for (int s = 0; s < 2; ++s) {
    EXPECT_TRUE(plan.stages[static_cast<std::size_t>(s)].feasible);
    EXPECT_EQ(job.spec.stage(s).r,
              plan.stages[static_cast<std::size_t>(s)].r_opt);
    EXPECT_GE(job.spec.stage(s).tau_est, 0.0);
    EXPECT_GT(job.spec.stage(s).tau_kill, job.spec.stage(s).tau_est);
  }
  EXPECT_NO_THROW(job.spec.validate());
}

TEST(StagedPlanner, CriticalPathSplitOnFanIn) {
  // Diamond DAG: the critical path runs through the heavy branch (stage 2);
  // the light branch (stage 1) sits off-path but still gets its
  // span-proportional share.
  const JobSpec spec = diamond_job();
  const auto split = trace::critical_path_split(spec);
  ASSERT_EQ(split.size(), 4u);
  std::vector<double> span;
  for (const auto& st : spec.stages) {
    span.push_back(
        trace::expected_stage_makespan(st.num_tasks, st.t_min, st.beta));
  }
  ASSERT_GT(span[2], span[1]);  // stage 2 is the heavy branch
  const double critical = span[0] + span[2] + span[3];
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(split[s], spec.deadline * span[s] / critical, 1e-9);
  }
  // Shares along the critical path partition the whole deadline.
  EXPECT_NEAR(split[0] + split[2] + split[3], spec.deadline, 1e-9);
}

TEST(StagedPlanner, SingleStageUsesWholeDeadline) {
  trace::TracedJob job;
  job.submit_time = 0.0;
  job.spec = two_stage_job();
  job.spec.stages.resize(1);
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_staged_job(
      job, strategies::PolicyKind::kClone, config, prices);
  ASSERT_EQ(plan.stage_deadlines.size(), 1u);
  EXPECT_EQ(plan.stage_deadlines[0], job.spec.deadline);
  EXPECT_TRUE(plan.stages[0].feasible);
}

TEST(StagedPlanner, PlannedJobSimulatesEndToEnd) {
  trace::TracedJob job;
  job.submit_time = 0.0;
  job.spec = diamond_job();
  job.spec.deadline = 900.0;
  trace::PlannerConfig config;
  const trace::SpotPriceModel prices;
  trace::plan_staged_job(job, strategies::PolicyKind::kSResume, config,
                         prices);
  StageRun run(strategies::PolicyKind::kSResume, job.spec, 99);
  EXPECT_TRUE(run.job().done);
  EXPECT_EQ(run.scheduler->metrics().jobs(), 1u);
}

}  // namespace
}  // namespace chronos
