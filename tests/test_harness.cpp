// Experiment harness: configuration factories and run_experiment edge
// cases not covered by the integration suite.
#include "trace/harness.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "trace/planner.h"

namespace chronos::trace {
namespace {

using strategies::PolicyKind;

TEST(Harness, LargeScaleConfigHasNoContention) {
  const auto config = ExperimentConfig::large_scale(PolicyKind::kSResume);
  EXPECT_EQ(config.policy, PolicyKind::kSResume);
  int total = 0;
  for (const auto& node : config.cluster.nodes) {
    total += node.containers;
  }
  EXPECT_GE(total, 1000);  // generous capacity: trace jobs never queue
  EXPECT_EQ(config.scheduler.estimator, mapreduce::EstimatorKind::kChronos);
}

TEST(Harness, TestbedConfigMatchesSection7A) {
  const auto config = ExperimentConfig::testbed(PolicyKind::kClone, 5);
  EXPECT_EQ(config.cluster.nodes.size(), 40u);
  for (const auto& node : config.cluster.nodes) {
    EXPECT_EQ(node.containers, 8);
  }
  EXPECT_EQ(config.seed, 5u);
}

TEST(Harness, RejectsEmptyTrace) {
  const auto config = ExperimentConfig::large_scale(PolicyKind::kHadoopNS);
  EXPECT_THROW(run_experiment({}, config), PreconditionError);
}

TEST(Harness, SingleJobTrace) {
  TracedJob job;
  job.submit_time = 10.0;
  job.spec.job_id = 99;
  job.spec.stage(0).num_tasks = 5;
  job.spec.deadline = 200.0;
  job.spec.stage(0).t_min = 30.0;
  job.spec.stage(0).beta = 1.5;
  const auto config = ExperimentConfig::large_scale(PolicyKind::kHadoopNS);
  const auto result = run_experiment({job}, config);
  EXPECT_EQ(result.metrics.jobs(), 1u);
  EXPECT_EQ(result.metrics.outcomes().front().job_id, 99);
  EXPECT_EQ(result.policy_name, "Hadoop-NS");
}

TEST(Harness, ResultAccessorsMatchMetrics) {
  TraceConfig trace_config;
  trace_config.num_jobs = 20;
  trace_config.mean_tasks = 10.0;
  trace_config.max_tasks = 50;
  auto jobs = generate_trace(trace_config);
  PlannerConfig planner;
  const SpotPriceModel prices;
  plan_trace(jobs, PolicyKind::kClone, planner, prices);
  const auto result = run_experiment(
      jobs, ExperimentConfig::large_scale(PolicyKind::kClone, 3));
  EXPECT_EQ(result.pocd(), result.metrics.pocd());
  EXPECT_EQ(result.mean_cost(), result.metrics.mean_cost());
  EXPECT_EQ(result.utility(1e-4, 0.1),
            result.metrics.utility(1e-4, 0.1));
  EXPECT_GT(result.events_executed, 0u);
}

TEST(Harness, DifferentSeedsProduceDifferentRuns) {
  TracedJob job;
  job.submit_time = 0.0;
  job.spec.stage(0).num_tasks = 20;
  job.spec.deadline = 200.0;
  job.spec.stage(0).t_min = 30.0;
  job.spec.stage(0).beta = 1.5;
  const auto a = run_experiment(
      {job}, ExperimentConfig::large_scale(PolicyKind::kHadoopNS, 1));
  const auto b = run_experiment(
      {job}, ExperimentConfig::large_scale(PolicyKind::kHadoopNS, 2));
  EXPECT_NE(a.metrics.outcomes().front().machine_time,
            b.metrics.outcomes().front().machine_time);
}

}  // namespace
}  // namespace chronos::trace
