// Observability layer: the metrics registry (TLS-sharded counters, gauges,
// timers; aggregation across live and exited threads; deterministic JSON),
// the span recorder (Chrome trace-event JSON, per-thread nesting), exact
// optimizer evaluation accounting, and the layer's hard invariant — a
// sweeprun of manifests/tiny.ini with --metrics-out/--trace-out/--progress
// produces CSV/JSON reports and journal bytes identical to the committed
// goldens and to an uninstrumented run.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace chronos {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chronos_obs_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct CommandResult {
  int status = -1;
  std::string output;  ///< stdout + stderr
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  std::FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, got);
  }
  const int raw = pclose(pipe);
  result.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  return result;
}

const std::string kSweeprun = CHRONOS_SWEEPRUN_BIN;
const std::string kTinyManifest =
    std::string(CHRONOS_MANIFEST_DIR) + "/tiny.ini";
const std::string kGoldenDir = std::string(CHRONOS_TEST_DIR) + "/golden";

// --- tiny JSON well-formedness checker -------------------------------------
//
// Recursive-descent validator, strict enough to catch the classic emitter
// bugs (trailing commas, unescaped strings, bare NaN/Infinity). Not a data
// model — tests that need values extract them with string searches.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    error_.clear();
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing garbage at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      return fail(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return true;
  }

  bool string() {
    if (text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (static_cast<unsigned char>(text_[pos_]) < 0x20) {
        return fail("raw control character in string");
      }
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size() ||
            std::string("\"\\/bfnrtu").find(text_[pos_]) ==
                std::string::npos) {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected number");
    }
    return true;
  }

  bool value() {
    if (pos_ >= text_.size()) {
      return fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

#define SKIP_WHEN_COMPILED_OUT()                             \
  if (!obs::compiled_in()) {                                 \
    GTEST_SKIP() << "observability compiled out "            \
                    "(CHRONOS_OBS=OFF)";                     \
  }                                                          \
  static_assert(true, "")

/// Aggregated value of `name`, or nullptr.
const obs::MetricValue* find_metric(const std::vector<obs::MetricValue>& all,
                                    const std::string& name) {
  for (const obs::MetricValue& metric : all) {
    if (metric.name == name) {
      return &metric;
    }
  }
  return nullptr;
}

// --- metrics registry ------------------------------------------------------

TEST(ObsMetrics, CounterAggregatesLiveAndExitedThreads) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  const obs::Counter hits = obs::counter("test.obs.hits");
  hits.add(5);  // main thread's live shard
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([hits] {
      for (int i = 0; i < 1000; ++i) {
        hits.add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();  // exited threads flush into the retired totals
  }
  const auto all = obs::snapshot();
  const obs::MetricValue* metric = find_metric(all, "test.obs.hits");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(metric->value, 4005u);
}

TEST(ObsMetrics, RegistrationIsIdempotentButKindMismatchThrows) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  const obs::Counter first = obs::counter("test.obs.same");
  const obs::Counter second = obs::counter("test.obs.same");
  first.add(2);
  second.add(3);  // same slot: both handles feed one metric
  const auto all = obs::snapshot();
  const obs::MetricValue* metric = find_metric(all, "test.obs.same");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->value, 5u);
  EXPECT_THROW(obs::gauge("test.obs.same"), PreconditionError);
  EXPECT_THROW(obs::timer("test.obs.same"), PreconditionError);
}

TEST(ObsMetrics, GaugeKeepsTheHighWaterAcrossThreads) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  const obs::Gauge depth = obs::gauge("test.obs.depth");
  depth.update(3);
  depth.update(17);
  depth.update(5);  // lower level must not erase the high-water
  std::thread other([depth] { depth.update(11); });
  other.join();
  const auto all = obs::snapshot();
  const obs::MetricValue* metric = find_metric(all, "test.obs.depth");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kGauge);
  EXPECT_EQ(metric->value, 17u);
}

TEST(ObsMetrics, TimerRecordsCountTotalExtremaAndLog2Buckets) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  const obs::Timer latency = obs::timer("test.obs.latency");
  latency.record_ns(0);
  latency.record_ns(1);
  latency.record_ns(1);
  latency.record_ns(7);
  latency.record_ns(1024);
  const auto all = obs::snapshot();
  const obs::MetricValue* metric = find_metric(all, "test.obs.latency");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricKind::kTimer);
  EXPECT_EQ(metric->timer.count, 5u);
  EXPECT_EQ(metric->timer.total_ns, 1033u);
  EXPECT_EQ(metric->timer.min_ns, 0u);
  EXPECT_EQ(metric->timer.max_ns, 1024u);
  ASSERT_EQ(metric->timer.buckets.size(), obs::kTimerBuckets);
  // Bucket i counts durations of bit-width i: 0 -> bucket 0, 1 -> bucket 1,
  // 7 -> bucket 3, 1024 -> bucket 11.
  EXPECT_EQ(metric->timer.buckets[0], 1u);
  EXPECT_EQ(metric->timer.buckets[1], 2u);
  EXPECT_EQ(metric->timer.buckets[3], 1u);
  EXPECT_EQ(metric->timer.buckets[11], 1u);
  std::uint64_t total_bucketed = 0;
  for (const std::uint64_t count : metric->timer.buckets) {
    total_bucketed += count;
  }
  EXPECT_EQ(total_bucketed, 5u);
}

TEST(ObsMetrics, ScopedTimerRecordsTheEnclosedScope) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  const obs::Timer scope = obs::timer("test.obs.scope");
  { const obs::ScopedTimer timing(scope); }
  const auto all = obs::snapshot();
  const obs::MetricValue* metric = find_metric(all, "test.obs.scope");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->timer.count, 1u);
}

TEST(ObsMetrics, JsonIsWellFormedAndSortedByName) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  obs::counter("test.obs.zeta").add(1);
  obs::gauge("test.obs.alpha").update(2);
  obs::timer("test.obs.mid").record_ns(3);
  const std::string json = obs::metrics_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << checker.error() << "\n" << json;
  const std::size_t alpha = json.find("test.obs.alpha");
  const std::size_t mid = json.find("test.obs.mid");
  const std::size_t zeta = json.find("test.obs.zeta");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
}

TEST(ObsMetrics, ResetClearsEverything) {
  SKIP_WHEN_COMPILED_OUT();
  obs::reset_for_test();
  obs::counter("test.obs.reset").add(9);
  obs::gauge("test.obs.reset_gauge").update(9);
  obs::reset_for_test();
  for (const obs::MetricValue& metric : obs::snapshot()) {
    EXPECT_EQ(metric.value, 0u) << metric.name;
    EXPECT_EQ(metric.timer.count, 0u) << metric.name;
  }
}

// --- trace recorder --------------------------------------------------------

TEST(ObsTrace, SpansNestPerThreadAndEmitWellFormedChromeJson) {
  SKIP_WHEN_COMPILED_OUT();
  obs::start_tracing();
  obs::set_trace_thread_name("test-main");
  {
    obs::TraceSpan outer("outer", "test");
    outer.note("cells", 6);
    {
      obs::TraceSpan inner("inner", "test");
      inner.note("cell", 3);
    }
  }
  std::thread worker([] {
    obs::set_trace_thread_name("test-worker");
    obs::TraceSpan span("worker_span", "test");
  });
  worker.join();
  const std::string json = obs::stop_tracing_to_json();

  JsonChecker checker(json);
  ASSERT_TRUE(checker.valid()) << checker.error() << "\n" << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test-main\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test-worker\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\":6"), std::string::npos);

  // Nesting: events are sorted by (track, start, longer-first), so `outer`
  // must precede `inner` and fully contain it. Pull the two "X" events'
  // ts/dur with a regex over the one-event-per-line layout.
  const std::regex event_re(
      "\\{\"name\":\"(outer|inner)\",.*\"ts\":([0-9.]+),\"dur\":([0-9.]+)");
  std::map<std::string, std::pair<double, double>> spans;
  auto begin = std::sregex_iterator(json.begin(), json.end(), event_re);
  std::size_t order = 0;
  for (auto it = begin; it != std::sregex_iterator(); ++it, ++order) {
    const std::smatch& match = *it;
    if (order == 0) {
      EXPECT_EQ(match[1].str(), "outer") << "outer must sort first";
    }
    spans[match[1].str()] = {std::stod(match[2].str()),
                             std::stod(match[3].str())};
  }
  ASSERT_EQ(spans.size(), 2u) << json;
  const auto [outer_ts, outer_dur] = spans.at("outer");
  const auto [inner_ts, inner_dur] = spans.at("inner");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST(ObsTrace, SpansOutsideAnActiveTraceAreDropped) {
  SKIP_WHEN_COMPILED_OUT();
  { obs::TraceSpan before("span_before_start", "test"); }
  obs::start_tracing();
  const std::string json = obs::stop_tracing_to_json();
  EXPECT_EQ(json.find("span_before_start"), std::string::npos) << json;
  EXPECT_FALSE(obs::tracing_enabled());
}

// --- optimizer evaluation accounting ---------------------------------------

TEST(ObsOptimizer, OptimizeAllReportsExactEvaluationTotalsOverAGrid) {
  SKIP_WHEN_COMPILED_OUT();
  using core::JobParams;
  using core::Strategy;
  std::vector<JobParams> grid;
  for (const double deadline : {90.0, 100.0, 120.0}) {
    JobParams params = testing::default_job();
    params.deadline = deadline;
    grid.push_back(params);
  }
  const core::Economics econ = testing::default_econ();

  // Ground truth: optimize_all runs the same memoized search per strategy
  // as three standalone optimize() calls, so the process-wide counters must
  // advance by exactly the per-result sums — no hidden re-evaluation.
  std::uint64_t expected_calls = 0;
  std::uint64_t expected_evaluations = 0;
  std::uint64_t expected_lookups = 0;
  for (const JobParams& params : grid) {
    for (const Strategy strategy :
         {Strategy::kClone, Strategy::kSpeculativeRestart,
          Strategy::kSpeculativeResume}) {
      const core::OptimizationResult result =
          core::optimize(strategy, params, econ);
      ++expected_calls;
      expected_evaluations += static_cast<std::uint64_t>(result.evaluations);
      expected_lookups += static_cast<std::uint64_t>(result.lookups);
    }
  }

  obs::reset_for_test();
  for (const JobParams& params : grid) {
    core::optimize_all(params, econ);
  }
  const auto all = obs::snapshot();
  const obs::MetricValue* calls = find_metric(all, "core.optimizer.calls");
  const obs::MetricValue* evaluations =
      find_metric(all, "core.optimizer.evaluations");
  const obs::MetricValue* lookups =
      find_metric(all, "core.optimizer.lookups");
  ASSERT_NE(calls, nullptr);
  ASSERT_NE(evaluations, nullptr);
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(calls->value, expected_calls);
  EXPECT_EQ(evaluations->value, expected_evaluations);
  EXPECT_EQ(lookups->value, expected_lookups);
}

// --- the hard invariant: instrumentation is off the numeric path -----------

TEST(ObsIntegration, InstrumentedTinySweepMatchesCommittedGoldenBytes) {
  SKIP_WHEN_COMPILED_OUT();
  const std::string dir = temp_path("sweep");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto outfile = [&dir](const std::string& name) {
    return dir + "/" + name;
  };
  const std::string base_flags =
      " --threads 4 --no-table --fresh";

  // Plain run (observability idle) vs fully instrumented run.
  const CommandResult plain = run_command(
      kSweeprun + " " + kTinyManifest + base_flags + " --journal " +
      outfile("plain.journal") + " --csv " + outfile("plain.csv") +
      " --json " + outfile("plain.json"));
  ASSERT_EQ(plain.status, 0) << plain.output;
  const CommandResult instrumented = run_command(
      kSweeprun + " " + kTinyManifest + base_flags + " --journal " +
      outfile("obs.journal") + " --csv " + outfile("obs.csv") + " --json " +
      outfile("obs.json") + " --metrics-out " + outfile("metrics.json") +
      " --trace-out " + outfile("trace.json") + " --progress");
  ASSERT_EQ(instrumented.status, 0) << instrumented.output;

  // Reports byte-identical to the committed goldens, journal bytes
  // byte-identical between the two runs.
  EXPECT_EQ(slurp(outfile("plain.csv")),
            slurp(kGoldenDir + "/tiny_sweep.csv"));
  EXPECT_EQ(slurp(outfile("obs.csv")),
            slurp(kGoldenDir + "/tiny_sweep.csv"));
  EXPECT_EQ(slurp(outfile("obs.json")),
            slurp(kGoldenDir + "/tiny_sweep.json"));
  EXPECT_EQ(slurp(outfile("plain.journal")), slurp(outfile("obs.journal")));

  // --progress routes through the log layer with the timestamp/thread-id
  // prefix, ending on a final "all cells done" line.
  const std::regex progress_re(
      "\\[\\d{4}-\\d{2}-\\d{2}T\\d{2}:\\d{2}:\\d{2}\\.\\d{3}Z t\\d+\\] "
      "\\[INFO\\] sweep: ");
  EXPECT_TRUE(std::regex_search(instrumented.output, progress_re))
      << instrumented.output;
  EXPECT_NE(instrumented.output.find("sweep: 6/6 cells"), std::string::npos)
      << instrumented.output;

  // The metrics dump is well-formed and spans every instrumented layer
  // (exp, sim, core) with a healthy number of distinct metrics.
  const std::string metrics = slurp(outfile("metrics.json"));
  JsonChecker metrics_checker(metrics);
  EXPECT_TRUE(metrics_checker.valid())
      << metrics_checker.error() << "\n" << metrics;
  std::size_t distinct = 0;
  for (std::size_t at = metrics.find("{\"name\":\"");
       at != std::string::npos;
       at = metrics.find("{\"name\":\"", at + 1)) {
    ++distinct;
  }
  EXPECT_GE(distinct, 12u) << metrics;
  for (const char* name :
       {"exp.sweep.replications", "exp.journal.entries", "exp.pool.tasks",
        "sim.events_fired", "sim.runs", "core.optimizer.evaluations"}) {
    EXPECT_NE(metrics.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << "missing metric " << name << "\n" << metrics;
  }
  // The tiny manifest's replication math is pinned by the goldens: 6 cells
  // x at least 2 replications each, and the journal entry counter must
  // agree with the cell count exactly.
  EXPECT_NE(metrics.find("{\"name\":\"exp.journal.entries\","
                         "\"kind\":\"counter\",\"value\":6}"),
            std::string::npos)
      << metrics;

  // The trace is well-formed Chrome JSON with the expected span names and
  // named thread tracks.
  const std::string trace = slurp(outfile("trace.json"));
  JsonChecker trace_checker(trace);
  EXPECT_TRUE(trace_checker.valid())
      << trace_checker.error() << "\n" << trace;
  for (const char* needle :
       {"\"displayTimeUnit\":\"ms\"", "\"ph\":\"M\"", "\"ph\":\"X\"",
        "\"name\":\"sweep.run\"", "\"name\":\"sweep.rep\"",
        "\"name\":\"sim.run\"", "\"name\":\"journal.append\"",
        "\"name\":\"main\"", "\"name\":\"pool-0\""}) {
    EXPECT_NE(trace.find(needle), std::string::npos)
        << "missing " << needle << "\n" << trace;
  }

  std::filesystem::remove_all(dir);
}

TEST(ObsIntegration, SweeprunRejectsObsFlagsWhenCompiledOut) {
  if (obs::compiled_in()) {
    GTEST_SKIP() << "only meaningful for a CHRONOS_OBS=OFF build";
  }
  const CommandResult result =
      run_command(kSweeprun + " " + kTinyManifest + " --metrics-out " +
                  temp_path("never.json"));
  EXPECT_EQ(result.status, 2) << result.output;
  EXPECT_NE(result.output.find("sweeprun: --metrics-out/--trace-out need"),
            std::string::npos)
      << result.output;
}

}  // namespace
}  // namespace chronos
