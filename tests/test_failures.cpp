// Crash-failure injection: retries, accounting, and strategy behaviour
// under node/VM failures (§VII's system-breakdown remark).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "strategies/policies.h"

namespace chronos::mapreduce {
namespace {

JobSpec failing_job(int tasks = 10) {
  JobSpec spec;
  spec.stage(0).num_tasks = tasks;
  spec.deadline = 200.0;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.5;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.stage(0).r = 1;
  return spec;
}

struct FailRun {
  sim::Simulator simulator;
  sim::Cluster cluster;
  std::unique_ptr<SpeculationPolicy> policy;
  std::unique_ptr<Scheduler> scheduler;

  FailRun(strategies::PolicyKind kind, double rate, std::uint64_t seed = 3,
          bool lose_output = true, int tasks = 10)
      : cluster(sim::ClusterConfig::uniform(8, [] {
          sim::NodeConfig node;
          node.containers = 32;
          return node;
        }())) {
    policy = strategies::make_policy(kind);
    SchedulerConfig config;
    config.failures.rate = rate;
    config.failures.lose_partial_output = lose_output;
    scheduler = std::make_unique<Scheduler>(simulator, cluster, *policy,
                                            config, Rng(seed));
    scheduler->submit(failing_job(tasks));
    simulator.run();
  }

  const JobRecord& job() const { return scheduler->job(0); }
};

TEST(Failures, DisabledByDefault) {
  FailRun run(strategies::PolicyKind::kHadoopNS, 0.0);
  EXPECT_EQ(run.job().attempts_failed, 0);
}

TEST(Failures, JobStillCompletesUnderHighCrashRate) {
  // Mean time to crash 50 s vs >= 30 s tasks: most attempts need retries.
  FailRun run(strategies::PolicyKind::kHadoopNS, 0.02);
  const auto& job = run.job();
  EXPECT_TRUE(job.done);
  EXPECT_GT(job.attempts_failed, 0);
  for (const auto& task : job.tasks) {
    EXPECT_TRUE(task.completed);
  }
}

TEST(Failures, FailedAttemptsAreRetried) {
  FailRun run(strategies::PolicyKind::kHadoopNS, 0.02);
  const auto& job = run.job();
  // Every crash on a task with no surviving sibling spawns a retry, so the
  // launch count exceeds the task count by at least the crash count of
  // sole-attempt tasks; with Hadoop-NS there is exactly one active attempt
  // per task at any time, so launches == tasks + failures.
  EXPECT_EQ(job.attempts_launched,
            job.spec.stage(0).num_tasks + job.attempts_failed);
}

TEST(Failures, MachineTimeIncludesCrashedWork) {
  FailRun run(strategies::PolicyKind::kHadoopNS, 0.02);
  const auto& job = run.job();
  double sum = 0.0;
  for (const auto& attempt : job.attempts) {
    EXPECT_TRUE(attempt.ended());
    sum += attempt.end_time - attempt.launch_time;
  }
  EXPECT_NEAR(job.machine_time, sum, 1e-9);
}

TEST(Failures, CrashedAttemptStateRecorded) {
  FailRun run(strategies::PolicyKind::kHadoopNS, 0.02);
  int failed = 0;
  for (const auto& attempt : run.job().attempts) {
    failed += attempt.state == AttemptState::kFailed ? 1 : 0;
  }
  EXPECT_EQ(failed, run.job().attempts_failed);
}

TEST(Failures, DeterministicForSameSeed) {
  const auto machine_time = [](std::uint64_t seed) {
    return FailRun(strategies::PolicyKind::kHadoopNS, 0.01, seed)
        .job()
        .machine_time;
  };
  EXPECT_EQ(machine_time(11), machine_time(11));
}

TEST(Failures, HigherRateMeansMoreFailures) {
  int low = 0;
  int high = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    low += FailRun(strategies::PolicyKind::kHadoopNS, 0.002, seed)
               .job()
               .attempts_failed;
    high += FailRun(strategies::PolicyKind::kHadoopNS, 0.03, seed)
                .job()
                .attempts_failed;
  }
  EXPECT_GT(high, low);
}

TEST(Failures, RetryKeepsOffsetWhenOutputPreserved) {
  // With lose_partial_output = false, a crashed resumed attempt retries
  // from its own start offset, never from byte 0.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FailRun run(strategies::PolicyKind::kSResume, 0.015, seed,
                /*lose_output=*/false, 20);
    const auto& job = run.job();
    for (std::size_t i = 0; i < job.attempts.size(); ++i) {
      const auto& attempt = job.attempts[i];
      if (attempt.state != AttemptState::kFailed ||
          attempt.start_offset == 0.0) {
        continue;
      }
      // The retry is the next attempt appended for this task after the
      // crash; find it and check the offset survived.
      bool found_retry = false;
      for (std::size_t j = i + 1; j < job.attempts.size(); ++j) {
        const auto& later = job.attempts[j];
        if (later.task_index == attempt.task_index &&
            later.request_time >= attempt.end_time - 1e-9) {
          EXPECT_GE(later.start_offset, 0.0);
          found_retry = true;
          break;
        }
      }
      (void)found_retry;  // retry may be unnecessary if a sibling survived
    }
  }
  SUCCEED();
}

TEST(Failures, SpeculationStillWorksUnderFailures) {
  // Chronos strategies keep functioning with crash injection enabled: all
  // tasks complete and kills still happen at tau_kill.
  for (const auto kind :
       {strategies::PolicyKind::kClone, strategies::PolicyKind::kSRestart,
        strategies::PolicyKind::kSResume}) {
    FailRun run(kind, 0.005, 7);
    EXPECT_TRUE(run.job().done) << strategies::to_string(kind);
  }
}

TEST(Failures, PocdDegradesWithCrashRate) {
  // Aggregate over many jobs: deadline misses grow with the crash rate.
  auto pocd_at = [](double rate) {
    int met = 0;
    const int jobs = 60;
    for (std::uint64_t seed = 0; seed < jobs; ++seed) {
      FailRun run(strategies::PolicyKind::kHadoopNS, rate, seed);
      met += run.job().completion_time <= run.job().spec.deadline ? 1 : 0;
    }
    return static_cast<double>(met) / jobs;
  };
  EXPECT_GT(pocd_at(0.0), pocd_at(0.03));
}

}  // namespace
}  // namespace chronos::mapreduce
