// Validates the expected machine-time formulas (Theorems 2, 4, 6):
//  - Clone against Lemma 1 algebra and Monte Carlo,
//  - S-Restart's quadrature term against the paper's closed form (Eq. 45)
//    and Monte Carlo,
//  - S-Resume's exact form against Monte Carlo, and the published form as
//    an upper bound (see the note in core/cost.h).
#include "core/cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "core/montecarlo.h"
#include "stats/pareto.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_job;

TEST(CostClone, MatchesTheorem2Algebra) {
  const auto p = default_job();
  const double r = 2.0;
  const double n_eff = p.beta * (r + 1.0);
  const double expected =
      p.num_tasks * (r * p.tau_kill + p.t_min + p.t_min / (n_eff - 1.0));
  EXPECT_NEAR(machine_time_clone(p, r), expected, 1e-9);
}

TEST(CostClone, RZeroIsMeanTaskTime) {
  const auto p = default_job();
  const stats::Pareto attempt(p.t_min, p.beta);
  EXPECT_NEAR(machine_time_clone(p, 0.0), p.num_tasks * attempt.mean(), 1e-9);
}

TEST(CostClone, RejectsDivergentRegime) {
  auto p = default_job();
  p.beta = 0.9;
  EXPECT_THROW(machine_time_clone(p, 0.0), PreconditionError);
  EXPECT_NO_THROW(machine_time_clone(p, 1.0));  // beta (r+1) = 1.8 > 1
}

TEST(CostClone, IncreasingInR) {
  const auto p = default_job();
  double prev = machine_time_clone(p, 0.0);
  for (double r = 1.0; r <= 6.0; r += 1.0) {
    const double cur = machine_time_clone(p, r);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(CostBelowDeadline, MatchesTruncatedParetoMean) {
  const auto p = default_job();
  const stats::Pareto attempt(p.t_min, p.beta);
  EXPECT_NEAR(expected_time_below_deadline(p),
              attempt.truncated_mean_below(p.deadline), 1e-12);
}

TEST(CostSRestart, WinnerTimeMatchesPaperClosedForm) {
  // Eq. 45 (valid for beta r != 1):
  //   E(W) = t_min/(br-1) - t_min^{br} / ((br-1) (D-tau)^{br-1})
  //        + int_{D-tau}^inf (D/(w+tau))^b (t_min/w)^{br} dw + t_min.
  const auto p = default_job();
  const double r = 2.0;
  const double b = p.beta;
  const double br = b * r;
  const double d_bar = p.deadline - p.tau_est;
  const double tail = numeric::integrate_to_infinity(
      [&](double w) {
        return std::pow(p.deadline / (w + p.tau_est), b) *
               std::pow(p.t_min / w, br);
      },
      d_bar);
  const double closed = p.t_min / (br - 1.0) -
                        std::pow(p.t_min, br) /
                            ((br - 1.0) * std::pow(d_bar, br - 1.0)) +
                        tail + p.t_min;
  EXPECT_NEAR(s_restart_winner_time(p, r), closed, 1e-6);
}

TEST(CostSRestart, WinnerTimeFiniteAtRemovableSingularity) {
  // beta r == 1 makes the closed form 0/0; the quadrature must be finite.
  auto p = default_job();
  p.beta = 1.5;
  const double r = 1.0 / 1.5;  // beta * r = 1
  const double w = s_restart_winner_time(p, r);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_GT(w, p.t_min * 0.5);
}

TEST(CostSRestart, MonteCarloAgreement) {
  const auto p = default_job();
  for (const long long r : {0LL, 1LL, 2LL, 4LL}) {
    const double analytic =
        machine_time_s_restart(p, static_cast<double>(r));
    Rng rng(777 + static_cast<std::uint64_t>(r));
    const auto mc =
        monte_carlo(Strategy::kSpeculativeRestart, p, r, 60000, rng);
    EXPECT_NEAR(mc.machine_time, analytic,
                5.0 * mc.machine_time_sem + 0.01 * analytic)
        << "r=" << r;
  }
}

TEST(CostClone, MonteCarloAgreement) {
  const auto p = default_job();
  for (const long long r : {0LL, 1LL, 3LL}) {
    const double analytic = machine_time_clone(p, static_cast<double>(r));
    Rng rng(888 + static_cast<std::uint64_t>(r));
    const auto mc = monte_carlo(Strategy::kClone, p, r, 60000, rng);
    EXPECT_NEAR(mc.machine_time, analytic,
                5.0 * mc.machine_time_sem + 0.01 * analytic)
        << "r=" << r;
  }
}

TEST(CostSResume, ExactFormMatchesMonteCarlo) {
  const auto p = default_job();
  for (const long long r : {0LL, 1LL, 3LL}) {
    const double analytic =
        machine_time_s_resume_exact(p, static_cast<double>(r));
    Rng rng(999 + static_cast<std::uint64_t>(r));
    const auto mc =
        monte_carlo(Strategy::kSpeculativeResume, p, r, 60000, rng);
    EXPECT_NEAR(mc.machine_time, analytic,
                5.0 * mc.machine_time_sem + 0.01 * analytic)
        << "r=" << r;
  }
}

TEST(CostSResume, PublishedFormIsUpperBoundOnExact) {
  const auto p = default_job();
  for (double r = 0.0; r <= 5.0; r += 1.0) {
    EXPECT_GE(machine_time_s_resume(p, r),
              machine_time_s_resume_exact(p, r) - 1e-9)
        << "r=" << r;
  }
}

TEST(CostSResume, CheaperThanSRestartForSameR) {
  // S-Resume kills the straggler and its attempts process less data, so its
  // expected machine time is below S-Restart's (§VII observation).
  const auto p = default_job();
  for (double r = 1.0; r <= 4.0; r += 1.0) {
    EXPECT_LT(machine_time_s_resume(p, r), machine_time_s_restart(p, r));
  }
}

TEST(CostDispatch, MatchesDirectCalls) {
  const auto p = default_job();
  EXPECT_EQ(machine_time(Strategy::kClone, p, 1.0),
            machine_time_clone(p, 1.0));
  EXPECT_EQ(machine_time(Strategy::kSpeculativeRestart, p, 1.0),
            machine_time_s_restart(p, 1.0));
  EXPECT_EQ(machine_time(Strategy::kSpeculativeResume, p, 1.0),
            machine_time_s_resume(p, 1.0));
}

TEST(CostNoSpeculation, MatchesParetoMean) {
  const auto p = default_job();
  EXPECT_NEAR(machine_time_no_speculation(p),
              p.num_tasks * p.t_min * p.beta / (p.beta - 1.0), 1e-9);
}

TEST(CostSRestart, RejectsHeavyTailWithoutFiniteMean) {
  auto p = default_job();
  p.beta = 1.0;
  EXPECT_THROW(machine_time_s_restart(p, 1.0), PreconditionError);
}

}  // namespace
}  // namespace chronos::core
