#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace chronos::stats {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, SingleValueVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeEquivalentToCombinedStream) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(percentile(xs, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100.0), 40.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50.0), 25.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 25.0), 17.5, 1e-12);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_NEAR(percentile(xs, 50.0), 25.0, 1e-12);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Percentile, RejectsBadArguments) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), PreconditionError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW(percentile(xs, 101.0), PreconditionError);
}

TEST(ProportionCi, ShrinksWithTrials) {
  const double wide = proportion_ci_halfwidth(50, 100);
  const double narrow = proportion_ci_halfwidth(5000, 10000);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(wide, 1.96 * std::sqrt(0.25 / 100.0), 1e-9);
}

TEST(ProportionCi, RejectsInvalid) {
  EXPECT_THROW(proportion_ci_halfwidth(1, 0), PreconditionError);
  EXPECT_THROW(proportion_ci_halfwidth(5, 4), PreconditionError);
}

TEST(MeanOf, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_NEAR(mean_of(xs), 3.0, 1e-12);
  EXPECT_THROW(mean_of(std::vector<double>{}), PreconditionError);
}

}  // namespace
}  // namespace chronos::stats
