#include "stats/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace chronos::stats {
namespace {

std::vector<std::unique_ptr<Distribution>> all_distributions() {
  std::vector<std::unique_ptr<Distribution>> dists;
  dists.push_back(std::make_unique<ParetoDistribution>(30.0, 1.5));
  dists.push_back(std::make_unique<ShiftedLogNormal>(30.0, 3.5, 0.8));
  dists.push_back(std::make_unique<ShiftedWeibull>(30.0, 50.0, 0.9));
  dists.push_back(std::make_unique<ShiftedExponential>(30.0, 0.02));
  return dists;
}

TEST(Distribution, SurvivalIsOneBelowLowerBound) {
  for (const auto& dist : all_distributions()) {
    EXPECT_EQ(dist->survival(dist->lower_bound()), 1.0) << dist->name();
    EXPECT_EQ(dist->survival(0.0), 1.0) << dist->name();
  }
}

TEST(Distribution, SurvivalNonIncreasing) {
  for (const auto& dist : all_distributions()) {
    double prev = 1.0;
    for (double t = dist->lower_bound(); t < 1000.0; t += 10.0) {
      const double s = dist->survival(t);
      EXPECT_LE(s, prev + 1e-12) << dist->name() << " t=" << t;
      EXPECT_GE(s, 0.0);
      prev = s;
    }
  }
}

TEST(Distribution, QuantileInvertsSurvival) {
  for (const auto& dist : all_distributions()) {
    for (const double p : {0.1, 0.5, 0.9, 0.99}) {
      const double t = dist->quantile(p);
      EXPECT_NEAR(dist->cdf(t), p, 1e-6) << dist->name() << " p=" << p;
    }
  }
}

TEST(Distribution, QuantileAtZeroIsLowerBound) {
  for (const auto& dist : all_distributions()) {
    EXPECT_NEAR(dist->quantile(0.0), dist->lower_bound(), 1e-9)
        << dist->name();
  }
}

TEST(Distribution, SamplesRespectSupportAndMean) {
  Rng rng(17);
  for (const auto& dist : all_distributions()) {
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const double x = dist->sample(rng);
      ASSERT_GE(x, dist->lower_bound() - 1e-9) << dist->name();
      sum += x;
    }
    const double mean = dist->mean();
    if (std::isfinite(mean) && dist->name() != "Pareto") {
      // Pareto(beta=1.5) has infinite variance: skip the tight check.
      EXPECT_NEAR(sum / n, mean, 0.05 * mean) << dist->name();
    }
  }
}

TEST(Distribution, NumericMeanMatchesClosedForms) {
  // The base-class numeric mean must agree with each closed form.
  const ShiftedExponential expo(30.0, 0.02);
  EXPECT_NEAR(expo.Distribution::mean(), expo.mean(), 1e-4 * expo.mean());
  const ShiftedWeibull weibull(30.0, 50.0, 0.9);
  EXPECT_NEAR(weibull.Distribution::mean(), weibull.mean(),
              1e-4 * weibull.mean());
  const ShiftedLogNormal lognormal(30.0, 3.5, 0.8);
  EXPECT_NEAR(lognormal.Distribution::mean(), lognormal.mean(),
              1e-3 * lognormal.mean());
}

TEST(Distribution, ParetoWrapperMatchesPareto) {
  const ParetoDistribution wrapper(30.0, 1.5);
  const Pareto direct(30.0, 1.5);
  for (double t = 30.0; t < 500.0; t += 17.0) {
    EXPECT_NEAR(wrapper.survival(t), direct.survival(t), 1e-12);
  }
  EXPECT_EQ(wrapper.mean(), direct.mean());
}

TEST(NormalHelpers, CdfQuantileRoundTrip) {
  for (const double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
  }
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_THROW(normal_quantile(0.0), PreconditionError);
  EXPECT_THROW(normal_quantile(1.0), PreconditionError);
}

TEST(Distribution, ConstructorPreconditions) {
  EXPECT_THROW(ShiftedLogNormal(-1.0, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(ShiftedLogNormal(0.0, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(ShiftedWeibull(0.0, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(ShiftedWeibull(0.0, 1.0, 0.0), PreconditionError);
  EXPECT_THROW(ShiftedExponential(0.0, 0.0), PreconditionError);
}

TEST(Distribution, TailHeavinessOrdering) {
  // At matched scale, the Pareto tail dominates the lognormal which
  // dominates the exponential far out in the tail.
  const ParetoDistribution pareto(30.0, 1.5);
  const ShiftedLogNormal lognormal(30.0, 3.5, 0.8);
  const ShiftedExponential expo(30.0, 0.02);
  EXPECT_GT(pareto.survival(3000.0), lognormal.survival(3000.0));
  EXPECT_GT(lognormal.survival(3000.0), expo.survival(3000.0));
}

}  // namespace
}  // namespace chronos::stats
