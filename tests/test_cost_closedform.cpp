// Closed-form S-Restart winner time + SharedAnalytics validation layer:
//  - tolerance-checked agreement of the closed form against the adaptive
//    quadrature reference across a randomized valid-JobParams grid
//    (mirroring the PR 4 monte_carlo_reference pattern), including points
//    straddling the removable beta * r == 1 singularity,
//  - the divergence guard (beta (r+1) <= 1 must throw, not return garbage),
//  - continuity of E(T) as r -> 0+ (the r == 0 branch is the limit of the
//    general branch, so the structural selection cannot jump),
//  - three-way bit-identity: free functions <-> AnalyticContext <->
//    SharedAnalytics-borrowing context (the optimize_all batched path).
// The committed sweep goldens are re-checked byte-identically by
// test_report_golden / test_shard, which run in the same ctest suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/numeric.h"
#include "common/rng.h"
#include "core/analytic_context.h"
#include "core/cost.h"
#include "core/optimizer.h"
#include "core/pocd.h"
#include "core/utility.h"
#include "stats/pareto.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_econ;
using chronos::testing::default_job;

double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Random JobParams satisfying validate(), with beta > 1 so every strategy's
/// context is constructible. tau_est / deadline reaches ~0.92, exercising
/// slow-ish tail-series regimes.
JobParams random_job(Rng& rng) {
  JobParams p;
  p.num_tasks = static_cast<int>(rng.uniform_int(1, 400));
  p.t_min = rng.uniform(0.5, 60.0);
  p.deadline = p.t_min * rng.uniform(1.3, 25.0);
  p.tau_est = rng.uniform(0.0, p.deadline - p.t_min);
  p.tau_kill = p.tau_est + rng.uniform(0.0, p.deadline);
  p.beta = rng.uniform(1.05, 4.0);
  p.phi_est = rng.uniform(0.0, 0.9);
  return p;
}

/// High-accuracy independent evaluation of E(W_hat) used as the test-side
/// comparator. The reference's semi-infinite quadrature maps the tail onto
/// [0, 1), where the integrand behaves like (1-t)^{beta(r+1)-2}: for tail
/// decay below 2 that endpoint is singular and adaptive Simpson's Richardson
/// error estimate (which assumes C^4) under-reports, costing ~1e-6 relative
/// accuracy. Here the tail is rewritten as C int_0^1 v^{a-1} h(v) dv with h
/// smooth, and v = s^m (m = ceil(5/a)) lifts the endpoint exponent to >= 4,
/// so plain adaptive Simpson converges to ~1e-12 for EVERY decay rate.
double winner_time_accurate(const JobParams& p, double r) {
  const double beta = p.beta;
  const double q = beta * r;
  const double a = beta * (r + 1.0) - 1.0;
  const double d_bar = p.deadline - p.tau_est;
  const double t_min = p.t_min;  // t_min <= d_bar by validate()
  // Middle piece: smooth finite-interval integrand, Simpson is exact enough.
  const double middle = numeric::integrate(
      [&](double w) { return std::pow(t_min / w, q); }, t_min, d_bar, 1e-13);
  // Tail piece via w = d_bar / v, then v = s^m:
  //   int_{d_bar}^inf (D/(w+tau))^beta (t_min/w)^q dw
  //     = D^beta t_min^q d_bar^{1-beta-q} int_0^1 v^{a-1} (1+tau v/d_bar)^{-beta} dv.
  const double c = std::pow(p.deadline, beta) * std::pow(t_min, q) *
                   std::pow(d_bar, 1.0 - beta - q);
  const double ratio = p.tau_est / d_bar;
  const double m = std::ceil(5.0 / a);
  const double tail =
      c * numeric::integrate(
              [&](double s) {
                if (s <= 0.0) {
                  return 0.0;  // m*a - 1 >= 4 > 0
                }
                const double v = std::pow(s, m);
                return m * std::pow(s, m * a - 1.0) *
                       std::pow(1.0 + ratio * v, -beta);
              },
              0.0, 1.0, 1e-13);
  return t_min + middle + tail;
}

TEST(ClosedForm, WinnerTimeAgreesWithQuadratureReference) {
  Rng rng(20260730);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    const auto p = random_job(rng);
    const double rs[] = {0.0,  rng.uniform(0.0, 1.0), 1.0, 2.0,
                         16.0, rng.uniform(2.0, 24.0)};
    for (const double r : rs) {
      const double closed = s_restart_winner_time(p, r);
      // The independent high-accuracy comparator holds everywhere.
      EXPECT_LE(rel_err(closed, winner_time_accurate(p, r)), 1e-9)
          << "t_min=" << p.t_min << " D=" << p.deadline
          << " tau_est=" << p.tau_est << " beta=" << p.beta << " r=" << r;
      // The production quadrature reference is only compared where its own
      // error is far below the 1e-9 budget (tail decay >= 2.2, where the
      // mapped integrand vanishes at the endpoint). Below that the REFERENCE
      // drifts — up to ~3% relative at beta ~ 1.16 — which is precisely the
      // silent-inaccuracy regime this PR's closed form eliminates;
      // winner_time_accurate above already pinned the closed form there.
      if (p.beta * (r + 1.0) >= 2.2) {
        EXPECT_LE(rel_err(closed, s_restart_winner_time_reference(p, r)),
                  1e-9)
            << "t_min=" << p.t_min << " D=" << p.deadline
            << " tau_est=" << p.tau_est << " beta=" << p.beta << " r=" << r;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 1500);  // the grid must not degenerate
}

TEST(ClosedForm, WinnerTimeExactAlgebraAtRZero) {
  // With no restarts the winner is the conditioned original alone:
  // E(W_hat) = E[Pareto(D, beta)] - tau_est = d_bar + D / (beta - 1).
  // This pins the closed form near divergence (beta -> 1+) where quadrature
  // comparators are weakest, using nothing but exact algebra.
  Rng rng(31337);
  for (int i = 0; i < 200; ++i) {
    auto p = random_job(rng);
    if (i % 2 == 0) {
      p.beta = rng.uniform(1.02, 1.2);  // stress the near-divergent regime
    }
    const double exact =
        (p.deadline - p.tau_est) + p.deadline / (p.beta - 1.0);
    EXPECT_LE(rel_err(s_restart_winner_time(p, 0.0), exact), 1e-12)
        << "beta=" << p.beta << " D=" << p.deadline
        << " tau_est=" << p.tau_est;
  }
}

TEST(ClosedForm, WinnerTimeNearDivergenceStaysFiniteAndAccurate) {
  // 1 < beta (r+1) < 1.5: the production reference quadrature is no longer
  // trustworthy to 1e-9 here, but the closed form must stay finite,
  // positive, and agree with the high-accuracy comparator.
  Rng rng(424242);
  for (int i = 0; i < 100; ++i) {
    auto p = random_job(rng);
    p.beta = rng.uniform(1.02, 1.2);
    const double r = rng.uniform(0.0, 0.2);
    const double closed = s_restart_winner_time(p, r);
    EXPECT_TRUE(std::isfinite(closed));
    EXPECT_GT(closed, p.t_min);
    EXPECT_LE(rel_err(closed, winner_time_accurate(p, r)), 1e-8)
        << "beta=" << p.beta << " r=" << r << " D=" << p.deadline
        << " t_min=" << p.t_min << " tau_est=" << p.tau_est;
  }
}

TEST(ClosedForm, StableAcrossBetaRSingularity) {
  // beta * r == 1 is the removable singularity of the published Eq. 45; the
  // closed form's expm1 branch must be accurate on both sides and exactly at
  // the singular point.
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    auto p = random_job(rng);
    // Keep the total tail decay beta (r+1) = 1 + beta comfortably above 2 so
    // the quadrature comparator is accurate at the singular point.
    p.beta = std::max(p.beta, 1.25);
    const double r_sing = 1.0 / p.beta;  // beta * r == 1
    for (const double delta :
         {0.0, 1e-13, 1e-9, 1e-6, 1e-3, 1e-1}) {
      for (const double sign : {-1.0, 1.0}) {
        const double r = r_sing * (1.0 + sign * delta);
        if (r < 0.0) {
          continue;
        }
        const double closed = s_restart_winner_time(p, r);
        EXPECT_TRUE(std::isfinite(closed)) << "delta=" << sign * delta;
        EXPECT_LE(rel_err(closed, s_restart_winner_time_reference(p, r)),
                  1e-9)
            << "beta=" << p.beta << " r=" << r << " delta=" << sign * delta;
      }
    }
  }
}

TEST(ClosedForm, MatchesPaperEq45AtDefaultJob) {
  // Independent spot-check against the published Eq. 45 with its tail term
  // left as an explicit integral (as in test_cost.cpp, tighter tolerance).
  const auto p = default_job();
  for (const double r : {0.5, 1.0, 2.0, 5.0}) {
    const double b = p.beta;
    const double br = b * r;
    const double d_bar = p.deadline - p.tau_est;
    const double tail = numeric::integrate_to_infinity(
        [&](double w) {
          return std::pow(p.deadline / (w + p.tau_est), b) *
                 std::pow(p.t_min / w, br);
        },
        d_bar);
    const double eq45 = p.t_min / (br - 1.0) -
                        std::pow(p.t_min, br) /
                            ((br - 1.0) * std::pow(d_bar, br - 1.0)) +
                        tail + p.t_min;
    EXPECT_LE(rel_err(s_restart_winner_time(p, r), eq45), 1e-8) << "r=" << r;
  }
}

TEST(ClosedForm, RejectsDivergentRegime) {
  // The tail integrand decays as w^{-beta(r+1)}: beta (r+1) <= 1 makes the
  // winner-time integral divergent. A direct call used to hand
  // integrate_to_infinity a divergent integral and return garbage; both
  // implementations must throw instead.
  auto p = default_job();
  p.beta = 0.8;  // passes validate(); beta * (0 + 1) = 0.8 <= 1
  EXPECT_THROW(s_restart_winner_time(p, 0.0), PreconditionError);
  EXPECT_THROW(s_restart_winner_time_reference(p, 0.0), PreconditionError);
  // beta (r+1) == 1 exactly: the tail is ~1/w, still divergent.
  EXPECT_THROW(s_restart_winner_time(p, 0.25), PreconditionError);
  EXPECT_THROW(s_restart_winner_time_reference(p, 0.25), PreconditionError);
  // Just inside the convergent region the call succeeds.
  EXPECT_TRUE(std::isfinite(s_restart_winner_time(p, 1.0)));
  EXPECT_TRUE(std::isfinite(s_restart_winner_time_reference(p, 1.0)));
}

TEST(ClosedForm, MachineTimeContinuousAsRApproachesZero) {
  // The r == 0 branch (straggler runs to completion, E[T | T > D]) must be
  // the r -> 0+ limit of the general branch: |E(T; r) - E(T; 0)| = O(r).
  const auto p = default_job();
  const auto e = default_econ();
  const double at_zero = machine_time_s_restart(p, 0.0);
  const AnalyticContext ctx(Strategy::kSpeculativeRestart, p, e);
  for (const double r : {1e-12, 1e-9, 1e-6, 1e-4}) {
    const double slack = 1e4 * r + 1e-9;  // Lipschitz bound * r
    EXPECT_NEAR(machine_time_s_restart(p, r), at_zero, slack) << "r=" << r;
    EXPECT_NEAR(ctx.machine_time(r), at_zero, slack) << "r=" << r;
  }
  // And the r == 0 branch itself pins E[T | T > D] exactly.
  const stats::Pareto attempt(p.t_min, p.beta);
  const double p_straggle = std::pow(p.t_min / p.deadline, p.beta);
  const double expected =
      static_cast<double>(p.num_tasks) *
      (expected_time_below_deadline(p) * (1.0 - p_straggle) +
       attempt.truncated_mean_above(p.deadline) * p_straggle);
  EXPECT_EQ(at_zero, expected);
}

TEST(SharedAnalytics, ContextsBitIdenticalToDirectConstruction) {
  // The optimize_all batched path must not perturb a single bit relative to
  // per-strategy contexts (and hence, transitively, the free functions).
  Rng rng(99);
  const auto e = default_econ();
  for (int i = 0; i < 50; ++i) {
    const auto p = random_job(rng);
    const SharedAnalytics shared(p);
    for (const Strategy s :
         {Strategy::kClone, Strategy::kSpeculativeRestart,
          Strategy::kSpeculativeResume}) {
      const AnalyticContext direct(s, p, e);
      const AnalyticContext borrowed(s, shared, e);
      EXPECT_EQ(direct.gamma(), borrowed.gamma()) << to_string(s);
      for (const double r : {0.0, 1.0, 2.0, 7.0, 33.0}) {
        const auto a = direct.evaluate(r);
        const auto b = borrowed.evaluate(r);
        const auto free_point = evaluate_utility(s, p, e, r);
        EXPECT_EQ(a.pocd, b.pocd) << to_string(s) << " r=" << r;
        EXPECT_EQ(a.machine_time, b.machine_time) << to_string(s) << " r=" << r;
        EXPECT_EQ(a.utility, b.utility) << to_string(s) << " r=" << r;
        EXPECT_EQ(b.pocd, free_point.pocd) << to_string(s) << " r=" << r;
        EXPECT_EQ(b.machine_time, free_point.machine_time)
            << to_string(s) << " r=" << r;
        EXPECT_EQ(b.cost, free_point.cost) << to_string(s) << " r=" << r;
        EXPECT_EQ(b.utility, free_point.utility) << to_string(s) << " r=" << r;
      }
    }
  }
}

TEST(SharedAnalytics, RequiresBetaAboveOne) {
  auto p = default_job();
  p.beta = 1.0;
  EXPECT_THROW(SharedAnalytics{p}, PreconditionError);
}

TEST(SharedAnalytics, OptimizeAllMatchesPerStrategyOptimize) {
  // optimize_all (one SharedAnalytics, borrowed contexts) must reproduce the
  // per-strategy optimize() results bit for bit.
  Rng rng(1234);
  for (int i = 0; i < 20; ++i) {
    const auto p = random_job(rng);
    auto e = default_econ();
    e.theta = rng.uniform(1e-6, 1e-3);
    const auto best = optimize_all(p, e);
    double best_utility = -std::numeric_limits<double>::infinity();
    for (const Strategy s :
         {Strategy::kClone, Strategy::kSpeculativeRestart,
          Strategy::kSpeculativeResume}) {
      best_utility = std::max(best_utility, optimize(s, p, e).best.utility);
    }
    // The chosen strategy really is the argmax, and its result is bitwise
    // what a standalone optimize() of that strategy returns.
    const auto standalone = optimize(best.strategy, p, e);
    EXPECT_GE(best.result.best.utility, best_utility);
    EXPECT_EQ(best.result.best.utility, standalone.best.utility);
    EXPECT_EQ(best.result.r_opt, standalone.r_opt);
    EXPECT_EQ(best.result.evaluations, standalone.evaluations);
  }
}

TEST(ClosedForm, WinnerTimeMonotoneDecreasingInR) {
  // More restarted attempts can only shrink the winner's remaining time.
  Rng rng(5150);
  for (int i = 0; i < 50; ++i) {
    const auto p = random_job(rng);
    double prev = s_restart_winner_time(p, 0.0);
    for (const double r : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
      const double cur = s_restart_winner_time(p, r);
      EXPECT_LE(cur, prev * (1.0 + 1e-12)) << "r=" << r;
      prev = cur;
    }
  }
}

TEST(ClosedForm, HighTauEstRatioStillConverges) {
  // tau_est / deadline ~ 0.997: thousands of series terms, still exact.
  JobParams p;
  p.num_tasks = 10;
  p.t_min = 1.0;
  p.deadline = 400.0;
  p.tau_est = 399.0;  // d_bar = 1.0 == t_min (boundary of validate())
  p.tau_kill = 399.0;
  p.beta = 1.5;
  p.phi_est = 0.25;
  // r == 0 against exact algebra (the reference quadrature is inaccurate at
  // tail decay 1.5); r >= 1 against the reference at full precision.
  const double exact_r0 = (p.deadline - p.tau_est) + p.deadline / (p.beta - 1.0);
  EXPECT_LE(rel_err(s_restart_winner_time(p, 0.0), exact_r0), 1e-11);
  for (const double r : {1.0, 4.0}) {
    const double closed = s_restart_winner_time(p, r);
    EXPECT_TRUE(std::isfinite(closed));
    EXPECT_LE(rel_err(closed, s_restart_winner_time_reference(p, r)), 1e-9)
        << "r=" << r;
  }
}

}  // namespace
}  // namespace chronos::core
