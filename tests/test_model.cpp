#include "core/model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "test_util.h"

namespace chronos::core {
namespace {

TEST(JobParams, ValidDefaultsPass) {
  EXPECT_NO_THROW(chronos::testing::default_job().validate());
}

TEST(JobParams, RejectsNonPositiveTasks) {
  auto p = chronos::testing::default_job();
  p.num_tasks = 0;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(JobParams, RejectsDeadlineNotAboveTmin) {
  auto p = chronos::testing::default_job();
  p.deadline = p.t_min;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(JobParams, RejectsTauEstBeyondDeadline) {
  auto p = chronos::testing::default_job();
  p.tau_est = p.deadline;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(JobParams, RejectsKillBeforeEst) {
  auto p = chronos::testing::default_job();
  p.tau_kill = p.tau_est - 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(JobParams, RejectsPhiOutOfRange) {
  auto p = chronos::testing::default_job();
  p.phi_est = 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
  p.phi_est = -0.1;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(JobParams, RejectsLateSpeculationWindow) {
  auto p = chronos::testing::default_job();
  // deadline - tau_est < t_min: a fresh attempt can never meet the deadline.
  p.tau_est = p.deadline - p.t_min + 1.0;
  p.tau_kill = p.tau_est + 1.0;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(Economics, ValidDefaultsPass) {
  EXPECT_NO_THROW(chronos::testing::default_econ().validate());
}

TEST(Economics, RejectsNegativePriceOrTheta) {
  auto e = chronos::testing::default_econ();
  e.price = -1.0;
  EXPECT_THROW(e.validate(), PreconditionError);
  e = chronos::testing::default_econ();
  e.theta = -1.0;
  EXPECT_THROW(e.validate(), PreconditionError);
}

TEST(Economics, RejectsRminOutOfRange) {
  auto e = chronos::testing::default_econ();
  e.r_min = 1.0;
  EXPECT_THROW(e.validate(), PreconditionError);
}

TEST(DefaultPhiEst, MatchesConditionalExpectation) {
  const auto p = chronos::testing::default_job();
  // tau_est * beta / ((beta + 1) * D) = 40 * 1.5 / (2.5 * 100) = 0.24.
  EXPECT_NEAR(default_phi_est(p), 0.24, 1e-12);
}

TEST(DefaultPhiEst, BelowOneForValidParams) {
  auto p = chronos::testing::default_job();
  for (double tau = 0.0; tau < p.deadline - p.t_min; tau += 10.0) {
    p.tau_est = tau;
    EXPECT_GE(default_phi_est(p), 0.0);
    EXPECT_LT(default_phi_est(p), 1.0);
  }
}

TEST(StrategyNames, MatchPaper) {
  EXPECT_EQ(to_string(Strategy::kClone), "Clone");
  EXPECT_EQ(to_string(Strategy::kSpeculativeRestart), "S-Restart");
  EXPECT_EQ(to_string(Strategy::kSpeculativeResume), "S-Resume");
  EXPECT_EQ(to_string(Baseline::kHadoopNS), "Hadoop-NS");
  EXPECT_EQ(to_string(Baseline::kHadoopS), "Hadoop-S");
  EXPECT_EQ(to_string(Baseline::kMantri), "Mantri");
}

}  // namespace
}  // namespace chronos::core
