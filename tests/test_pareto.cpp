#include "stats/pareto.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "common/rng.h"

namespace chronos::stats {
namespace {

TEST(Pareto, RejectsInvalidParameters) {
  EXPECT_THROW(Pareto(0.0, 1.0), PreconditionError);
  EXPECT_THROW(Pareto(-1.0, 1.0), PreconditionError);
  EXPECT_THROW(Pareto(1.0, 0.0), PreconditionError);
}

TEST(Pareto, PdfZeroBelowScale) {
  const Pareto p(2.0, 1.5);
  EXPECT_EQ(p.pdf(1.9), 0.0);
  EXPECT_GT(p.pdf(2.1), 0.0);
}

TEST(Pareto, PdfIntegratesToOne) {
  const Pareto p(2.0, 1.5);
  const double mass = numeric::integrate_to_infinity(
      [&](double t) { return p.pdf(t); }, p.t_min());
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST(Pareto, SurvivalAtScaleIsOne) {
  const Pareto p(3.0, 2.0);
  EXPECT_EQ(p.survival(3.0), 1.0);
  EXPECT_EQ(p.survival(1.0), 1.0);
}

TEST(Pareto, SurvivalMatchesClosedForm) {
  const Pareto p(3.0, 2.0);
  EXPECT_NEAR(p.survival(6.0), std::pow(0.5, 2.0), 1e-12);
  EXPECT_NEAR(p.cdf(6.0), 1.0 - std::pow(0.5, 2.0), 1e-12);
}

TEST(Pareto, QuantileInvertsCdf) {
  const Pareto p(1.5, 1.3);
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(p.cdf(p.quantile(q)), q, 1e-10);
  }
}

TEST(Pareto, QuantileRejectsOutOfRange) {
  const Pareto p(1.0, 1.0);
  EXPECT_THROW(p.quantile(1.0), PreconditionError);
  EXPECT_THROW(p.quantile(-0.1), PreconditionError);
}

TEST(Pareto, MeanClosedForm) {
  const Pareto p(2.0, 3.0);
  EXPECT_NEAR(p.mean(), 3.0, 1e-12);
  const Pareto heavy(2.0, 1.0);
  EXPECT_TRUE(std::isinf(heavy.mean()));
}

TEST(Pareto, VarianceClosedFormAndDivergence) {
  const Pareto p(1.0, 3.0);
  // Var = t^2 b / ((b-1)^2 (b-2)) = 3 / (4 * 1) = 0.75.
  EXPECT_NEAR(p.variance(), 0.75, 1e-12);
  EXPECT_TRUE(std::isinf(Pareto(1.0, 2.0).variance()));
}

TEST(Pareto, TruncatedMeanBelowMatchesNumericIntegration) {
  const Pareto p(2.0, 1.5);
  const double d = 10.0;
  const double numeric_mean =
      numeric::integrate([&](double t) { return t * p.pdf(t); }, p.t_min(),
                         d) /
      p.cdf(d);
  EXPECT_NEAR(p.truncated_mean_below(d), numeric_mean, 1e-8);
}

TEST(Pareto, TruncatedMeanBelowHandlesBetaOne) {
  const Pareto p(2.0, 1.0);
  const double d = 8.0;
  const double numeric_mean =
      numeric::integrate([&](double t) { return t * p.pdf(t); }, p.t_min(),
                         d) /
      p.cdf(d);
  EXPECT_NEAR(p.truncated_mean_below(d), numeric_mean, 1e-8);
}

TEST(Pareto, TruncatedMeanAboveIsConditionalPareto) {
  const Pareto p(2.0, 2.5);
  // T | T > d ~ Pareto(d, beta)  =>  mean d*beta/(beta-1).
  EXPECT_NEAR(p.truncated_mean_above(10.0), 10.0 * 2.5 / 1.5, 1e-12);
}

TEST(Pareto, MinOfNMeanLemma1) {
  const Pareto p(2.0, 1.5);
  // Lemma 1: E min of n = t_min * n beta / (n beta - 1).
  EXPECT_NEAR(p.min_of_n_mean(3), 2.0 * 4.5 / 3.5, 1e-12);
  EXPECT_THROW(p.min_of_n_mean(0), PreconditionError);
}

TEST(Pareto, MinOfNMeanMatchesSampling) {
  const Pareto p(1.0, 1.2);
  const int n = 4;
  Rng rng(99);
  double sum = 0.0;
  const int trials = 300000;
  for (int i = 0; i < trials; ++i) {
    double m = p.sample(rng);
    for (int k = 1; k < n; ++k) {
      m = std::min(m, p.sample(rng));
    }
    sum += m;
  }
  EXPECT_NEAR(sum / trials, p.min_of_n_mean(n), 0.01);
}

TEST(Pareto, MinOfNDistribution) {
  const Pareto p(2.0, 1.5);
  const Pareto m = p.min_of_n(3);
  EXPECT_EQ(m.t_min(), 2.0);
  EXPECT_NEAR(m.beta(), 4.5, 1e-12);
}

TEST(Pareto, ScaledVariate) {
  const Pareto p(2.0, 1.5);
  const Pareto s = p.scaled(0.5);
  EXPECT_NEAR(s.t_min(), 1.0, 1e-12);
  EXPECT_NEAR(s.beta(), 1.5, 1e-12);
  EXPECT_THROW(p.scaled(0.0), PreconditionError);
}

TEST(Pareto, SampleRespectsSupportAndTail) {
  const Pareto p(3.0, 1.8);
  Rng rng(3);
  int exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = p.sample(rng);
    EXPECT_GE(x, 3.0);
    exceed += x > 9.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, p.survival(9.0), 0.005);
}

}  // namespace
}  // namespace chronos::stats
