// Fuzz-style robustness tests for the two text formats a crashed or
// misbehaving cluster node can hand us: journal entry lines and manifest
// files. Thousands of deterministically mutated inputs (seeded chronos::Rng
// — every failure reproduces) are fed to the parsers, asserting they never
// crash and never silently mis-parse: a mutated journal line either fails
// to decode or is byte-for-byte a canonical line, and a mutated manifest
// either parses or throws PreconditionError — nothing else.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "exp/checkpoint.h"
#include "exp/manifest.h"
#include "fabric/protocol.h"

namespace chronos::exp {
namespace {

CellAggregate sample_aggregate(double base) {
  CellAggregate aggregate;
  aggregate.runs = 3;
  aggregate.jobs = 18;
  aggregate.attempts_launched = 70;
  aggregate.attempts_killed = 12;
  aggregate.attempts_failed = 1;
  aggregate.events_executed = 12345;
  aggregate.pocd = {3, 0.75 + base, 0.1, 0.2484, 0.6, 0.9};
  aggregate.cost = {3, 123.456, 7.5, 18.63, 110.0, 130.5};
  aggregate.machine_time = {3, 0.1 + 0.2, 0.0, 0.0, 0.3, 0.3};
  aggregate.mean_r = {3, 2.5, 0.5, 1.242, 2.0, 3.0};
  aggregate.utility = {2, -std::numeric_limits<double>::infinity(), 0.0,
                       0.0, -std::numeric_limits<double>::infinity(), -0.5};
  return aggregate;
}

/// One random structural mutation: byte flips, truncation, insertion,
/// deletion, and field duplication (the shapes torn writes, bad disks and
/// buggy tooling actually produce).
std::string mutate(const std::string& input, Rng& rng) {
  std::string text = input;
  const int kind = static_cast<int>(rng.uniform_int(0, 5));
  switch (kind) {
    case 0: {  // flip one byte to a different value
      if (text.empty()) break;
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      char replacement = static_cast<char>(rng.uniform_int(0, 255));
      while (replacement == text[at]) {
        replacement = static_cast<char>(rng.uniform_int(0, 255));
      }
      text[at] = replacement;
      break;
    }
    case 1: {  // truncate (a torn write)
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
      text.resize(at);
      break;
    }
    case 2: {  // insert a random byte
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(at),
                  static_cast<char>(rng.uniform_int(0, 255)));
      break;
    }
    case 3: {  // delete a random byte
      if (text.empty()) break;
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      text.erase(text.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    }
    case 4: {  // duplicate a space-separated field
      std::vector<std::string> fields;
      std::size_t at = 0;
      while (at <= text.size()) {
        const std::size_t space = text.find(' ', at);
        fields.push_back(text.substr(
            at, space == std::string::npos ? std::string::npos : space - at));
        if (space == std::string::npos) break;
        at = space + 1;
      }
      if (fields.empty()) break;
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(fields.size()) - 1));
      fields.insert(fields.begin() + static_cast<std::ptrdiff_t>(pick),
                    fields[pick]);
      text.clear();
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) text += ' ';
        text += fields[f];
      }
      break;
    }
    default: {  // swap two bytes
      if (text.size() < 2) break;
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      const auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      std::swap(text[a], text[b]);
      break;
    }
  }
  return text;
}

TEST(JournalFuzz, MutatedEntryLinesAreRejectedOrCanonical) {
  std::vector<std::string> seeds;
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(encode_journal_entry(
        {static_cast<std::size_t>(i * 1000), sample_aggregate(0.01 * i)}));
  }
  Rng rng(20260730);
  for (int iteration = 0; iteration < 4000; ++iteration) {
    const std::string& base = seeds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
    // Stack a few mutations so corruption compounds, as real torn/rotten
    // files do.
    std::string line = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 3));
    for (int r = 0; r < rounds; ++r) {
      line = mutate(line, rng);
    }
    const std::optional<JournalEntry> decoded = decode_journal_entry(line);
    if (decoded.has_value()) {
      // Either the mutations cancelled out or they produced another valid
      // line; in both cases decode must be the exact inverse of encode, so
      // nothing was silently mis-parsed.
      EXPECT_EQ(encode_journal_entry(*decoded), line)
          << "iteration " << iteration << " mis-parsed: " << line;
    }
  }
}

TEST(JournalFuzz, RandomGarbageNeverDecodes) {
  Rng rng(424242);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const auto length =
        static_cast<std::size_t>(rng.uniform_int(0, 200));
    std::string line(length, '\0');
    for (char& c : line) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    // A checksum-protected format cannot be satisfied by random bytes.
    EXPECT_FALSE(decode_journal_entry(line).has_value());
    // Prefixing the magic marker must not help either.
    EXPECT_FALSE(decode_journal_entry("cell " + line).has_value());
  }
}

constexpr const char* kBaseManifest = R"([sweep]
name = fuzz
policies = s-restart, s-resume
replications = 2
seed = 7

[axis.theta]
values = 1e-5, 1e-4, 1e-3
labels = "lo, w", mid, hi

[adaptive]
metric = pocd
target_ci95 = 0.04
batch = 2
max_replications = 12

[trace]
num_jobs = 24
duration_hours = 1
mean_tasks = 8
max_tasks = 40
seed = 11

[planner]
theta = @theta

[experiment]
utility = on
r_min = baseline

[output]
journal = tiny.journal
csv = tiny.csv

[shard]
count = 3
dir = journals
)";

/// A line-level mutation for manifests: duplicate, delete or swap whole
/// lines — the way a broken merge/editor mangles config files.
std::string mutate_lines(const std::string& input, Rng& rng) {
  std::vector<std::string> lines;
  std::size_t at = 0;
  while (at <= input.size()) {
    const std::size_t end = input.find('\n', at);
    lines.push_back(input.substr(
        at, end == std::string::npos ? std::string::npos : end - at));
    if (end == std::string::npos) break;
    at = end + 1;
  }
  const auto pick = [&] {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 1));
  };
  switch (rng.uniform_int(0, 2)) {
    case 0: {  // duplicate a line (duplicate keys/sections must be caught)
      const std::size_t i = pick();
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      break;
    }
    case 1:  // drop a line (missing required keys must be caught)
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(pick()));
      break;
    default:
      std::swap(lines[pick()], lines[pick()]);
      break;
  }
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += '\n';
    out += lines[i];
  }
  return out;
}

TEST(ManifestFuzz, MutatedManifestsParseOrThrowPreconditionError) {
  Rng rng(31337);
  int parsed = 0;
  int rejected = 0;
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string text = kBaseManifest;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rounds; ++r) {
      text = rng.bernoulli(0.5) ? mutate(text, rng)
                                : mutate_lines(text, rng);
    }
    try {
      const Manifest manifest = parse_manifest(text);
      // Whatever survived must be a coherent grid: validate() ran inside
      // parse_manifest, so the spec is usable as-is.
      EXPECT_GE(manifest.spec.num_cells(), 1u);
      ++parsed;
    } catch (const PreconditionError&) {
      ++rejected;  // the only acceptable failure mode
    }
    // Any other exception (or a crash/sanitizer report) fails the test.
  }
  // Sanity: the corpus exercises both outcomes, not just one trivially.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

// Open-system manifest: the [arrivals] section plus the keys it interacts
// with (numeric r_min, nodes/containers overrides, warm-up window). Poisson
// kind keeps the corpus free of file I/O.
constexpr const char* kArrivalsManifest = R"([sweep]
name = fuzz_open
policies = hadoop-ns, s-resume
replications = 2
seed = 19

[axis.lambda]
values = 0.05, 0.2

[trace]
mean_tasks = 4
max_tasks = 16
t_min_lo = 4
t_min_hi = 12

[planner]
theta = 1e-4

[experiment]
utility = on
r_min = 0.1

[arrivals]
kind = poisson
rate = @lambda
duration_hours = 0.25
warm_up_hours = 0.05
drain = on
plan = policy
admission = on
degrade_headroom = 1.0
reject_queue_factor = 4.0
nodes = 4
containers = 4

[output]
journal = open.journal
csv = open.csv
)";

TEST(ManifestFuzz, MutatedArrivalsManifestsParseOrThrowPreconditionError) {
  Rng rng(20260808);
  int parsed = 0;
  int rejected = 0;
  for (int iteration = 0; iteration < 3000; ++iteration) {
    std::string text = kArrivalsManifest;
    const int rounds = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rounds; ++r) {
      text = rng.bernoulli(0.5) ? mutate(text, rng)
                                : mutate_lines(text, rng);
    }
    try {
      const Manifest manifest = parse_manifest(text);
      EXPECT_GE(manifest.spec.num_cells(), 1u);
      // [arrivals] validation is parse-time: a surviving manifest with the
      // section still present must carry a coherent, validated spec.
      if (manifest.arrivals.has_value()) {
        EXPECT_GT(manifest.arrivals->duration_hours, 0.0);
        EXPECT_GE(manifest.arrivals->warm_up_hours, 0.0);
        EXPECT_LT(manifest.arrivals->warm_up_hours,
                  manifest.arrivals->duration_hours);
      }
      ++parsed;
    } catch (const PreconditionError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(ManifestFuzz, TruncatedArrivalsManifestsNeverCrash) {
  const std::string base = kArrivalsManifest;
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    try {
      parse_manifest(base.substr(0, cut));
    } catch (const PreconditionError&) {
      // fine: truncation removed something required
    }
  }
}

TEST(ManifestFuzz, TruncatedManifestsNeverCrash) {
  const std::string base = kBaseManifest;
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    try {
      parse_manifest(base.substr(0, cut));
    } catch (const PreconditionError&) {
      // fine: truncation removed something required
    }
  }
}

// --- fabric wire protocol ---------------------------------------------------

/// One canonical frame of every type, exercising every field syntax the
/// wire knows (tokens, u64 fields, cell lists, embedded journal entries).
std::vector<std::string> fabric_seed_frames() {
  using fabric::Frame;
  using fabric::FrameType;
  std::vector<Frame> frames;
  Frame hello;
  hello.type = FrameType::kHello;
  hello.value = fabric::kProtocolVersion;
  hello.fingerprint = "cafe0123beef4567";
  hello.name = "fuzz-worker";
  frames.push_back(hello);
  Frame welcome;
  welcome.type = FrameType::kWelcome;
  welcome.worker = 12;
  welcome.value = 500;
  frames.push_back(welcome);
  Frame reject;
  reject.type = FrameType::kReject;
  reject.reason = "fingerprint-mismatch";
  frames.push_back(reject);
  Frame request;
  request.type = FrameType::kRequest;
  request.worker = 12;
  request.value = 4;
  frames.push_back(request);
  Frame lease;
  lease.type = FrameType::kLease;
  lease.lease = 7;
  lease.cells = {0, 3, 4, 1000};
  frames.push_back(lease);
  Frame wait;
  wait.type = FrameType::kWait;
  wait.value = 200;
  frames.push_back(wait);
  Frame done;
  done.type = FrameType::kDone;
  frames.push_back(done);
  Frame result;
  result.type = FrameType::kResult;
  result.worker = 12;
  result.lease = 7;
  result.entry = encode_journal_entry({42, sample_aggregate(0.125)});
  frames.push_back(result);
  Frame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.worker = 12;
  heartbeat.value = 3;
  frames.push_back(heartbeat);
  Frame bye;
  bye.type = FrameType::kBye;
  bye.worker = 12;
  frames.push_back(bye);

  std::vector<std::string> lines;
  lines.reserve(frames.size());
  for (const Frame& frame : frames) {
    lines.push_back(fabric::encode_frame(frame));
  }
  return lines;
}

TEST(FabricFrameFuzz, MutatedFramesAreRejectedOrCanonical) {
  // Same property the journal format guarantees, now for the wire: a
  // mutated frame either fails to decode or decodes to a frame whose
  // canonical encoding is byte-for-byte the input. Nothing half-parses —
  // which is what lets the controller treat any decodable line as intact.
  const std::vector<std::string> seeds = fabric_seed_frames();
  Rng rng(20260808);
  for (int iteration = 0; iteration < 4000; ++iteration) {
    const std::string& base = seeds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
    std::string line = base;
    const int rounds = static_cast<int>(rng.uniform_int(1, 3));
    for (int r = 0; r < rounds; ++r) {
      line = mutate(line, rng);
    }
    const std::optional<fabric::Frame> decoded = fabric::decode_frame(line);
    if (decoded.has_value()) {
      EXPECT_EQ(fabric::encode_frame(*decoded), line)
          << "iteration " << iteration << " mis-parsed: " << line;
    }
  }
}

TEST(FabricFrameFuzz, RandomGarbageNeverDecodes) {
  Rng rng(808808);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const auto length = static_cast<std::size_t>(rng.uniform_int(0, 200));
    std::string line(length, '\0');
    for (char& c : line) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    EXPECT_FALSE(fabric::decode_frame(line).has_value());
    // A plausible-looking prefix must not help: the checksum still rules.
    EXPECT_FALSE(fabric::decode_frame("request worker=" + line).has_value());
  }
}

TEST(FabricFrameFuzz, CrossFrameSplicesNeverDecode) {
  // Splice the front of one canonical frame onto the back of another — the
  // shape a buggy buffer reuse or interleaved write would produce. The
  // payload checksum must reject every such chimera (identical halves
  // reassemble into the original, which is fine).
  const std::vector<std::string> seeds = fabric_seed_frames();
  for (std::size_t a = 0; a < seeds.size(); ++a) {
    for (std::size_t b = 0; b < seeds.size(); ++b) {
      if (a == b) {
        continue;
      }
      const std::string spliced =
          seeds[a].substr(0, seeds[a].size() / 2) +
          seeds[b].substr(seeds[b].size() / 2);
      const std::optional<fabric::Frame> decoded =
          fabric::decode_frame(spliced);
      if (decoded.has_value()) {
        EXPECT_EQ(fabric::encode_frame(*decoded), spliced);
      }
    }
  }
}

}  // namespace
}  // namespace chronos::exp
