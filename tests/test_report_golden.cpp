// Golden-file tests for the report emitters: the CSV/JSON/table renderings
// of a fixed, hand-built sweep result are compared byte-for-byte against
// committed expected files, and re-checked under a ','-decimal locale to
// prove the emitters are locale-independent.
//
// To regenerate the golden files after an intentional format change, run
// this binary with --gtest_filter=ReportGolden.* and the environment
// variable CHRONOS_REGOLD=1, then inspect the diff under tests/golden/.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include "exp/report.h"
#include "exp/sweep.h"

namespace chronos::exp {
namespace {

using strategies::PolicyKind;

const std::string kGoldenDir = std::string(CHRONOS_TEST_DIR) + "/golden/";

/// A fixed two-policy x two-workload result with awkward values: shortest
/// and long round-trip decimals, a quoted CSV label, and a -inf utility.
SweepResult fixed_result() {
  SweepResult result;
  result.name = "golden";
  result.axis_names = {"workload"};
  result.replications = 3;

  const auto make_cell = [](std::size_t cell, PolicyKind policy,
                            const char* name, std::size_t index,
                            const char* label, double base) {
    CellResult out;
    out.point.cell = cell;
    out.point.policy = policy;
    out.policy_name = name;
    out.point.coordinates = {{.name = "workload",
                              .value = static_cast<double>(index),
                              .label = label,
                              .index = index}};
    CellAggregate& agg = out.aggregate;
    agg.runs = 3;
    agg.jobs = 30;
    agg.attempts_launched = 90 + cell;
    agg.attempts_killed = 11 * cell;
    agg.attempts_failed = cell == 3 ? 2 : 0;
    agg.events_executed = 4321 + cell;
    agg.pocd = {3, 0.75 + base, 0.030000000000000002, 0.0745, 0.7, 0.8};
    agg.cost = {3, 123.456 + base, 7.5, 18.6328125, 110.0, 130.5};
    agg.machine_time = {3, 0.1 + 0.2, 0.05, 0.124, 0.25, 0.35};
    agg.mean_r = {3, 2.5, 0.5, 1.2421875, 2.0, 3.0};
    if (cell < 2) {
      agg.utility = {3, cell == 0
                            ? -std::numeric_limits<double>::infinity()
                            : -0.388062739504,
                     0.001, 0.0024843749999999997, -0.39, -0.386};
    }
    return out;
  };
  result.cells.push_back(
      make_cell(0, PolicyKind::kSResume, "S-Resume", 0, "Sort", 0.0));
  result.cells.push_back(make_cell(1, PolicyKind::kSResume, "S-Resume", 1,
                                   "Word, count", 0.001));
  result.cells.push_back(
      make_cell(2, PolicyKind::kHadoopNS, "Hadoop-NS", 0, "Sort", -0.25));
  result.cells.push_back(make_cell(3, PolicyKind::kHadoopNS, "Hadoop-NS", 1,
                                   "Word, count", -0.125));
  return result;
}

std::string read_golden(const std::string& name) {
  std::ifstream in(kGoldenDir + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << kGoldenDir + name;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void check_or_regold(const std::string& name, const std::string& actual) {
  if (std::getenv("CHRONOS_REGOLD") != nullptr) {
    write_file(kGoldenDir + name, actual);
    return;
  }
  EXPECT_EQ(actual, read_golden(name)) << "golden mismatch: " << name;
}

TEST(ReportGolden, CsvMatchesCommittedBytes) {
  check_or_regold("report_small.csv", to_csv(fixed_result()));
}

TEST(ReportGolden, JsonMatchesCommittedBytes) {
  check_or_regold("report_small.json", to_json(fixed_result()));
}

TEST(ReportGolden, TableMatchesCommittedBytes) {
  check_or_regold("report_small.txt", to_table(fixed_result()).str());
}

/// Locale guard: restores the C locale on scope exit.
class ScopedLocale {
 public:
  explicit ScopedLocale(const char* name)
      : ok_(std::setlocale(LC_ALL, name) != nullptr) {}
  ~ScopedLocale() { std::setlocale(LC_ALL, "C"); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

TEST(ReportGolden, OutputIsLocaleIndependent) {
  // Find an installed locale whose decimal separator is ','. Containers
  // often ship only C/POSIX; skip (loudly) rather than fake a pass.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                              "fr_FR.utf8",  "it_IT.UTF-8", "es_ES.UTF-8",
                              "nl_NL.UTF-8", "de_DE",       "fr_FR"};
  for (const char* name : candidates) {
    ScopedLocale locale(name);
    if (!locale.ok()) {
      continue;
    }
    if (std::string(std::localeconv()->decimal_point) != ",") {
      continue;
    }
    const SweepResult result = fixed_result();
    EXPECT_EQ(to_csv(result), read_golden("report_small.csv"))
        << "CSV bytes changed under locale " << name;
    EXPECT_EQ(to_json(result), read_golden("report_small.json"))
        << "JSON bytes changed under locale " << name;
    EXPECT_EQ(to_table(result).str(), read_golden("report_small.txt"))
        << "table bytes changed under locale " << name;
    return;
  }
  GTEST_SKIP() << "no ','-decimal locale installed";
}

}  // namespace
}  // namespace chronos::exp
