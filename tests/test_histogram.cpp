#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace chronos::stats {
namespace {

TEST(IntHistogram, CountsAndTotal) {
  IntHistogram h;
  h.add(1);
  h.add(2);
  h.add(2);
  h.add(5, 3);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(5), 3u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(IntHistogram, MinMaxMode) {
  IntHistogram h;
  h.add(3);
  h.add(-1);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.min_key(), -1);
  EXPECT_EQ(h.max_key(), 7);
  EXPECT_EQ(h.mode(), 3);
}

TEST(IntHistogram, ModeTieBreaksToSmallestKey) {
  IntHistogram h;
  h.add(4);
  h.add(2);
  EXPECT_EQ(h.mode(), 2);
}

TEST(IntHistogram, ItemsSortedByKey) {
  IntHistogram h;
  h.add(9);
  h.add(1);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1);
  EXPECT_EQ(items[1].first, 5);
  EXPECT_EQ(items[2].first, 9);
}

TEST(IntHistogram, FractionAndEmptyBehaviour) {
  IntHistogram h;
  EXPECT_EQ(h.fraction(1), 0.0);
  EXPECT_THROW(h.min_key(), PreconditionError);
  h.add(1);
  h.add(2);
  EXPECT_NEAR(h.fraction(1), 0.5, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRangeClampedAndTracked) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_NEAR(h.bin_lower(0), 0.0, 1e-12);
  EXPECT_NEAR(h.bin_upper(0), 2.0, 1e-12);
  EXPECT_NEAR(h.bin_lower(4), 8.0, 1e-12);
  EXPECT_NEAR(h.bin_upper(4), 10.0, 1e-12);
  EXPECT_THROW(h.bin_lower(5), PreconditionError);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const auto text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

}  // namespace
}  // namespace chronos::stats
