#include "core/frontier.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/pocd.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_job;

std::vector<FrontierPoint> sample_points() {
  return enumerate_operating_points(default_job(), 0.4, 8);
}

TEST(Frontier, EnumeratesAllStrategiesAndR) {
  const auto points = sample_points();
  EXPECT_EQ(points.size(), 3u * 9u);
  int clone = 0;
  for (const auto& point : points) {
    EXPECT_GE(point.pocd, 0.0);
    EXPECT_LE(point.pocd, 1.0);
    EXPECT_GT(point.cost, 0.0);
    clone += point.strategy == Strategy::kClone ? 1 : 0;
  }
  EXPECT_EQ(clone, 9);
}

TEST(Frontier, PointsMatchClosedForms) {
  const auto points = sample_points();
  for (const auto& point : points) {
    EXPECT_NEAR(point.pocd,
                pocd(point.strategy, default_job(),
                     static_cast<double>(point.r)),
                1e-12);
  }
}

TEST(Frontier, ParetoFrontierIsMonotone) {
  const auto frontier = pareto_frontier(sample_points());
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].cost, frontier[i - 1].cost);
    EXPECT_GT(frontier[i].pocd, frontier[i - 1].pocd);
  }
}

TEST(Frontier, FrontierDominatesAllPoints) {
  const auto points = sample_points();
  const auto frontier = pareto_frontier(points);
  for (const auto& point : points) {
    bool dominated_or_on = false;
    for (const auto& front : frontier) {
      if (front.pocd >= point.pocd - 1e-12 &&
          front.cost <= point.cost + 1e-12) {
        dominated_or_on = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_or_on);
  }
}

TEST(Frontier, CheapestForTargetIsFeasibleAndMinimal) {
  const auto points = sample_points();
  const auto pick = cheapest_for_target(points, 0.95);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(pick->pocd, 0.95);
  for (const auto& point : points) {
    if (point.pocd >= 0.95) {
      EXPECT_LE(pick->cost, point.cost + 1e-12);
    }
  }
}

TEST(Frontier, UnattainableTargetReturnsNullopt) {
  // r <= 1 with a single strategy's points cannot hit 1 - 1e-15.
  auto points = enumerate_operating_points(default_job(), 0.4, 0);
  EXPECT_FALSE(cheapest_for_target(points, 0.999999999).has_value());
}

TEST(Frontier, BestWithinBudgetMaximizesPocd) {
  const auto points = sample_points();
  const double budget = 500.0;
  const auto pick = best_within_budget(points, budget);
  ASSERT_TRUE(pick.has_value());
  EXPECT_LE(pick->cost, budget);
  for (const auto& point : points) {
    if (point.cost <= budget) {
      EXPECT_GE(pick->pocd, point.pocd - 1e-12);
    }
  }
}

TEST(Frontier, TinyBudgetReturnsNullopt) {
  EXPECT_FALSE(best_within_budget(sample_points(), 0.0).has_value());
}

TEST(Frontier, PreconditionChecks) {
  EXPECT_THROW(enumerate_operating_points(default_job(), -1.0),
               PreconditionError);
  EXPECT_THROW(cheapest_for_target({}, 1.5), PreconditionError);
  EXPECT_THROW(best_within_budget({}, -1.0), PreconditionError);
}

TEST(Frontier, SResumeDominatesLowCostRegion) {
  // S-Resume's work preservation makes it the cheapest way to reach high
  // PoCD on the default job: the frontier's upper region is S-Resume.
  const auto frontier = pareto_frontier(sample_points());
  int resume_points = 0;
  for (const auto& point : frontier) {
    resume_points +=
        point.strategy == Strategy::kSpeculativeResume ? 1 : 0;
  }
  EXPECT_GT(resume_points, 0);
}

}  // namespace
}  // namespace chronos::core
