#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace chronos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 4.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 4.5);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 3.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ParetoNeverBelowScale) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
  }
}

TEST(Rng, ParetoMeanMatchesTheory) {
  Rng rng(37);
  const double t_min = 2.0;
  const double beta = 3.0;  // beta > 2: finite variance, stable estimate
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += rng.pareto(t_min, beta);
  }
  EXPECT_NEAR(sum / n, t_min * beta / (beta - 1.0), 0.02);
}

TEST(Rng, ParetoTailProbabilityMatchesSurvival) {
  Rng rng(41);
  const double t_min = 1.0;
  const double beta = 1.5;
  const double threshold = 4.0;
  int exceed = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    exceed += rng.pareto(t_min, beta) > threshold ? 1 : 0;
  }
  const double expected = std::pow(t_min / threshold, beta);
  EXPECT_NEAR(static_cast<double>(exceed) / n, expected, 0.005);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsOutOfRangeP) {
  Rng rng(43);
  EXPECT_THROW(rng.bernoulli(-0.1), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.1), PreconditionError);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(47);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += (parent() == child()) ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace chronos
