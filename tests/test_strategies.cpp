// Behavioural tests of the six speculation policies on controlled jobs.
#include "strategies/policies.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"

namespace chronos::strategies {
namespace {

using mapreduce::AttemptState;
using mapreduce::JobSpec;
using mapreduce::Scheduler;
using mapreduce::SchedulerConfig;

JobSpec chronos_job(int tasks, long long r) {
  JobSpec spec;
  spec.stage(0).num_tasks = tasks;
  spec.deadline = 120.0;
  spec.stage(0).t_min = 30.0;
  spec.stage(0).beta = 1.3;
  spec.stage(0).tau_est = 40.0;
  spec.stage(0).tau_kill = 80.0;
  spec.stage(0).r = r;
  return spec;
}

struct PolicyRun {
  sim::Simulator simulator;
  sim::Cluster cluster;
  std::unique_ptr<mapreduce::SpeculationPolicy> policy;
  std::unique_ptr<Scheduler> scheduler;

  PolicyRun(PolicyKind kind, const JobSpec& spec, std::uint64_t seed = 11,
      int nodes = 8, int containers = 32,
      PolicyOptions options = PolicyOptions{})
      : cluster(sim::ClusterConfig::uniform(nodes, [&] {
          sim::NodeConfig node;
          node.containers = containers;
          return node;
        }())) {
    policy = make_policy(kind, options);
    scheduler = std::make_unique<Scheduler>(simulator, cluster, *policy,
                                            SchedulerConfig{}, Rng(seed));
    scheduler->submit(spec);
    simulator.run();
  }

  const mapreduce::JobRecord& job() const { return scheduler->job(0); }
};

TEST(PolicyFactory, NamesMatchPaper) {
  EXPECT_EQ(make_policy(PolicyKind::kHadoopNS)->name(), "Hadoop-NS");
  EXPECT_EQ(make_policy(PolicyKind::kHadoopS)->name(), "Hadoop-S");
  EXPECT_EQ(make_policy(PolicyKind::kMantri)->name(), "Mantri");
  EXPECT_EQ(make_policy(PolicyKind::kClone)->name(), "Clone");
  EXPECT_EQ(make_policy(PolicyKind::kSRestart)->name(), "S-Restart");
  EXPECT_EQ(make_policy(PolicyKind::kSResume)->name(), "S-Resume");
  EXPECT_EQ(to_string(PolicyKind::kSResume), "S-Resume");
}

TEST(HadoopNS, NeverSpeculates) {
  PolicyRun run(PolicyKind::kHadoopNS, chronos_job(8, 3));
  EXPECT_EQ(run.job().attempts_launched, 8);
  EXPECT_EQ(run.job().attempts_killed, 0);
}

TEST(HadoopS, SpeculatesOnlyAfterFirstCompletion) {
  PolicyRun run(PolicyKind::kHadoopS, chronos_job(12, 0), 23);
  const auto& job = run.job();
  double first_completion = 1e18;
  for (const auto& task : job.tasks) {
    first_completion = std::min(first_completion, task.completion_time);
  }
  for (const auto& attempt : job.attempts) {
    if (attempt.attempt_id >= job.spec.stage(0).num_tasks) {  // speculative copy
      EXPECT_GT(attempt.request_time, first_completion);
    }
  }
}

TEST(HadoopS, AtMostOneExtraAttemptPerTask) {
  PolicyRun run(PolicyKind::kHadoopS, chronos_job(12, 0), 29);
  for (const auto& task : run.job().tasks) {
    EXPECT_LE(task.extra_attempts_launched, 1);
  }
}

TEST(Mantri, RespectsExtraAttemptCap) {
  PolicyOptions options;
  options.mantri_max_extra = 3;
  PolicyRun run(PolicyKind::kMantri, chronos_job(12, 0), 31, 8, 32, options);
  for (const auto& task : run.job().tasks) {
    EXPECT_LE(task.extra_attempts_launched, 3);
  }
}

TEST(Mantri, LaunchesOnlyWithIdleCapacity) {
  // Saturated cluster (1 node, 6 containers, 12 tasks): Mantri must not
  // speculate while original attempts still queue for containers.
  PolicyRun run(PolicyKind::kMantri, chronos_job(12, 0), 37, 1, 6);
  const auto& job = run.job();
  EXPECT_TRUE(job.done);
  double first_completion = 1e18;
  for (const auto& task : job.tasks) {
    first_completion = std::min(first_completion, task.completion_time);
  }
  for (const auto& attempt : job.attempts) {
    if (attempt.attempt_id >= job.spec.stage(0).num_tasks) {
      // Capacity only frees up once some original finishes.
      EXPECT_GT(attempt.request_time, first_completion);
    }
  }
}

TEST(Clone, LaunchesRPlusOneCopiesPerTask) {
  PolicyRun run(PolicyKind::kClone, chronos_job(6, 2));
  const auto& job = run.job();
  EXPECT_EQ(job.attempts_launched, 6 * 3);
  for (const auto& task : job.tasks) {
    EXPECT_EQ(static_cast<int>(task.attempt_ids.size()), 3);
  }
}

TEST(Clone, ExactlyOneSurvivorPerTask) {
  PolicyRun run(PolicyKind::kClone, chronos_job(6, 2));
  const auto& job = run.job();
  EXPECT_EQ(job.attempts_killed, 6 * 2);
  for (const auto& task : job.tasks) {
    int finished = 0;
    for (const int id : task.attempt_ids) {
      finished += job.attempts[static_cast<std::size_t>(id)].state ==
                          AttemptState::kFinished
                      ? 1
                      : 0;
    }
    EXPECT_EQ(finished, 1);
  }
}

TEST(Clone, KillsLosersNoLaterThanTauKill) {
  PolicyRun run(PolicyKind::kClone, chronos_job(6, 2));
  const auto& job = run.job();
  for (const auto& attempt : job.attempts) {
    if (attempt.state == AttemptState::kKilled) {
      EXPECT_LE(attempt.end_time, job.spec.stage(0).tau_kill + 1e-9);
    }
  }
}

TEST(SRestart, ExtrasLaunchedOnlyAtTauEst) {
  PolicyRun run(PolicyKind::kSRestart, chronos_job(20, 2), 41);
  const auto& job = run.job();
  for (const auto& attempt : job.attempts) {
    if (attempt.attempt_id >= job.spec.stage(0).num_tasks) {
      EXPECT_NEAR(attempt.request_time, job.spec.stage(0).tau_est, 1e-9);
      EXPECT_EQ(attempt.start_offset, 0.0);  // restart from byte 0
    } else {
      EXPECT_NEAR(attempt.request_time, 0.0, 1e-9);
    }
  }
}

TEST(SRestart, SpeculatedTasksGetExactlyRExtras) {
  PolicyRun run(PolicyKind::kSRestart, chronos_job(20, 2), 43);
  for (const auto& task : run.job().tasks) {
    EXPECT_TRUE(task.extra_attempts_launched == 0 ||
                task.extra_attempts_launched == 2)
        << task.extra_attempts_launched;
  }
}

TEST(SRestart, OriginalKeptRunningAfterDetection) {
  PolicyRun run(PolicyKind::kSRestart, chronos_job(20, 2), 47);
  const auto& job = run.job();
  for (const auto& task : job.tasks) {
    if (task.extra_attempts_launched == 0) {
      continue;
    }
    // The original of a speculated task is not killed at tau_est; it either
    // finishes or is killed at tau_kill/task completion, strictly later.
    const auto& original =
        job.attempts[static_cast<std::size_t>(task.attempt_ids.front())];
    EXPECT_GT(original.end_time, job.spec.stage(0).tau_est + 1e-9);
  }
}

TEST(SResume, KillsOriginalAtDetection) {
  PolicyRun run(PolicyKind::kSResume, chronos_job(20, 2), 53);
  const auto& job = run.job();
  for (const auto& task : job.tasks) {
    if (task.extra_attempts_launched == 0) {
      continue;
    }
    const auto& original =
        job.attempts[static_cast<std::size_t>(task.attempt_ids.front())];
    EXPECT_EQ(original.state, AttemptState::kKilled);
    EXPECT_NEAR(original.end_time, job.spec.stage(0).tau_est, 1e-9);
  }
}

TEST(SResume, LaunchesRPlusOneResumedCopies) {
  PolicyRun run(PolicyKind::kSResume, chronos_job(20, 2), 59);
  const auto& job = run.job();
  for (const auto& task : job.tasks) {
    if (task.extra_attempts_launched == 0) {
      continue;
    }
    // r+1 = 3 fresh copies (one task may fall back to a single full copy
    // when the resume offset reaches 1; offset < 1 here by construction).
    EXPECT_EQ(task.extra_attempts_launched, 3);
  }
}

TEST(SResume, ResumedCopiesSkipProcessedBytes) {
  PolicyRun run(PolicyKind::kSResume, chronos_job(20, 2), 61);
  const auto& job = run.job();
  bool any_resumed = false;
  for (const auto& attempt : job.attempts) {
    if (attempt.attempt_id >= job.spec.stage(0).num_tasks) {
      EXPECT_GE(attempt.start_offset, 0.0);
      EXPECT_LT(attempt.start_offset, 1.0);
      any_resumed = any_resumed || attempt.start_offset > 0.0;
    }
  }
  // With a 40 s detection point and >= 30 s tasks, detected stragglers have
  // processed a meaningful fraction: some resumed copy must have offset > 0.
  EXPECT_TRUE(any_resumed);
}

TEST(SResume, CheaperThanSRestartOnSameWorkload) {
  // Work preservation: resumed copies process less data, so total machine
  // time is lower than restarting from scratch (paper §VII).
  double restart_time = 0.0;
  double resume_time = 0.0;
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    restart_time +=
        PolicyRun(PolicyKind::kSRestart, chronos_job(20, 2), seed).job().machine_time;
    resume_time +=
        PolicyRun(PolicyKind::kSResume, chronos_job(20, 2), seed).job().machine_time;
  }
  EXPECT_LT(resume_time, restart_time);
}

TEST(AllPolicies, EveryJobCompletes) {
  for (const PolicyKind kind :
       {PolicyKind::kHadoopNS, PolicyKind::kHadoopS, PolicyKind::kMantri,
        PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    PolicyRun run(kind, chronos_job(10, 1), 71);
    EXPECT_TRUE(run.job().done) << to_string(kind);
    EXPECT_EQ(run.scheduler->metrics().jobs(), 1u) << to_string(kind);
  }
}

}  // namespace
}  // namespace chronos::strategies
