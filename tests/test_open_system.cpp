// Open-system simulation layer (sim/open_system.h, trace/arrivals.h).
//
// The interesting properties here are statistical laws rather than exact
// values: an under-loaded Poisson-fed cluster must satisfy utilization =
// lambda * E[S] / c and Little's law L = lambda * W, the deadline-miss rate
// must be monotone in the offered rate, and the conservation counters must
// balance exactly. On top of the laws: arrival-process unit tests,
// determinism (same seed => identical results; sweeprun outputs identical
// across thread counts and across a kill/resume of the journal, pinned to
// committed goldens), and the PR's validation-hardening regressions.
#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "serve/plan_cache.h"
#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/open_system.h"
#include "trace/arrivals.h"
#include "trace/spot_price.h"
#include "trace/workload.h"

namespace chronos {
namespace {

using sim::OpenSystemConfig;
using sim::OpenSystemResult;
using trace::ArrivalKind;
using trace::ArrivalSpec;

// --- shared configuration ---------------------------------------------------

// Deterministic job shape: every job has exactly `tasks` tasks with
// Pareto(t_min = 4, beta = 2.5) durations (finite variance, mean
// t_min * beta / (beta - 1) = 20/3 s) and no JVM startup, so the expected
// service demand per job is exact and the queueing laws can be checked
// against closed forms.
constexpr double kTaskMean = 4.0 * 2.5 / 1.5;

OpenSystemConfig base_config(double rate, int nodes, int containers) {
  OpenSystemConfig config;
  config.arrivals.kind = ArrivalKind::kPoisson;
  config.arrivals.rate = rate;
  config.workload.mean_tasks = 8.0;
  config.workload.min_tasks = 8;
  config.workload.max_tasks = 8;
  config.workload.t_min_lo = 4.0;
  config.workload.t_min_hi = 4.0;
  config.workload.beta_lo = 2.5;
  config.workload.beta_hi = 2.5;
  config.workload.jvm_mean = 0.0;
  config.workload.jvm_jitter = 0.0;
  config.policy = strategies::PolicyKind::kHadoopNS;
  config.planner.r_min_from_baseline = false;
  config.admission.enabled = false;
  config.cluster = sim::ClusterConfig::uniform(
      nodes, sim::NodeConfig{.speed = 1.0, .containers = containers});
  config.duration = 4000.0;
  config.warm_up = 400.0;
  config.seed = 7;
  return config;
}

// --- statistical invariants -------------------------------------------------

TEST(OpenSystemLaws, UtilizationMatchesOfferedLoad) {
  // lambda = 0.5 jobs/s, E[S] = 8 tasks * 20/3 s = 53.33 container-seconds
  // per job, c = 256 containers => rho = lambda * E[S] / c ~ 0.104. Far from
  // saturation, so no offered work is lost and the time-weighted busy
  // fraction must match the offered load.
  const auto result = sim::run_open_system(base_config(0.5, 32, 8));
  const double expected = 0.5 * 8.0 * kTaskMean / 256.0;
  EXPECT_GT(result.metrics.jobs(), 1000u);
  EXPECT_NEAR(result.utilization, expected, 0.08 * expected);
}

TEST(OpenSystemLaws, HeterogeneousFleetUtilizationLaw) {
  // Speed-class law: on a fleet of half full-speed and half half-speed
  // nodes, the grant path balances per-node busy counts (pick_node takes
  // the most-free node), so in the under-loaded regime every node carries
  // the same busy count B and work conservation fixes it:
  //   sum_n s_n * B = lambda * E[S]  =>  u = lambda * E[S] / sum_c C_c s_c.
  // Here E[S] = 8 tasks * 20/3 s of speed-1 work per job and the
  // speed-weighted capacity is 8 * (16 * 1.0 + 16 * 0.5) = 192.
  auto config = base_config(0.5, 32, 8);
  for (int n = 16; n < 32; ++n) {
    config.cluster.nodes[static_cast<std::size_t>(n)].speed = 0.5;
  }
  const auto result = sim::run_open_system(config);
  const double expected = 0.5 * 8.0 * kTaskMean / 192.0;
  EXPECT_GT(result.metrics.jobs(), 1000u);
  EXPECT_NEAR(result.utilization, expected, 0.10 * expected);
  // Sanity: the mixed fleet is busier than the all-fast fleet under the
  // same offered load (it has less speed-weighted capacity).
  EXPECT_GT(result.utilization, 0.5 * 8.0 * kTaskMean / 256.0);
}

TEST(OpenSystemLaws, LittlesLaw) {
  // L = lambda_admitted * W over the same measurement window. Moderate load
  // keeps sojourns short relative to the window so edge effects stay small.
  const auto result = sim::run_open_system(base_config(0.5, 32, 8));
  const double l = result.mean_jobs_in_system;
  const double lambda_w = result.admitted_rate * result.mean_sojourn;
  EXPECT_GT(l, 0.0);
  EXPECT_NEAR(l, lambda_w, 0.15 * lambda_w);
}

TEST(OpenSystemLaws, MissRateMonotoneInArrivalRate) {
  // Same seed, same 16-container cluster, increasing offered rate: queueing
  // delay grows with rho, so the deadline-miss rate must not decrease
  // (small slack for sampling noise between independent runs).
  double previous = -1.0;
  for (const double rate : {0.02, 0.1, 0.4}) {
    auto config = base_config(rate, 4, 4);
    const auto result = sim::run_open_system(config);
    EXPECT_GT(result.metrics.jobs(), 10u) << "rate " << rate;
    EXPECT_GE(result.miss_rate, previous - 0.02) << "rate " << rate;
    previous = result.miss_rate;
  }
}

TEST(OpenSystemLaws, ConservationWithDrain) {
  auto config = base_config(0.4, 4, 4);
  config.admission.enabled = true;
  const auto result = sim::run_open_system(config);
  EXPECT_EQ(result.arrivals, result.admitted + result.rejected);
  EXPECT_EQ(result.admitted, result.completed + result.in_flight_at_end);
  // drain = true runs the event loop dry: nothing may remain in flight.
  EXPECT_EQ(result.in_flight_at_end, 0u);
  EXPECT_GE(result.end_time, config.duration);
}

TEST(OpenSystemLaws, ConservationWithHardStop) {
  // Overloaded and hard-stopped: jobs must be cut off mid-flight and still
  // balance exactly.
  auto config = base_config(1.0, 2, 4);
  config.drain = false;
  const auto result = sim::run_open_system(config);
  EXPECT_EQ(result.arrivals, result.admitted + result.rejected);
  EXPECT_EQ(result.admitted, result.completed + result.in_flight_at_end);
  EXPECT_GT(result.in_flight_at_end, 0u);
  EXPECT_DOUBLE_EQ(result.end_time, config.duration);
}

// --- admission control ------------------------------------------------------

TEST(OpenSystemAdmission, OverloadTriggersRejectAndDegrade) {
  // 8 containers fed at ~10x capacity under a speculative policy: the
  // backlog cap must reject and the headroom rule must degrade.
  auto config = base_config(0.8, 2, 4);
  config.policy = strategies::PolicyKind::kSResume;
  config.admission.enabled = true;
  const auto result = sim::run_open_system(config);
  EXPECT_GT(result.rejected, 0u);
  EXPECT_GT(result.degraded, 0u);
  // Degraded jobs run under forced Hadoop-NS; the mix must account for them.
  EXPECT_EQ(result.mix[strategies::PolicyKind::kHadoopNS], result.degraded);
  EXPECT_EQ(result.mix[strategies::PolicyKind::kSResume] + result.degraded,
            result.admitted);
}

TEST(OpenSystemAdmission, DisabledAdmitsEverything) {
  auto config = base_config(0.8, 2, 4);
  config.policy = strategies::PolicyKind::kSResume;
  config.admission.enabled = false;
  const auto result = sim::run_open_system(config);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.degraded, 0u);
  EXPECT_EQ(result.admitted, result.arrivals);
}

TEST(OpenSystemAdmission, ControllerDoesNotPerturbArrivalStream) {
  // The admission decision must not consume randomness: the same seed sees
  // the same arrival count whether or not the controller is on.
  auto on = base_config(0.8, 2, 4);
  on.admission.enabled = true;
  auto off = on;
  off.admission.enabled = false;
  EXPECT_EQ(sim::run_open_system(on).arrivals,
            sim::run_open_system(off).arrivals);
}

TEST(OpenSystemAdmission, DegradeCountsEveryStagesSpeculation) {
  // Regression: the headroom rule used to size speculative demand from the
  // root stage alone (r * num_tasks), so a job dominated by a later stage
  // with heavy speculation sailed through undegraded. One map task with
  // r = 0 but 100 reduce tasks at r = 5 demands 500 speculative
  // containers — far beyond any headroom — and must degrade.
  sim::AdmissionConfig admission;
  admission.enabled = true;
  mapreduce::JobSpec spec;
  spec.stage(0).num_tasks = 1;
  spec.stage(0).r = 0;
  spec.add_reduce_stage(/*reduce_tasks=*/100, /*reduce_t_min=*/0.0,
                        /*reduce_beta=*/0.0, /*reduce_r=*/5);
  EXPECT_EQ(sim::admission_decide(admission, spec, /*backlog=*/0.0,
                                  /*idle_containers=*/8.0,
                                  /*total_containers=*/1000.0),
            sim::AdmissionDecision::kDegrade);
  // The same job with the reduce stage's speculation turned off fits.
  spec.stage(1).r = 0;
  EXPECT_EQ(sim::admission_decide(admission, spec, 0.0, 8.0, 1000.0),
            sim::AdmissionDecision::kAdmit);
  // The legacy reduce_r = -1 sentinel inherits the map-stage r at
  // construction: 3 * (1 + 100) = 303 demanded.
  mapreduce::JobSpec inherited;
  inherited.stage(0).num_tasks = 1;
  inherited.stage(0).r = 3;
  inherited.add_reduce_stage(/*reduce_tasks=*/100);
  EXPECT_EQ(sim::admission_decide(admission, inherited, 0.0, 8.0, 1000.0),
            sim::AdmissionDecision::kDegrade);
  EXPECT_EQ(sim::admission_decide(admission, inherited, 0.0, 400.0, 1000.0),
            sim::AdmissionDecision::kAdmit);
  // Map-only jobs behave exactly as before the fix.
  mapreduce::JobSpec map_only;
  map_only.stage(0).num_tasks = 1;
  map_only.stage(0).r = 3;
  EXPECT_EQ(sim::admission_decide(admission, map_only, 0.0, 8.0, 1000.0),
            sim::AdmissionDecision::kAdmit);
}

// --- determinism ------------------------------------------------------------

TEST(OpenSystemDeterminism, SameSeedSameResult) {
  auto config = base_config(0.3, 4, 4);
  config.policy = strategies::PolicyKind::kSResume;
  config.admission.enabled = true;
  const auto a = sim::run_open_system(config);
  const auto b = sim::run_open_system(config);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.metrics.jobs(), b.metrics.jobs());
  EXPECT_EQ(a.metrics.total_r_used(), b.metrics.total_r_used());
  // Bit-identical floating-point aggregates, not just statistically close.
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_jobs_in_system, b.mean_jobs_in_system);
  EXPECT_EQ(a.mean_sojourn, b.mean_sojourn);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(OpenSystemDeterminism, DifferentSeedDifferentStream) {
  auto config = base_config(0.3, 4, 4);
  const auto a = sim::run_open_system(config);
  config.seed = 8;
  const auto b = sim::run_open_system(config);
  EXPECT_NE(a.end_time, b.end_time);
}

// --- auto strategy selection ------------------------------------------------

TEST(OpenSystemAuto, PlansOnlyChronosStrategies) {
  auto config = base_config(0.2, 4, 4);
  config.auto_strategy = true;
  const auto result = sim::run_open_system(config);
  EXPECT_GT(result.admitted, 0u);
  // optimize_all picks among Clone / S-Restart / S-Resume; baselines can
  // only appear through admission degradation.
  using strategies::PolicyKind;
  EXPECT_EQ(result.mix[PolicyKind::kHadoopS], 0u);
  EXPECT_EQ(result.mix[PolicyKind::kMantri], 0u);
  EXPECT_EQ(result.mix[PolicyKind::kHadoopNS], result.degraded);
  const std::uint64_t chronos = result.mix[PolicyKind::kClone] +
                                result.mix[PolicyKind::kSRestart] +
                                result.mix[PolicyKind::kSResume];
  EXPECT_EQ(chronos + result.degraded, result.admitted);
}

// --- plan cache through the engine ------------------------------------------

void expect_same_run(const OpenSystemResult& a, const OpenSystemResult& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.metrics.jobs(), b.metrics.jobs());
  EXPECT_EQ(a.metrics.total_r_used(), b.metrics.total_r_used());
  for (const auto kind :
       {strategies::PolicyKind::kHadoopNS, strategies::PolicyKind::kClone,
        strategies::PolicyKind::kSRestart, strategies::PolicyKind::kSResume}) {
    EXPECT_EQ(a.mix[kind], b.mix[kind]);
  }
  // Bit-identical floating-point aggregates, not just statistically close.
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_jobs_in_system, b.mean_jobs_in_system);
  EXPECT_EQ(a.mean_sojourn, b.mean_sojourn);
  EXPECT_EQ(a.miss_rate, b.miss_rate);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(OpenSystemPlanCache, ExactModeIsBitIdenticalToOff) {
  // The whole point of exact-key caching: switching it on must not move a
  // single bit of any simulation output. Auto mode with varied workload
  // shapes exercises the full optimize_all path through the cache.
  auto off = base_config(0.3, 4, 4);
  off.auto_strategy = true;
  off.workload.t_min_lo = 2.0;
  off.workload.t_min_hi = 12.0;
  off.admission.enabled = true;
  auto exact = off;
  exact.plan_cache.mode = serve::CacheMode::kExact;
  const auto a = sim::run_open_system(off);
  const auto b = sim::run_open_system(exact);
  expect_same_run(a, b);
  EXPECT_EQ(a.plan_cache_hits, 0u);
  EXPECT_EQ(a.plan_cache_misses, 0u);
  // Every arrival is planned (the plan feeds the admission decision).
  EXPECT_EQ(b.plan_cache_hits + b.plan_cache_misses, b.arrivals);
}

TEST(OpenSystemPlanCache, QuantizedModeHitsAndConserves) {
  // Quantized keys trade bit-identity for hit rate: with a coarse grid over
  // a continuously-sampled workload the cache must actually hit, and the
  // run must still satisfy the conservation law.
  auto config = base_config(0.3, 4, 4);
  config.auto_strategy = true;
  config.plan_cache.mode = serve::CacheMode::kQuantized;
  config.plan_cache.grid = 0.5;
  const auto result = sim::run_open_system(config);
  EXPECT_GT(result.plan_cache_hits, 0u);
  EXPECT_EQ(result.plan_cache_hits + result.plan_cache_misses,
            result.arrivals);
  EXPECT_EQ(result.admitted, result.completed + result.in_flight_at_end);
}

// --- arrival pricing --------------------------------------------------------

TEST(OpenSystemPricing, ArrivalsArePricedAtTheirArrivalInstant) {
  // One trace-replayed job landing in the 6th price step of a fast spot
  // clock: its cost must be machine_time * price_at(arrival), not the
  // price at time zero (the stale clock the engine must never use).
  auto config = base_config(0.0, 4, 4);
  config.arrivals.kind = ArrivalKind::kTrace;
  config.arrivals.times = {550.0};
  config.prices.step_seconds = 100.0;
  config.prices.volatility = 0.5;
  config.duration = 1000.0;
  config.warm_up = 0.0;
  const trace::SpotPriceModel prices(config.prices);
  ASSERT_NE(prices.price_at(550.0), prices.price_at(0.0));
  const auto result = sim::run_open_system(config);
  ASSERT_EQ(result.metrics.jobs(), 1u);
  EXPECT_GT(result.metrics.mean_machine_time(), 0.0);
  EXPECT_DOUBLE_EQ(
      result.metrics.mean_cost(),
      result.metrics.mean_machine_time() * prices.price_at(550.0));
  EXPECT_NE(result.metrics.mean_cost(),
            result.metrics.mean_machine_time() * prices.price_at(0.0));
}

// --- arrival processes ------------------------------------------------------

std::vector<double> drain_arrivals(const ArrivalSpec& spec, double horizon,
                                   std::uint64_t seed) {
  auto process = trace::make_arrival_process(spec);
  Rng rng(seed);
  std::vector<double> times;
  double now = 0.0;
  while (true) {
    now = process->next_after(now, rng);
    if (!std::isfinite(now) || now > horizon) {
      break;
    }
    times.push_back(now);
  }
  return times;
}

TEST(Arrivals, PoissonCountWithinFourSigma) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate = 2.0;
  const auto times = drain_arrivals(spec, 5000.0, 3);
  // N ~ Poisson(10000): mean 10000, sigma 100.
  EXPECT_GT(times.size(), 9600u);
  EXPECT_LT(times.size(), 10400u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LT(times[i - 1], times[i]);
  }
}

TEST(Arrivals, DiurnalCountAveragesToBaseRate) {
  // Over a whole number of periods the sinusoidal modulation integrates to
  // zero, so the expected count equals rate * horizon.
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate = 1.0;
  spec.amplitude = 0.8;
  spec.period = 1000.0;
  const auto times = drain_arrivals(spec, 10000.0, 5);
  EXPECT_GT(times.size(), 9600u);
  EXPECT_LT(times.size(), 10400u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LT(times[i - 1], times[i]);
  }
}

TEST(Arrivals, DiurnalPeakAndTroughDensity) {
  // Thinning must actually modulate the rate: count the first quarter-period
  // (rising peak) against the third (trough).
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate = 1.0;
  spec.amplitude = 0.9;
  spec.period = 4000.0;
  const auto times = drain_arrivals(spec, 4000.0, 11);
  std::size_t peak = 0;
  std::size_t trough = 0;
  for (const double t : times) {
    if (t < 1000.0) ++peak;
    if (t >= 2000.0 && t < 3000.0) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(Arrivals, TraceReplaysExactTimesIncludingDuplicates) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kTrace;
  spec.times = {0.0, 0.0, 1.5, 1.5, 1.5, 7.0};
  auto process = trace::make_arrival_process(spec);
  Rng rng(1);
  // Duplicate timestamps (batch submissions) fire once per call, starting
  // with an arrival at exactly t = 0.
  double now = 0.0;
  std::vector<double> seen;
  for (int i = 0; i < 6; ++i) {
    now = process->next_after(now, rng);
    seen.push_back(now);
  }
  EXPECT_EQ(seen, spec.times);
  EXPECT_EQ(process->next_after(now, rng),
            std::numeric_limits<double>::infinity());
}

TEST(Arrivals, ParseTimesAcceptsCommentsAndBlanks) {
  const auto times = trace::parse_arrival_times(
      "# header\n\n 0.5 \n;another comment\n2\n2\n10.25\n");
  EXPECT_EQ(times, (std::vector<double>{0.5, 2.0, 2.0, 10.25}));
}

TEST(Arrivals, ParseTimesRejectsMalformedInput) {
  EXPECT_THROW(trace::parse_arrival_times("1\nbogus\n"), PreconditionError);
  EXPECT_THROW(trace::parse_arrival_times("-1\n"), PreconditionError);
  EXPECT_THROW(trace::parse_arrival_times("5\n4\n"), PreconditionError);
  EXPECT_THROW(trace::parse_arrival_times("inf\n"), PreconditionError);
}

TEST(Arrivals, SpecValidation) {
  ArrivalSpec spec;
  spec.rate = 0.0;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.rate = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.rate = 1.0;
  spec.kind = ArrivalKind::kDiurnal;
  spec.amplitude = 1.0;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.amplitude = -0.1;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.amplitude = 0.5;
  spec.period = 0.0;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.period = 86400.0;
  spec.validate();
  spec.kind = ArrivalKind::kTrace;
  spec.times = {1.0, 0.5};
  EXPECT_THROW(spec.validate(), PreconditionError);
}

// --- config validation ------------------------------------------------------

TEST(OpenSystemConfigValidation, RejectsBadWindows) {
  auto config = base_config(0.1, 2, 4);
  config.warm_up = config.duration;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.warm_up = 0.0;
  config.duration = 0.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.duration = std::numeric_limits<double>::infinity();
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST(OpenSystemConfigValidation, RejectsBadAdmissionKnobs) {
  auto config = base_config(0.1, 2, 4);
  config.admission.degrade_headroom = 0.0;
  EXPECT_THROW(config.validate(), PreconditionError);
  config.admission.degrade_headroom = 1.0;
  config.admission.reject_queue_factor = -1.0;
  EXPECT_THROW(config.validate(), PreconditionError);
}

// --- validation-hardening regressions (bugfix satellite) --------------------

TEST(ValidationHardening, WorkloadProfileRejectsDegenerateParameters) {
  trace::WorkloadProfile profile = trace::benchmark("Sort");
  profile.t_min = 0.0;
  EXPECT_THROW(profile.make_job(0, 4), PreconditionError);
  profile = trace::benchmark("Sort");
  profile.beta = 1.0;
  EXPECT_THROW(profile.make_job(0, 4), PreconditionError);
  profile = trace::benchmark("Sort");
  profile.t_min = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(profile.make_job(0, 4), PreconditionError);
  profile = trace::benchmark("Sort");
  profile.deadline = -1.0;
  EXPECT_THROW(profile.make_job(0, 4), PreconditionError);
  profile = trace::benchmark("Sort");
  EXPECT_NO_THROW(profile.make_job(0, 4));
}

TEST(ValidationHardening, ClusterRejectsNonFiniteNodeParameters) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto make = [](const sim::NodeConfig& node) {
    sim::Cluster cluster(sim::ClusterConfig::uniform(1, node));
  };
  EXPECT_THROW(make({.speed = 0.0}), PreconditionError);
  EXPECT_THROW(make({.speed = -1.0}), PreconditionError);
  EXPECT_THROW(make({.speed = inf}), PreconditionError);
  EXPECT_THROW(make({.speed = nan}), PreconditionError);
  EXPECT_THROW(make({.containers = 0}), PreconditionError);
  EXPECT_THROW(make({.noise_mean = inf}), PreconditionError);
  EXPECT_THROW(make({.noise_mean = -0.5}), PreconditionError);
  EXPECT_THROW(make({.noise_sigma = nan}), PreconditionError);
  EXPECT_NO_THROW(make({.speed = 2.0, .noise_mean = 0.3, .noise_sigma = 0.2}));
}

TEST(ValidationHardening, RunMetricsRetentionToggle) {
  sim::RunMetrics metrics;
  metrics.set_retain_outcomes(false);
  sim::JobOutcome outcome;
  outcome.met_deadline = true;
  outcome.r_used = 2;
  metrics.record(outcome);
  outcome.met_deadline = false;
  outcome.r_used = 1;
  metrics.record(outcome);
  EXPECT_TRUE(metrics.outcomes().empty());
  EXPECT_EQ(metrics.jobs(), 2u);
  EXPECT_EQ(metrics.total_r_used(), 3);
  EXPECT_DOUBLE_EQ(metrics.pocd(), 0.5);
  // The toggle is a construction-time decision.
  EXPECT_THROW(metrics.set_retain_outcomes(true), PreconditionError);
}

// --- sweeprun goldens: thread-count and kill/resume determinism -------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "chronos_open_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int run_command(const std::string& command) {
  std::FILE* pipe = popen((command + " >/dev/null 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) {
    return -1;
  }
  const int raw = pclose(pipe);
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

const std::string kSweeprun = CHRONOS_SWEEPRUN_BIN;
const std::string kManifest =
    std::string(CHRONOS_MANIFEST_DIR) + "/open_system.ini";
const std::string kGoldenDir = std::string(CHRONOS_TEST_DIR) + "/golden";

TEST(OpenSystemGolden, ReportsMatchAcrossThreadCounts) {
  const std::string golden_csv = slurp(kGoldenDir + "/open_system.csv");
  const std::string golden_json = slurp(kGoldenDir + "/open_system.json");
  for (const char* threads : {"1", "4"}) {
    const std::string tag = std::string("t") + threads;
    const std::string csv = temp_path(tag + ".csv");
    const std::string json = temp_path(tag + ".json");
    ASSERT_EQ(run_command(kSweeprun + " " + kManifest + " --fresh --no-table" +
                          " --threads " + threads + " --journal " +
                          temp_path(tag + ".journal") + " --csv " + csv +
                          " --json " + json),
              0);
    EXPECT_EQ(slurp(csv), golden_csv) << "threads " << threads;
    EXPECT_EQ(slurp(json), golden_json) << "threads " << threads;
  }
}

TEST(OpenSystemGolden, ResumeFromPartialJournalIsByteIdentical) {
  // Emulate a kill half-way: a 1-of-2 shard run leaves a journal with two of
  // the four cells done; resuming the full sweep from it must reproduce the
  // goldens byte-for-byte.
  const std::string dir = temp_path("resume.d");
  ASSERT_EQ(run_command("mkdir -p " + dir), 0);
  ASSERT_EQ(run_command("cd " + dir + " && " + kSweeprun + " " + kManifest +
                        " --fresh --no-table --threads 2 --shard 1/2"),
            0);
  const std::string journal = temp_path("resume.journal");
  const std::string csv = temp_path("resume.csv");
  const std::string json = temp_path("resume.json");
  ASSERT_EQ(run_command("cp " + dir + "/open_system.shard-1-of-2.journal " +
                        journal),
            0);
  ASSERT_EQ(run_command(kSweeprun + " " + kManifest +
                        " --no-table --threads 2 --journal " + journal +
                        " --csv " + csv + " --json " + json),
            0);
  EXPECT_EQ(slurp(csv), slurp(kGoldenDir + "/open_system.csv"));
  EXPECT_EQ(slurp(json), slurp(kGoldenDir + "/open_system.json"));
}

TEST(OpenSystemGolden, ExactPlanCacheReportsMatchUncachedGoldens) {
  // open_system_cached.ini is the same grid with `plan_cache = exact`:
  // exact-key hits are only ever served for bit-identical planning inputs,
  // so its reports must match the UNCACHED manifest's goldens byte for byte.
  const std::string manifest =
      std::string(CHRONOS_MANIFEST_DIR) + "/open_system_cached.ini";
  const std::string csv = temp_path("cached.csv");
  const std::string json = temp_path("cached.json");
  ASSERT_EQ(run_command(kSweeprun + " " + manifest + " --fresh --no-table" +
                        " --threads 2 --journal " +
                        temp_path("cached.journal") + " --csv " + csv +
                        " --json " + json),
            0);
  EXPECT_EQ(slurp(csv), slurp(kGoldenDir + "/open_system.csv"));
  EXPECT_EQ(slurp(json), slurp(kGoldenDir + "/open_system.json"));
}

}  // namespace
}  // namespace chronos
