// Progress observation and the two completion-time estimators (Eq. 30/31).
#include "mapreduce/progress.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace chronos::mapreduce {
namespace {

/// A running attempt launched at t=10 with a 5 s JVM startup and 100 s of
/// work on the whole split.
AttemptRecord running_attempt(double offset = 0.0) {
  AttemptRecord a;
  a.state = AttemptState::kRunning;
  a.launch_time = 10.0;
  a.jvm_time = 5.0;
  a.start_offset = offset;
  a.work_duration = 100.0 * (1.0 - offset);
  return a;
}

TEST(TrueProgress, ZeroDuringJvmStartup) {
  const auto a = running_attempt();
  EXPECT_EQ(a.true_progress(10.0), 0.0);
  EXPECT_EQ(a.true_progress(14.9), 0.0);
}

TEST(TrueProgress, LinearDuringProcessing) {
  const auto a = running_attempt();
  EXPECT_NEAR(a.true_progress(15.0), 0.0, 1e-12);
  EXPECT_NEAR(a.true_progress(65.0), 0.5, 1e-12);
  EXPECT_NEAR(a.true_progress(115.0), 1.0, 1e-12);
  EXPECT_NEAR(a.true_progress(200.0), 1.0, 1e-12);
}

TEST(TrueProgress, ResumedAttemptStartsAtOffset) {
  const auto a = running_attempt(0.4);
  EXPECT_NEAR(a.true_progress(14.0), 0.4, 1e-12);
  // Half of the remaining work: 0.4 + 0.6/2 = 0.7 at t = 15 + 30.
  EXPECT_NEAR(a.true_progress(45.0), 0.7, 1e-12);
}

TEST(ObserveProgress, UnavailableBeforeFirstReport) {
  const auto a = running_attempt();
  Rng rng(1);
  const auto report =
      observe_progress(a, 12.0, ProgressNoiseConfig::none(), rng);
  EXPECT_FALSE(report.available);
}

TEST(ObserveProgress, ExactWithoutNoise) {
  const auto a = running_attempt();
  Rng rng(1);
  const auto report =
      observe_progress(a, 65.0, ProgressNoiseConfig::none(), rng);
  ASSERT_TRUE(report.available);
  EXPECT_NEAR(report.progress, 0.5, 1e-9);
}

TEST(ObserveProgress, NoiseShrinksWithHistory) {
  const auto a = running_attempt();
  auto noise = ProgressNoiseConfig::realistic();
  Rng rng(7);
  // Early observations scatter more than late ones.
  double early_err = 0.0;
  double late_err = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto early = observe_progress(a, 20.0, noise, rng);
    const auto late = observe_progress(a, 100.0, noise, rng);
    early_err += std::abs(early.progress - a.true_progress(20.0));
    late_err += std::abs(late.progress - a.true_progress(100.0));
  }
  // Normalize by the true progress levels before comparing.
  early_err /= n * a.true_progress(20.0);
  late_err /= n * a.true_progress(100.0);
  EXPECT_GT(early_err, late_err);
}

TEST(ObserveProgress, EarlyBiasUnderReports) {
  const auto a = running_attempt();
  ProgressNoiseConfig noise;
  noise.bias0 = 0.3;
  noise.sigma0 = 0.0;  // isolate the bias
  noise.decay = 30.0;
  Rng rng(7);
  const auto report = observe_progress(a, 20.0, noise, rng);
  ASSERT_TRUE(report.available);
  EXPECT_LT(report.progress, a.true_progress(20.0));
}

TEST(EstimateCompletion, NaiveChargesJvmAsWork) {
  auto a = running_attempt();
  // At t = 65: true progress 0.5, elapsed 55 s. Naive estimate:
  // 10 + 55 / 0.5 = 120 > true finish 115.
  ProgressReport report;
  report.available = true;
  report.time = 65.0;
  report.progress = 0.5;
  const double naive =
      estimate_completion_time(a, report, EstimatorKind::kHadoopNaive);
  EXPECT_NEAR(naive, 120.0, 1e-9);
}

TEST(EstimateCompletion, ChronosCorrectsForJvm) {
  auto a = running_attempt();
  // First report at JVM-ready (t=15, progress ~0).
  a.reported = true;
  a.first_report_time = 15.0;
  a.first_report_progress = 0.0;
  ProgressReport report;
  report.available = true;
  report.time = 65.0;
  report.progress = 0.5;
  const double chronos =
      estimate_completion_time(a, report, EstimatorKind::kChronos);
  EXPECT_NEAR(chronos, 115.0, 1e-9);  // exact true finish
}

TEST(EstimateCompletion, ChronosMoreAccurateThanNaive) {
  auto a = running_attempt();
  a.reported = true;
  a.first_report_time = 15.0;
  a.first_report_progress = 0.0;
  ProgressReport report;
  report.available = true;
  report.time = 65.0;
  report.progress = 0.5;
  const double truth = a.planned_finish();
  const double naive =
      estimate_completion_time(a, report, EstimatorKind::kHadoopNaive);
  const double chronos =
      estimate_completion_time(a, report, EstimatorKind::kChronos);
  EXPECT_LT(std::abs(chronos - truth), std::abs(naive - truth));
}

TEST(EstimateCompletion, UnknownWithoutReport) {
  const auto a = running_attempt();
  ProgressReport unavailable;
  EXPECT_TRUE(std::isinf(estimate_completion_time(
      a, unavailable, EstimatorKind::kHadoopNaive)));

  // Chronos also needs the first-report anchor.
  ProgressReport report;
  report.available = true;
  report.time = 65.0;
  report.progress = 0.5;
  EXPECT_TRUE(std::isinf(
      estimate_completion_time(a, report, EstimatorKind::kChronos)));
}

TEST(EstimateCompletion, CompleteProgressReturnsNow) {
  auto a = running_attempt();
  ProgressReport report;
  report.available = true;
  report.time = 130.0;
  report.progress = 1.0;
  EXPECT_EQ(estimate_completion_time(a, report, EstimatorKind::kHadoopNaive),
            130.0);
}

TEST(ResumeOffset, AddsAnticipatedBytes) {
  auto a = running_attempt();
  a.reported = true;
  a.first_report_time = 15.0;  // JVM took 5 s
  a.first_report_progress = 0.0;
  // At t = 65 the original processed 0.5 in 50 s of processing time; during
  // a 5 s JVM startup of the new attempts it will process 0.5/50*5 = 0.05.
  const double offset = resume_offset(a, 0.5, 65.0);
  EXPECT_NEAR(offset, 0.55, 1e-9);
}

TEST(ResumeOffset, NoAnchorFallsBackToObserved) {
  const auto a = running_attempt();
  EXPECT_NEAR(resume_offset(a, 0.5, 65.0), 0.5, 1e-12);
}

TEST(ResumeOffset, ClampedToOne) {
  auto a = running_attempt();
  a.reported = true;
  a.first_report_time = 15.0;
  a.first_report_progress = 0.0;
  EXPECT_LE(resume_offset(a, 0.999, 15.5), 1.0);
}

TEST(ResumeOffset, RejectsBadProgress) {
  const auto a = running_attempt();
  EXPECT_THROW(resume_offset(a, -0.1, 65.0), PreconditionError);
  EXPECT_THROW(resume_offset(a, 1.1, 65.0), PreconditionError);
}

}  // namespace
}  // namespace chronos::mapreduce
