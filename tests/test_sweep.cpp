// Experiment-sweep engine: thread pool behaviour, grid expansion, CI
// aggregation math, report determinism across thread counts, and the
// empty/one-cell edge cases.
#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "exp/aggregate.h"
#include "exp/checkpoint.h"
#include "exp/report.h"
#include "exp/threadpool.h"
#include "trace/planner.h"

namespace chronos::exp {
namespace {

using strategies::PolicyKind;

// --- thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitRethrowsFirstTaskError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed; the pool stays usable.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, BoundedQueueStillRunsEverything) {
  ThreadPool pool(2, /*max_pending=*/4);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, RejectsInvalidArguments) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), PreconditionError);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

// --- thread pool stress ----------------------------------------------------

TEST(ThreadPoolStress, ExceptionsPropagateUnderSaturatedBoundedQueue) {
  // A tiny bound keeps submit() blocking on backpressure while every task
  // throws: the waking path after a failed task must still release bounded
  // submitters, and wait() must surface the first error.
  ThreadPool pool(2, /*max_pending=*/2);
  std::atomic<int> attempted{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&attempted] {
      attempted.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(attempted.load(), 64);  // failures never wedge the queue

  // The pool stays usable: errors are consumed one wait() at a time.
  pool.submit([] { throw std::logic_error("again"); });
  EXPECT_THROW(pool.wait(), std::logic_error);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolStress, DestructorDrainsTasksStillQueued) {
  // Destroying the pool without wait() must run every queued task to
  // completion before joining — no drops, no deadlock, no terminate.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, /*max_pending=*/4);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No wait(): the destructor owns the drain.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolStress, DestructorSwallowsPendingTaskError) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("unobserved"); });
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // must not std::terminate; later tasks still ran
  EXPECT_EQ(ran.load(), 8);
}

// --- summarize / aggregate ------------------------------------------------

TEST(Aggregate, SummarizeMatchesClosedForm) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const MetricSummary summary = summarize(values);
  EXPECT_EQ(summary.count, 3u);
  EXPECT_DOUBLE_EQ(summary.mean, 2.0);
  EXPECT_DOUBLE_EQ(summary.stddev, 1.0);
  // Student-t interval: t_{0.975, 2} * s / sqrt(n).
  EXPECT_NEAR(summary.ci95, 4.3027 / std::sqrt(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 3.0);
}

TEST(Aggregate, SummarizeEdgeCases) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one = {7.0};
  const MetricSummary summary = summarize(one);
  EXPECT_EQ(summary.count, 1u);
  EXPECT_DOUBLE_EQ(summary.mean, 7.0);
  EXPECT_DOUBLE_EQ(summary.ci95, 0.0);  // no spread estimate from one run
}

RunRecord synthetic_run(int met, int missed, double cost_per_job) {
  RunRecord run;
  for (int i = 0; i < met + missed; ++i) {
    sim::JobOutcome outcome;
    outcome.job_id = i;
    outcome.met_deadline = i < met;
    outcome.cost = cost_per_job;
    outcome.machine_time = 2.0 * cost_per_job;
    outcome.r_used = 2;
    outcome.attempts_launched = 3;
    outcome.attempts_killed = 1;
    run.result.metrics.record(outcome);
  }
  return run;
}

TEST(Aggregate, AggregatesReplicationsOfACell) {
  std::vector<RunRecord> runs;
  runs.push_back(synthetic_run(/*met=*/4, /*missed=*/0, /*cost=*/10.0));
  runs.push_back(synthetic_run(/*met=*/2, /*missed=*/2, /*cost=*/20.0));
  const CellAggregate aggregate = aggregate_runs(runs);

  EXPECT_EQ(aggregate.runs, 2u);
  EXPECT_EQ(aggregate.jobs, 8u);
  EXPECT_DOUBLE_EQ(aggregate.pocd.mean, 0.75);  // (1.0 + 0.5) / 2
  // Sample stddev of {1.0, 0.5} is 0.25 * sqrt(2); the Student-t interval
  // is t_{0.975, 1} * s / sqrt(2).
  EXPECT_NEAR(aggregate.pocd.ci95, 12.706 * 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(aggregate.cost.mean, 15.0);
  EXPECT_DOUBLE_EQ(aggregate.machine_time.mean, 30.0);
  EXPECT_DOUBLE_EQ(aggregate.mean_r.mean, 2.0);
  EXPECT_EQ(aggregate.attempts_launched, 24u);
  EXPECT_EQ(aggregate.attempts_killed, 8u);
  EXPECT_EQ(aggregate.utility.count, 0u);  // no run reported a utility
}

TEST(Aggregate, UtilityOnlyCountsRunsThatReportedOne) {
  std::vector<RunRecord> runs;
  runs.push_back(synthetic_run(3, 1, 10.0));
  runs.back().has_utility = true;
  runs.back().utility = -0.5;
  runs.push_back(synthetic_run(3, 1, 10.0));
  const CellAggregate aggregate = aggregate_runs(runs);
  EXPECT_EQ(aggregate.utility.count, 1u);
  EXPECT_DOUBLE_EQ(aggregate.utility.mean, -0.5);
}

TEST(Aggregate, RejectsEmptyCell) {
  EXPECT_THROW(aggregate_runs({}), PreconditionError);
}

// --- spec validation and grid expansion -----------------------------------

TEST(SweepSpec, ValidatesItsInputs) {
  SweepSpec spec;  // no policies
  spec.policies.clear();
  EXPECT_THROW(spec.validate(), PreconditionError);

  spec.policies = {PolicyKind::kHadoopNS};
  spec.replications = 0;
  EXPECT_THROW(spec.validate(), PreconditionError);

  spec.replications = 1;
  spec.axes = {{.name = "theta", .values = {}, .labels = {}}};
  EXPECT_THROW(spec.validate(), PreconditionError);

  spec.axes = {{.name = "theta", .values = {1.0, 2.0}, .labels = {"one"}}};
  EXPECT_THROW(spec.validate(), PreconditionError);

  spec.axes = {{.name = "theta", .values = {1.0, 2.0}, .labels = {}}};
  EXPECT_NO_THROW(spec.validate());
}

TEST(SweepSpec, CountsCells) {
  SweepSpec spec;
  spec.policies = {PolicyKind::kClone, PolicyKind::kSResume};
  EXPECT_EQ(spec.num_cells(), 2u);  // no axes: one point per policy
  spec.axes = {{.name = "a", .values = {1, 2, 3}, .labels = {}},
               {.name = "b", .values = {1, 2}, .labels = {}}};
  EXPECT_EQ(spec.num_cells(), 12u);
}

TEST(SweepPoint, UnknownAxisThrows) {
  SweepPoint point;
  point.coordinates = {{.name = "theta", .value = 1.0, .label = "1"}};
  EXPECT_DOUBLE_EQ(point.value("theta"), 1.0);
  EXPECT_THROW(point.value("beta"), PreconditionError);
}

// --- running sweeps -------------------------------------------------------

/// Tiny but real experiment: a handful of short jobs on a small cluster.
CellInstance tiny_cell(const SweepPoint& point, std::uint64_t seed) {
  trace::TraceConfig config;
  config.num_jobs = 6;
  config.duration_hours = 0.2;
  config.mean_tasks = 4.0;
  config.max_tasks = 10;
  config.seed = 5;

  auto jobs = generate_trace(config);
  trace::PlannerConfig planner;
  const trace::SpotPriceModel prices;
  plan_trace(jobs, point.policy, planner, prices);

  CellInstance instance;
  instance.set_jobs(std::move(jobs));
  sim::NodeConfig node;
  node.containers = 4;
  instance.config.policy = point.policy;
  instance.config.cluster = sim::ClusterConfig::uniform(4, node);
  instance.config.seed = seed;
  return instance;
}

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.policies = {PolicyKind::kHadoopNS, PolicyKind::kSResume};
  spec.axes = {{.name = "x", .values = {0.0, 1.0, 2.0}, .labels = {}}};
  spec.replications = 2;
  spec.seed = 33;
  return spec;
}

TEST(RunSweep, ReportsAreIdenticalForAnyThreadCount) {
  const SweepSpec spec = tiny_spec();
  const auto serial = run_sweep(spec, tiny_cell, {.threads = 1});
  const auto parallel = run_sweep(spec, tiny_cell, {.threads = 8});
  EXPECT_EQ(to_csv(serial), to_csv(parallel));
  EXPECT_EQ(to_json(serial), to_json(parallel));
  EXPECT_EQ(to_table(serial).str(), to_table(parallel).str());
}

TEST(RunSweep, CellsComeBackInGridOrder) {
  const auto result = run_sweep(tiny_spec(), tiny_cell, {.threads = 4});
  ASSERT_EQ(result.cells.size(), 6u);
  // Policy-major, last axis fastest.
  EXPECT_EQ(result.cells[0].policy_name, "Hadoop-NS");
  EXPECT_DOUBLE_EQ(result.cells[0].point.value("x"), 0.0);
  EXPECT_DOUBLE_EQ(result.cells[2].point.value("x"), 2.0);
  EXPECT_EQ(result.cells[3].policy_name, "S-Resume");
  EXPECT_DOUBLE_EQ(result.cells[3].point.value("x"), 0.0);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.aggregate.runs, 2u);
    EXPECT_EQ(cell.aggregate.jobs, 12u);  // 6 jobs x 2 replications
  }
}

TEST(RunSweep, OneCellNoAxes) {
  SweepSpec spec;
  spec.name = "one";
  spec.policies = {PolicyKind::kHadoopNS};
  spec.replications = 1;
  const auto result = run_sweep(spec, tiny_cell, {.threads = 1});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.axis_names.empty());
  EXPECT_EQ(result.cells[0].aggregate.runs, 1u);
  EXPECT_GT(result.cells[0].aggregate.pocd.mean, 0.0);
}

TEST(RunSweep, PresetCancelStopsBeforeAnyCellFinishes) {
  std::atomic<bool> cancel{true};
  SweepOptions options;
  options.threads = 2;
  options.cancel = &cancel;
  EXPECT_THROW(run_sweep(tiny_spec(), tiny_cell, options), SweepCancelled);
}

TEST(RunSweep, CancelledRunDrainsToJournalAndResumesByteIdentically) {
  // The SIGINT/SIGTERM drain guarantee, minus the signals: cancel mid-run,
  // every finished cell is journaled and synced, and a rerun with the same
  // journal produces reports byte-identical to an uninterrupted run.
  //
  // Cancellation is only observable at a replication-round barrier, so the
  // spec must finish cells across different rounds: with this grid and
  // seed, four cells have a pocd ci95 of exactly 0 after the base two
  // replications (one policy always either meets or misses the deadline)
  // while the other two sit near 1.06 — a 0.5 target splits them, so the
  // first barrier journals four cells and leaves two mid-flight.
  SweepSpec spec = tiny_spec();
  spec.adaptive.metric = "pocd";
  spec.adaptive.target_ci95 = 0.5;
  spec.adaptive.batch = 2;
  spec.adaptive.max_replications = 12;
  const std::string journal =
      ::testing::TempDir() + "chronos_cancel_tiny.journal";
  std::remove(journal.c_str());
  const std::string expected =
      to_csv(run_sweep(spec, tiny_cell, {.threads = 1}));

  std::atomic<bool> cancel{false};
  SweepOptions options;
  options.threads = 1;
  options.journal = journal;
  options.cancel = &cancel;
  options.on_progress = [&cancel](const SweepProgress& progress) {
    if (progress.cells_done >= 1) {
      cancel.store(true);
    }
  };
  EXPECT_THROW(run_sweep(spec, tiny_cell, options), SweepCancelled);

  // The four converged cells survived, already on disk; the two
  // still-running cells were abandoned mid-round.
  const auto drained = read_journal(journal, spec_fingerprint(spec));
  EXPECT_TRUE(drained.compatible);
  EXPECT_EQ(drained.cells.size(), 4u);
  EXPECT_EQ(drained.cells.count(0), 0u);
  EXPECT_EQ(drained.cells.count(2), 0u);

  SweepOptions resume;
  resume.threads = 1;
  resume.journal = journal;
  const auto resumed = run_sweep(spec, tiny_cell, resume);
  EXPECT_EQ(to_csv(resumed), expected);
  std::remove(journal.c_str());
}

TEST(RunSweep, EmptySpecThrows) {
  SweepSpec spec;
  spec.policies.clear();
  EXPECT_THROW(run_sweep(spec, tiny_cell, {.threads = 1}),
               PreconditionError);
  SweepSpec valid = tiny_spec();
  EXPECT_THROW(run_sweep(valid, nullptr, {.threads = 1}),
               PreconditionError);
}

TEST(RunSweep, ReplicationSeedsAreIndependent) {
  SweepSpec spec;
  spec.policies = {PolicyKind::kSResume};
  spec.replications = 3;
  spec.seed = 9;
  const auto result = run_sweep(spec, tiny_cell, {.threads = 2});
  // Replications used different seeds, so there is run-to-run spread in
  // machine time (the simulator injects seed-dependent noise).
  EXPECT_GT(result.cells[0].aggregate.machine_time.stddev, 0.0);
}

TEST(RunSweep, FactoryErrorsPropagate) {
  SweepSpec spec = tiny_spec();
  const CellFactory broken = [](const SweepPoint&,
                                std::uint64_t) -> CellInstance {
    throw std::runtime_error("factory exploded");
  };
  EXPECT_THROW(run_sweep(spec, broken, {.threads = 2}), std::runtime_error);
}

// --- setup hook and adaptive replication -----------------------------------

/// Hooks whose setup builds each cell's trace once; the job count encodes
/// the cell's axis index so aliasing between cells is detectable in the
/// aggregates.
SweepHooks counting_hooks(std::atomic<int>& setups) {
  SweepHooks hooks;
  hooks.setup = [&setups](const SweepPoint& point) {
    setups.fetch_add(1);
    trace::TraceConfig config;
    config.num_jobs = 4 + static_cast<int>(point.index("x"));
    config.duration_hours = 0.2;
    config.mean_tasks = 4.0;
    config.max_tasks = 10;
    config.seed = 5;
    auto jobs = generate_trace(config);
    trace::PlannerConfig planner;
    const trace::SpotPriceModel prices;
    plan_trace(jobs, point.policy, planner, prices);
    SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    return shared;
  };
  hooks.run = [](const SweepPoint& point, std::uint64_t seed,
                 const SharedCell& shared) {
    CellInstance instance;
    instance.jobs = shared.jobs;
    sim::NodeConfig node;
    node.containers = 4;
    instance.config.policy = point.policy;
    instance.config.cluster = sim::ClusterConfig::uniform(4, node);
    instance.config.seed = seed;
    return instance;
  };
  return hooks;
}

TEST(CellSetupHook, RunsOncePerCellAndSharesAcrossReplications) {
  const SweepSpec spec = tiny_spec();  // 6 cells x 2 replications
  std::atomic<int> setups{0};
  const auto result = run_sweep(spec, counting_hooks(setups), {.threads = 4});
  EXPECT_EQ(setups.load(), 6);  // once per cell, never per replication
  for (const auto& cell : result.cells) {
    // jobs-per-run encodes the axis index the setup hook saw.
    const auto jobs_per_run = cell.aggregate.jobs / cell.aggregate.runs;
    EXPECT_EQ(jobs_per_run, 4 + cell.point.index("x"));
  }
}

TEST(CellSetupHook, NearlyEqualAxisValuesDoNotAlias) {
  // 0.1 + 0.2 != 0.3 by one ulp: a cache keyed on the double value (as the
  // old bench::parallel_plan_cells float-keyed maps were) is one rounding
  // away from aliasing or missing such cells. Keying on the axis *index*
  // makes collisions impossible; each cell must get its own setup product.
  SweepSpec spec;
  spec.name = "alias";
  spec.policies = {PolicyKind::kHadoopNS};
  spec.axes = {{.name = "x", .values = {0.3, 0.1 + 0.2}, .labels = {}}};
  spec.replications = 1;
  ASSERT_NE(spec.axes[0].values[0], spec.axes[0].values[1]);

  std::atomic<int> setups{0};
  const auto result = run_sweep(spec, counting_hooks(setups), {.threads = 2});
  EXPECT_EQ(setups.load(), 2);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].point.index("x"), 0u);
  EXPECT_EQ(result.cells[1].point.index("x"), 1u);
  // Distinct setup products: the index-4 cell has 4 jobs, index-1 cell 5.
  EXPECT_EQ(result.cells[0].aggregate.jobs, 4u);
  EXPECT_EQ(result.cells[1].aggregate.jobs, 5u);
}

TEST(SweepPoint, IndexLooksUpAxisPosition) {
  SweepPoint point;
  point.coordinates = {
      {.name = "theta", .value = 1e-4, .label = "1e-4", .index = 2}};
  EXPECT_EQ(point.index("theta"), 2u);
  EXPECT_THROW(point.index("beta"), PreconditionError);
}

TEST(Adaptive, ValidatesItsInputs) {
  SweepSpec spec = tiny_spec();
  spec.adaptive.max_replications = 8;  // enabled, but target_ci95 unset
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.adaptive.target_ci95 = 0.1;
  spec.adaptive.batch = 0;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.adaptive.batch = 2;
  spec.adaptive.max_replications = 1;  // below the base replication count
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.adaptive.max_replications = 8;
  spec.adaptive.metric = "latency";  // not a CellAggregate metric
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.adaptive.metric = "machine_time";
  EXPECT_NO_THROW(spec.validate());
}

TEST(Adaptive, LooseTargetStopsAtBaseReplications) {
  SweepSpec spec = tiny_spec();
  spec.adaptive.metric = "pocd";
  spec.adaptive.target_ci95 = 1e6;  // any CI satisfies it
  spec.adaptive.batch = 2;
  spec.adaptive.max_replications = 10;
  const auto result = run_sweep(spec, tiny_cell, {.threads = 4});
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.aggregate.runs, 2u);  // base count, no extra batches
  }
}

TEST(Adaptive, UnreachableTargetStopsAtTheCap) {
  SweepSpec spec = tiny_spec();
  spec.adaptive.metric = "machine_time";
  spec.adaptive.target_ci95 = 1e-12;  // machine-time spread can't reach it
  spec.adaptive.batch = 3;
  spec.adaptive.max_replications = 7;  // not a multiple of the batch size
  const auto result = run_sweep(spec, tiny_cell, {.threads = 4});
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.aggregate.runs, 7u);  // capped, batch clipped to the cap
  }
}

TEST(Adaptive, SingleBaseReplicationStillEstimatesACi) {
  // One base replication gives no spread; adaptivity must force a second
  // run before it can conclude anything.
  SweepSpec spec = tiny_spec();
  spec.replications = 1;
  spec.adaptive.metric = "pocd";
  spec.adaptive.target_ci95 = 1e6;
  spec.adaptive.batch = 1;
  spec.adaptive.max_replications = 6;
  const auto result = run_sweep(spec, tiny_cell, {.threads = 2});
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.aggregate.runs, 2u);
  }
}

TEST(Adaptive, ResultsAreIdenticalForAnyThreadCount) {
  SweepSpec spec = tiny_spec();
  spec.adaptive.metric = "machine_time";
  spec.adaptive.target_ci95 = 1e-12;
  spec.adaptive.batch = 2;
  spec.adaptive.max_replications = 6;
  const auto serial = run_sweep(spec, tiny_cell, {.threads = 1});
  const auto parallel = run_sweep(spec, tiny_cell, {.threads = 8});
  EXPECT_EQ(to_csv(serial), to_csv(parallel));
  EXPECT_EQ(to_json(serial), to_json(parallel));
}

TEST(Adaptive, ExtendedSeedsExtendTheBaseSequence) {
  // The first `base` replications of an adaptive cell use exactly the seeds
  // a non-adaptive run would: adaptivity extends the per-cell seed stream,
  // it never reshuffles it. With a loose target the adaptive sweep *is* the
  // fixed sweep.
  SweepSpec fixed = tiny_spec();
  SweepSpec adaptive = tiny_spec();
  adaptive.adaptive.metric = "pocd";
  adaptive.adaptive.target_ci95 = 1e6;
  adaptive.adaptive.batch = 2;
  adaptive.adaptive.max_replications = 12;
  const auto fixed_result = run_sweep(fixed, tiny_cell, {.threads = 3});
  const auto adaptive_result = run_sweep(adaptive, tiny_cell, {.threads = 3});
  EXPECT_EQ(to_csv(fixed_result), to_csv(adaptive_result));
}

// --- reports --------------------------------------------------------------

TEST(Report, CsvShapeAndHeader) {
  const auto result = run_sweep(tiny_spec(), tiny_cell, {.threads = 2});
  const std::string csv = to_csv(result);
  EXPECT_EQ(csv.find("policy,x,replications,pocd_mean,pocd_ci95,"), 0u);
  // Header + one line per cell, newline-terminated.
  std::size_t lines = 0;
  for (const char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 1u + result.cells.size());
  EXPECT_EQ(csv.back(), '\n');
}

TEST(Report, LabelsReplaceValuesInReports) {
  SweepSpec spec;
  spec.policies = {PolicyKind::kHadoopNS};
  spec.axes = {{.name = "workload",
                .values = {0.0, 1.0},
                .labels = {"Sort", "WordCount"}}};
  spec.replications = 1;
  const auto result = run_sweep(spec, tiny_cell, {.threads = 1});
  const std::string csv = to_csv(result);
  EXPECT_NE(csv.find("Hadoop-NS,Sort,"), std::string::npos);
  EXPECT_NE(csv.find("Hadoop-NS,WordCount,"), std::string::npos);
  // JSON keeps both the numeric value and the display label.
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"point_labels\":{\"workload\":\"Sort\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace chronos::exp
