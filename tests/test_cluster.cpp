#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace chronos::sim {
namespace {

ClusterConfig two_nodes() {
  NodeConfig node;
  node.containers = 2;
  return ClusterConfig::uniform(2, node);
}

TEST(Cluster, GrantsImmediatelyWhenIdle) {
  Cluster cluster(two_nodes());
  int granted_node = -1;
  cluster.request_container([&](int node) { granted_node = node; });
  EXPECT_GE(granted_node, 0);
  EXPECT_EQ(cluster.busy_containers(), 1);
  EXPECT_EQ(cluster.idle_containers(), 3);
}

TEST(Cluster, BalancesAcrossNodes) {
  Cluster cluster(two_nodes());
  std::vector<int> nodes;
  for (int i = 0; i < 4; ++i) {
    cluster.request_container([&](int node) { nodes.push_back(node); });
  }
  // Most-free-first placement alternates between the two nodes.
  EXPECT_EQ(nodes.size(), 4u);
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 0), 2);
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 1), 2);
}

TEST(Cluster, QueuesWhenFullAndGrantsFifoOnRelease) {
  Cluster cluster(two_nodes());
  std::vector<int> grant_order;
  for (int i = 0; i < 4; ++i) {
    cluster.request_container([](int) {});
  }
  EXPECT_FALSE(cluster.has_idle_container());
  cluster.request_container([&](int) { grant_order.push_back(1); });
  cluster.request_container([&](int) { grant_order.push_back(2); });
  EXPECT_EQ(cluster.pending_requests(), 2u);
  cluster.release_container(0);
  EXPECT_EQ(grant_order, (std::vector<int>{1}));
  cluster.release_container(1);
  EXPECT_EQ(grant_order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cluster.pending_requests(), 0u);
}

TEST(Cluster, ReleaseWithoutBusyThrows) {
  Cluster cluster(two_nodes());
  EXPECT_THROW(cluster.release_container(0), PreconditionError);
  EXPECT_THROW(cluster.release_container(7), PreconditionError);
}

TEST(Cluster, CountsStayConsistent) {
  Cluster cluster(two_nodes());
  EXPECT_EQ(cluster.total_containers(), 4);
  std::vector<int> nodes;
  for (int i = 0; i < 3; ++i) {
    cluster.request_container([&](int n) { nodes.push_back(n); });
  }
  EXPECT_EQ(cluster.busy_containers(), 3);
  cluster.release_container(nodes[0]);
  EXPECT_EQ(cluster.busy_containers(), 2);
  EXPECT_EQ(cluster.idle_containers(), 2);
}

TEST(Cluster, SlowdownIsInverseSpeedWithoutNoise) {
  NodeConfig fast;
  fast.speed = 2.0;
  Cluster cluster(ClusterConfig::uniform(1, fast));
  Rng rng(1);
  EXPECT_NEAR(cluster.sample_slowdown(0, rng), 0.5, 1e-12);
  EXPECT_NEAR(cluster.node_speed(0), 2.0, 1e-12);
}

TEST(Cluster, NoiseInflatesSlowdown) {
  NodeConfig noisy;
  noisy.noise_mean = 0.5;
  noisy.noise_sigma = 0.3;
  Cluster cluster(ClusterConfig::uniform(1, noisy));
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double s = cluster.sample_slowdown(0, rng);
    EXPECT_GT(s, 1.0);  // contention only ever slows down
    sum += s;
  }
  // Mean slowdown = 1 + noise_mean.
  EXPECT_NEAR(sum / n, 1.5, 0.01);
}

TEST(Cluster, RejectsInvalidConfigs) {
  EXPECT_THROW(Cluster(ClusterConfig{}), PreconditionError);
  NodeConfig bad;
  bad.speed = 0.0;
  EXPECT_THROW(Cluster(ClusterConfig::uniform(1, bad)), PreconditionError);
  bad = NodeConfig{};
  bad.containers = 0;
  EXPECT_THROW(Cluster(ClusterConfig::uniform(1, bad)), PreconditionError);
  EXPECT_THROW(ClusterConfig::uniform(0, NodeConfig{}), PreconditionError);
}

TEST(Cluster, NodeIndexValidation) {
  Cluster cluster(two_nodes());
  Rng rng(1);
  EXPECT_THROW(cluster.node_speed(-1), PreconditionError);
  EXPECT_THROW(cluster.sample_slowdown(2, rng), PreconditionError);
}

}  // namespace
}  // namespace chronos::sim
