#include "common/numeric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.h"

namespace chronos::numeric {
namespace {

TEST(Integrate, Polynomial) {
  // int_0^2 (3x^2 + 1) dx = 8 + 2 = 10.
  const double v = integrate([](double x) { return 3.0 * x * x + 1.0; }, 0.0,
                             2.0);
  EXPECT_NEAR(v, 10.0, 1e-9);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_EQ(integrate([](double x) { return x; }, 1.0, 1.0), 0.0);
}

TEST(Integrate, RejectsInvertedInterval) {
  EXPECT_THROW(integrate([](double x) { return x; }, 2.0, 1.0),
               PreconditionError);
}

TEST(Integrate, ExponentialDecay) {
  // int_0^5 e^-x dx = 1 - e^-5.
  const double v = integrate([](double x) { return std::exp(-x); }, 0.0, 5.0);
  EXPECT_NEAR(v, 1.0 - std::exp(-5.0), 1e-9);
}

TEST(Integrate, OscillatingFunction) {
  // int_0^pi sin x dx = 2.
  const double v =
      integrate([](double x) { return std::sin(x); }, 0.0, std::numbers::pi);
  EXPECT_NEAR(v, 2.0, 1e-8);
}

TEST(IntegrateToInfinity, ParetoTail) {
  // int_a^inf a^b / x^b dx = a / (b - 1) for b > 1, a > 0 (with a = 2,
  // b = 2.5: 2 / 1.5).
  const double a = 2.0;
  const double b = 2.5;
  const double v = integrate_to_infinity(
      [&](double x) { return std::pow(a / x, b); }, a);
  EXPECT_NEAR(v, a / (b - 1.0), 1e-6);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  // int_1^inf e^-x dx = e^-1.
  const double v =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 1.0);
  EXPECT_NEAR(v, std::exp(-1.0), 1e-8);
}

TEST(Derivative, Quadratic) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(derivative(f, 3.0), 6.0, 1e-6);
}

TEST(Derivative, RejectsNonPositiveStep) {
  EXPECT_THROW(derivative([](double x) { return x; }, 0.0, 0.0),
               PreconditionError);
}

TEST(SecondDerivative, Cubic) {
  const auto f = [](double x) { return x * x * x; };
  EXPECT_NEAR(second_derivative(f, 2.0), 12.0, 1e-3);
}

TEST(GoldenSectionMax, Parabola) {
  const auto f = [](double x) { return -(x - 1.7) * (x - 1.7); };
  EXPECT_NEAR(golden_section_max(f, -10.0, 10.0), 1.7, 1e-6);
}

TEST(GoldenSectionMax, BoundaryMaximum) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(golden_section_max(f, 0.0, 5.0), 5.0, 1e-6);
}

TEST(TernarySearchMaxInt, Unimodal) {
  const auto f = [](long long r) {
    const double x = static_cast<double>(r);
    return -(x - 37.0) * (x - 37.0);
  };
  EXPECT_EQ(ternary_search_max_int(f, 0, 1000), 37);
}

TEST(TernarySearchMaxInt, MaximumAtBoundary) {
  const auto f = [](long long r) { return static_cast<double>(r); };
  EXPECT_EQ(ternary_search_max_int(f, 5, 50), 50);
  const auto g = [](long long r) { return -static_cast<double>(r); };
  EXPECT_EQ(ternary_search_max_int(g, 5, 50), 5);
}

TEST(TernarySearchMaxInt, SingletonRange) {
  EXPECT_EQ(ternary_search_max_int([](long long) { return 1.0; }, 9, 9), 9);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
}

TEST(FormatDouble, ShortestRoundTrip) {
  EXPECT_EQ(format_double(0.3), "0.3");
  EXPECT_EQ(format_double(0.1 + 0.2), "0.30000000000000004");
  EXPECT_EQ(format_double(1e-6), "1e-06");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-2.5), "-2.5");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
  // Round trip is exact for every representable value we emit.
  for (const double v : {0.1, 1.0 / 3.0, 1e300, 5e-324, 123456.789}) {
    double back = 0.0;
    ASSERT_TRUE(parse_double(format_double(v), back));
    EXPECT_EQ(back, v);
  }
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double_fixed(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_double_fixed(2.0, 0), "2");
  EXPECT_EQ(format_double_fixed(-1.2345, 2), "-1.23");
  EXPECT_EQ(format_double_fixed(std::numeric_limits<double>::infinity(), 3),
            "+inf");
  EXPECT_EQ(format_double_fixed(-std::numeric_limits<double>::infinity(), 3),
            "-inf");
  EXPECT_EQ(format_double_fixed(std::nan(""), 1), "nan");
  // Enormous magnitudes fall back to the shortest form instead of failing.
  EXPECT_FALSE(format_double_fixed(1e300, 3).empty());
  EXPECT_THROW(format_double_fixed(1.0, -1), PreconditionError);
}

TEST(FormatDouble, GeneralSixDigitsMatchesPrintfG) {
  EXPECT_EQ(format_double_g(1e-6), "1e-06");
  EXPECT_EQ(format_double_g(0.0001), "0.0001");
  EXPECT_EQ(format_double_g(1.0 / 3.0), "0.333333");
  EXPECT_EQ(format_double_g(123456789.0), "1.23457e+08");
  EXPECT_EQ(format_double_g(100.0), "100");
}

TEST(ParseDouble, AcceptsFullStringsOnly) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("1e-6", v));
  EXPECT_DOUBLE_EQ(v, 1e-6);
  EXPECT_TRUE(parse_double("+2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(parse_double("-inf", v));
  EXPECT_TRUE(std::isinf(v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("+", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("x1.5", v));
  EXPECT_FALSE(parse_double("1,5", v));  // never locale-dependent
}

}  // namespace
}  // namespace chronos::numeric
