// Sweep manifests: INI-subset parsing (sections, lists, quotes, comments,
// line-numbered errors), semantic validation (axis bindings, policies,
// adaptive config), and an end-to-end run of manifest-built hooks through
// the engine.
#include "exp/manifest.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "exp/report.h"
#include "exp/sweep.h"

namespace chronos::exp {
namespace {

using strategies::PolicyKind;

constexpr const char* kFig3Like = R"(
# comment line
; another comment style

[sweep]
name = fig3_theta
policies = mantri, clone, s-restart, s-resume
replications = 3
seed = 41

[axis.theta]
values = 1e-6, 1e-5, 1e-4, 1e-3   # inline comment

[trace]
num_jobs = 900
duration_hours = 30
mean_tasks = 60
max_tasks = 600
seed = 77

[planner]
theta = @theta

[experiment]
cluster = large_scale
utility = on
r_min = baseline

[output]
csv = out.csv
journal = out.journal
table = off
)";

TEST(Manifest, ParsesTheFig3Grid) {
  const Manifest manifest = parse_manifest(kFig3Like);
  EXPECT_EQ(manifest.spec.name, "fig3_theta");
  ASSERT_EQ(manifest.spec.policies.size(), 4u);
  EXPECT_EQ(manifest.spec.policies[0], PolicyKind::kMantri);
  EXPECT_EQ(manifest.spec.policies[3], PolicyKind::kSResume);
  EXPECT_EQ(manifest.spec.replications, 3);
  EXPECT_EQ(manifest.spec.seed, 41u);
  ASSERT_EQ(manifest.spec.axes.size(), 1u);
  EXPECT_EQ(manifest.spec.axes[0].name, "theta");
  ASSERT_EQ(manifest.spec.axes[0].values.size(), 4u);
  EXPECT_DOUBLE_EQ(manifest.spec.axes[0].values[0], 1e-6);
  EXPECT_FALSE(manifest.spec.adaptive.enabled());

  EXPECT_EQ(manifest.trace.num_jobs, 900);
  EXPECT_DOUBLE_EQ(manifest.trace.mean_tasks, 60.0);
  EXPECT_EQ(manifest.trace.seed, 77u);

  ASSERT_TRUE(manifest.planner_theta.bound());
  EXPECT_EQ(manifest.planner_theta.axis, "theta");
  EXPECT_FALSE(manifest.cluster_testbed);
  EXPECT_TRUE(manifest.report_utility);
  EXPECT_EQ(manifest.r_min_mode, RMinMode::kBaseline);

  EXPECT_EQ(manifest.outputs.csv, "out.csv");
  EXPECT_EQ(manifest.outputs.journal, "out.journal");
  EXPECT_FALSE(manifest.outputs.table);
}

TEST(Manifest, ParsesAdaptiveAndQuotedLabels) {
  const Manifest manifest = parse_manifest(R"(
[sweep]
policies = s-resume
replications = 2

[axis.workload]
values = 0, 1
labels = "Sort, heavy", WordCount

[adaptive]
metric = cost
target_ci95 = 0.5
batch = 3
max_replications = 12
)");
  ASSERT_EQ(manifest.spec.axes.size(), 1u);
  ASSERT_EQ(manifest.spec.axes[0].labels.size(), 2u);
  EXPECT_EQ(manifest.spec.axes[0].labels[0], "Sort, heavy");
  EXPECT_EQ(manifest.spec.axes[0].labels[1], "WordCount");
  EXPECT_TRUE(manifest.spec.adaptive.enabled());
  EXPECT_EQ(manifest.spec.adaptive.metric, "cost");
  EXPECT_DOUBLE_EQ(manifest.spec.adaptive.target_ci95, 0.5);
  EXPECT_EQ(manifest.spec.adaptive.batch, 3);
  EXPECT_EQ(manifest.spec.adaptive.max_replications, 12);
}

TEST(Manifest, BindsTraceFieldsToAxes) {
  const Manifest manifest = parse_manifest(R"(
[sweep]
policies = clone

[axis.beta]
values = 1.1, 1.5, 1.9

[trace]
beta = @beta
deadline_factor = 2
)");
  ASSERT_TRUE(manifest.trace_beta.has_value());
  EXPECT_EQ(manifest.trace_beta->axis, "beta");
  ASSERT_TRUE(manifest.trace_deadline_factor.has_value());
  EXPECT_FALSE(manifest.trace_deadline_factor->bound());
  EXPECT_DOUBLE_EQ(manifest.trace_deadline_factor->fixed, 2.0);
}

void expect_parse_error(const std::string& text, const std::string& what) {
  try {
    parse_manifest(text);
    FAIL() << "expected a parse error mentioning '" << what << "'";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find(what), std::string::npos)
        << error.what();
  }
}

TEST(Manifest, RejectsBadInput) {
  expect_parse_error("x = 1\n", "outside any [section]");
  expect_parse_error("[sweep\npolicies = clone\n", "malformed section");
  expect_parse_error("[]\n", "malformed section");
  expect_parse_error("[sweep]\njust text\n", "expected 'key = value'");
  expect_parse_error("[sweep]\npolicies = clone\n[sweep]\n",
                     "duplicate section");
  expect_parse_error("[sweep]\npolicies = clone\npolicies = mantri\n",
                     "duplicate key");
  expect_parse_error("[nope]\n[sweep]\npolicies = clone\n",
                     "unknown section [nope]");
  expect_parse_error("[sweep]\npolicies = clone\ntypo = 1\n",
                     "unknown key 'typo'");
  expect_parse_error("[output]\ncsv = a.csv\n", "missing required [sweep]");
  expect_parse_error("[sweep]\npolicies = warp-drive\n", "unknown policy");
  expect_parse_error("[sweep]\npolicies = clone\nreplications = lots\n",
                     "not an integer");
  expect_parse_error("[sweep]\npolicies = clone\n[axis.x]\n",
                     "missing required key 'values'");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[axis.x]\nvalues = 1, banana\n",
      "not a number");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[axis.x]\nvalues = 1, 2\nlabels = a\n",
      "2 values but 1 labels");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[planner]\ntheta = @missing\n",
      "binds to an axis that does not exist");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[experiment]\ncluster = cloud\n",
      "'large_scale' or 'testbed'");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[experiment]\nutility = maybe\n",
      "not a boolean");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[experiment]\nr_min = tiny\n",
      "'baseline' or a number");
  expect_parse_error("[sweep]\npolicies = clone\n[adaptive]\nmetric = pocd\n",
                     "missing required key 'max_replications'");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[adaptive]\nmax_replications = 5\n",
      "target_ci95");
}

TEST(Manifest, ErrorsCarryLineNumbers) {
  expect_parse_error("[sweep]\npolicies = clone\n\nbroken line\n",
                     "manifest line 4");
}

TEST(Manifest, SeedsParseExactlyAbove2Pow53) {
  // Parsing integers through a double would silently round this to
  // 9007199254740992 and break "same manifest, same numbers".
  const Manifest manifest = parse_manifest(
      "[sweep]\npolicies = clone\nseed = 9007199254740993\n");
  EXPECT_EQ(manifest.spec.seed, 9007199254740993ULL);
  expect_parse_error("[sweep]\npolicies = clone\nseed = -1\n",
                     "not an unsigned integer");
  expect_parse_error("[sweep]\npolicies = clone\nreplications = 2.5\n",
                     "not an integer");
}

TEST(Manifest, RejectsStrayTextAfterClosingQuote) {
  expect_parse_error(
      "[sweep]\npolicies = clone\n[axis.x]\nvalues = 1, 2\n"
      "labels = \"a\"junk, b\n",
      "after closing quote");
}

TEST(Manifest, JournalSaltTracksCellTemplatesButNotOutputs) {
  const char* base_text =
      "[sweep]\npolicies = clone\n[trace]\nseed = 11\n"
      "[output]\ncsv = a.csv\n";
  const std::string base_salt =
      manifest_journal_salt(parse_manifest(base_text));

  // Same templates, different output path: the journal stays valid.
  Manifest same = parse_manifest(base_text);
  same.outputs.csv = "elsewhere.csv";
  EXPECT_EQ(manifest_journal_salt(same), base_salt);

  // Any cell-template edit must change the salt.
  EXPECT_NE(manifest_journal_salt(parse_manifest(
                "[sweep]\npolicies = clone\n[trace]\nseed = 12\n")),
            base_salt);
  EXPECT_NE(manifest_journal_salt(parse_manifest(
                "[sweep]\npolicies = clone\n[trace]\nseed = 11\n"
                "[planner]\ntheta = 1e-3\n")),
            base_salt);
  EXPECT_NE(manifest_journal_salt(parse_manifest(
                "[sweep]\npolicies = clone\n[trace]\nseed = 11\n"
                "[experiment]\ncluster = testbed\n")),
            base_salt);
  EXPECT_NE(manifest_journal_salt(parse_manifest(
                "[sweep]\npolicies = clone\n[trace]\nseed = 11\n"
                "[experiment]\nutility = on\nr_min = 0.5\n")),
            base_salt);
}

TEST(Manifest, ParsesAndValidatesTheShardSection) {
  const Manifest manifest = parse_manifest(
      "[sweep]\npolicies = clone\n[shard]\ncount = 4\ndir = journals\n");
  EXPECT_EQ(manifest.shard.count, 4);
  EXPECT_EQ(manifest.shard.dir, "journals");

  // Defaults: unsharded, journals in the working directory.
  const Manifest plain = parse_manifest("[sweep]\npolicies = clone\n");
  EXPECT_EQ(plain.shard.count, 0);
  EXPECT_EQ(plain.shard.dir, ".");

  expect_parse_error("[sweep]\npolicies = clone\n[shard]\ndir = x\n",
                     "missing required key 'count'");
  expect_parse_error("[sweep]\npolicies = clone\n[shard]\ncount = 0\n",
                     "shard count must be >= 1");
  expect_parse_error("[sweep]\npolicies = clone\n[shard]\ncount = -2\n",
                     "shard count must be >= 1");
  // Beyond int: must be rejected, never narrowed into a plausible count.
  expect_parse_error(
      "[sweep]\npolicies = clone\n[shard]\ncount = 4294967298\n",
      "shard count must be >= 1");
  expect_parse_error("[sweep]\npolicies = clone\n[shard]\ncount = two\n",
                     "not an integer");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[shard]\ncount = 2\ndir =\n",
      "shard dir must not be empty");
  expect_parse_error(
      "[sweep]\npolicies = clone\n[shard]\ncount = 2\nmachines = 9\n",
      "unknown key 'machines'");
}

TEST(Manifest, ShardSectionNeverChangesTheJournalSalt) {
  // How a grid is split across processes must not invalidate journals:
  // shard journals and the unsharded journal share one fingerprint.
  const std::string unsharded = manifest_journal_salt(
      parse_manifest("[sweep]\npolicies = clone\n[trace]\nseed = 11\n"));
  const std::string sharded = manifest_journal_salt(parse_manifest(
      "[sweep]\npolicies = clone\n[trace]\nseed = 11\n"
      "[shard]\ncount = 8\ndir = journals\n"));
  EXPECT_EQ(unsharded, sharded);
}

TEST(Manifest, EndToEndRunMatchesHandBuiltSweep) {
  const Manifest manifest = parse_manifest(R"(
[sweep]
name = tiny
policies = hadoop-ns, s-resume
replications = 2
seed = 33

[axis.theta]
values = 1e-4, 1e-3

[trace]
num_jobs = 5
duration_hours = 0.2
mean_tasks = 4
max_tasks = 10
seed = 5

[planner]
theta = @theta

[experiment]
utility = on
r_min = baseline
)");
  const SweepHooks hooks = make_hooks(manifest);

  const SweepResult serial =
      run_sweep(manifest.spec, hooks, {.threads = 1});
  const SweepResult parallel =
      run_sweep(manifest.spec, hooks, {.threads = 8});
  EXPECT_EQ(to_csv(serial), to_csv(parallel));

  ASSERT_EQ(serial.cells.size(), 4u);
  for (const CellResult& cell : serial.cells) {
    EXPECT_EQ(cell.aggregate.runs, 2u);
    EXPECT_EQ(cell.aggregate.jobs, 10u);  // 5 jobs x 2 replications
    EXPECT_EQ(cell.aggregate.utility.count, 2u);
  }
  // Hooks own a manifest copy, so theta resolves per cell.
  EXPECT_DOUBLE_EQ(serial.cells[0].point.value("theta"), 1e-4);
  EXPECT_DOUBLE_EQ(serial.cells[1].point.value("theta"), 1e-3);
}

TEST(Manifest, LoadRejectsMissingFile) {
  EXPECT_THROW(load_manifest("/nonexistent/manifest.ini"),
               PreconditionError);
}

}  // namespace
}  // namespace chronos::exp
