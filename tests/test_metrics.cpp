#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace chronos::sim {
namespace {

JobOutcome make_outcome(bool met, double machine_time, double cost) {
  JobOutcome o;
  o.met_deadline = met;
  o.machine_time = machine_time;
  o.cost = cost;
  o.attempts_launched = 3;
  o.attempts_killed = 1;
  return o;
}

TEST(RunMetrics, PocdIsFractionMeetingDeadline) {
  RunMetrics m;
  m.record(make_outcome(true, 10.0, 1.0));
  m.record(make_outcome(true, 20.0, 2.0));
  m.record(make_outcome(false, 30.0, 3.0));
  m.record(make_outcome(true, 40.0, 4.0));
  EXPECT_EQ(m.jobs(), 4u);
  EXPECT_NEAR(m.pocd(), 0.75, 1e-12);
  EXPECT_NEAR(m.mean_machine_time(), 25.0, 1e-12);
  EXPECT_NEAR(m.mean_cost(), 2.5, 1e-12);
}

TEST(RunMetrics, EmptyPocdThrows) {
  RunMetrics m;
  EXPECT_THROW(m.pocd(), PreconditionError);
  EXPECT_THROW(m.pocd_ci(), PreconditionError);
}

TEST(RunMetrics, UtilityCombinesTerms) {
  RunMetrics m;
  m.record(make_outcome(true, 10.0, 100.0));
  m.record(make_outcome(false, 10.0, 300.0));
  // PoCD = 0.5, mean cost = 200.
  const double u = m.utility(1e-3, 0.1);
  EXPECT_NEAR(u, std::log10(0.4) - 1e-3 * 200.0, 1e-12);
}

TEST(RunMetrics, UtilityNegativeInfinityBelowRmin) {
  RunMetrics m;
  m.record(make_outcome(false, 10.0, 1.0));
  const double u = m.utility(1e-4, 0.5);
  EXPECT_TRUE(std::isinf(u));
  EXPECT_LT(u, 0.0);
}

TEST(RunMetrics, AttemptCountersAccumulate) {
  RunMetrics m;
  m.record(make_outcome(true, 1.0, 1.0));
  m.record(make_outcome(true, 1.0, 1.0));
  EXPECT_EQ(m.attempts_launched(), 6u);
  EXPECT_EQ(m.attempts_killed(), 2u);
}

TEST(RunMetrics, CiShrinksWithJobs) {
  RunMetrics small;
  RunMetrics large;
  for (int i = 0; i < 10; ++i) {
    small.record(make_outcome(i % 2 == 0, 1.0, 1.0));
  }
  for (int i = 0; i < 1000; ++i) {
    large.record(make_outcome(i % 2 == 0, 1.0, 1.0));
  }
  EXPECT_GT(small.pocd_ci(), large.pocd_ci());
}

TEST(RunMetrics, OutcomesPreserved) {
  RunMetrics m;
  auto o = make_outcome(true, 5.0, 2.0);
  o.job_id = 42;
  o.r_used = 3;
  m.record(o);
  ASSERT_EQ(m.outcomes().size(), 1u);
  EXPECT_EQ(m.outcomes()[0].job_id, 42);
  EXPECT_EQ(m.outcomes()[0].r_used, 3);
}

}  // namespace
}  // namespace chronos::sim
