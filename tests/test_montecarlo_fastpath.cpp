// Cross-validation of the order-statistic Monte-Carlo fast path.
//
// The fast path samples each task's winner directly from its order-statistic
// law (min of k i.i.d. Pareto(t_min, beta) draws ~ Pareto(t_min, k*beta)),
// so it consumes a different number of stream variates than the literal
// r+1-draw reference — the two must agree statistically, never sample-wise.
// Three-way agreement is asserted for every strategy across r in
// {0, 1, 4, 16}: fast path vs closed form, reference vs closed form, and
// fast path vs reference, each within Monte-Carlo confidence half-widths.
#include "core/montecarlo.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "core/cost.h"
#include "core/pocd.h"
#include "test_util.h"

namespace chronos::core {
namespace {

using chronos::testing::default_job;

constexpr std::uint64_t kJobs = 30000;
// Slack added to CI half-widths: the ~95% intervals fail one run in twenty,
// which a fixed seed turns into a permanently red test for unlucky seeds.
constexpr double kPocdSlack = 0.006;

struct FastPathCase {
  Strategy strategy;
  long long r;
};

class MonteCarloFastPath : public ::testing::TestWithParam<FastPathCase> {};

TEST_P(MonteCarloFastPath, AgreesWithClosedFormAndReference) {
  const auto& c = GetParam();
  const auto p = default_job();
  const double analytic_pocd = pocd(c.strategy, p, static_cast<double>(c.r));

  Rng fast_rng(4242 + static_cast<std::uint64_t>(c.r));
  const auto fast = monte_carlo(c.strategy, p, c.r, kJobs, fast_rng);

  Rng ref_rng(9191 + static_cast<std::uint64_t>(c.r));
  const auto ref = monte_carlo_reference(c.strategy, p, c.r, kJobs, ref_rng);

  // PoCD: fast vs closed form, reference vs closed form, fast vs reference.
  EXPECT_NEAR(fast.pocd, analytic_pocd, fast.pocd_ci + kPocdSlack)
      << to_string(c.strategy) << " r=" << c.r;
  EXPECT_NEAR(ref.pocd, analytic_pocd, ref.pocd_ci + kPocdSlack)
      << to_string(c.strategy) << " r=" << c.r;
  EXPECT_NEAR(fast.pocd, ref.pocd, fast.pocd_ci + ref.pocd_ci + kPocdSlack)
      << to_string(c.strategy) << " r=" << c.r;

  // Machine time: both estimators agree with each other within their
  // combined standard errors (5 sigma plus a 1% model slack, matching the
  // closed-form agreement tests in test_cost.cpp).
  const double sem = 5.0 * (fast.machine_time_sem + ref.machine_time_sem) +
                     0.01 * ref.machine_time;
  EXPECT_NEAR(fast.machine_time, ref.machine_time, sem)
      << to_string(c.strategy) << " r=" << c.r;
}

TEST_P(MonteCarloFastPath, MachineTimeMatchesClosedForm) {
  const auto& c = GetParam();
  const auto p = default_job();
  double analytic = 0.0;
  switch (c.strategy) {
    case Strategy::kClone:
      analytic = machine_time_clone(p, static_cast<double>(c.r));
      break;
    case Strategy::kSpeculativeRestart:
      analytic = machine_time_s_restart(p, static_cast<double>(c.r));
      break;
    case Strategy::kSpeculativeResume:
      // The published S-Resume form is an upper bound; the exact Lemma-1
      // form is what simulation converges to.
      analytic = machine_time_s_resume_exact(p, static_cast<double>(c.r));
      break;
  }
  Rng rng(777 + static_cast<std::uint64_t>(c.r));
  const auto mc = monte_carlo(c.strategy, p, c.r, 2 * kJobs, rng);
  EXPECT_NEAR(mc.machine_time, analytic,
              5.0 * mc.machine_time_sem + 0.01 * analytic)
      << to_string(c.strategy) << " r=" << c.r;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonteCarloFastPath,
    ::testing::ValuesIn([] {
      std::vector<FastPathCase> cases;
      for (const Strategy s :
           {Strategy::kClone, Strategy::kSpeculativeRestart,
            Strategy::kSpeculativeResume}) {
        for (const long long r : {0LL, 1LL, 4LL, 16LL}) {
          cases.push_back(FastPathCase{s, r});
        }
      }
      return cases;
    }()));

TEST(MonteCarloFastPath, DeterministicForFixedSeed) {
  const auto p = default_job();
  for (const Strategy s :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    Rng a(12345);
    Rng b(12345);
    const auto ra = monte_carlo(s, p, 4, 2000, a);
    const auto rb = monte_carlo(s, p, 4, 2000, b);
    EXPECT_EQ(ra.pocd, rb.pocd) << to_string(s);
    EXPECT_EQ(ra.machine_time, rb.machine_time) << to_string(s);
    EXPECT_EQ(ra.machine_time_sem, rb.machine_time_sem) << to_string(s);

    Rng c(12345);
    Rng d(12345);
    const auto rc = monte_carlo_reference(s, p, 4, 2000, c);
    const auto rd = monte_carlo_reference(s, p, 4, 2000, d);
    EXPECT_EQ(rc.pocd, rd.pocd) << to_string(s);
    EXPECT_EQ(rc.machine_time, rd.machine_time) << to_string(s);
  }
}

TEST(MonteCarloFastPath, RejectsInvalidInputs) {
  const auto p = default_job();
  Rng rng(1);
  EXPECT_THROW(monte_carlo_reference(Strategy::kClone, p, -1, 10, rng),
               PreconditionError);
  EXPECT_THROW(monte_carlo_reference(Strategy::kClone, p, 0, 0, rng),
               PreconditionError);
}

// The r = 0 fast path must coincide with the reference draw-for-draw for
// Clone (one attempt, no order statistic involved): same seed, same stream.
TEST(MonteCarloFastPath, CloneR0MatchesReferenceExactly) {
  const auto p = default_job();
  Rng a(777);
  Rng b(777);
  const auto fast = monte_carlo(Strategy::kClone, p, 0, 5000, a);
  const auto ref = monte_carlo_reference(Strategy::kClone, p, 0, 5000, b);
  EXPECT_EQ(fast.pocd, ref.pocd);
  EXPECT_EQ(fast.machine_time, ref.machine_time);
}

}  // namespace
}  // namespace chronos::core
