# Empty dependencies file for fig2_testbed.
# This may be replaced when dependencies are built.
