file(REMOVE_RECURSE
  "CMakeFiles/fig2_testbed.dir/bench/fig2_testbed.cpp.o"
  "CMakeFiles/fig2_testbed.dir/bench/fig2_testbed.cpp.o.d"
  "fig2_testbed"
  "fig2_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
