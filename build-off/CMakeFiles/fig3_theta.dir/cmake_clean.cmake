file(REMOVE_RECURSE
  "CMakeFiles/fig3_theta.dir/bench/fig3_theta.cpp.o"
  "CMakeFiles/fig3_theta.dir/bench/fig3_theta.cpp.o.d"
  "fig3_theta"
  "fig3_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
