# Empty compiler generated dependencies file for fig3_theta.
# This may be replaced when dependencies are built.
