file(REMOVE_RECURSE
  "CMakeFiles/test_utility_thresholds.dir/tests/test_utility_thresholds.cpp.o"
  "CMakeFiles/test_utility_thresholds.dir/tests/test_utility_thresholds.cpp.o.d"
  "test_utility_thresholds"
  "test_utility_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utility_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
