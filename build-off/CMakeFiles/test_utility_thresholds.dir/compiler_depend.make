# Empty compiler generated dependencies file for test_utility_thresholds.
# This may be replaced when dependencies are built.
