# Empty compiler generated dependencies file for sla_planner.
# This may be replaced when dependencies are built.
