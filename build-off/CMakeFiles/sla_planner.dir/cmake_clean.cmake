file(REMOVE_RECURSE
  "CMakeFiles/sla_planner.dir/examples/sla_planner.cpp.o"
  "CMakeFiles/sla_planner.dir/examples/sla_planner.cpp.o.d"
  "sla_planner"
  "sla_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
