file(REMOVE_RECURSE
  "CMakeFiles/test_comparison.dir/tests/test_comparison.cpp.o"
  "CMakeFiles/test_comparison.dir/tests/test_comparison.cpp.o.d"
  "test_comparison"
  "test_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
