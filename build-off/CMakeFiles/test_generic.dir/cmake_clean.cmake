file(REMOVE_RECURSE
  "CMakeFiles/test_generic.dir/tests/test_generic.cpp.o"
  "CMakeFiles/test_generic.dir/tests/test_generic.cpp.o.d"
  "test_generic"
  "test_generic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
