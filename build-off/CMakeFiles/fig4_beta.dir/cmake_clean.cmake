file(REMOVE_RECURSE
  "CMakeFiles/fig4_beta.dir/bench/fig4_beta.cpp.o"
  "CMakeFiles/fig4_beta.dir/bench/fig4_beta.cpp.o.d"
  "fig4_beta"
  "fig4_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
