# Empty compiler generated dependencies file for fig4_beta.
# This may be replaced when dependencies are built.
