file(REMOVE_RECURSE
  "CMakeFiles/sweeprun.dir/tools/sweeprun.cpp.o"
  "CMakeFiles/sweeprun.dir/tools/sweeprun.cpp.o.d"
  "sweeprun"
  "sweeprun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweeprun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
