# Empty dependencies file for sweeprun.
# This may be replaced when dependencies are built.
