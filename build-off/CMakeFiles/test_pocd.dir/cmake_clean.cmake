file(REMOVE_RECURSE
  "CMakeFiles/test_pocd.dir/tests/test_pocd.cpp.o"
  "CMakeFiles/test_pocd.dir/tests/test_pocd.cpp.o.d"
  "test_pocd"
  "test_pocd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pocd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
