# Empty compiler generated dependencies file for test_pocd.
# This may be replaced when dependencies are built.
