file(REMOVE_RECURSE
  "CMakeFiles/test_open_system.dir/tests/test_open_system.cpp.o"
  "CMakeFiles/test_open_system.dir/tests/test_open_system.cpp.o.d"
  "test_open_system"
  "test_open_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
