# Empty compiler generated dependencies file for test_open_system.
# This may be replaced when dependencies are built.
