# Empty dependencies file for sweep_scaling.
# This may be replaced when dependencies are built.
