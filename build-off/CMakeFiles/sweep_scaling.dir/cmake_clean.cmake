file(REMOVE_RECURSE
  "CMakeFiles/sweep_scaling.dir/bench/sweep_scaling.cpp.o"
  "CMakeFiles/sweep_scaling.dir/bench/sweep_scaling.cpp.o.d"
  "sweep_scaling"
  "sweep_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
