file(REMOVE_RECURSE
  "CMakeFiles/test_manifest.dir/tests/test_manifest.cpp.o"
  "CMakeFiles/test_manifest.dir/tests/test_manifest.cpp.o.d"
  "test_manifest"
  "test_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
