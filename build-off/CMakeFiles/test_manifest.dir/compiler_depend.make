# Empty compiler generated dependencies file for test_manifest.
# This may be replaced when dependencies are built.
