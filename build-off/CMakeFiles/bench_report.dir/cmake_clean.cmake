file(REMOVE_RECURSE
  "CMakeFiles/bench_report"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
