# Empty dependencies file for test_montecarlo_fastpath.
# This may be replaced when dependencies are built.
