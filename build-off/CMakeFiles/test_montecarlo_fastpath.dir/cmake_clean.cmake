file(REMOVE_RECURSE
  "CMakeFiles/test_montecarlo_fastpath.dir/tests/test_montecarlo_fastpath.cpp.o"
  "CMakeFiles/test_montecarlo_fastpath.dir/tests/test_montecarlo_fastpath.cpp.o.d"
  "test_montecarlo_fastpath"
  "test_montecarlo_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_montecarlo_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
