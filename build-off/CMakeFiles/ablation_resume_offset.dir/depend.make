# Empty dependencies file for ablation_resume_offset.
# This may be replaced when dependencies are built.
