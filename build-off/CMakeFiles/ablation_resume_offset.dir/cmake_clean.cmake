file(REMOVE_RECURSE
  "CMakeFiles/ablation_resume_offset.dir/bench/ablation_resume_offset.cpp.o"
  "CMakeFiles/ablation_resume_offset.dir/bench/ablation_resume_offset.cpp.o.d"
  "ablation_resume_offset"
  "ablation_resume_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resume_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
