# Empty compiler generated dependencies file for ablation_multiwave.
# This may be replaced when dependencies are built.
