file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiwave.dir/bench/ablation_multiwave.cpp.o"
  "CMakeFiles/ablation_multiwave.dir/bench/ablation_multiwave.cpp.o.d"
  "ablation_multiwave"
  "ablation_multiwave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiwave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
