file(REMOVE_RECURSE
  "CMakeFiles/fit_and_plan.dir/examples/fit_and_plan.cpp.o"
  "CMakeFiles/fit_and_plan.dir/examples/fit_and_plan.cpp.o.d"
  "fit_and_plan"
  "fit_and_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_and_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
