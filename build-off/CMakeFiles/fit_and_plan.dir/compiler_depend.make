# Empty compiler generated dependencies file for fit_and_plan.
# This may be replaced when dependencies are built.
