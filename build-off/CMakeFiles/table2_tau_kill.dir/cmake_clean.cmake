file(REMOVE_RECURSE
  "CMakeFiles/table2_tau_kill.dir/bench/table2_tau_kill.cpp.o"
  "CMakeFiles/table2_tau_kill.dir/bench/table2_tau_kill.cpp.o.d"
  "table2_tau_kill"
  "table2_tau_kill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tau_kill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
