# Empty dependencies file for table2_tau_kill.
# This may be replaced when dependencies are built.
