# Empty compiler generated dependencies file for test_report_golden.
# This may be replaced when dependencies are built.
