file(REMOVE_RECURSE
  "CMakeFiles/test_report_golden.dir/tests/test_report_golden.cpp.o"
  "CMakeFiles/test_report_golden.dir/tests/test_report_golden.cpp.o.d"
  "test_report_golden"
  "test_report_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
