file(REMOVE_RECURSE
  "CMakeFiles/test_two_stage.dir/tests/test_two_stage.cpp.o"
  "CMakeFiles/test_two_stage.dir/tests/test_two_stage.cpp.o.d"
  "test_two_stage"
  "test_two_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
