# Empty dependencies file for test_two_stage.
# This may be replaced when dependencies are built.
