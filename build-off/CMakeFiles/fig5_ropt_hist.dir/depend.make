# Empty dependencies file for fig5_ropt_hist.
# This may be replaced when dependencies are built.
