file(REMOVE_RECURSE
  "CMakeFiles/fig5_ropt_hist.dir/bench/fig5_ropt_hist.cpp.o"
  "CMakeFiles/fig5_ropt_hist.dir/bench/fig5_ropt_hist.cpp.o.d"
  "fig5_ropt_hist"
  "fig5_ropt_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ropt_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
