# Empty compiler generated dependencies file for cluster_sim.
# This may be replaced when dependencies are built.
