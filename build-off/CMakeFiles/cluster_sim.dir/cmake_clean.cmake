file(REMOVE_RECURSE
  "CMakeFiles/cluster_sim.dir/examples/cluster_sim.cpp.o"
  "CMakeFiles/cluster_sim.dir/examples/cluster_sim.cpp.o.d"
  "cluster_sim"
  "cluster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
