file(REMOVE_RECURSE
  "CMakeFiles/two_stage_job.dir/examples/two_stage_job.cpp.o"
  "CMakeFiles/two_stage_job.dir/examples/two_stage_job.cpp.o.d"
  "two_stage_job"
  "two_stage_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stage_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
