# Empty dependencies file for two_stage_job.
# This may be replaced when dependencies are built.
