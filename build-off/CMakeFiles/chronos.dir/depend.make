# Empty dependencies file for chronos.
# This may be replaced when dependencies are built.
