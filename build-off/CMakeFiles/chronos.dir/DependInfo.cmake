
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/error.cpp" "CMakeFiles/chronos.dir/src/common/error.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/common/error.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/chronos.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/numeric.cpp" "CMakeFiles/chronos.dir/src/common/numeric.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/common/numeric.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/chronos.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/core/analytic_context.cpp" "CMakeFiles/chronos.dir/src/core/analytic_context.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/analytic_context.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "CMakeFiles/chronos.dir/src/core/comparison.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/comparison.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "CMakeFiles/chronos.dir/src/core/cost.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/cost.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "CMakeFiles/chronos.dir/src/core/frontier.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/frontier.cpp.o.d"
  "/root/repo/src/core/generic.cpp" "CMakeFiles/chronos.dir/src/core/generic.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/generic.cpp.o.d"
  "/root/repo/src/core/model.cpp" "CMakeFiles/chronos.dir/src/core/model.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/model.cpp.o.d"
  "/root/repo/src/core/montecarlo.cpp" "CMakeFiles/chronos.dir/src/core/montecarlo.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/montecarlo.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "CMakeFiles/chronos.dir/src/core/optimizer.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/optimizer.cpp.o.d"
  "/root/repo/src/core/pocd.cpp" "CMakeFiles/chronos.dir/src/core/pocd.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/pocd.cpp.o.d"
  "/root/repo/src/core/thresholds.cpp" "CMakeFiles/chronos.dir/src/core/thresholds.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/thresholds.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "CMakeFiles/chronos.dir/src/core/utility.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/core/utility.cpp.o.d"
  "/root/repo/src/exp/aggregate.cpp" "CMakeFiles/chronos.dir/src/exp/aggregate.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/aggregate.cpp.o.d"
  "/root/repo/src/exp/checkpoint.cpp" "CMakeFiles/chronos.dir/src/exp/checkpoint.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/checkpoint.cpp.o.d"
  "/root/repo/src/exp/manifest.cpp" "CMakeFiles/chronos.dir/src/exp/manifest.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/manifest.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "CMakeFiles/chronos.dir/src/exp/report.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/report.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "CMakeFiles/chronos.dir/src/exp/sweep.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/sweep.cpp.o.d"
  "/root/repo/src/exp/threadpool.cpp" "CMakeFiles/chronos.dir/src/exp/threadpool.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/exp/threadpool.cpp.o.d"
  "/root/repo/src/mapreduce/job.cpp" "CMakeFiles/chronos.dir/src/mapreduce/job.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/mapreduce/job.cpp.o.d"
  "/root/repo/src/mapreduce/progress.cpp" "CMakeFiles/chronos.dir/src/mapreduce/progress.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/mapreduce/progress.cpp.o.d"
  "/root/repo/src/mapreduce/scheduler.cpp" "CMakeFiles/chronos.dir/src/mapreduce/scheduler.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/mapreduce/scheduler.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "CMakeFiles/chronos.dir/src/obs/metrics.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "CMakeFiles/chronos.dir/src/obs/trace.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/obs/trace.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "CMakeFiles/chronos.dir/src/sim/cluster.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/chronos.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "CMakeFiles/chronos.dir/src/sim/metrics.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/open_system.cpp" "CMakeFiles/chronos.dir/src/sim/open_system.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/sim/open_system.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/chronos.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "CMakeFiles/chronos.dir/src/stats/distribution.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/stats/distribution.cpp.o.d"
  "/root/repo/src/stats/estimators.cpp" "CMakeFiles/chronos.dir/src/stats/estimators.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/stats/estimators.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "CMakeFiles/chronos.dir/src/stats/histogram.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/pareto.cpp" "CMakeFiles/chronos.dir/src/stats/pareto.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/stats/pareto.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "CMakeFiles/chronos.dir/src/stats/summary.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/stats/summary.cpp.o.d"
  "/root/repo/src/strategies/chronos_policies.cpp" "CMakeFiles/chronos.dir/src/strategies/chronos_policies.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/strategies/chronos_policies.cpp.o.d"
  "/root/repo/src/strategies/factory.cpp" "CMakeFiles/chronos.dir/src/strategies/factory.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/strategies/factory.cpp.o.d"
  "/root/repo/src/strategies/hadoop.cpp" "CMakeFiles/chronos.dir/src/strategies/hadoop.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/strategies/hadoop.cpp.o.d"
  "/root/repo/src/trace/arrivals.cpp" "CMakeFiles/chronos.dir/src/trace/arrivals.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/arrivals.cpp.o.d"
  "/root/repo/src/trace/google_trace.cpp" "CMakeFiles/chronos.dir/src/trace/google_trace.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/google_trace.cpp.o.d"
  "/root/repo/src/trace/harness.cpp" "CMakeFiles/chronos.dir/src/trace/harness.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/harness.cpp.o.d"
  "/root/repo/src/trace/planner.cpp" "CMakeFiles/chronos.dir/src/trace/planner.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/planner.cpp.o.d"
  "/root/repo/src/trace/spot_price.cpp" "CMakeFiles/chronos.dir/src/trace/spot_price.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/spot_price.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "CMakeFiles/chronos.dir/src/trace/workload.cpp.o" "gcc" "CMakeFiles/chronos.dir/src/trace/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
