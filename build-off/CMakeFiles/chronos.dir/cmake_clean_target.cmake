file(REMOVE_RECURSE
  "libchronos.a"
)
