# Empty dependencies file for table1_tau_est.
# This may be replaced when dependencies are built.
