file(REMOVE_RECURSE
  "CMakeFiles/table1_tau_est.dir/bench/table1_tau_est.cpp.o"
  "CMakeFiles/table1_tau_est.dir/bench/table1_tau_est.cpp.o.d"
  "table1_tau_est"
  "table1_tau_est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tau_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
