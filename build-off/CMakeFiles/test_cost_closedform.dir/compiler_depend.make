# Empty compiler generated dependencies file for test_cost_closedform.
# This may be replaced when dependencies are built.
