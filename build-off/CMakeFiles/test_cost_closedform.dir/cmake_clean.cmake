file(REMOVE_RECURSE
  "CMakeFiles/test_cost_closedform.dir/tests/test_cost_closedform.cpp.o"
  "CMakeFiles/test_cost_closedform.dir/tests/test_cost_closedform.cpp.o.d"
  "test_cost_closedform"
  "test_cost_closedform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_closedform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
