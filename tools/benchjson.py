#!/usr/bin/env python3
"""Run Google Benchmark binaries and distill / compare their JSON output.

This is the perf-tracking pipeline behind the committed BENCH_*.json files:

  # Measure one tree (writes {"benchmarks": {name: {...}}, ...}):
  tools/benchjson.py run --out before.json [--repetitions N] \
      [--filter REGEX] build/micro_core build/micro_sim

  # Distill two measurement files into a committed report:
  tools/benchjson.py diff --before before.json --after after.json \
      --out BENCH_PR4.json --label "PR 4 hot-path overhaul"

`run` executes every listed binary with --benchmark_format=json, groups the
per-repetition entries by benchmark name and records the *median* real time
(medians are robust to the occasional slow repetition on shared CI runners).
A benchmark name appearing in two different binaries is an error: silently
pooling their samples would corrupt the recorded median.
`diff` joins two measurement files by benchmark name and reports
before/after medians plus the speedup factor; `--before` also accepts a
previously committed diff report (its after_ns medians are the baseline).
With `--max-regress PCT`, `diff` exits non-zero when any benchmark's median
regressed past the threshold — the CI regression gate. Only the Python
standard library is used.
"""

import argparse
import datetime
import json
import platform
import statistics
import subprocess
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _to_ns(value, unit):
    try:
        return value * _UNIT_TO_NS[unit]
    except KeyError:
        raise SystemExit(f"unknown benchmark time unit: {unit!r}")


def run_binary(path, repetitions, bench_filter):
    cmd = [
        path,
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout.decode())


def cmd_run(args):
    samples = {}
    context = {}
    origin = {}  # benchmark name -> binary that first reported it
    for binary in args.binaries:
        doc = run_binary(binary, args.repetitions, args.filter)
        context = doc.get("context", context)
        for entry in doc.get("benchmarks", []):
            # With repetitions > 1 the output carries both per-repetition
            # entries (run_type == "iteration") and aggregates; we compute
            # our own median from the raw repetitions.
            if entry.get("run_type", "iteration") != "iteration":
                continue
            name = entry["name"]
            # Repetitions of one benchmark within one binary are the samples
            # we take the median of; the same name coming from a *different*
            # binary would silently pool unrelated measurements and corrupt
            # that median, so it is a hard error.
            prev = origin.setdefault(name, binary)
            if prev != binary:
                raise SystemExit(
                    f"benchmark {name!r} is reported by two binaries "
                    f"({prev} and {binary}); pooling their samples would "
                    "corrupt the recorded median -- rename one of the "
                    "benchmarks or drop one binary from the run")
            ns = _to_ns(entry["real_time"], entry.get("time_unit", "ns"))
            samples.setdefault(name, []).append(ns)
    if not samples:
        raise SystemExit("no benchmarks matched; nothing to record")
    result = {
        "schema": "chronos-benchjson-run-v1",
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": platform.platform(),
        "repetitions": args.repetitions,
        "benchmarks": {
            name: {
                "median_real_time_ns": statistics.median(times),
                "repetitions": len(times),
            }
            for name, times in sorted(samples.items())
        },
    }
    if context:
        result["benchmark_context"] = {
            k: context[k]
            for k in ("num_cpus", "mhz_per_cpu", "library_build_type")
            if k in context
        }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(result['benchmarks'])} benchmarks)")
    return 0


def _load_medians(path):
    """Loads {benchmark: median_ns} from a run file or a diff report.

    Accepting a committed diff report (schema chronos-benchjson-diff-v1) as
    the --before side lets CI gate a fresh measurement directly against the
    BENCH_*.json baseline at the repo root: the report's after_ns medians are
    the most recent committed measurement.
    """
    with open(path) as fh:
        doc = json.load(fh)
    benches = doc.get("benchmarks", {})
    if doc.get("schema") == "chronos-benchjson-diff-v1":
        medians = {name: row["after_ns"]
                   for name, row in benches.items() if "after_ns" in row}
        doc = dict(doc, date=doc.get("after_date", ""))
        return medians, doc
    return ({name: row["median_real_time_ns"]
             for name, row in benches.items()}, doc)


def cmd_diff(args):
    before_b, before = _load_medians(args.before)
    after_b, after = _load_medians(args.after)
    joined = {}
    for name in sorted(set(before_b) | set(after_b)):
        row = {}
        if name in before_b:
            row["before_ns"] = round(before_b[name], 2)
        if name in after_b:
            row["after_ns"] = round(after_b[name], 2)
        if "before_ns" in row and "after_ns" in row and row["after_ns"] > 0:
            row["speedup"] = round(row["before_ns"] / row["after_ns"], 3)
        joined[name] = row
    report = {
        "schema": "chronos-benchjson-diff-v1",
        "label": args.label,
        "host": after.get("host", ""),
        "before_date": before.get("date", ""),
        "after_date": after.get("date", ""),
        "repetitions": after.get("repetitions", 0),
        "benchmarks": joined,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    missing = [n for n, row in joined.items() if "speedup" not in row]
    if missing:
        print(f"warning: no before/after pair for: {', '.join(missing)}",
              file=sys.stderr)
    print(f"wrote {args.out}")
    for name, row in joined.items():
        if "speedup" in row:
            print(f"  {row['speedup']:7.2f}x  {name}")
    if args.max_regress is not None:
        # The gate only compares benchmarks present on both sides, so a
        # baseline benchmark that vanished from the fresh run (renamed,
        # dropped from the filter, binary left off the command line) would
        # otherwise sail through ungated. Treat every disappearance as a
        # hard failure naming the benchmark.
        vanished = sorted(set(before_b) - set(after_b))
        if vanished:
            for name in vanished:
                print(f"MISSING: baseline benchmark {name!r} is absent "
                      "from the after run -- it was renamed, filtered out "
                      "or its binary was not measured, so the gate cannot "
                      "cover it", file=sys.stderr)
            return 1
        limit = 1.0 + args.max_regress / 100.0
        regressions = [
            (name, (row["after_ns"] / row["before_ns"] - 1.0) * 100.0)
            for name, row in joined.items()
            if "speedup" in row and row["after_ns"] > row["before_ns"] * limit
        ]
        if regressions:
            for name, pct in regressions:
                print(f"REGRESSION: {name} is {pct:.1f}% slower than the "
                      f"baseline (limit {args.max_regress:g}%)",
                      file=sys.stderr)
            return 1
        print(f"regression gate passed (limit {args.max_regress:g}%, "
              f"{sum(1 for r in joined.values() if 'speedup' in r)} "
              "benchmarks compared)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run binaries, record medians")
    p_run.add_argument("--out", required=True)
    p_run.add_argument("--repetitions", type=int, default=5)
    p_run.add_argument("--filter", default="")
    p_run.add_argument("binaries", nargs="+")
    p_run.set_defaults(func=cmd_run)

    p_diff = sub.add_parser("diff", help="join two run files into a report")
    p_diff.add_argument("--before", required=True,
                        help="baseline: a run file or a committed diff "
                             "report (its after_ns medians are used)")
    p_diff.add_argument("--after", required=True)
    p_diff.add_argument("--out", required=True)
    p_diff.add_argument("--label", default="")
    p_diff.add_argument("--max-regress", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero when any benchmark's median is "
                             "more than PCT percent slower than the baseline")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
