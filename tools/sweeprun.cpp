// sweeprun: run an experiment grid described by a manifest file.
//
// New grids become config files instead of C++ binaries: the manifest
// declares the axes, policies, replication policy (fixed or CI-adaptive),
// trace/planner templates and outputs (see src/exp/manifest.h for the
// format; checked-in examples live under manifests/).
//
//   sweeprun MANIFEST [--threads N] [--reps N] [--journal PATH] [--fresh]
//            [--csv PATH] [--json PATH] [--no-table]
//
// CLI flags override the manifest's [output] section and replication count.
// With a journal configured, finished cells stream to it and a rerun after
// a crash (or a kill) skips them — the final reports are byte-identical to
// an uninterrupted run at any thread count.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "exp/checkpoint.h"
#include "exp/manifest.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/threadpool.h"

namespace {

using namespace chronos;  // NOLINT

struct Cli {
  std::string manifest_path;
  int threads = 0;  ///< 0 = all hardware threads
  int reps = 0;     ///< 0 = manifest value
  std::string journal;
  std::string csv;
  std::string json;
  bool fresh = false;
  bool no_table = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MANIFEST [--threads N] [--reps N] "
               "[--journal PATH] [--fresh] [--csv PATH] [--json PATH] "
               "[--no-table]\n",
               argv0);
  std::exit(2);
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value after %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      cli.threads = std::atoi(value(i));
      if (cli.threads < 0) usage(argv[0]);
    } else if (arg == "--reps") {
      cli.reps = std::atoi(value(i));
      if (cli.reps < 0) usage(argv[0]);
    } else if (arg == "--journal") {
      cli.journal = value(i);
    } else if (arg == "--csv") {
      cli.csv = value(i);
    } else if (arg == "--json") {
      cli.json = value(i);
    } else if (arg == "--fresh") {
      cli.fresh = true;
    } else if (arg == "--no-table") {
      cli.no_table = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      usage(argv[0]);
    } else if (cli.manifest_path.empty()) {
      cli.manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.manifest_path.empty()) {
    usage(argv[0]);
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  try {
    exp::Manifest manifest = exp::load_manifest(cli.manifest_path);
    if (cli.reps > 0) {
      manifest.spec.replications = cli.reps;
      if (manifest.spec.adaptive.enabled() &&
          manifest.spec.adaptive.max_replications < cli.reps) {
        manifest.spec.adaptive.max_replications = cli.reps;
      }
    }
    if (!cli.csv.empty()) manifest.outputs.csv = cli.csv;
    if (!cli.json.empty()) manifest.outputs.json = cli.json;
    if (!cli.journal.empty()) manifest.outputs.journal = cli.journal;
    if (cli.no_table) manifest.outputs.table = false;

    exp::SweepOptions options;
    options.threads = cli.threads;
    options.journal = manifest.outputs.journal;
    // The salt extends the journal fingerprint to the trace/planner/
    // experiment templates: editing them invalidates an old journal
    // instead of silently resuming the old configuration's results.
    options.journal_salt = exp::manifest_journal_salt(manifest);
    if (cli.fresh && !options.journal.empty()) {
      std::remove(options.journal.c_str());
    }

    const std::size_t cells = manifest.spec.num_cells();
    std::size_t resumed = 0;
    if (!options.journal.empty()) {
      const auto contents = exp::read_journal(
          options.journal,
          exp::spec_fingerprint(manifest.spec, options.journal_salt));
      if (contents.found && !contents.compatible) {
        std::fprintf(stderr,
                     "note: journal '%s' belongs to a different sweep; "
                     "starting fresh\n",
                     options.journal.c_str());
      }
      resumed = contents.cells.size();
    }

    std::printf("sweep '%s': %zu cells x %d replication(s)%s\n",
                manifest.spec.name.c_str(), cells,
                manifest.spec.replications,
                manifest.spec.adaptive.enabled() ? " (adaptive)" : "");
    if (manifest.spec.adaptive.enabled()) {
      std::printf("  adaptive: %s CI95 <= %g, batches of %d, cap %d\n",
                  manifest.spec.adaptive.metric.c_str(),
                  manifest.spec.adaptive.target_ci95,
                  manifest.spec.adaptive.batch,
                  manifest.spec.adaptive.max_replications);
    }
    if (resumed > 0) {
      std::printf("  resuming from journal: %zu/%zu cells already done\n",
                  resumed, cells);
    }

    const auto start = std::chrono::steady_clock::now();
    const exp::SweepResult result =
        exp::run_sweep(manifest.spec, exp::make_hooks(manifest), options);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("  finished in %.3f s\n\n", seconds);

    if (manifest.outputs.table) {
      exp::to_table(result).print();
    }
    if (!manifest.outputs.csv.empty()) {
      exp::write_file(manifest.outputs.csv, exp::to_csv(result));
      std::printf("\nCSV written to %s\n", manifest.outputs.csv.c_str());
    }
    if (!manifest.outputs.json.empty()) {
      exp::write_file(manifest.outputs.json, exp::to_json(result));
      std::printf("\nJSON written to %s\n", manifest.outputs.json.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweeprun: %s\n", error.what());
    return 1;
  }
}
