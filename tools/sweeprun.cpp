// sweeprun: run an experiment grid described by a manifest file.
//
// New grids become config files instead of C++ binaries: the manifest
// declares the axes, policies, replication policy (fixed or CI-adaptive),
// trace/planner templates and outputs (see src/exp/manifest.h for the
// format; checked-in examples live under manifests/).
//
//   sweeprun MANIFEST [--threads N] [--reps N] [--journal PATH] [--fresh]
//            [--csv PATH] [--json PATH] [--no-table]
//            [--shard I/N] [--shard-dir DIR] [--merge [N]] [--compact]
//            [--metrics-out PATH] [--trace-out PATH] [--progress]
//            [--controller ADDR | --worker ADDR] [--name NAME]
//            [--lease-cells N] [--heartbeat-ms N] [--lease-timeout-ms N]
//            [--progress-timeout-ms N] [--worker-timeout-ms N]
//            [--connect-attempts N] [--fault SPEC]
//
// Distributed sweeps: `--controller ADDR` serves the manifest's grid as
// cell leases over a unix/tcp socket (src/fabric/), journals every result
// as it lands, and renders the usual reports when all cells are in —
// byte-identical to a single-process run. `--worker ADDR` connects to that
// controller (same manifest!), computes leased cells and streams them
// back. Workers may join late, crash, or hang: the controller reassigns
// their unfinished cells and deduplicates re-deliveries byte-exactly.
// `--fault SPEC` injects deterministic failures (see src/fabric/fault.h);
// it exists for tests and CI.
//
// SIGINT/SIGTERM drain every mode gracefully: the current replication
// round (or fabric event loop) winds down, finished cells are flushed and
// fsynced to the journal, and the process exits with status 130 — a rerun
// resumes exactly where it stopped.
//
// Observability: --metrics-out dumps the process metrics registry as JSON
// after a successful run, --trace-out records Chrome-trace-event JSON
// (open it at https://ui.perfetto.dev), and --progress logs a throttled
// cells/replications/ETA line to stderr. All three are observational only:
// reports and journal bytes are identical with or without them.
//
// CLI flags override the manifest's [output] and [shard] sections and the
// replication count. With a journal configured, finished cells stream to it
// and a rerun after a crash (or a kill) skips them — the final reports are
// byte-identical to an uninterrupted run at any thread count.
//
// Cluster sharding: `--shard I/N` runs only shard I's deterministic cell
// range and journals it to `<shard-dir>/<name>.shard-I-of-N.journal`; run
// the N shards on N machines against one shared directory, then `--merge`
// on any of them validates the shard fingerprints, fuses the entries
// (overlap/gap/conflict are hard errors) and renders reports byte-identical
// to a single unsharded run. `--compact` rewrites a journal as its minimal
// deduplicated equivalent (atomic rename), which resumes identically.
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <system_error>
#include <vector>

#include "common/log.h"
#include "common/numeric.h"
#include "exp/checkpoint.h"
#include "exp/manifest.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/threadpool.h"
#include "fabric/controller.h"
#include "fabric/fault.h"
#include "fabric/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace chronos;  // NOLINT

/// Raised by the SIGINT/SIGTERM handler; every long-running mode polls it
/// and drains: journal flushed + fsynced, exit code 130.
std::atomic<bool> g_cancel{false};

void handle_shutdown_signal(int) { g_cancel.store(true); }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Fabric peers can vanish mid-write; transport reports that as a send
  // error instead of letting SIGPIPE kill the process.
  signal(SIGPIPE, SIG_IGN);
}

constexpr int kInterruptedExit = 130;

struct Cli {
  std::string manifest_path;
  int threads = 0;  ///< 0 = all hardware threads
  int reps = 0;     ///< 0 = manifest value
  std::string journal;
  std::string csv;
  std::string json;
  std::string shard_dir;
  bool fresh = false;
  bool no_table = false;
  std::size_t shard_index = 0;  ///< 0-based; valid when shard_count > 0
  std::size_t shard_count = 0;  ///< 0 = no --shard flag
  bool merge = false;
  std::size_t merge_count = 0;  ///< 0 = from --shard or the manifest
  bool compact = false;
  std::string metrics_out;  ///< write the metrics registry JSON here
  std::string trace_out;    ///< write Chrome trace-event JSON here
  bool progress = false;    ///< throttled progress lines on stderr

  std::string controller;   ///< --controller endpoint (fabric server)
  std::string worker;       ///< --worker endpoint (fabric client)
  std::string worker_name = "worker";
  std::size_t lease_cells = 4;
  std::size_t heartbeat_ms = 500;
  std::size_t lease_timeout_ms = 5000;
  std::size_t progress_timeout_ms = 0;  ///< 0 = no progress deadline
  std::size_t worker_timeout_ms = 30000;
  int connect_attempts = 10;
  std::string fault;        ///< deterministic fault plan (tests/CI)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MANIFEST [--threads N] [--reps N] "
               "[--journal PATH] [--fresh] [--csv PATH] [--json PATH] "
               "[--no-table] [--shard I/N] [--shard-dir DIR] [--merge [N]] "
               "[--compact] [--metrics-out PATH] [--trace-out PATH] "
               "[--progress] [--controller ADDR | --worker ADDR] "
               "[--name NAME] [--lease-cells N] [--heartbeat-ms N] "
               "[--lease-timeout-ms N] [--progress-timeout-ms N] "
               "[--worker-timeout-ms N] "
               "[--connect-attempts N] [--fault SPEC]\n",
               argv0);
  std::exit(2);
}

bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) {
    return false;
  }
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc() &&
         result.ptr == text.data() + text.size();
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  const auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "sweeprun: missing value after %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      cli.threads = std::atoi(value(i));
      if (cli.threads < 0) usage(argv[0]);
    } else if (arg == "--reps") {
      cli.reps = std::atoi(value(i));
      if (cli.reps < 0) usage(argv[0]);
    } else if (arg == "--journal") {
      cli.journal = value(i);
    } else if (arg == "--csv") {
      cli.csv = value(i);
    } else if (arg == "--json") {
      cli.json = value(i);
    } else if (arg == "--shard-dir") {
      cli.shard_dir = value(i);
    } else if (arg == "--shard") {
      // "I/N", 1-based: --shard 2/5 is the second of five shards.
      const std::string spec = value(i);
      const std::size_t slash = spec.find('/');
      std::size_t index = 0;
      std::size_t count = 0;
      if (slash == std::string::npos ||
          !parse_size(spec.substr(0, slash), index) ||
          !parse_size(spec.substr(slash + 1), count) || index < 1 ||
          index > count) {
        std::fprintf(stderr,
                     "sweeprun: --shard wants I/N with 1 <= I <= N, "
                     "got '%s'\n",
                     spec.c_str());
        std::exit(2);
      }
      cli.shard_index = index - 1;
      cli.shard_count = count;
    } else if (arg == "--merge") {
      cli.merge = true;
      // Optional shard count: "--merge 5". Without it the count comes from
      // --shard I/N or the manifest's [shard] section. Parsed into a local
      // so a non-numeric next argument (say, a manifest path starting with
      // a digit) cannot leave a half-parsed count behind.
      std::size_t count = 0;
      if (i + 1 < argc && parse_size(argv[i + 1], count) && count > 0) {
        cli.merge_count = count;
        ++i;
      }
    } else if (arg == "--compact") {
      cli.compact = true;
    } else if (arg == "--fresh") {
      cli.fresh = true;
    } else if (arg == "--no-table") {
      cli.no_table = true;
    } else if (arg == "--metrics-out") {
      cli.metrics_out = value(i);
    } else if (arg == "--trace-out") {
      cli.trace_out = value(i);
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (arg == "--controller") {
      cli.controller = value(i);
    } else if (arg == "--worker") {
      cli.worker = value(i);
    } else if (arg == "--name") {
      cli.worker_name = value(i);
    } else if (arg == "--lease-cells") {
      if (!parse_size(value(i), cli.lease_cells) || cli.lease_cells < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--heartbeat-ms") {
      if (!parse_size(value(i), cli.heartbeat_ms) || cli.heartbeat_ms < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--lease-timeout-ms") {
      if (!parse_size(value(i), cli.lease_timeout_ms) ||
          cli.lease_timeout_ms < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--progress-timeout-ms") {
      if (!parse_size(value(i), cli.progress_timeout_ms)) {
        usage(argv[0]);
      }
    } else if (arg == "--worker-timeout-ms") {
      if (!parse_size(value(i), cli.worker_timeout_ms) ||
          cli.worker_timeout_ms < 1) {
        usage(argv[0]);
      }
    } else if (arg == "--connect-attempts") {
      cli.connect_attempts = std::atoi(value(i));
      if (cli.connect_attempts < 1) usage(argv[0]);
    } else if (arg == "--fault") {
      cli.fault = value(i);
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "sweeprun: unknown flag '%s'\n", arg.c_str());
      usage(argv[0]);
    } else if (cli.manifest_path.empty()) {
      cli.manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (cli.manifest_path.empty()) {
    usage(argv[0]);
  }
  if (cli.merge && cli.compact) {
    std::fprintf(stderr,
                 "sweeprun: --merge and --compact are mutually exclusive\n");
    std::exit(2);
  }
  if (!cli.controller.empty() && !cli.worker.empty()) {
    std::fprintf(stderr,
                 "sweeprun: --controller and --worker are mutually "
                 "exclusive\n");
    std::exit(2);
  }
  if ((!cli.controller.empty() || !cli.worker.empty()) &&
      (cli.merge || cli.compact || cli.shard_count > 0)) {
    std::fprintf(stderr,
                 "sweeprun: fabric modes do not combine with "
                 "--merge/--compact/--shard\n");
    std::exit(2);
  }
  if ((!cli.metrics_out.empty() || !cli.trace_out.empty()) &&
      !obs::compiled_in()) {
    std::fprintf(stderr,
                 "sweeprun: --metrics-out/--trace-out need an observability "
                 "build (this binary was built with CHRONOS_OBS=OFF)\n");
    std::exit(2);
  }
  return cli;
}

/// --progress reporter: one throttled stderr line through the log layer.
/// The final line (every owned cell done) always prints; intermediate
/// updates are rate-limited to one per ~250 ms.
class ProgressPrinter {
 public:
  void report(const exp::SweepProgress& progress) {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    const bool final = progress.cells_done >= progress.cells_total;
    if (!final && reported_once_ &&
        now - last_ < std::chrono::milliseconds(250)) {
      return;
    }
    reported_once_ = true;
    last_ = now;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    std::string line = "sweep: " + std::to_string(progress.cells_done) +
                       "/" + std::to_string(progress.cells_total) +
                       " cells, " +
                       std::to_string(progress.replications_done) + " reps";
    if (elapsed > 0.0 && progress.replications_done > 0) {
      const double rate =
          static_cast<double>(progress.replications_done) / elapsed;
      line += ", " + numeric::format_double_fixed(rate, 1) + " reps/s";
    }
    // ETA from cells this run actually finished (resumed cells cost ~0).
    const std::size_t fresh_done =
        progress.cells_done - progress.cells_resumed;
    const std::size_t remaining =
        progress.cells_total - progress.cells_done;
    if (fresh_done > 0 && remaining > 0 && elapsed > 0.0) {
      const double eta =
          elapsed / static_cast<double>(fresh_done) *
          static_cast<double>(remaining);
      line += ", eta ~" + numeric::format_double_fixed(eta, 1) + "s";
    }
    log::write(log::Level::kInfo, line);
  }

 private:
  std::mutex mu_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point last_{};
  bool reported_once_ = false;
};

/// Dumps the metrics registry / trace buffer after a successful run.
void write_obs_outputs(const Cli& cli) {
  if (!cli.metrics_out.empty()) {
    exp::write_file(cli.metrics_out, obs::metrics_json());
    std::printf("metrics written to %s\n", cli.metrics_out.c_str());
  }
  if (!cli.trace_out.empty()) {
    obs::write_trace_json(cli.trace_out);
    std::printf("trace written to %s\n", cli.trace_out.c_str());
  }
}

void render_reports(const exp::SweepResult& result,
                    const exp::ManifestOutputs& outputs) {
  if (outputs.table) {
    exp::to_table(result).print();
  }
  if (!outputs.csv.empty()) {
    exp::write_file(outputs.csv, exp::to_csv(result));
    std::printf("\nCSV written to %s\n", outputs.csv.c_str());
  }
  if (!outputs.json.empty()) {
    exp::write_file(outputs.json, exp::to_json(result));
    std::printf("\nJSON written to %s\n", outputs.json.c_str());
  }
}

/// --compact: rewrite the target journal (the shard's with --shard, the
/// configured one otherwise) as its minimal equivalent.
int run_compact(const exp::Manifest& manifest, const Cli& cli,
                const std::string& fingerprint,
                const std::string& shard_dir) {
  std::string path;
  if (cli.shard_count > 0) {
    path = exp::shard_journal_path(shard_dir, manifest.spec.name,
                                   cli.shard_index, cli.shard_count);
  } else {
    path = manifest.outputs.journal;
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "sweeprun: --compact needs a journal (a [output] journal, "
                 "--journal, or --shard I/N)\n");
    return 2;
  }
  const exp::CompactStats stats = exp::compact_journal(path, fingerprint);
  std::printf("compacted %s: %zu entr%s, %zu -> %zu bytes\n", path.c_str(),
              stats.entries, stats.entries == 1 ? "y" : "ies",
              stats.bytes_before, stats.bytes_after);
  return 0;
}

/// --merge: fuse every shard journal and render the full-grid reports.
int run_merge(const exp::Manifest& manifest, const Cli& cli,
              const std::string& fingerprint,
              const std::string& shard_dir) {
  std::size_t count = cli.merge_count;
  if (count == 0) {
    count = cli.shard_count;
  }
  if (count == 0 && manifest.shard.count > 0) {
    count = static_cast<std::size_t>(manifest.shard.count);
  }
  if (count == 0) {
    std::fprintf(stderr,
                 "sweeprun: --merge needs a shard count (--merge N, "
                 "--shard I/N, or a [shard] count in the manifest)\n");
    return 2;
  }
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < count; ++i) {
    paths.push_back(exp::shard_journal_path(shard_dir, manifest.spec.name,
                                            i, count));
  }
  const std::size_t cells = manifest.spec.num_cells();
  const exp::MergeStats merged =
      exp::merge_journals(paths, fingerprint, cells);
  std::printf("merged %zu shard journal(s): %zu cells", count, cells);
  if (merged.duplicates > 0) {
    std::printf(", %zu duplicate entr%s dropped", merged.duplicates,
                merged.duplicates == 1 ? "y" : "ies");
  }
  std::printf("\n\n");

  // A fused journal is a valid unsharded journal for the same sweep: write
  // one when the manifest asks for a journal, so later unsharded runs (or
  // re-renders) can resume from the merged state.
  if (!manifest.outputs.journal.empty()) {
    exp::JournalWriter writer(manifest.outputs.journal, fingerprint,
                              /*resume=*/false);
    for (const auto& [cell, aggregate] : merged.cells) {
      writer.append({cell, aggregate});
    }
    std::printf("fused journal written to %s\n\n",
                manifest.outputs.journal.c_str());
  }

  render_reports(exp::assemble_result(manifest.spec, merged.cells),
                 manifest.outputs);
  return 0;
}

/// --controller: serve the grid as cell leases, journal results as they
/// land, render the usual reports once every cell is in.
int run_controller_mode(const exp::Manifest& manifest, const Cli& cli,
                        const std::string& fingerprint) {
  const std::size_t cells = manifest.spec.num_cells();

  // Resume support works exactly like run_sweep's: journaled cells are
  // never leased again, and newly finished cells append as they arrive —
  // so a controller crash (or a SIGINT drain) costs only in-flight work.
  std::map<std::size_t, exp::CellAggregate> resumed;
  std::unique_ptr<exp::JournalWriter> writer;
  if (!manifest.outputs.journal.empty()) {
    if (cli.fresh) {
      std::remove(manifest.outputs.journal.c_str());
    }
    const exp::JournalContents contents =
        exp::read_journal(manifest.outputs.journal, fingerprint);
    if (contents.compatible) {
      for (const auto& [cell, aggregate] : contents.cells) {
        if (cell < cells) {
          resumed.emplace(cell, aggregate);
        }
      }
    }
    writer = std::make_unique<exp::JournalWriter>(
        manifest.outputs.journal, fingerprint, contents.compatible,
        contents.valid_bytes);
  }

  fabric::ControllerConfig config;
  config.fingerprint = fingerprint;
  config.num_cells = cells;
  for (std::size_t c = 0; c < cells; ++c) {
    if (resumed.find(c) == resumed.end()) {
      config.todo.push_back(c);
    }
  }
  config.max_lease_cells = cli.lease_cells;
  config.heartbeat_ms = cli.heartbeat_ms;
  config.lease_timeout_ms = cli.lease_timeout_ms;
  config.progress_timeout_ms = cli.progress_timeout_ms;
  config.worker_timeout_ms = cli.worker_timeout_ms;

  std::printf("controller '%s' on %s: %zu cells (%zu resumed), lease <= "
              "%zu cells, heartbeat %zu ms\n",
              manifest.spec.name.c_str(), cli.controller.c_str(), cells,
              resumed.size(), cli.lease_cells, cli.heartbeat_ms);
  std::fflush(stdout);

  fabric::ControllerRunResult run;
  try {
    run = fabric::run_controller(
        cli.controller, config,
        [&writer](const exp::JournalEntry& entry) {
          if (writer != nullptr) {
            writer->append(entry);
          }
        },
        &g_cancel);
  } catch (const exp::SweepCancelled&) {
    if (writer != nullptr) {
      writer->sync();
    }
    std::fprintf(stderr,
                 "sweeprun: interrupted; journal flushed and synced — rerun "
                 "to resume\n");
    return kInterruptedExit;
  }
  if (writer != nullptr) {
    writer->sync();
  }

  std::printf("  fabric: %llu workers joined, %llu lost; %llu leases, "
              "%llu expired; %llu cells reassigned, %llu duplicate "
              "deliveries\n",
              static_cast<unsigned long long>(run.stats.workers_joined),
              static_cast<unsigned long long>(run.stats.workers_lost),
              static_cast<unsigned long long>(run.stats.leases_granted),
              static_cast<unsigned long long>(run.stats.leases_expired),
              static_cast<unsigned long long>(run.stats.cells_reassigned),
              static_cast<unsigned long long>(run.stats.duplicates));

  std::map<std::size_t, exp::CellAggregate> all = std::move(resumed);
  for (const auto& [cell, aggregate] : run.cells) {
    all.emplace(cell, aggregate);
  }
  render_reports(exp::assemble_result(manifest.spec, all),
                 manifest.outputs);
  return 0;
}

/// --worker: compute leased cells for a controller serving the same
/// manifest.
int run_worker_mode(const exp::Manifest& manifest, const Cli& cli,
                    const std::string& fingerprint) {
  fabric::WorkerOptions options;
  options.address = cli.worker;
  options.fingerprint = fingerprint;
  options.name = cli.worker_name;
  options.want = cli.lease_cells;
  options.connect_attempts = cli.connect_attempts;
  options.fault = fabric::parse_fault_plan(cli.fault);
  options.cancel = &g_cancel;
  const fabric::WorkerOutcome outcome =
      fabric::run_worker(manifest.spec, exp::make_hooks(manifest), options);
  const char* text = "lost";
  switch (outcome) {
    case fabric::WorkerOutcome::kDone:
      text = "done";
      break;
    case fabric::WorkerOutcome::kLost:
      text = "lost";
      break;
    case fabric::WorkerOutcome::kRejected:
      text = "rejected";
      break;
    case fabric::WorkerOutcome::kFaultStop:
      text = "fault-stop";
      break;
    case fabric::WorkerOutcome::kCancelled:
      text = "cancelled";
      break;
  }
  std::fprintf(stderr, "sweeprun: worker '%s' %s\n",
               cli.worker_name.c_str(), text);
  return fabric::worker_exit_code(outcome);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse_cli(argc, argv);
  install_signal_handlers();
  exp::Manifest manifest;
  try {
    manifest = exp::load_manifest(cli.manifest_path);
  } catch (const std::exception& error) {
    // Parse errors are already line-numbered; prefix the file so a cluster
    // log names which manifest was bad.
    std::fprintf(stderr, "sweeprun: %s: %s\n", cli.manifest_path.c_str(),
                 error.what());
    return 1;
  }
  if (cli.progress) {
    log::set_prefix(true);  // progress lines carry timestamp + thread id
  }
  if (!cli.trace_out.empty()) {
    obs::start_tracing();
    obs::set_trace_thread_name("main");
  }
  ProgressPrinter progress_printer;
  try {
    if (cli.reps > 0) {
      manifest.spec.replications = cli.reps;
      if (manifest.spec.adaptive.enabled() &&
          manifest.spec.adaptive.max_replications < cli.reps) {
        manifest.spec.adaptive.max_replications = cli.reps;
      }
    }
    if (!cli.csv.empty()) manifest.outputs.csv = cli.csv;
    if (!cli.json.empty()) manifest.outputs.json = cli.json;
    if (!cli.journal.empty()) manifest.outputs.journal = cli.journal;
    if (cli.no_table) manifest.outputs.table = false;
    const std::string shard_dir =
        cli.shard_dir.empty() ? manifest.shard.dir : cli.shard_dir;

    // The salt extends the journal fingerprint to the trace/planner/
    // experiment templates: editing them invalidates an old journal
    // instead of silently resuming the old configuration's results.
    const std::string salt = exp::manifest_journal_salt(manifest);
    const std::string fingerprint =
        exp::spec_fingerprint(manifest.spec, salt);

    if (cli.compact) {
      const int rc = run_compact(manifest, cli, fingerprint, shard_dir);
      if (rc == 0) write_obs_outputs(cli);
      return rc;
    }
    if (cli.merge) {
      const int rc = run_merge(manifest, cli, fingerprint, shard_dir);
      if (rc == 0) write_obs_outputs(cli);
      return rc;
    }
    if (!cli.controller.empty()) {
      const int rc = run_controller_mode(manifest, cli, fingerprint);
      if (rc == 0) write_obs_outputs(cli);
      return rc;
    }
    if (!cli.worker.empty()) {
      const int rc = run_worker_mode(manifest, cli, fingerprint);
      if (rc == 0) write_obs_outputs(cli);
      return rc;
    }

    exp::SweepOptions options;
    options.threads = cli.threads;
    options.journal = manifest.outputs.journal;
    options.journal_salt = salt;
    options.cancel = &g_cancel;
    if (cli.progress) {
      options.on_progress = [&progress_printer](
                                const exp::SweepProgress& progress) {
        progress_printer.report(progress);
      };
    }
    const bool sharded = cli.shard_count > 0;
    if (sharded) {
      options.shard.index = cli.shard_index;
      options.shard.count = cli.shard_count;
      // Each shard owns its journal inside the shared directory; the
      // manifest's [output] journal names the merge product instead.
      std::error_code ignored;
      std::filesystem::create_directories(shard_dir, ignored);
      options.journal = exp::shard_journal_path(
          shard_dir, manifest.spec.name, cli.shard_index, cli.shard_count);
    }
    if (cli.fresh && !options.journal.empty()) {
      std::remove(options.journal.c_str());
    }

    const std::size_t cells = manifest.spec.num_cells();
    const exp::ShardRange owned = shard_cell_range(cells, options.shard);
    std::size_t resumed = 0;
    if (!options.journal.empty()) {
      const auto contents = exp::read_journal(options.journal, fingerprint);
      if (contents.found && !contents.compatible) {
        std::fprintf(stderr,
                     "sweeprun: note: journal '%s' belongs to a different "
                     "sweep; starting fresh\n",
                     options.journal.c_str());
      }
      for (const auto& [cell, aggregate] : contents.cells) {
        resumed += owned.contains(cell) ? 1 : 0;
      }
    }

    std::printf("sweep '%s': %zu cells x %d replication(s)%s\n",
                manifest.spec.name.c_str(), cells,
                manifest.spec.replications,
                manifest.spec.adaptive.enabled() ? " (adaptive)" : "");
    if (manifest.spec.adaptive.enabled()) {
      std::printf("  adaptive: %s CI95 <= %g, batches of %d, cap %d\n",
                  manifest.spec.adaptive.metric.c_str(),
                  manifest.spec.adaptive.target_ci95,
                  manifest.spec.adaptive.batch,
                  manifest.spec.adaptive.max_replications);
    }
    if (sharded) {
      std::printf("  shard %zu/%zu: cells [%zu, %zu)\n",
                  cli.shard_index + 1, cli.shard_count, owned.begin,
                  owned.end);
    }
    if (resumed > 0) {
      std::printf("  resuming from journal: %zu/%zu cells already done\n",
                  resumed, owned.size());
    }

    const auto start = std::chrono::steady_clock::now();
    const exp::SweepResult result =
        exp::run_sweep(manifest.spec, exp::make_hooks(manifest), options);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    std::printf("  finished in %.3f s\n\n", seconds);

    if (sharded) {
      // Partial grids render no reports; --merge renders the full ones
      // once every shard journal is in the shared directory.
      std::printf("shard journal written to %s; run --merge once all %zu "
                  "shards are done\n",
                  options.journal.c_str(), cli.shard_count);
      write_obs_outputs(cli);
      return 0;
    }
    render_reports(result, manifest.outputs);
    write_obs_outputs(cli);
    return 0;
  } catch (const exp::SweepCancelled&) {
    // The engine stopped at a round barrier with every finished cell
    // journaled, flushed and fsynced; a rerun resumes from there.
    std::fprintf(stderr,
                 "sweeprun: interrupted; journal flushed and synced — rerun "
                 "to resume\n");
    return kInterruptedExit;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweeprun: %s\n", error.what());
    return 1;
  }
}
