// Quickstart: optimize the number of speculative attempts for one job.
//
// Given a job's size, deadline and measured Pareto task-duration parameters,
// Chronos computes — for each strategy — the PoCD, the expected machine-time
// cost, and the optimal number of extra attempts r that maximizes the net
// utility lg(PoCD - R_min) - theta * C * E(T)  (Algorithm 1).
//
//   ./quickstart                # built-in demo job
#include <cstdio>

#include "core/chronos.h"

int main() {
  using namespace chronos::core;  // NOLINT

  // A deadline-critical job: 100 map tasks, 3-minute deadline, and task
  // execution times fitted to Pareto(t_min = 30 s, beta = 1.5) — i.e. a
  // mean task time of 90 s and a heavy straggler tail.
  JobParams job;
  job.num_tasks = 100;
  job.deadline = 180.0;
  job.t_min = 30.0;
  job.beta = 1.5;
  job.tau_est = 9.0;    // detect stragglers at 0.3 * t_min
  job.tau_kill = 24.0;  // kill losers at 0.8 * t_min
  job.phi_est = default_phi_est(job);

  Economics econ;
  econ.price = 0.4;   // VM price per machine-second (cost units)
  econ.theta = 1e-4;  // tradeoff factor: 1% PoCD ~ 100 cost units
  econ.r_min = pocd_no_speculation(job);  // must beat no-speculation

  std::printf("Job: N=%d tasks, D=%.0fs, Pareto(t_min=%.0fs, beta=%.2f)\n",
              job.num_tasks, job.deadline, job.t_min, job.beta);
  std::printf("Without speculation: PoCD = %.4f, E(T) = %.1f machine-s\n\n",
              pocd_no_speculation(job), machine_time_no_speculation(job));

  for (const Strategy strategy :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    const auto result = optimize(strategy, job, econ);
    std::printf("%-10s r* = %lld   PoCD = %.4f   cost = %.1f   U = %.4f"
                "   (Gamma = %.2f, %lld evaluations)\n",
                to_string(strategy).c_str(), result.r_opt, result.best.pocd,
                result.best.cost, result.best.utility, result.gamma,
                static_cast<long long>(result.evaluations));
  }

  const auto best = optimize_all(job, econ);
  std::printf("\nBest strategy: %s with r = %lld extra attempts\n",
              to_string(best.strategy).c_str(), best.result.r_opt);

  // Sanity-check the closed forms with a quick Monte-Carlo run.
  chronos::Rng rng(1);
  const auto mc =
      monte_carlo(best.strategy, job, best.result.r_opt, 20000, rng);
  std::printf("Monte-Carlo check: PoCD = %.4f +- %.4f (closed form %.4f)\n",
              mc.pocd, mc.pocd_ci, best.result.best.pocd);
  return 0;
}
