// Fit-and-plan: the full Chronos workflow on measured task durations.
//
// §VII-A fits a Pareto distribution to task execution times observed on the
// noisy testbed, then optimizes the speculation parameters against the fit.
// This example (1) generates "measured" durations from a noisy ground-truth
// process, (2) fits Pareto(t_min, beta) by maximum likelihood and checks
// the fit with a KS statistic, (3) plans the optimal strategy and r, and
// (4) validates the plan with Monte Carlo.
//
//   ./fit_and_plan [num_samples] [deadline]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/chronos.h"
#include "stats/estimators.h"

int main(int argc, char** argv) {
  using namespace chronos;  // NOLINT

  const int samples = argc > 1 ? std::atoi(argv[1]) : 5000;
  const double deadline = argc > 2 ? std::atof(argv[2]) : 180.0;

  // 1. "Measure" task durations on a contended cluster: a Pareto base
  //    process with multiplicative contention noise (the measurement rig
  //    only sees the combined durations).
  Rng rng(2018);
  std::vector<double> durations;
  durations.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double base = rng.pareto(28.0, 1.55);
    const double contention = 1.0 + 0.1 * rng.uniform();
    durations.push_back(base * contention);
  }

  // 2. Fit the Pareto model (§VII-A observed beta < 2 on the testbed).
  const auto fit = stats::fit_pareto_mle(durations);
  const stats::Pareto model(fit.t_min, fit.beta);
  const double ks = stats::ks_statistic(durations, model);
  std::printf("Fitted Pareto: t_min = %.2f s, beta = %.3f +- %.3f "
              "(KS distance %.4f over %d samples)\n",
              fit.t_min, fit.beta, fit.beta_stderr, ks, samples);
  std::printf("Empirical P(T > D) = %.4f vs model %.4f\n\n",
              stats::exceedance_fraction(durations, deadline),
              model.survival(deadline));

  // 3. Plan: optimize each strategy for a 100-task job with this duration
  //    law and the given deadline.
  core::JobParams job;
  job.num_tasks = 100;
  job.deadline = deadline;
  job.t_min = fit.t_min;
  job.beta = fit.beta;
  job.tau_est = 0.3 * fit.t_min;
  job.tau_kill = 0.8 * fit.t_min;
  job.phi_est = core::default_phi_est(job);

  core::Economics econ;
  econ.price = 0.4;
  econ.theta = 1e-4;
  econ.r_min = core::pocd_no_speculation(job);

  const auto best = core::optimize_all(job, econ);
  std::printf("Plan: %s with r = %lld (PoCD %.4f, cost %.1f, U %.4f)\n",
              core::to_string(best.strategy).c_str(), best.result.r_opt,
              best.result.best.pocd, best.result.best.cost,
              best.result.best.utility);

  // 4. Validate against fresh draws from the *true* process, not the fit:
  //    the plan must be robust to the fitting error.
  const auto mc =
      core::monte_carlo(best.strategy, job, best.result.r_opt, 20000, rng);
  std::printf("Validation: Monte-Carlo PoCD %.4f +- %.4f "
              "(plan predicted %.4f)\n",
              mc.pocd, mc.pocd_ci, best.result.best.pocd);
  return 0;
}
