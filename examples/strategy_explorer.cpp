// Strategy explorer: the Theorem 7 orderings made tangible.
//
// For a configurable job, prints the per-task failure-probability ratios of
// Clone vs S-Restart vs S-Resume across r, the Theorem 7(3) crossover
// threshold between Clone and S-Resume, and a Monte-Carlo confirmation.
//
//   ./strategy_explorer [deadline] [beta] [phi_est]
#include <cstdio>
#include <cstdlib>

#include "core/chronos.h"

int main(int argc, char** argv) {
  using namespace chronos::core;  // NOLINT

  JobParams job;
  job.num_tasks = 10;
  job.deadline = argc > 1 ? std::atof(argv[1]) : 100.0;
  job.t_min = 30.0;
  job.beta = argc > 2 ? std::atof(argv[2]) : 1.5;
  job.tau_est = 40.0;
  job.tau_kill = 80.0;
  job.phi_est = argc > 3 ? std::atof(argv[3]) : default_phi_est(job);
  job.validate();

  std::printf(
      "Job: N=%d, D=%.0f, Pareto(%.0f, %.2f), tau_est=%.0f, phi=%.3f\n\n",
      job.num_tasks, job.deadline, job.t_min, job.beta, job.tau_est,
      job.phi_est);

  std::printf("%3s  %10s  %10s  %10s   %s\n", "r", "R_Clone", "R_S-Restart",
              "R_S-Resume", "best");
  for (double r = 0.0; r <= 6.0; r += 1.0) {
    const double clone = pocd_clone(job, r);
    const double restart = pocd_s_restart(job, r);
    const double resume = pocd_s_resume(job, r);
    const char* best = clone >= restart && clone >= resume  ? "Clone"
                       : resume >= restart                  ? "S-Resume"
                                                            : "S-Restart";
    std::printf("%3.0f  %10.6f  %10.6f  %10.6f   %s\n", r, clone, restart,
                resume, best);
  }

  const double threshold = clone_beats_resume_threshold(job);
  std::printf(
      "\nTheorem 7: Clone always beats S-Restart; S-Resume always beats\n"
      "S-Restart; Clone overtakes S-Resume when r > %.2f\n",
      threshold);

  std::printf("\nPer-task failure ratios at r = 2:\n");
  std::printf("  (1-R_Clone)/(1-R_S-Restart) per task = %.4f  (< 1)\n",
              clone_vs_restart_ratio(job, 2.0));
  std::printf("  (1-R_S-Restart)/(1-R_S-Resume) per task = %.4f  (> 1)\n",
              restart_vs_resume_ratio(job, 2.0));

  // Monte-Carlo confirmation of the analytic ordering at r = 2.
  chronos::Rng rng(2024);
  std::printf("\nMonte-Carlo (40k jobs) at r = 2:\n");
  for (const Strategy strategy :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    const auto mc = monte_carlo(strategy, job, 2, 40000, rng);
    std::printf("  %-10s PoCD = %.4f +- %.4f   E(T) = %.1f machine-s\n",
                to_string(strategy).c_str(), mc.pocd, mc.pocd_ci,
                mc.machine_time);
  }
  return 0;
}
