// Two-stage MapReduce job: plan and simulate a job with map AND reduce
// phases. §III of the paper notes the analysis applies per stage ("PoCD for
// map and reduce stages can be optimized separately"); the planner splits
// the job deadline across the stages in proportion to their expected
// makespans and runs Algorithm 1 once per stage.
//
//   ./two_stage_job [deadline] [strategy]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT

strategies::PolicyKind parse(const std::string& name) {
  if (name == "clone") return strategies::PolicyKind::kClone;
  if (name == "s-restart") return strategies::PolicyKind::kSRestart;
  return strategies::PolicyKind::kSResume;
}

double run_once(const mapreduce::JobSpec& spec, strategies::PolicyKind kind,
                std::uint64_t seed, bool& met) {
  sim::Simulator simulator;
  sim::NodeConfig node;
  node.containers = 32;
  sim::Cluster cluster(sim::ClusterConfig::uniform(8, node));
  auto policy = strategies::make_policy(kind);
  mapreduce::Scheduler scheduler(simulator, cluster, *policy,
                                 mapreduce::SchedulerConfig{}, Rng(seed));
  scheduler.submit(spec);
  simulator.run();
  const auto& outcome = scheduler.metrics().outcomes().front();
  met = outcome.met_deadline;
  return outcome.machine_time;
}

}  // namespace

int main(int argc, char** argv) {
  const double deadline = argc > 1 ? std::atof(argv[1]) : 500.0;
  const auto kind = parse(argc > 2 ? argv[2] : "s-resume");

  trace::TracedJob job;
  job.spec.num_tasks = 40;       // map phase: 40 splits
  job.spec.reduce_tasks = 10;    // reduce phase: 10 partitions
  job.spec.t_min = 25.0;
  job.spec.beta = 1.4;
  job.spec.reduce_t_min = 45.0;  // reducers are longer but less variable
  job.spec.reduce_beta = 1.7;
  job.spec.reduce_r = -1;
  job.spec.deadline = deadline;
  job.spec.jvm_mean = 2.0;
  job.spec.jvm_jitter = 1.0;

  trace::PlannerConfig planner;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_two_stage_job(job, kind, planner, prices);

  std::printf("Two-stage job: %d map + %d reduce tasks, deadline %.0f s\n",
              job.spec.num_tasks, job.spec.reduce_tasks, deadline);
  std::printf("Deadline split: map %.1f s / reduce %.1f s "
              "(expected makespans %.1f / %.1f)\n",
              plan.map_deadline, plan.reduce_deadline,
              trace::expected_stage_makespan(job.spec.num_tasks,
                                             job.spec.t_min, job.spec.beta),
              trace::expected_stage_makespan(
                  job.spec.reduce_tasks, job.spec.effective_reduce_t_min(),
                  job.spec.effective_reduce_beta()));
  std::printf("Planned r: map %lld (PoCD %.4f), reduce %lld (PoCD %.4f)\n\n",
              job.spec.r, plan.map.best.pocd, job.spec.effective_reduce_r(),
              plan.reduce.best.pocd);

  int met_count = 0;
  double machine_sum = 0.0;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    bool met = false;
    machine_sum +=
        run_once(job.spec, kind, static_cast<std::uint64_t>(i), met);
    met_count += met ? 1 : 0;
  }
  std::printf("Simulated %d runs under %s:\n", runs,
              strategies::to_string(kind).c_str());
  std::printf("  PoCD          : %.3f\n",
              static_cast<double>(met_count) / runs);
  std::printf("  mean machine  : %.1f s\n", machine_sum / runs);

  // Baseline comparison: no speculation at all.
  int base_met = 0;
  double base_machine = 0.0;
  for (int i = 0; i < runs; ++i) {
    bool met = false;
    auto spec = job.spec;
    spec.r = 0;
    spec.reduce_r = 0;
    base_machine += run_once(spec, strategies::PolicyKind::kHadoopNS,
                             static_cast<std::uint64_t>(i), met);
    base_met += met ? 1 : 0;
  }
  std::printf("Hadoop-NS baseline: PoCD %.3f, mean machine %.1f s\n",
              static_cast<double>(base_met) / runs, base_machine / runs);
  return 0;
}
