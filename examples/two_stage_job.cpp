// Two-stage MapReduce job: plan and simulate a job with map AND reduce
// phases. §III of the paper notes the analysis applies per stage ("PoCD for
// map and reduce stages can be optimized separately"); the planner splits
// the job deadline across the stages in proportion to their expected
// makespans on the critical path and runs Algorithm 1 once per stage.
//
//   ./two_stage_job [deadline] [strategy]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "mapreduce/scheduler.h"
#include "sim/cluster.h"
#include "sim/simulator.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT

double run_once(const mapreduce::JobSpec& spec, strategies::PolicyKind kind,
                std::uint64_t seed, bool& met) {
  sim::Simulator simulator;
  sim::NodeConfig node;
  node.containers = 32;
  sim::Cluster cluster(sim::ClusterConfig::uniform(8, node));
  auto policy = strategies::make_policy(kind);
  mapreduce::Scheduler scheduler(simulator, cluster, *policy,
                                 mapreduce::SchedulerConfig{}, Rng(seed));
  scheduler.submit(spec);
  simulator.run();
  const auto& outcome = scheduler.metrics().outcomes().front();
  met = outcome.met_deadline;
  return outcome.machine_time;
}

}  // namespace

int main(int argc, char** argv) {
  const double deadline = argc > 1 ? std::atof(argv[1]) : 500.0;
  const std::string name = argc > 2 ? argv[2] : "s-resume";
  const auto parsed = strategies::policy_from_name(name);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "unknown strategy '%s'\n", name.c_str());
    return 1;
  }
  const strategies::PolicyKind kind = *parsed;

  trace::TracedJob job;
  job.spec.stage(0).num_tasks = 40;  // map phase: 40 splits
  job.spec.stage(0).t_min = 25.0;
  job.spec.stage(0).beta = 1.4;
  // Reduce phase: 10 partitions, longer but less variable tasks. The
  // default barrier chain makes it wait for the whole map stage (shuffle).
  job.spec.add_reduce_stage(/*reduce_tasks=*/10, /*reduce_t_min=*/45.0,
                            /*reduce_beta=*/1.7);
  job.spec.deadline = deadline;
  job.spec.jvm_mean = 2.0;
  job.spec.jvm_jitter = 1.0;

  trace::PlannerConfig planner;
  const trace::SpotPriceModel prices;
  const auto plan = trace::plan_staged_job(job, kind, planner, prices);

  // Bind stage views only now: add_reduce_stage grows the stage vector,
  // so references taken before it would dangle.
  const auto& map = job.spec.stage(0);
  const auto& reduce = job.spec.stage(1);
  std::printf("Two-stage job: %d map + %d reduce tasks, deadline %.0f s\n",
              map.num_tasks, reduce.num_tasks, deadline);
  std::printf("Deadline split: map %.1f s / reduce %.1f s "
              "(expected makespans %.1f / %.1f)\n",
              plan.stage_deadlines[0], plan.stage_deadlines[1],
              trace::expected_stage_makespan(map.num_tasks, map.t_min,
                                             map.beta),
              trace::expected_stage_makespan(reduce.num_tasks, reduce.t_min,
                                             reduce.beta));
  std::printf("Planned r: map %lld (PoCD %.4f), reduce %lld (PoCD %.4f)\n\n",
              map.r, plan.stages[0].best.pocd, reduce.r,
              plan.stages[1].best.pocd);

  int met_count = 0;
  double machine_sum = 0.0;
  const int runs = 200;
  for (int i = 0; i < runs; ++i) {
    bool met = false;
    machine_sum +=
        run_once(job.spec, kind, static_cast<std::uint64_t>(i), met);
    met_count += met ? 1 : 0;
  }
  std::printf("Simulated %d runs under %s:\n", runs,
              strategies::to_string(kind).c_str());
  std::printf("  PoCD          : %.3f\n",
              static_cast<double>(met_count) / runs);
  std::printf("  mean machine  : %.1f s\n", machine_sum / runs);

  // Baseline comparison: no speculation at all.
  int base_met = 0;
  double base_machine = 0.0;
  for (int i = 0; i < runs; ++i) {
    bool met = false;
    auto spec = job.spec;
    for (auto& stage : spec.stages) {
      stage.r = 0;
    }
    base_machine += run_once(spec, strategies::PolicyKind::kHadoopNS,
                             static_cast<std::uint64_t>(i), met);
    base_met += met ? 1 : 0;
  }
  std::printf("Hadoop-NS baseline: PoCD %.3f, mean machine %.1f s\n",
              static_cast<double>(base_met) / runs, base_machine / runs);
  return 0;
}
