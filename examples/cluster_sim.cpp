// Cluster simulation: run the long-lived open-system engine — Poisson (or
// diurnal) job arrivals against the discrete-event MapReduce cluster, each
// arrival planned at admission time and pushed through the capacity-aware
// admission controller — and report the steady-state view: utilization,
// Little's-law occupancy, sojourn time, deadline-miss rate, cost, and how
// the admitted jobs were scheduled.
//
//   ./cluster_sim [strategy] [rate] [hours] [theta] [seed]
//   strategy in {hadoop-ns, hadoop-s, mantri, clone, s-restart, s-resume,
//                auto}; auto picks per job via the Algorithm-1 optimizer
//   rate     mean arrivals per second (default 0.05, ~70% load)
//   hours    arrival horizon, first 10% used as warm-up (default 1)
//   e.g. ./cluster_sim auto 0.05 2 1e-4 7
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/open_system.h"
#include "strategies/policies.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

PolicyKind parse_policy(const std::string& name) {
  if (name == "hadoop-ns") return PolicyKind::kHadoopNS;
  if (name == "hadoop-s") return PolicyKind::kHadoopS;
  if (name == "mantri") return PolicyKind::kMantri;
  if (name == "clone") return PolicyKind::kClone;
  if (name == "s-restart") return PolicyKind::kSRestart;
  if (name == "s-resume") return PolicyKind::kSResume;
  std::fprintf(stderr,
               "unknown strategy '%s'; expected hadoop-ns|hadoop-s|mantri|"
               "clone|s-restart|s-resume|auto\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string strategy = argc > 1 ? argv[1] : "s-resume";
  const double rate = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double hours = argc > 3 ? std::atof(argv[3]) : 1.0;
  const double theta = argc > 4 ? std::atof(argv[4]) : 1e-4;
  const std::uint64_t seed =
      argc > 5 ? static_cast<std::uint64_t>(std::atoll(argv[5])) : 1;

  sim::OpenSystemConfig config;
  config.arrivals.kind = trace::ArrivalKind::kPoisson;
  config.arrivals.rate = rate;
  config.workload.mean_tasks = 60.0;
  config.workload.max_tasks = 600;
  config.planner.theta = theta;
  if (strategy == "auto") {
    config.auto_strategy = true;
  } else {
    config.policy = parse_policy(strategy);
  }
  sim::NodeConfig node;
  node.containers = 8;
  config.cluster = sim::ClusterConfig::uniform(64, node);
  config.duration = hours * 3600.0;
  config.warm_up = 0.1 * config.duration;
  config.seed = seed;

  const auto result = sim::run_open_system(config);

  std::printf("Open system: poisson arrivals at %.3f jobs/s for %.2f h "
              "(warm-up %.2f h), %d containers\n",
              rate, hours, 0.1 * hours, 64 * node.containers);
  std::printf("Strategy: %s (theta = %g, seed = %llu)\n",
              config.auto_strategy
                  ? "auto (per-job optimize_all)"
                  : strategies::to_string(config.policy).c_str(),
              theta, static_cast<unsigned long long>(seed));

  std::printf("\nConservation\n");
  std::printf("  arrivals        : %llu (%llu in window)\n",
              static_cast<unsigned long long>(result.arrivals),
              static_cast<unsigned long long>(result.window_arrivals));
  std::printf("  admitted        : %llu (%llu degraded to Hadoop-NS)\n",
              static_cast<unsigned long long>(result.admitted),
              static_cast<unsigned long long>(result.degraded));
  std::printf("  rejected        : %llu\n",
              static_cast<unsigned long long>(result.rejected));
  std::printf("  completed       : %llu (+%llu in flight at end)\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.in_flight_at_end));

  std::printf("\nSteady state over the measurement window\n");
  std::printf("  offered rate    : %.4f jobs/s (admitted %.4f)\n",
              result.offered_rate, result.admitted_rate);
  std::printf("  utilization     : %.4f\n", result.utilization);
  std::printf("  jobs in system  : %.3f (Little: lambda*W = %.3f)\n",
              result.mean_jobs_in_system,
              result.admitted_rate * result.mean_sojourn);
  std::printf("  queue depth     : %.3f pending container requests\n",
              result.mean_queue_depth);
  std::printf("  mean sojourn    : %.2f s\n", result.mean_sojourn);
  std::printf("  deadline misses : %.4f (PoCD %.4f, baseline %.4f)\n",
              result.miss_rate, 1.0 - result.miss_rate,
              result.mean_baseline_pocd);
  std::printf("  mean cost       : %.2f per job\n", result.mean_cost);

  std::printf("\nStrategy mix of admitted jobs\n");
  for (const auto kind :
       {PolicyKind::kHadoopNS, PolicyKind::kHadoopS, PolicyKind::kMantri,
        PolicyKind::kClone, PolicyKind::kSRestart, PolicyKind::kSResume}) {
    if (result.mix[kind] > 0) {
      std::printf("  %-12s: %llu\n", strategies::to_string(kind).c_str(),
                  static_cast<unsigned long long>(result.mix[kind]));
    }
  }
  std::printf("\n%llu simulator events to t = %.0f s\n",
              static_cast<unsigned long long>(result.events_executed),
              result.end_time);
  return 0;
}
