// Cluster simulation: replay a synthetic Google-style trace through the
// discrete-event MapReduce cluster under any of the six strategies and
// report the §VII metrics with confidence intervals.
//
// Runs `reps` independent replications (deterministic seeds derived by the
// sweep engine) spread across `threads` workers — the simplest use of the
// src/exp/ engine: a one-cell grid.
//
//   ./cluster_sim [strategy] [num_jobs] [theta] [reps] [threads]
//   strategy in {hadoop-ns, hadoop-s, mantri, clone, s-restart, s-resume}
//   e.g. ./cluster_sim s-resume 300 1e-4 5 4
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"
#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

PolicyKind parse_policy(const std::string& name) {
  if (name == "hadoop-ns") return PolicyKind::kHadoopNS;
  if (name == "hadoop-s") return PolicyKind::kHadoopS;
  if (name == "mantri") return PolicyKind::kMantri;
  if (name == "clone") return PolicyKind::kClone;
  if (name == "s-restart") return PolicyKind::kSRestart;
  if (name == "s-resume") return PolicyKind::kSResume;
  std::fprintf(stderr,
               "unknown strategy '%s'; expected hadoop-ns|hadoop-s|mantri|"
               "clone|s-restart|s-resume\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const PolicyKind policy =
      argc > 1 ? parse_policy(argv[1]) : PolicyKind::kSResume;
  const int num_jobs = argc > 2 ? std::atoi(argv[2]) : 300;
  const double theta = argc > 3 ? std::atof(argv[3]) : 1e-4;
  const int reps = argc > 4 ? std::max(1, std::atoi(argv[4])) : 5;
  const int threads =
      argc > 5 ? std::max(0, std::atoi(argv[5])) : 0;  // 0 = hardware

  trace::TraceConfig trace_config;
  trace_config.num_jobs = num_jobs;
  trace_config.duration_hours = 10.0;
  trace_config.mean_tasks = 60.0;
  trace_config.max_tasks = 600;
  const auto base_jobs = generate_trace(trace_config);

  std::printf("Trace: %zu jobs, %lld tasks over %.0f h\n", base_jobs.size(),
              static_cast<long long>(trace::total_tasks(base_jobs)),
              trace_config.duration_hours);

  double r_min_sum = 0.0;
  for (const auto& job : base_jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.t_min;
    params.beta = job.spec.beta;
    r_min_sum += core::pocd_no_speculation(params);
  }
  const double r_min = r_min_sum / static_cast<double>(base_jobs.size());

  // One-cell sweep: the setup hook plans the trace once; the cell's `reps`
  // replications share it under independent simulator seeds.
  exp::SweepSpec spec;
  spec.name = "cluster_sim";
  spec.policies = {policy};
  spec.replications = reps;
  spec.seed = 1;
  exp::SweepHooks hooks;
  hooks.setup = [&](const exp::SweepPoint& point) {
    trace::PlannerConfig planner;
    planner.theta = theta;
    const trace::SpotPriceModel prices;
    auto jobs = base_jobs;
    plan_trace(jobs, point.policy, planner, prices);
    exp::SharedCell shared;
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    shared.r_min = r_min;
    return shared;
  };
  hooks.run = [&](const exp::SweepPoint& point, std::uint64_t seed,
                  const exp::SharedCell& shared) {
    exp::CellInstance instance;
    instance.jobs = shared.jobs;
    instance.config =
        trace::ExperimentConfig::large_scale(point.policy, seed);
    instance.report_utility = true;
    instance.theta = theta;
    instance.r_min = shared.r_min;
    return instance;
  };
  exp::SweepOptions options;
  options.threads = threads;
  const auto sweep = exp::run_sweep(spec, hooks, options);
  const auto& cell = sweep.cells.front();
  const auto& agg = cell.aggregate;

  std::printf("\nStrategy: %s (theta = %g, %d replications)\n",
              cell.policy_name.c_str(), theta, reps);
  std::printf("  PoCD            : %.4f +- %.4f (95%% CI over reps)\n",
              agg.pocd.mean, agg.pocd.ci95);
  std::printf("  mean cost       : %.1f +- %.1f per job\n", agg.cost.mean,
              agg.cost.ci95);
  std::printf("  mean machine    : %.1f +- %.1f s per job\n",
              agg.machine_time.mean, agg.machine_time.ci95);
  std::printf("  net utility     : %.4f (R_min = %.3f)\n", agg.utility.mean,
              r_min);
  std::printf("  mean optimal r  : %.2f\n", agg.mean_r.mean);
  std::printf("  attempts        : %llu launched, %llu killed\n",
              static_cast<unsigned long long>(agg.attempts_launched),
              static_cast<unsigned long long>(agg.attempts_killed));
  std::printf("  sim events      : %llu across %d replication(s)\n",
              static_cast<unsigned long long>(agg.events_executed), reps);
  return 0;
}
