// Cluster simulation: replay a synthetic Google-style trace through the
// discrete-event MapReduce cluster under any of the six strategies and
// report the §VII metrics.
//
//   ./cluster_sim [strategy] [num_jobs] [theta]
//   strategy in {hadoop-ns, hadoop-s, mantri, clone, s-restart, s-resume}
//   e.g. ./cluster_sim s-resume 300 1e-4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/harness.h"
#include "trace/planner.h"

namespace {

using namespace chronos;  // NOLINT
using strategies::PolicyKind;

PolicyKind parse_policy(const std::string& name) {
  if (name == "hadoop-ns") return PolicyKind::kHadoopNS;
  if (name == "hadoop-s") return PolicyKind::kHadoopS;
  if (name == "mantri") return PolicyKind::kMantri;
  if (name == "clone") return PolicyKind::kClone;
  if (name == "s-restart") return PolicyKind::kSRestart;
  if (name == "s-resume") return PolicyKind::kSResume;
  std::fprintf(stderr,
               "unknown strategy '%s'; expected hadoop-ns|hadoop-s|mantri|"
               "clone|s-restart|s-resume\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const PolicyKind policy =
      argc > 1 ? parse_policy(argv[1]) : PolicyKind::kSResume;
  const int num_jobs = argc > 2 ? std::atoi(argv[2]) : 300;
  const double theta = argc > 3 ? std::atof(argv[3]) : 1e-4;

  trace::TraceConfig trace_config;
  trace_config.num_jobs = num_jobs;
  trace_config.duration_hours = 10.0;
  trace_config.mean_tasks = 60.0;
  trace_config.max_tasks = 600;
  auto jobs = generate_trace(trace_config);

  trace::PlannerConfig planner;
  planner.theta = theta;
  const trace::SpotPriceModel prices;
  plan_trace(jobs, policy, planner, prices);

  std::printf("Trace: %zu jobs, %lld tasks over %.0f h\n", jobs.size(),
              static_cast<long long>(trace::total_tasks(jobs)),
              trace_config.duration_hours);

  const auto config = trace::ExperimentConfig::large_scale(policy);
  const auto result = run_experiment(jobs, config);

  double mean_r = 0.0;
  double r_min_sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.t_min;
    params.beta = job.spec.beta;
    r_min_sum += core::pocd_no_speculation(params);
  }
  for (const auto& outcome : result.metrics.outcomes()) {
    mean_r += static_cast<double>(outcome.r_used);
  }
  mean_r /= static_cast<double>(result.metrics.jobs());
  const double r_min = r_min_sum / static_cast<double>(jobs.size());

  std::printf("\nStrategy: %s (theta = %g)\n", result.policy_name.c_str(),
              theta);
  std::printf("  PoCD            : %.4f +- %.4f\n", result.pocd(),
              result.metrics.pocd_ci());
  std::printf("  mean cost       : %.1f per job\n", result.mean_cost());
  std::printf("  mean machine    : %.1f s per job\n",
              result.metrics.mean_machine_time());
  std::printf("  net utility     : %.4f (R_min = %.3f)\n",
              result.utility(theta, r_min), r_min);
  std::printf("  mean optimal r  : %.2f\n", mean_r);
  std::printf("  attempts        : %llu launched, %llu killed\n",
              static_cast<unsigned long long>(
                  result.metrics.attempts_launched()),
              static_cast<unsigned long long>(
                  result.metrics.attempts_killed()));
  std::printf("  sim events      : %llu\n",
              static_cast<unsigned long long>(result.events_executed));
  return 0;
}
