// SLA planner: explore the PoCD-vs-cost tradeoff frontier for a job.
//
// §V of the paper: for a given target PoCD (from an SLA), pick the strategy
// and r that achieve it at minimum cost; or, for a budget, find the best
// attainable PoCD. Uses the chronos::core frontier API.
//
//   ./sla_planner [target_pocd] [budget]
#include <cstdio>
#include <cstdlib>

#include "core/chronos.h"

int main(int argc, char** argv) {
  using namespace chronos::core;  // NOLINT

  const double target_pocd = argc > 1 ? std::atof(argv[1]) : 0.99;
  const double budget = argc > 2 ? std::atof(argv[2]) : 8000.0;

  JobParams job;
  job.num_tasks = 100;
  job.deadline = 180.0;
  job.t_min = 30.0;
  job.beta = 1.5;
  job.tau_est = 9.0;
  job.tau_kill = 24.0;
  job.phi_est = default_phi_est(job);

  const double price = 0.4;
  const auto points = enumerate_operating_points(job, price, 6);

  std::printf("Operating points (N=%d, D=%.0fs):\n", job.num_tasks,
              job.deadline);
  std::printf("%-10s %3s  %8s  %10s\n", "strategy", "r", "PoCD", "cost");
  for (const auto& point : points) {
    std::printf("%-10s %3lld  %8.5f  %10.1f\n",
                to_string(point.strategy).c_str(), point.r, point.pocd,
                point.cost);
  }

  std::printf("\nPareto-efficient frontier:\n");
  for (const auto& point : pareto_frontier(points)) {
    std::printf("  %-10s r=%lld  PoCD %.5f at cost %.1f\n",
                to_string(point.strategy).c_str(), point.r, point.pocd,
                point.cost);
  }

  std::printf("\nSLA target PoCD >= %.3f: ", target_pocd);
  if (const auto pick = cheapest_for_target(points, target_pocd)) {
    std::printf("%s with r = %lld (PoCD %.5f at cost %.1f)\n",
                to_string(pick->strategy).c_str(), pick->r, pick->pocd,
                pick->cost);
  } else {
    std::printf("not attainable with r <= 6\n");
  }

  std::printf("Budget %.1f: ", budget);
  if (const auto pick = best_within_budget(points, budget)) {
    std::printf("%s with r = %lld (PoCD %.5f at cost %.1f)\n",
                to_string(pick->strategy).c_str(), pick->r, pick->pocd,
                pick->cost);
  } else {
    std::printf("no configuration fits\n");
  }
  return 0;
}
