#include "sim/open_system.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "core/chronos.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/planner.h"
#include "sim/simulator.h"

namespace chronos::sim {

namespace {

const obs::Counter c_runs = obs::counter("open.runs");
const obs::Counter c_arrivals = obs::counter("open.arrivals");
const obs::Counter c_admitted = obs::counter("open.admitted");
const obs::Counter c_degraded = obs::counter("open.degraded");
const obs::Counter c_rejected = obs::counter("open.rejected");
const obs::Counter c_completed = obs::counter("open.completed");
const obs::Counter c_misses = obs::counter("open.deadline_misses");
const obs::Gauge g_in_flight = obs::gauge("open.in_flight");
const obs::Timer t_run = obs::timer("open.run");
const obs::Timer t_plan = obs::timer("open.plan");

// Indexed by strategies::PolicyKind.
const std::array<obs::Counter, 6> kPlanCounters = {
    obs::counter("open.plan.hadoop_ns"), obs::counter("open.plan.hadoop_s"),
    obs::counter("open.plan.mantri"),    obs::counter("open.plan.clone"),
    obs::counter("open.plan.s_restart"), obs::counter("open.plan.s_resume")};

/// Clamped time-weighted integral of a piecewise-constant signal over
/// [start, end]: update(t, v) closes the previous level at t and opens v;
/// mean() closes the signal at `end` and returns area / (end - start).
/// Updates outside the window contribute nothing.
class WindowedArea {
 public:
  WindowedArea(double start, double end)
      : start_(start), end_(end), last_(start) {}

  void update(double now, double value) {
    integrate_to(now);
    value_ = value;
  }

  double mean() {
    integrate_to(end_);
    return area_ / (end_ - start_);
  }

 private:
  void integrate_to(double now) {
    const double t = std::clamp(now, start_, end_);
    if (t > last_) {
      area_ += value_ * (t - last_);
      last_ = t;
    }
  }

  double start_;
  double end_;
  double last_;
  double value_ = 0.0;
  double area_ = 0.0;
};

/// Per-job policy multiplexer: the open system schedules different jobs
/// under different strategies within ONE scheduler, so this policy owns one
/// lazily-created backend per PolicyKind and routes every hook to the
/// backend staged for that job at submission. Scheduler::submit runs
/// synchronously, so stage() immediately before submit() is race-free; the
/// stage-0 hooks of a submission therefore see `staged_` still pointing at
/// its backend. Later stages start asynchronously (when their barrier
/// clears, arbitrarily interleaved with other arrivals), so the backend is
/// pinned per job at stage-0 start — by scheduler job index for the hooks,
/// and by spec.job_id for initial_attempts, which receives only the spec.
class MuxPolicy final : public mapreduce::SpeculationPolicy {
 public:
  explicit MuxPolicy(strategies::PolicyOptions options) : options_(options) {}

  void set_on_complete(std::function<void(int job)> fn) {
    on_complete_ = std::move(fn);
  }

  void stage(strategies::PolicyKind kind) { staged_ = &backend(kind); }

  std::string name() const override { return "Open-Mux"; }

  int initial_attempts(const mapreduce::JobSpec& spec,
                       int stage) const override {
    const auto it = by_job_id_.find(spec.job_id);
    // Stage 0 is launched from inside submit(), before any hook could have
    // pinned the job: the staged backend is the submission's backend.
    const mapreduce::SpeculationPolicy* backend =
        it != by_job_id_.end() ? it->second : staged_;
    return backend->initial_attempts(spec, stage);
  }

  void on_job_start(int job, mapreduce::SchedulerApi& api) override {
    per_job_[static_cast<std::size_t>(job)]->on_job_start(job, api);
  }

  void on_task_completed(int job, int task,
                         mapreduce::SchedulerApi& api) override {
    per_job_[static_cast<std::size_t>(job)]->on_task_completed(job, task, api);
  }

  void on_stage_start(int job, int stage,
                      mapreduce::SchedulerApi& api) override {
    if (stage == 0) {
      if (static_cast<std::size_t>(job) >= per_job_.size()) {
        per_job_.resize(static_cast<std::size_t>(job) + 1, nullptr);
      }
      per_job_[static_cast<std::size_t>(job)] = staged_;
      by_job_id_[api.spec(job).job_id] = staged_;
    }
    per_job_[static_cast<std::size_t>(job)]->on_stage_start(job, stage, api);
  }

  void on_job_completed(int job, mapreduce::SchedulerApi& api) override {
    per_job_[static_cast<std::size_t>(job)]->on_job_completed(job, api);
    by_job_id_.erase(api.spec(job).job_id);
    if (on_complete_) {
      on_complete_(job);
    }
  }

 private:
  mapreduce::SpeculationPolicy& backend(strategies::PolicyKind kind) {
    auto& slot = backends_[static_cast<std::size_t>(kind)];
    if (!slot) {
      slot = strategies::make_policy(kind, options_);
    }
    return *slot;
  }

  strategies::PolicyOptions options_;
  std::array<std::unique_ptr<mapreduce::SpeculationPolicy>, 6> backends_;
  mapreduce::SpeculationPolicy* staged_ = nullptr;
  std::vector<mapreduce::SpeculationPolicy*> per_job_;
  /// job_id -> backend, erased at completion so memory tracks in-flight
  /// work. Keyed by job_id (not scheduler index) because initial_attempts
  /// only sees the spec.
  std::unordered_map<int, mapreduce::SpeculationPolicy*> by_job_id_;
  std::function<void(int job)> on_complete_;
};

mapreduce::SchedulerConfig open_scheduler_config(
    const OpenSystemConfig& config) {
  // The engine keeps its own warm-up-aware aggregates; the scheduler's
  // metrics only need the running counters.
  auto scheduler = config.scheduler;
  scheduler.retain_outcomes = false;
  return scheduler;
}

class OpenEngine {
 public:
  explicit OpenEngine(const OpenSystemConfig& config)
      : config_(config),
        master_(config.seed),
        arrival_rng_(master_.split()),
        shape_rng_(master_.split()),
        cluster_(config.cluster),
        mux_(config.policy_options),
        scheduler_(simulator_, cluster_, mux_, open_scheduler_config(config),
                   Rng(master_.split_seed())),
        prices_(config.prices),
        planner_(serve::PlannerServiceConfig{config.planner,
                                             config.plan_cache}),
        arrivals_(trace::make_arrival_process(config.arrivals)),
        busy_area_(config.warm_up, config.duration),
        queue_area_(config.warm_up, config.duration),
        jobs_area_(config.warm_up, config.duration) {
    measured_.set_retain_outcomes(false);
    mux_.set_on_complete([this](int job) { on_complete(job); });
    cluster_.set_occupancy_observer([this](int busy, std::size_t waiting) {
      const double now = simulator_.now();
      busy_area_.update(now, static_cast<double>(busy));
      queue_area_.update(now, static_cast<double>(waiting));
    });
  }

  OpenSystemResult run() {
    obs::TraceSpan span("open.run", "sim");
    const obs::ScopedTimer run_timer(t_run);
    c_runs.add();
    const double first = arrivals_->next_after(0.0, arrival_rng_);
    if (std::isfinite(first) && first <= config_.duration) {
      simulator_.at(first, [this, first] { on_arrival(first); });
    }
    if (config_.drain) {
      simulator_.run();
    } else {
      simulator_.run_until(config_.duration);
    }
    return finalize(span);
  }

 private:
  enum class Decision { kAdmit, kDegrade, kReject };

  void on_arrival(double t) {
    ++result_.arrivals;
    c_arrivals.add();
    // Arrivals are only ever scheduled up to the horizon, so in-window
    // means "past warm-up".
    const bool measured = t >= config_.warm_up;
    if (measured) {
      ++result_.window_arrivals;
    }

    mapreduce::JobSpec spec =
        trace::sample_job_spec(config_.workload, next_job_id_++, shape_rng_);
    strategies::PolicyKind kind = config_.policy;
    {
      const obs::ScopedTimer plan_timer(t_plan);
      serve::PlanRequest request;
      request.spec = &spec;
      request.price = prices_.price_at(t);
      request.auto_strategy = config_.auto_strategy;
      request.policy = kind;
      kind = planner_.plan(request).kind;
    }
    // The pricing clock is the arrival time — never the trace-generation
    // time a sampled spec may carry, and never a later admission instant.
    CHRONOS_ENSURES(spec.price == prices_.price_at(t),
                    "arrival priced off its arrival-time spot price");
    if (measured) {
      baseline_pocd_.add(analytic_baseline_pocd(spec));
    }

    switch (admit_decision(spec)) {
      case Decision::kReject:
        ++result_.rejected;
        c_rejected.add();
        break;
      case Decision::kDegrade:
        kind = strategies::PolicyKind::kHadoopNS;
        for (auto& st : spec.stages) {
          st.r = 0;
        }
        ++result_.degraded;
        c_degraded.add();
        [[fallthrough]];
      case Decision::kAdmit:
        admit(spec, kind, t, measured);
        break;
    }

    const double next = arrivals_->next_after(t, arrival_rng_);
    if (std::isfinite(next) && next <= config_.duration) {
      simulator_.at(next, [this, next] { on_arrival(next); });
    }
  }

  void admit(const mapreduce::JobSpec& spec, strategies::PolicyKind kind,
             double t, bool measured) {
    ++result_.admitted;
    c_admitted.add();
    if (measured) {
      ++result_.window_admitted;
    }
    result_.mix[kind] += 1;
    kPlanCounters[static_cast<std::size_t>(kind)].add();

    mux_.stage(kind);
    const int job = scheduler_.submit(spec);
    // Struct-of-arrays per-job state, indexed by the scheduler's job index
    // (submit returns sequential indices, so these stay parallel).
    job_strategy_.push_back(static_cast<std::uint8_t>(kind));
    job_measured_.push_back(measured ? 1 : 0);
    job_arrival_.push_back(t);
    CHRONOS_ENSURES(job_arrival_.size() == static_cast<std::size_t>(job) + 1,
                    "per-job arrays out of sync with scheduler indices");
    ++in_flight_;
    jobs_area_.update(simulator_.now(), static_cast<double>(in_flight_));
    g_in_flight.update(static_cast<std::uint64_t>(in_flight_));
  }

  void on_complete(int job) {
    ++result_.completed;
    c_completed.add();
    --in_flight_;
    jobs_area_.update(simulator_.now(), static_cast<double>(in_flight_));

    const auto& record = scheduler_.job(job);
    if (job_measured_[static_cast<std::size_t>(job)] != 0) {
      JobOutcome outcome;
      outcome.job_id = record.spec.job_id;
      outcome.met_deadline = record.completion_time <= record.spec.deadline;
      outcome.completion_time = record.completion_time;
      outcome.deadline = record.spec.deadline;
      outcome.machine_time = record.machine_time;
      outcome.cost = record.machine_time * record.spec.price;
      outcome.r_used = record.spec.stage(0).r;
      outcome.attempts_launched = record.attempts_launched;
      outcome.attempts_killed = record.attempts_killed;
      outcome.attempts_failed = record.attempts_failed;
      measured_.record(outcome);
      sojourn_.add(record.completion_time);
      if (!outcome.met_deadline) {
        c_misses.add();
      }
    }
    scheduler_.compact_job(job);
  }

  Decision admit_decision(const mapreduce::JobSpec& spec) const {
    switch (admission_decide(
        config_.admission, spec,
        static_cast<double>(cluster_.pending_requests()),
        static_cast<double>(cluster_.idle_containers()),
        static_cast<double>(cluster_.total_containers()))) {
      case AdmissionDecision::kReject:
        return Decision::kReject;
      case AdmissionDecision::kDegrade:
        return Decision::kDegrade;
      case AdmissionDecision::kAdmit:
        break;
    }
    return Decision::kAdmit;
  }

  double analytic_baseline_pocd(const mapreduce::JobSpec& spec) const {
    // Root-stage view under the whole job deadline — the same baseline the
    // planner's r_min_from_baseline mode computes for single-stage jobs.
    core::JobParams params;
    params.num_tasks = spec.stage(0).num_tasks;
    params.deadline = spec.deadline;
    params.t_min = spec.stage(0).t_min;
    params.beta = spec.stage(0).beta;
    params.tau_est = 0.0;
    params.tau_kill = 0.0;
    params.phi_est = 0.0;
    return core::pocd_no_speculation(params);
  }

  OpenSystemResult finalize(obs::TraceSpan& span) {
    result_.window = config_.duration - config_.warm_up;
    result_.in_flight_at_end = static_cast<std::uint64_t>(in_flight_);
    result_.offered_rate =
        static_cast<double>(result_.window_arrivals) / result_.window;
    result_.admitted_rate =
        static_cast<double>(result_.window_admitted) / result_.window;
    result_.utilization =
        busy_area_.mean() / static_cast<double>(cluster_.total_containers());
    result_.mean_jobs_in_system = jobs_area_.mean();
    result_.mean_queue_depth = queue_area_.mean();
    if (sojourn_.count() > 0) {
      result_.mean_sojourn = sojourn_.mean();
    }
    if (measured_.jobs() > 0) {
      result_.miss_rate = 1.0 - measured_.pocd();
      result_.mean_cost = measured_.mean_cost();
    }
    if (baseline_pocd_.count() > 0) {
      result_.mean_baseline_pocd = baseline_pocd_.mean();
    }
    result_.metrics = measured_;
    const serve::PlannerServiceStats planner_stats = planner_.stats();
    result_.plan_cache_hits = planner_stats.hits;
    result_.plan_cache_misses = planner_stats.misses;
    result_.events_executed = simulator_.events_executed();
    // Without drain the clock hard-stops at the horizon even when the last
    // executed event lies before it; with drain the queue runs dry and the
    // last completion may lie past the horizon.
    result_.end_time = std::max(simulator_.now(), config_.duration);

    CHRONOS_ENSURES(result_.arrivals == result_.admitted + result_.rejected,
                    "arrival conservation violated");
    CHRONOS_ENSURES(
        result_.admitted == result_.completed + result_.in_flight_at_end,
        "admitted-job conservation violated");

    span.note("arrivals", static_cast<double>(result_.arrivals));
    span.note("events", static_cast<double>(result_.events_executed));
    CHRONOS_LOG(kDebug) << "open system: " << result_.arrivals
                        << " arrivals, " << result_.completed
                        << " completed, " << result_.events_executed
                        << " events";
    return result_;
  }

  const OpenSystemConfig& config_;
  Rng master_;
  Rng arrival_rng_;
  Rng shape_rng_;
  Simulator simulator_;
  Cluster cluster_;
  MuxPolicy mux_;
  mapreduce::Scheduler scheduler_;
  trace::SpotPriceModel prices_;
  serve::PlannerService planner_;
  std::unique_ptr<trace::ArrivalProcess> arrivals_;
  WindowedArea busy_area_;
  WindowedArea queue_area_;
  WindowedArea jobs_area_;

  OpenSystemResult result_;
  RunMetrics measured_;
  stats::RunningStats sojourn_;
  stats::RunningStats baseline_pocd_;
  std::vector<std::uint8_t> job_strategy_;
  std::vector<std::uint8_t> job_measured_;
  std::vector<double> job_arrival_;
  std::int64_t in_flight_ = 0;
  int next_job_id_ = 0;
};

}  // namespace

AdmissionDecision admission_decide(const AdmissionConfig& config,
                                   const mapreduce::JobSpec& spec,
                                   double backlog, double idle_containers,
                                   double total_containers) {
  if (!config.enabled) {
    return AdmissionDecision::kAdmit;
  }
  if (backlog + static_cast<double>(spec.total_tasks()) >
      config.reject_queue_factor * total_containers) {
    return AdmissionDecision::kReject;
  }
  const double headroom = std::max(0.0, idle_containers - backlog);
  // Speculative demand over EVERY stage by construction: a job dominated by
  // a late stage speculates that stage's r extra attempts per task and must
  // not slip past the headroom check on the strength of a tiny root stage.
  double demand = 0.0;
  for (const auto& st : spec.stages) {
    demand += static_cast<double>(st.r) * static_cast<double>(st.num_tasks);
  }
  if (demand > config.degrade_headroom * headroom) {
    return AdmissionDecision::kDegrade;
  }
  return AdmissionDecision::kAdmit;
}

void AdmissionConfig::validate() const {
  CHRONOS_EXPECTS(std::isfinite(degrade_headroom) && degrade_headroom > 0.0,
                  "degrade_headroom must be positive and finite");
  CHRONOS_EXPECTS(
      std::isfinite(reject_queue_factor) && reject_queue_factor > 0.0,
      "reject_queue_factor must be positive and finite");
}

void OpenSystemConfig::validate() const {
  arrivals.validate();
  workload.validate();
  admission.validate();
  plan_cache.validate();
  CHRONOS_EXPECTS(std::isfinite(duration) && duration > 0.0,
                  "open-system duration must be positive and finite");
  CHRONOS_EXPECTS(std::isfinite(warm_up) && warm_up >= 0.0 &&
                      warm_up < duration,
                  "warm_up must lie in [0, duration)");
}

OpenSystemResult run_open_system(const OpenSystemConfig& config) {
  config.validate();
  OpenEngine engine(config);
  return engine.run();
}

}  // namespace chronos::sim
