// Cluster model: a set of nodes, each with a fixed number of containers
// (YARN-style execution slots), a relative speed factor, and a stochastic
// background-noise process that inflates attempt durations (emulating the
// Stress-generated contention of §VII-A).
//
// Container requests that cannot be satisfied immediately queue FIFO and are
// granted as containers free up.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace chronos::sim {

struct NodeConfig {
  double speed = 1.0;        ///< relative processing speed (> 0)
  int containers = 8;        ///< execution slots (>= 1)
  double noise_mean = 0.0;   ///< mean extra slowdown from contention (>= 0)
  double noise_sigma = 0.0;  ///< lognormal sigma of the contention factor
};

struct ClusterConfig {
  std::vector<NodeConfig> nodes;

  /// Homogeneous cluster shortcut.
  static ClusterConfig uniform(int num_nodes, const NodeConfig& node);
};

class Cluster {
 public:
  /// Callback invoked with the granting node's index.
  using Grant = std::function<void(int node)>;

  /// Observer invoked after every change to the busy-container count or the
  /// waiting-request queue (open-system utilization/queue-length tracking).
  /// Purely observational: it must not call back into the cluster's mutating
  /// API and never touches the numeric path.
  using OccupancyObserver = std::function<void(int busy, std::size_t waiting)>;

  explicit Cluster(ClusterConfig config);

  void set_occupancy_observer(OccupancyObserver observer) {
    observer_ = std::move(observer);
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int total_containers() const { return total_containers_; }
  int busy_containers() const { return busy_; }
  int idle_containers() const { return total_containers_ - busy_; }
  bool has_idle_container() const { return idle_containers() > 0; }
  std::size_t pending_requests() const { return waiting_.size(); }

  /// Requests one container. If one is free the grant runs synchronously;
  /// otherwise the request queues FIFO.
  void request_container(Grant grant);

  /// Releases a container on `node`; the oldest waiting request (if any) is
  /// granted synchronously. Requires a container on `node` to be busy.
  void release_container(int node);

  /// Speed factor of `node` (>0).
  double node_speed(int node) const;

  /// Samples a multiplicative slowdown (>= 1) for an attempt placed on
  /// `node`, combining the node's deterministic speed with its stochastic
  /// contention factor.
  double sample_slowdown(int node, Rng& rng) const;

 private:
  struct NodeState {
    NodeConfig config;
    int busy = 0;
  };

  /// Node with the most free containers (ties -> lowest index), or -1.
  int pick_node() const;

  void notify_occupancy() const {
    if (observer_) {
      observer_(busy_, waiting_.size());
    }
  }

  std::vector<NodeState> nodes_;
  std::deque<Grant> waiting_;
  OccupancyObserver observer_;
  int total_containers_ = 0;
  int busy_ = 0;
};

}  // namespace chronos::sim
