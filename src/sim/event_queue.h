// Cancellable discrete-event queue.
//
// Events fire in (time, insertion-sequence) order so that simultaneous
// events execute deterministically in scheduling order — a requirement for
// reproducible trace-driven runs.
//
// Storage is a slot arena: callbacks live in a generation-tagged vector with
// an intrusive free-list, and heap entries carry their slot index plus the
// generation observed at scheduling time. Cancel/fire bump the slot's
// generation, so stale heap entries (and stale EventIds) are recognized by a
// simple tag mismatch — no per-event hashing, and after warm-up no
// allocation per schedule/cancel/pop (slots and heap storage are recycled;
// small callbacks stay in std::function's inline buffer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace chronos::sim {

/// Simulated time, in seconds.
using Time = double;

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Carries (slot, generation) so a handle outliving its event can never
/// cancel an unrelated event that reused the slot; the 64-bit generation
/// cannot wrap within any feasible run, so the guarantee is unconditional.
struct EventId {
  std::uint64_t value = 0;       ///< slot index + 1; 0 = invalid
  std::uint64_t generation = 0;  ///< slot generation at scheduling time
  bool valid() const { return value != 0; }
};

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at`. Requires at >= 0.
  EventId schedule(Time at, std::function<void()> fn);

  /// Cancels a pending event; returns false when the event already fired,
  /// was cancelled, or the id is invalid. Idempotent.
  bool cancel(EventId id);

  /// True when no runnable (non-cancelled) events remain.
  bool empty() const;

  /// Time of the earliest runnable event. Requires !empty().
  Time next_time() const;

  /// Removes and returns the earliest runnable event. Requires !empty().
  struct Fired {
    Time time;
    std::function<void()> fn;
  };
  Fired pop();

  /// Number of pending (non-cancelled) events.
  std::size_t size() const { return live_; }

  /// Capacity hint: pre-sizes the heap and the slot arena for `n` pending
  /// events so bulk scheduling (e.g. a job submission that launches every
  /// task's attempt) does not reallocate mid-burst.
  void reserve(std::size_t n);

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint64_t generation;
    std::uint32_t slot;
    // Min-heap on (time, seq) via greater-than comparison.
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  struct Slot {
    std::function<void()> fn;
    std::uint64_t generation = 0;  ///< bumped whenever the slot is released
    std::uint32_t next_free = 0;   ///< free-list link (index + 1; 0 = end)
  };

  /// Pops heap entries whose slot generation no longer matches (cancelled,
  /// or fired through a duplicate entry — the latter cannot happen here but
  /// the check is what makes lazy deletion safe).
  void drop_stale() const;

  std::uint32_t acquire_slot(std::function<void()> fn);
  void release_slot(std::uint32_t slot);

  mutable std::vector<Entry> heap_;  ///< binary heap via std::push/pop_heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = 0;  ///< head of the free list (index + 1)
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace chronos::sim
