// Cancellable discrete-event queue.
//
// Events fire in (time, insertion-sequence) order so that simultaneous
// events execute deterministically in scheduling order — a requirement for
// reproducible trace-driven runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace chronos::sim {

/// Simulated time, in seconds.
using Time = double;

/// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `at`. Requires at >= 0.
  EventId schedule(Time at, std::function<void()> fn);

  /// Cancels a pending event; returns false when the event already fired,
  /// was cancelled, or the id is invalid. Idempotent.
  bool cancel(EventId id);

  /// True when no runnable (non-cancelled) events remain.
  bool empty() const;

  /// Time of the earliest runnable event. Requires !empty().
  Time next_time() const;

  /// Removes and returns the earliest runnable event. Requires !empty().
  struct Fired {
    Time time;
    std::function<void()> fn;
  };
  Fired pop();

  /// Number of pending (non-cancelled) events.
  std::size_t size() const { return live_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint64_t id;
    // Ordered as a min-heap on (time, seq) via greater-than comparison.
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  // Callback storage separated from heap entries so cancel() is O(1).
  std::unordered_map<std::uint64_t, std::function<void()>> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace chronos::sim
