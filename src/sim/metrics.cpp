#include "sim/metrics.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace chronos::sim {

void RunMetrics::set_retain_outcomes(bool retain) {
  CHRONOS_EXPECTS(jobs_ == 0,
                  "set_retain_outcomes must precede the first record()");
  retain_outcomes_ = retain;
}

void RunMetrics::record(const JobOutcome& outcome) {
  if (retain_outcomes_) {
    outcomes_.push_back(outcome);
  }
  ++jobs_;
  met_ += outcome.met_deadline ? 1 : 0;
  total_r_ += outcome.r_used;
  launched_ += static_cast<std::uint64_t>(outcome.attempts_launched);
  killed_ += static_cast<std::uint64_t>(outcome.attempts_killed);
  failed_ += static_cast<std::uint64_t>(outcome.attempts_failed);
  machine_time_.add(outcome.machine_time);
  cost_.add(outcome.cost);
}

double RunMetrics::pocd() const {
  CHRONOS_EXPECTS(jobs_ > 0, "pocd requires at least one job");
  return static_cast<double>(met_) / static_cast<double>(jobs_);
}

double RunMetrics::pocd_ci() const {
  CHRONOS_EXPECTS(jobs_ > 0, "pocd_ci requires at least one job");
  return stats::proportion_ci_halfwidth(met_, jobs_);
}

double RunMetrics::mean_cost() const { return cost_.mean(); }

double RunMetrics::mean_machine_time() const { return machine_time_.mean(); }

double utility_from(double pocd, double mean_cost, double theta,
                    double r_min) {
  const double margin = pocd - r_min;
  if (margin <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::log10(margin) - theta * mean_cost;
}

double RunMetrics::utility(double theta, double r_min) const {
  return utility_from(pocd(), mean_cost(), theta, r_min);
}

}  // namespace chronos::sim
