// Simulation clock and event loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace chronos::sim {

class Simulator {
 public:
  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now()).
  EventId at(Time at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  EventId after(double delay, std::function<void()> fn);

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains.
  void run();

  /// Runs until the queue drains or simulated time would exceed `limit`;
  /// events at exactly `limit` still fire.
  void run_until(Time limit);

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Capacity hint forwarded to the event queue; callers that know how many
  /// events a burst will schedule (e.g. a job submission) avoid mid-burst
  /// reallocation.
  void reserve_events(std::size_t n) { queue_.reserve(n); }

  /// Pending events.
  std::size_t pending() const { return queue_.size(); }

 private:
  void step();

  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace chronos::sim
