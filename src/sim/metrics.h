// Per-run metrics: job deadline outcomes, machine time, and the aggregate
// PoCD / cost / net-utility summary the paper reports.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/summary.h"

namespace chronos::sim {

/// Outcome of one job in a simulation run.
struct JobOutcome {
  int job_id = 0;
  bool met_deadline = false;
  double completion_time = 0.0;   ///< relative to job submission
  double deadline = 0.0;
  double machine_time = 0.0;      ///< total VM seconds across all attempts
  double cost = 0.0;              ///< machine_time * price at submission
  long long r_used = 0;           ///< extra attempts chosen by the optimizer
  int attempts_launched = 0;
  int attempts_killed = 0;
  int attempts_failed = 0;  ///< crash-injected failures (retried)
};

/// Net utility as evaluated in §VII: lg(PoCD - r_min) - theta * mean cost.
/// Returns -infinity when PoCD <= r_min. The one place the formula lives;
/// RunMetrics::utility and the figure benches both evaluate it through
/// here.
double utility_from(double pocd, double mean_cost, double theta,
                    double r_min);

/// Aggregates outcomes into the metrics of §VII.
class RunMetrics {
 public:
  void record(const JobOutcome& outcome);

  /// When off, record() keeps only the running aggregates and drops the
  /// per-job outcome rows — O(1) memory for million-job open-system runs.
  /// Must be flipped before the first record().
  void set_retain_outcomes(bool retain);

  std::uint64_t jobs() const { return jobs_; }
  const std::vector<JobOutcome>& outcomes() const { return outcomes_; }

  /// Fraction of jobs that met their deadline; requires >= 1 job.
  double pocd() const;

  /// 95% CI half-width on pocd().
  double pocd_ci() const;

  /// Mean per-job cost (price-weighted machine time).
  double mean_cost() const;

  /// Mean per-job machine time.
  double mean_machine_time() const;

  /// Net utility as evaluated in §VII: lg(PoCD - r_min) - theta * mean cost.
  /// Returns -infinity when PoCD <= r_min.
  double utility(double theta, double r_min) const;

  /// Total attempts launched / killed / crash-failed across all jobs.
  std::uint64_t attempts_launched() const { return launched_; }
  std::uint64_t attempts_killed() const { return killed_; }
  std::uint64_t attempts_failed() const { return failed_; }

  /// Sum of r_used over all jobs (available with outcome retention off).
  long long total_r_used() const { return total_r_; }

 private:
  std::vector<JobOutcome> outcomes_;
  bool retain_outcomes_ = true;
  std::uint64_t jobs_ = 0;
  std::uint64_t met_ = 0;
  long long total_r_ = 0;
  std::uint64_t launched_ = 0;
  std::uint64_t killed_ = 0;
  std::uint64_t failed_ = 0;
  stats::RunningStats machine_time_;
  stats::RunningStats cost_;
};

}  // namespace chronos::sim
