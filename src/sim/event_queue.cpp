#include "sim/event_queue.h"

#include "common/error.h"

namespace chronos::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  CHRONOS_EXPECTS(at >= 0.0, "cannot schedule an event before time 0");
  CHRONOS_EXPECTS(static_cast<bool>(fn), "event callback must be callable");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_;
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) {
    return false;  // already fired or cancelled
  }
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  CHRONOS_ENSURES(live_ > 0, "live event count underflow");
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  auto* self = const_cast<EventQueue*>(this);
  while (!self->heap_.empty() &&
         self->cancelled_.contains(self->heap_.top().id)) {
    self->cancelled_.erase(self->heap_.top().id);
    self->heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_cancelled();
  CHRONOS_EXPECTS(!heap_.empty(), "next_time on an empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  CHRONOS_EXPECTS(!heap_.empty(), "pop on an empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  const auto it = callbacks_.find(top.id);
  CHRONOS_ENSURES(it != callbacks_.end(), "live event lost its callback");
  Fired fired{top.time, std::move(it->second)};
  callbacks_.erase(it);
  CHRONOS_ENSURES(live_ > 0, "live event count underflow");
  --live_;
  return fired;
}

}  // namespace chronos::sim
