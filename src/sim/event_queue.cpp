#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"

namespace chronos::sim {

namespace {

// Registered once at load; each update is a thread-local relaxed increment,
// cheap enough for the schedule/pop fast paths (BM_EventQueueScheduleFire
// guards the budget). Strictly observational: nothing here feeds back into
// event order or timing.
const obs::Counter c_scheduled = obs::counter("sim.events_scheduled");
const obs::Counter c_fired = obs::counter("sim.events_fired");
const obs::Counter c_cancelled = obs::counter("sim.events_cancelled");
const obs::Counter c_stale = obs::counter("sim.events_stale_dropped");
const obs::Counter c_slots_new = obs::counter("sim.slots_allocated");
const obs::Counter c_slots_reused = obs::counter("sim.slots_reused");
const obs::Gauge g_depth = obs::gauge("sim.queue_depth");

}  // namespace

std::uint32_t EventQueue::acquire_slot(std::function<void()> fn) {
  std::uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_ - 1;
    free_head_ = slots_[slot].next_free;
    c_slots_reused.add();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    c_slots_new.add();
  }
  slots_[slot].fn = std::move(fn);
  return slot;
}

void EventQueue::release_slot(std::uint32_t slot) {
  auto& s = slots_[slot];
  s.fn = nullptr;
  ++s.generation;  // invalidates the heap entry and any outstanding EventId
  s.next_free = free_head_;
  free_head_ = slot + 1;
}

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  CHRONOS_EXPECTS(at >= 0.0, "cannot schedule an event before time 0");
  CHRONOS_EXPECTS(static_cast<bool>(fn), "event callback must be callable");
  const std::uint32_t slot = acquire_slot(std::move(fn));
  const std::uint64_t generation = slots_[slot].generation;
  heap_.push_back(Entry{at, next_seq_++, generation, slot});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  c_scheduled.add();
  g_depth.update(live_);
  return EventId{static_cast<std::uint64_t>(slot) + 1, generation};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const std::uint64_t slot = id.value - 1;
  if (slot >= slots_.size() || slots_[slot].generation != id.generation) {
    return false;  // already fired, already cancelled, or a forged id
  }
  // The heap entry goes stale and is dropped lazily.
  release_slot(static_cast<std::uint32_t>(slot));
  CHRONOS_ENSURES(live_ > 0, "live event count underflow");
  --live_;
  c_cancelled.add();
  return true;
}

void EventQueue::drop_stale() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].generation == top.generation) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
    c_stale.add();
  }
}

bool EventQueue::empty() const {
  drop_stale();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  drop_stale();
  CHRONOS_EXPECTS(!heap_.empty(), "next_time on an empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  CHRONOS_EXPECTS(!heap_.empty(), "pop on an empty queue");
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
  auto& slot = slots_[top.slot];
  CHRONOS_ENSURES(static_cast<bool>(slot.fn), "live event lost its callback");
  Fired fired{top.time, std::move(slot.fn)};
  release_slot(top.slot);
  CHRONOS_ENSURES(live_ > 0, "live event count underflow");
  --live_;
  c_fired.add();
  return fired;
}

void EventQueue::reserve(std::size_t n) {
  // Grow geometrically even when hinted: reserving exactly size() + n on
  // every burst would pin capacity to the request and force a full
  // reallocate-and-copy per burst (quadratic over repeated submissions).
  const auto grow = [](auto& vec, std::size_t want) {
    if (want > vec.capacity()) {
      vec.reserve(std::max(want, 2 * vec.capacity()));
    }
  };
  grow(heap_, heap_.size() + n);
  grow(slots_, slots_.size() + n);
}

}  // namespace chronos::sim
