// Open-system simulation layer (long-running cluster, ROADMAP "open
// system" item).
//
// The closed-system harness (trace/harness.h) replays a finite, pre-planned
// trace to completion. This layer instead drives the same
// Simulator/Cluster/Scheduler stack with a pluggable arrival process
// (Poisson, diurnal-modulated, or file/trace-driven), samples each job's
// shape on arrival from the Google-trace statistical template, plans it at
// admission time (fixed policy via trace::plan_job, or per-job strategy
// selection via core::optimize_all), and pushes it through a
// capacity-aware admission controller:
//
//   reject   when the projected task backlog exceeds a multiple of the
//            cluster's total containers (the job could not start for a
//            long time anyway);
//   degrade  when the job's speculative demand (r extra attempts per task)
//            exceeds the currently free headroom — the job runs under
//            Hadoop-NS with r = 0 instead of its planned strategy;
//   admit    otherwise, under the planned strategy.
//
// Metrics are warm-up aware: time-weighted utilization, jobs-in-system and
// container-queue depth are integrated over [warm_up, duration] only, and
// per-job statistics (sojourn, deadline-miss rate, cost) cover jobs that
// arrive inside that window. Completed jobs are compacted out of the
// scheduler (Scheduler::compact_job) and per-job engine state lives in
// struct-of-arrays vectors, so memory stays proportional to in-flight work
// and million-job days simulate in minutes.
#pragma once

#include <array>
#include <cstdint>

#include "mapreduce/scheduler.h"
#include "serve/plan_cache.h"
#include "sim/cluster.h"
#include "sim/metrics.h"
#include "strategies/policies.h"
#include "trace/arrivals.h"
#include "trace/google_trace.h"
#include "trace/planner.h"
#include "trace/spot_price.h"

namespace chronos::sim {

/// Capacity-aware admission control knobs.
struct AdmissionConfig {
  /// Off: every arrival is admitted under its planned strategy (the
  /// controller still rejects nothing and degrades nothing).
  bool enabled = true;

  /// A job is degraded to the no-speculation baseline when its speculative
  /// demand — each stage's r extra attempts per task, summed over every
  /// stage — exceeds degrade_headroom * max(0, idle - backlog) free
  /// containers.
  double degrade_headroom = 1.0;

  /// A job is rejected outright when the container backlog plus its own
  /// task count exceeds reject_queue_factor * total_containers.
  double reject_queue_factor = 4.0;

  void validate() const;
};

/// Outcome of admission control for one planned arrival.
enum class AdmissionDecision { kAdmit, kDegrade, kReject };

/// The pure admission rule the engine applies at each arrival, exposed so
/// tests can drive it against synthetic cluster states. `backlog` is the
/// pending container-request count, `idle_containers` / `total_containers`
/// the cluster occupancy at the arrival instant. Speculative demand counts
/// EVERY stage by construction: sum over stages of stage.r * stage.num_tasks
/// (a reduce- or tail-stage-heavy job must not slip past the headroom check
/// on the strength of a tiny root stage).
AdmissionDecision admission_decide(const AdmissionConfig& config,
                                   const mapreduce::JobSpec& spec,
                                   double backlog, double idle_containers,
                                   double total_containers);

/// Configuration of one open-system run.
struct OpenSystemConfig {
  /// Arrival process; for kTrace the times must be pre-loaded in the spec.
  trace::ArrivalSpec arrivals;

  /// Per-job shape template (task count, t_min, beta, deadline, JVM).
  /// num_jobs / duration_hours / seed are not consumed — jobs are sampled
  /// one at a time as they arrive.
  trace::TraceConfig workload;

  /// Per-job planning knobs. r_min_from_baseline applies per job exactly as
  /// in the closed-system planner.
  trace::PlannerConfig planner;

  /// Spot-price process used for spec.price at each arrival.
  trace::SpotPriceConfig prices;

  AdmissionConfig admission;

  /// Plan-cache mode of the per-run serve::PlannerService. kOff and kExact
  /// are byte-identical to uncached planning; kQuantized shares plans
  /// within grid buckets (see serve/plan_cache.h).
  serve::PlanCacheConfig plan_cache;

  sim::ClusterConfig cluster;
  mapreduce::SchedulerConfig scheduler;

  /// Strategy for every admitted job when auto_strategy is off.
  strategies::PolicyKind policy = strategies::PolicyKind::kSResume;
  strategies::PolicyOptions policy_options;

  /// When on, each arrival runs core::optimize_all and is scheduled under
  /// the analytically best of Clone / S-Restart / S-Resume.
  bool auto_strategy = false;

  double duration = 3600.0;  ///< arrival horizon (simulated seconds)
  double warm_up = 0.0;      ///< measurement starts here (< duration)

  /// On: run the event loop dry after the horizon so every admitted job
  /// completes. Off: hard-stop the clock at `duration` and report the
  /// in-flight jobs as such.
  bool drain = true;

  std::uint64_t seed = 1;

  void validate() const;
};

/// How admitted jobs were scheduled, indexed by strategies::PolicyKind.
struct StrategyMix {
  std::array<std::uint64_t, 6> planned{};

  std::uint64_t& operator[](strategies::PolicyKind kind) {
    return planned[static_cast<std::size_t>(kind)];
  }
  std::uint64_t operator[](strategies::PolicyKind kind) const {
    return planned[static_cast<std::size_t>(kind)];
  }
};

/// Steady-state view of one open-system run.
struct OpenSystemResult {
  // Conservation counters over the whole horizon. Invariants:
  //   arrivals == admitted + rejected
  //   admitted == completed + in_flight_at_end
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t degraded = 0;  ///< admitted under forced Hadoop-NS
  std::uint64_t completed = 0;
  std::uint64_t in_flight_at_end = 0;

  /// Measurement window [warm_up, duration] in seconds.
  double window = 0.0;
  std::uint64_t window_arrivals = 0;  ///< arrivals inside the window
  std::uint64_t window_admitted = 0;

  double offered_rate = 0.0;   ///< window_arrivals / window
  double admitted_rate = 0.0;  ///< window_admitted / window

  /// Time-weighted means over the window.
  double utilization = 0.0;         ///< busy containers / total containers
  double mean_jobs_in_system = 0.0; ///< Little's L over admitted jobs
  double mean_queue_depth = 0.0;    ///< pending container requests

  /// Over measured jobs (arrived in-window) that completed.
  double mean_sojourn = 0.0;  ///< Little's W: completion - arrival
  double miss_rate = 0.0;     ///< 1 - PoCD
  double mean_cost = 0.0;

  /// Mean analytic no-speculation PoCD of the in-window offered jobs (the
  /// per-job R_min the planner uses in baseline mode).
  double mean_baseline_pocd = 0.0;

  StrategyMix mix;

  /// Aggregate metrics of the measured completed jobs (outcome rows are
  /// not retained; aggregate accessors only).
  sim::RunMetrics metrics;

  /// Plan-cache traffic of the run's PlannerService (0/0 with the cache
  /// off). Not part of the CSV/JSON reports — the serve.* obs metrics and
  /// these counters carry it instead, so cached runs stay byte-identical.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  std::uint64_t events_executed = 0;
  double end_time = 0.0;  ///< simulated clock when the run stopped
};

/// Runs one open-system simulation to completion (or to the hard stop when
/// drain is off). Deterministic given config.seed.
OpenSystemResult run_open_system(const OpenSystemConfig& config);

}  // namespace chronos::sim
