#include "sim/simulator.h"

#include "common/error.h"

namespace chronos::sim {

EventId Simulator::at(Time time, std::function<void()> fn) {
  CHRONOS_EXPECTS(time >= now_, "cannot schedule an event in the past");
  return queue_.schedule(time, std::move(fn));
}

EventId Simulator::after(double delay, std::function<void()> fn) {
  CHRONOS_EXPECTS(delay >= 0.0, "delay must be non-negative");
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::step() {
  auto fired = queue_.pop();
  CHRONOS_ENSURES(fired.time >= now_, "time must be monotone");
  now_ = fired.time;
  ++executed_;
  fired.fn();
}

void Simulator::run() {
  while (!queue_.empty()) {
    step();
  }
}

void Simulator::run_until(Time limit) {
  while (!queue_.empty() && queue_.next_time() <= limit) {
    step();
  }
}

}  // namespace chronos::sim
