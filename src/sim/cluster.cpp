#include "sim/cluster.h"

#include <cmath>

#include "common/error.h"

namespace chronos::sim {

ClusterConfig ClusterConfig::uniform(int num_nodes, const NodeConfig& node) {
  CHRONOS_EXPECTS(num_nodes >= 1, "cluster needs at least one node");
  ClusterConfig config;
  config.nodes.assign(static_cast<std::size_t>(num_nodes), node);
  return config;
}

Cluster::Cluster(ClusterConfig config) {
  CHRONOS_EXPECTS(!config.nodes.empty(), "cluster needs at least one node");
  nodes_.reserve(config.nodes.size());
  for (const auto& node : config.nodes) {
    // The comparisons alone reject NaN (every comparison with NaN is
    // false), but an infinite speed or noise mean would sail through and
    // produce zero-length or infinite attempt durations downstream — guard
    // for finiteness explicitly.
    CHRONOS_EXPECTS(std::isfinite(node.speed) && node.speed > 0.0,
                    "node speed must be positive and finite");
    CHRONOS_EXPECTS(node.containers >= 1, "node needs >= 1 container");
    CHRONOS_EXPECTS(std::isfinite(node.noise_mean) && node.noise_mean >= 0.0,
                    "node noise mean must be non-negative and finite");
    CHRONOS_EXPECTS(std::isfinite(node.noise_sigma) &&
                        node.noise_sigma >= 0.0,
                    "node noise sigma must be non-negative and finite");
    nodes_.push_back(NodeState{node, 0});
    total_containers_ += node.containers;
  }
}

int Cluster::pick_node() const {
  int best = -1;
  int best_free = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    const int free = nodes_[static_cast<std::size_t>(i)].config.containers -
                     nodes_[static_cast<std::size_t>(i)].busy;
    if (free > best_free) {
      best_free = free;
      best = i;
    }
  }
  return best;
}

void Cluster::request_container(Grant grant) {
  CHRONOS_EXPECTS(static_cast<bool>(grant), "grant callback must be callable");
  const int node = pick_node();
  if (node < 0) {
    waiting_.push_back(std::move(grant));
    notify_occupancy();
    return;
  }
  ++nodes_[static_cast<std::size_t>(node)].busy;
  ++busy_;
  notify_occupancy();
  grant(node);
}

void Cluster::release_container(int node) {
  CHRONOS_EXPECTS(node >= 0 && node < num_nodes(), "node index out of range");
  auto& state = nodes_[static_cast<std::size_t>(node)];
  CHRONOS_EXPECTS(state.busy > 0, "release on a node with no busy container");
  --state.busy;
  --busy_;
  notify_occupancy();
  if (!waiting_.empty()) {
    Grant grant = std::move(waiting_.front());
    waiting_.pop_front();
    // Re-grant greedily; the freed container is on `node` but any node with
    // capacity may serve the waiter. Reuse request path for fairness.
    request_container(std::move(grant));
  }
}

double Cluster::node_speed(int node) const {
  CHRONOS_EXPECTS(node >= 0 && node < num_nodes(), "node index out of range");
  return nodes_[static_cast<std::size_t>(node)].config.speed;
}

double Cluster::sample_slowdown(int node, Rng& rng) const {
  CHRONOS_EXPECTS(node >= 0 && node < num_nodes(), "node index out of range");
  const auto& config = nodes_[static_cast<std::size_t>(node)].config;
  double slowdown = 1.0 / config.speed;
  if (config.noise_mean > 0.0) {
    // Lognormal contention factor with the requested mean: exp(mu + s Z)
    // has mean exp(mu + s^2/2), so mu = ln(mean) - s^2/2.
    const double s = config.noise_sigma;
    const double mu = std::log(config.noise_mean) - 0.5 * s * s;
    slowdown *= 1.0 + std::exp(mu + s * rng.normal());
  }
  return slowdown;
}

}  // namespace chronos::sim
