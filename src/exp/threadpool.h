// Small bounded thread pool for embarrassingly parallel experiment sweeps.
//
// Workers are fixed at construction; submit() enqueues a task and wait()
// blocks until every submitted task has run. An optional queue bound applies
// backpressure to producers so a fast submitter cannot build an unbounded
// backlog of captured task state.
//
// The pool reports into the observability registry (obs/metrics.h): task
// count, queue-depth high-water, and wait-vs-run timing per task. All of it
// is observational — scheduling decisions never read a metric.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace chronos::exp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1). When `max_pending` is non-zero,
  /// submit() blocks while that many tasks are already queued (not yet
  /// picked up by a worker).
  explicit ThreadPool(int num_threads, std::size_t max_pending = 0);

  /// Joins all workers; pending tasks still run to completion first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not call submit() or wait() on this pool.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Rethrows the
  /// first exception any task raised (remaining tasks still run).
  void wait();

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int hardware_threads();

 private:
  /// A queued task plus its enqueue timestamp (for the wait-time metric;
  /// an empty struct member when observability is compiled out).
  struct Queued {
    std::function<void()> fn;
    obs::Stopwatch enqueued;
  };

  void worker_loop(int index);

  std::vector<std::thread> workers_;
  std::deque<Queued> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;  ///< signals workers
  std::condition_variable all_idle_;    ///< signals wait() / bounded submit()
  std::size_t running_ = 0;             ///< tasks currently executing
  bool stop_ = false;
  std::size_t max_pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace chronos::exp
