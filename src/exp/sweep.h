// Declarative experiment-sweep engine (the §VII evaluation grid as data).
//
// A SweepSpec names the parameter axes, the policies under test and a
// replication count; the engine expands the cartesian product into cells,
// derives one deterministic seed per (cell, replication) by splitting a
// master chronos::Rng, and runs every replication through
// trace::run_experiment — across a thread pool when asked. Cell results are
// written into pre-assigned slots, so the aggregated output is identical
// for any thread count, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/aggregate.h"
#include "strategies/policies.h"
#include "trace/harness.h"

namespace chronos::exp {

/// One named parameter axis. `labels`, when non-empty, must parallel
/// `values` and replaces them in reports (categorical axes such as
/// benchmark names).
struct Axis {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;

  void validate() const;
};

/// Declarative description of an experiment grid.
struct SweepSpec {
  std::string name = "sweep";
  std::vector<strategies::PolicyKind> policies;
  std::vector<Axis> axes;  ///< cartesian product; may be empty (one point)
  int replications = 1;
  std::uint64_t seed = 1;  ///< master seed; every cell seed derives from it

  void validate() const;

  /// policies.size() x prod(axis sizes); the axes alone contribute one
  /// point when empty.
  std::size_t num_cells() const;
};

/// One resolved axis coordinate of a cell.
struct AxisValue {
  std::string name;
  double value = 0.0;
  std::string label;  ///< display text: the axis label, or the value
};

/// One grid cell: a policy plus one value per axis. Cells are numbered in
/// grid order — policy-major, then axes left to right (last axis fastest).
struct SweepPoint {
  std::size_t cell = 0;
  strategies::PolicyKind policy = strategies::PolicyKind::kHadoopNS;
  std::vector<AxisValue> coordinates;

  /// Value of the named axis; throws PreconditionError when absent.
  double value(const std::string& axis) const;
};

/// Everything the engine needs to run one replication of a cell: planned
/// jobs plus harness config. When `report_utility` is set the engine also
/// evaluates metrics.utility(theta, r_min) per run and aggregates it.
///
/// `jobs` is shared so that factories which plan a cell's trace once can
/// hand the same (immutable) trace to every replication without a deep
/// copy; set_jobs() wraps a freshly built vector.
struct CellInstance {
  std::shared_ptr<const std::vector<trace::TracedJob>> jobs;
  trace::ExperimentConfig config;
  bool report_utility = false;
  double theta = 0.0;
  double r_min = 0.0;

  void set_jobs(std::vector<trace::TracedJob> built) {
    jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(built));
  }
};

/// Builds the jobs/config for one replication of `point`. `seed` is that
/// replication's deterministic seed; factories normally assign it to
/// `config.seed` (and may also fold it into trace generation). Must be
/// thread-safe: the engine invokes it concurrently from pool workers.
using CellFactory =
    std::function<CellInstance(const SweepPoint& point, std::uint64_t seed)>;

/// Aggregated outcome of one cell.
struct CellResult {
  SweepPoint point;
  std::string policy_name;
  CellAggregate aggregate;
};

/// Outcome of a whole sweep, cells in grid order.
struct SweepResult {
  std::string name;
  std::vector<std::string> axis_names;
  int replications = 0;
  std::vector<CellResult> cells;
};

struct SweepOptions {
  /// Worker threads; 0 means ThreadPool::hardware_threads().
  int threads = 1;
};

/// Runs the sweep. The result (and hence any report rendered from it) is
/// byte-identical for every `options.threads` value.
SweepResult run_sweep(const SweepSpec& spec, const CellFactory& factory,
                      const SweepOptions& options = {});

}  // namespace chronos::exp
