// Declarative experiment-sweep engine (the §VII evaluation grid as data).
//
// A SweepSpec names the parameter axes, the policies under test and a
// replication count; the engine expands the cartesian product into cells,
// derives one deterministic seed stream per cell by splitting a master
// chronos::Rng, and runs every replication through trace::run_experiment —
// across a thread pool when asked. All scheduling decisions happen at
// barriers on deterministic per-cell data, so the aggregated output is
// identical for any thread count, including 1.
//
// On top of the fixed grid the engine offers:
//  - a per-cell setup hook that runs once per cell (plan-once caching shared
//    by every replication of the cell, keyed by cell index — never by
//    floating-point axis values);
//  - adaptive replication: cells keep adding replication batches, with
//    deterministically extended seeds, until the 95% CI half-width of a
//    chosen metric reaches a target (or a hard cap);
//  - checkpoint/restart: finished cells stream to an append-only journal
//    (exp/checkpoint.h) and a restarted run skips them, with the final
//    aggregate byte-identical to an uninterrupted run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "exp/aggregate.h"
#include "strategies/policies.h"
#include "trace/harness.h"

namespace chronos::sim {
struct OpenSystemConfig;
}  // namespace chronos::sim

namespace chronos::exp {

/// One named parameter axis. `labels`, when non-empty, must parallel
/// `values` and replaces them in reports (categorical axes such as
/// benchmark names).
struct Axis {
  std::string name;
  std::vector<double> values;
  std::vector<std::string> labels;

  void validate() const;
};

/// Adaptive replication: after the base `replications`, a cell keeps adding
/// `batch` more replications until the 95% CI half-width of `metric` is at
/// most `target_ci95`, the cell reaches `max_replications`, or — since a CI
/// needs spread — until it has at least two runs. Disabled (the fixed grid
/// behaviour) while `max_replications` is 0.
struct AdaptiveSpec {
  std::string metric = "pocd";  ///< a CellAggregate metric name
  double target_ci95 = 0.0;
  int batch = 1;
  int max_replications = 0;  ///< hard cap; 0 disables adaptive replication

  bool enabled() const { return max_replications > 0; }
  void validate(int base_replications) const;
};

/// Declarative description of an experiment grid.
struct SweepSpec {
  std::string name = "sweep";
  std::vector<strategies::PolicyKind> policies;
  std::vector<Axis> axes;  ///< cartesian product; may be empty (one point)
  int replications = 1;
  std::uint64_t seed = 1;  ///< master seed; every cell seed derives from it
  AdaptiveSpec adaptive;

  void validate() const;

  /// policies.size() x prod(axis sizes); the axes alone contribute one
  /// point when empty.
  std::size_t num_cells() const;
};

/// One resolved axis coordinate of a cell.
struct AxisValue {
  std::string name;
  double value = 0.0;
  std::string label;      ///< display text: the axis label, or the value
  std::size_t index = 0;  ///< position on the axis (stable cell coordinate)
};

/// One grid cell: a policy plus one value per axis. Cells are numbered in
/// grid order — policy-major, then axes left to right (last axis fastest).
struct SweepPoint {
  std::size_t cell = 0;
  strategies::PolicyKind policy = strategies::PolicyKind::kHadoopNS;
  std::vector<AxisValue> coordinates;

  /// Value of the named axis; throws PreconditionError when absent.
  double value(const std::string& axis) const;

  /// Position on the named axis; throws PreconditionError when absent.
  /// Prefer this over `value` for keying per-cell caches: two cells whose
  /// axis values are nearly (or even exactly) equal still have distinct
  /// indices, so index keys can never alias.
  std::size_t index(const std::string& axis) const;
};

/// Everything the engine needs to run one replication of a cell: planned
/// jobs plus harness config. When `report_utility` is set the engine also
/// evaluates metrics.utility(theta, r_min) per run and aggregates it.
///
/// `jobs` is shared so that factories which plan a cell's trace once can
/// hand the same (immutable) trace to every replication without a deep
/// copy; set_jobs() wraps a freshly built vector.
struct CellInstance {
  std::shared_ptr<const std::vector<trace::TracedJob>> jobs;
  trace::ExperimentConfig config;
  bool report_utility = false;
  double theta = 0.0;
  double r_min = 0.0;

  /// Open-system replication: when set, the engine runs run_open_system on
  /// this config instead of replaying `jobs` (which may stay null). The
  /// aggregated metrics come from the run's measured (post-warm-up) jobs.
  std::shared_ptr<const sim::OpenSystemConfig> open_system;

  void set_jobs(std::vector<trace::TracedJob> built) {
    jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(built));
  }
};

/// Builds the jobs/config for one replication of `point`. `seed` is that
/// replication's deterministic seed; factories normally assign it to
/// `config.seed` (and may also fold it into trace generation). Must be
/// thread-safe: the engine invokes it concurrently from pool workers.
using CellFactory =
    std::function<CellInstance(const SweepPoint& point, std::uint64_t seed)>;

/// Per-cell state produced once by the setup hook and shared (immutably) by
/// every replication of that cell. Planning a cell's trace is
/// seed-independent, so replanning it per replication would waste work.
struct SharedCell {
  std::shared_ptr<const std::vector<trace::TracedJob>> jobs;
  double r_min = 0.0;  ///< optional utility baseline computed at setup
};

/// Runs once per cell, before any of its replications; cached by cell index
/// and released when the cell finishes. Must be thread-safe: the engine
/// invokes it concurrently from pool workers (one call per cell).
using CellSetup = std::function<SharedCell(const SweepPoint& point)>;

/// Builds one replication of `point` from the cell's shared state. When the
/// sweep has no setup hook, `shared` is empty. Must be thread-safe.
using CellRunner = std::function<CellInstance(
    const SweepPoint& point, std::uint64_t seed, const SharedCell& shared)>;

struct SweepHooks {
  CellRunner run;   ///< required
  CellSetup setup;  ///< optional plan-once hook
};

/// Aggregated outcome of one cell.
struct CellResult {
  SweepPoint point;
  std::string policy_name;
  CellAggregate aggregate;
};

/// Outcome of a whole sweep, cells in grid order. With adaptive replication
/// the per-cell replication count is `cells[i].aggregate.runs`;
/// `replications` stays the spec's base count.
struct SweepResult {
  std::string name;
  std::vector<std::string> axis_names;
  int replications = 0;
  std::vector<CellResult> cells;
};

/// One shard of a cell grid for process-level sharding: shard `index` of
/// `count` owns the contiguous, balanced cell range
/// [num_cells*index/count, num_cells*(index+1)/count). Shards are disjoint
/// and cover every cell. Sharding only filters which cells a process runs —
/// per-cell seed streams are still split off the master in full grid order,
/// so any shard assignment (including none) yields identical numbers and
/// per-shard journals merge to the exact single-run result.
struct ShardSpec {
  std::size_t index = 0;  ///< 0-based
  std::size_t count = 1;  ///< total shards; 1 = unsharded

  bool enabled() const { return count > 1; }
  void validate() const;
};

/// Half-open cell range [begin, end).
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool contains(std::size_t cell) const { return cell >= begin && cell < end; }
};

/// The cell range `shard` owns in a grid of `num_cells` cells.
ShardRange shard_cell_range(std::size_t num_cells, const ShardSpec& shard);

/// Live progress of a running sweep, as passed to SweepOptions::on_progress.
/// Counts cover this process's owned cell range only (sharded runs report
/// their own slice).
struct SweepProgress {
  std::size_t cells_total = 0;    ///< cells this process owns
  std::size_t cells_done = 0;     ///< finished, incl. journal-restored cells
  std::size_t cells_resumed = 0;  ///< restored from the journal at startup
  std::uint64_t replications_done = 0;  ///< run by this process so far
};

struct SweepOptions {
  /// Worker threads; 0 means ThreadPool::hardware_threads().
  int threads = 1;

  /// Which slice of the grid this process runs; default is the whole grid.
  /// A sharded run's SweepResult covers only the owned cells — render the
  /// full reports by merging the shard journals (exp/checkpoint.h) and
  /// passing the fused cell map to assemble_result.
  ShardSpec shard;

  /// Path of the checkpoint journal; empty disables checkpointing. When the
  /// file exists and matches the spec (see exp/checkpoint.h), finished
  /// cells are restored from it instead of re-run; newly finished cells are
  /// appended as the sweep progresses.
  std::string journal;

  /// Extra state folded into the journal fingerprint: anything the cell
  /// hooks depend on that the spec cannot see (a manifest's trace/planner/
  /// experiment templates, a binary's workload version). Changing it
  /// invalidates existing journals instead of silently trusting them.
  std::string journal_salt;

  /// Optional progress observer: invoked once at startup (with the resumed
  /// state) and after every completed replication and cell. Calls come
  /// concurrently from pool workers, so the callback must be thread-safe,
  /// fast, and must not throw. Purely observational — it cannot influence
  /// seeds, scheduling, or results.
  std::function<void(const SweepProgress&)> on_progress;

  /// Cooperative cancellation (SIGINT/SIGTERM drain). When non-null and set,
  /// the engine stops at the next replication-round barrier: the round in
  /// flight finishes, every cell that completed is journaled, the journal is
  /// flushed + fsynced, and run_sweep throws SweepCancelled. Re-running with
  /// the same journal resumes exactly there — nothing finished is lost, and
  /// the eventual reports are byte-identical to an uninterrupted run.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown by run_sweep when SweepOptions::cancel was observed. By the time
/// it propagates, all finished cells are journaled and the journal is
/// synced; the run is cleanly resumable.
class SweepCancelled : public std::runtime_error {
 public:
  SweepCancelled() : std::runtime_error("sweep cancelled") {}
};

/// Runs the sweep. The result (and hence any report rendered from it) is
/// byte-identical for every `options.threads` value, and — when a journal
/// is used — byte-identical between an interrupted-and-restarted run and an
/// uninterrupted one.
SweepResult run_sweep(const SweepSpec& spec, const SweepHooks& hooks,
                      const SweepOptions& options = {});

/// Builds a SweepResult from already-aggregated cells (journal entries, a
/// shard merge), one CellResult per map entry in cell order. Every key must
/// be a valid cell index of `spec`. Rendering the result of a full map is
/// byte-identical to the report an uninterrupted run_sweep would produce.
SweepResult assemble_result(
    const SweepSpec& spec,
    const std::map<std::size_t, CellAggregate>& cells);

/// Convenience overload for sweeps without a setup hook.
SweepResult run_sweep(const SweepSpec& spec, const CellFactory& factory,
                      const SweepOptions& options = {});

/// Runs every replication of one cell exactly as run_sweep would — the same
/// per-cell seed stream (split off the master in full grid order), the same
/// base + adaptive replication rounds, the same aggregate bits — without a
/// journal or thread pool. This is what a fabric worker executes per leased
/// cell: because it is bit-identical to the single-process engine, a cell
/// can be re-executed after a worker crash (or executed twice during a lease
/// handover race) and still produce the exact same journal entry, which is
/// what makes fabric reassignment idempotent and its dedup byte-exact.
CellAggregate run_single_cell(const SweepSpec& spec, const SweepHooks& hooks,
                              std::size_t cell);

}  // namespace chronos::exp
