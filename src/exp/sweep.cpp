#include "exp/sweep.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "exp/threadpool.h"

namespace chronos::exp {

namespace {

std::string default_label(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// Decodes flat cell index `cell` into a point (policy-major, last axis
/// fastest, like nested for-loops over policies then axes).
SweepPoint decode_cell(const SweepSpec& spec, std::size_t cell) {
  SweepPoint point;
  point.cell = cell;
  std::size_t rest = cell;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const Axis& axis = spec.axes[a];
    const std::size_t index = rest % axis.values.size();
    rest /= axis.values.size();
    AxisValue coordinate;
    coordinate.name = axis.name;
    coordinate.value = axis.values[index];
    coordinate.label = axis.labels.empty() ? default_label(coordinate.value)
                                           : axis.labels[index];
    point.coordinates.insert(point.coordinates.begin(),
                             std::move(coordinate));
  }
  point.policy = spec.policies[rest];
  return point;
}

}  // namespace

void Axis::validate() const {
  CHRONOS_EXPECTS(!name.empty(), "axis needs a name");
  CHRONOS_EXPECTS(!values.empty(), "axis needs at least one value");
  CHRONOS_EXPECTS(labels.empty() || labels.size() == values.size(),
                  "axis labels must parallel its values");
}

void SweepSpec::validate() const {
  CHRONOS_EXPECTS(!policies.empty(), "sweep needs at least one policy");
  CHRONOS_EXPECTS(replications >= 1, "sweep needs at least one replication");
  for (const Axis& axis : axes) {
    axis.validate();
  }
}

std::size_t SweepSpec::num_cells() const {
  std::size_t cells = policies.size();
  for (const Axis& axis : axes) {
    cells *= axis.values.size();
  }
  return cells;
}

double SweepPoint::value(const std::string& axis) const {
  for (const AxisValue& coordinate : coordinates) {
    if (coordinate.name == axis) {
      return coordinate.value;
    }
  }
  CHRONOS_EXPECTS(false, "sweep point has no axis named '" + axis + "'");
}

SweepResult run_sweep(const SweepSpec& spec, const CellFactory& factory,
                      const SweepOptions& options) {
  spec.validate();
  CHRONOS_EXPECTS(factory != nullptr, "sweep needs a cell factory");
  CHRONOS_EXPECTS(options.threads >= 0, "threads must be >= 0");

  const std::size_t cells = spec.num_cells();
  const std::size_t reps = static_cast<std::size_t>(spec.replications);

  // Seeds are derived serially, before any task runs, so the assignment of
  // seed -> (cell, replication) cannot depend on thread scheduling.
  Rng master(spec.seed);
  std::vector<std::uint64_t> seeds;
  seeds.reserve(cells * reps);
  for (std::size_t c = 0; c < cells; ++c) {
    Rng cell_stream = master.split();
    for (std::size_t k = 0; k < reps; ++k) {
      seeds.push_back(cell_stream.split_seed());
    }
  }

  // One slot per replication; workers only touch their own slot. Never
  // spawn more workers than there are replications to run.
  std::vector<RunRecord> runs(cells * reps);
  int threads =
      options.threads == 0 ? ThreadPool::hardware_threads() : options.threads;
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), cells * reps));
  ThreadPool pool(threads);
  for (std::size_t c = 0; c < cells; ++c) {
    const SweepPoint point = decode_cell(spec, c);
    for (std::size_t k = 0; k < reps; ++k) {
      const std::size_t slot = c * reps + k;
      pool.submit([&factory, &runs, &seeds, point, slot] {
        CellInstance instance = factory(point, seeds[slot]);
        CHRONOS_EXPECTS(instance.jobs != nullptr,
                        "cell factory must set CellInstance::jobs");
        RunRecord& record = runs[slot];
        record.result = run_experiment(*instance.jobs, instance.config);
        record.has_utility = instance.report_utility;
        if (instance.report_utility) {
          record.utility = record.result.metrics.utility(instance.theta,
                                                         instance.r_min);
        }
      });
    }
  }
  pool.wait();

  SweepResult result;
  result.name = spec.name;
  result.replications = spec.replications;
  for (const Axis& axis : spec.axes) {
    result.axis_names.push_back(axis.name);
  }
  result.cells.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    CellResult cell;
    cell.point = decode_cell(spec, c);
    cell.policy_name = strategies::to_string(cell.point.policy);
    cell.aggregate = aggregate_runs(
        std::span<const RunRecord>(runs.data() + c * reps, reps));
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace chronos::exp
