#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "common/error.h"
#include "common/numeric.h"
#include "common/rng.h"
#include "exp/checkpoint.h"
#include "exp/threadpool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/open_system.h"
#include "strategies/policies.h"

namespace chronos::exp {

namespace {

const obs::Counter c_replications = obs::counter("exp.sweep.replications");
const obs::Counter c_cells_finished = obs::counter("exp.sweep.cells_finished");
const obs::Counter c_cells_planned = obs::counter("exp.sweep.cells_planned");
const obs::Counter c_cells_resumed = obs::counter("exp.sweep.cells_resumed");
const obs::Counter c_adaptive_batches =
    obs::counter("exp.sweep.adaptive_batches");
const obs::Timer t_replication = obs::timer("exp.sweep.replication");

/// Shared progress state behind SweepOptions::on_progress. Counts are
/// relaxed atomics bumped from pool workers; emit() snapshots them into a
/// SweepProgress. Observational only — never read by the engine itself.
class ProgressTracker {
 public:
  ProgressTracker(const SweepOptions& options, std::size_t cells_total,
                  std::size_t cells_resumed)
      : callback_(options.on_progress),
        cells_total_(cells_total),
        cells_resumed_(cells_resumed),
        cells_done_(cells_resumed) {}

  void replication_done() {
    replications_.fetch_add(1, std::memory_order_relaxed);
    emit();
  }

  void cell_done() {
    cells_done_.fetch_add(1, std::memory_order_relaxed);
    emit();
  }

  void emit() const {
    if (!callback_) {
      return;
    }
    SweepProgress progress;
    progress.cells_total = cells_total_;
    progress.cells_done = cells_done_.load(std::memory_order_relaxed);
    progress.cells_resumed = cells_resumed_;
    progress.replications_done =
        replications_.load(std::memory_order_relaxed);
    callback_(progress);
  }

 private:
  const std::function<void(const SweepProgress&)>& callback_;
  std::size_t cells_total_;
  std::size_t cells_resumed_;
  std::atomic<std::size_t> cells_done_;
  std::atomic<std::uint64_t> replications_{0};
};

/// Decodes flat cell index `cell` into a point (policy-major, last axis
/// fastest, like nested for-loops over policies then axes).
SweepPoint decode_cell(const SweepSpec& spec, std::size_t cell) {
  SweepPoint point;
  point.cell = cell;
  std::size_t rest = cell;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    const Axis& axis = spec.axes[a];
    const std::size_t index = rest % axis.values.size();
    rest /= axis.values.size();
    AxisValue coordinate;
    coordinate.name = axis.name;
    coordinate.value = axis.values[index];
    coordinate.index = index;
    coordinate.label = axis.labels.empty()
                           ? numeric::format_double_g(coordinate.value)
                           : axis.labels[index];
    point.coordinates.insert(point.coordinates.begin(),
                             std::move(coordinate));
  }
  point.policy = spec.policies[rest];
  return point;
}

/// CI half-width of the adaptive metric; used only at inter-round barriers,
/// on deterministic per-cell data, so adaptivity cannot break the
/// thread-count-independence guarantee.
double metric_ci(const CellAggregate& aggregate, const std::string& metric) {
  const MetricSummary* summary = find_metric(aggregate, metric);
  CHRONOS_ENSURES(summary != nullptr, "unknown adaptive metric survived "
                                      "validation: '" + metric + "'");
  return summary->ci95;
}

/// One unfinished cell while the sweep runs: its decoded point, the shared
/// setup product, the replications so far, and the replication target for
/// the current round.
struct CellWork {
  std::size_t cell = 0;
  SweepPoint point;
  SharedCell shared;
  std::vector<RunRecord> runs;
  std::size_t target = 0;
};

/// The barrier decision: does this cell need another adaptive batch? Shared
/// by run_sweep and run_single_cell so a fabric worker reaches the exact
/// same replication count (and hence the same aggregate bits) as the
/// single-process engine would for the same cell.
bool wants_more_replications(const SweepSpec& spec,
                             const CellAggregate& aggregate, std::size_t runs,
                             std::size_t rep_cap) {
  return spec.adaptive.enabled() && runs < rep_cap &&
         (runs < 2 || metric_ci(aggregate, spec.adaptive.metric) >
                          spec.adaptive.target_ci95);
}

/// Replication target of the next adaptive round.
std::size_t next_replication_target(const SweepSpec& spec, std::size_t runs,
                                    std::size_t rep_cap) {
  return std::min(rep_cap,
                  runs + static_cast<std::size_t>(spec.adaptive.batch));
}

void run_one_replication(const SweepHooks& hooks, const CellWork& work,
                         std::uint64_t seed, RunRecord& record,
                         ProgressTracker* progress) {
  {
    obs::TraceSpan span("sweep.rep", "exp");
    span.note("cell", static_cast<double>(work.cell));
    const obs::ScopedTimer rep_timer(t_replication);
    CellInstance instance = hooks.run(work.point, seed, work.shared);
    if (instance.open_system != nullptr) {
      auto open = sim::run_open_system(*instance.open_system);
      record.result.policy_name =
          instance.open_system->auto_strategy
              ? "Auto"
              : strategies::to_string(instance.open_system->policy);
      record.result.metrics = std::move(open.metrics);
      record.result.events_executed = open.events_executed;
    } else {
      CHRONOS_EXPECTS(instance.jobs != nullptr,
                      "cell runner must set CellInstance::jobs");
      record.result = run_experiment(*instance.jobs, instance.config);
    }
    record.has_utility = instance.report_utility;
    if (instance.report_utility) {
      record.utility =
          record.result.metrics.utility(instance.theta, instance.r_min);
    }
  }
  c_replications.add();
  if (progress != nullptr) {
    progress->replication_done();
  }
}

}  // namespace

void Axis::validate() const {
  CHRONOS_EXPECTS(!name.empty(), "axis needs a name");
  CHRONOS_EXPECTS(!values.empty(), "axis needs at least one value");
  CHRONOS_EXPECTS(labels.empty() || labels.size() == values.size(),
                  "axis labels must parallel its values");
}

void AdaptiveSpec::validate(int base_replications) const {
  if (!enabled()) {
    return;
  }
  CHRONOS_EXPECTS(target_ci95 > 0.0,
                  "adaptive replication needs target_ci95 > 0");
  CHRONOS_EXPECTS(batch >= 1, "adaptive replication needs batch >= 1");
  CHRONOS_EXPECTS(max_replications >= base_replications,
                  "adaptive max_replications must be >= the base "
                  "replication count");
  CHRONOS_EXPECTS(find_metric(CellAggregate{}, metric) != nullptr,
                  "unknown adaptive metric '" + metric + "'");
}

void ShardSpec::validate() const {
  CHRONOS_EXPECTS(count >= 1, "shard count must be >= 1");
  CHRONOS_EXPECTS(index < count,
                  "shard index " + std::to_string(index) +
                      " out of range for " + std::to_string(count) +
                      " shard(s)");
}

ShardRange shard_cell_range(std::size_t num_cells, const ShardSpec& shard) {
  shard.validate();
  // Balanced contiguous ranges: sizes differ by at most one, the union is
  // [0, num_cells) and distinct shards never overlap. The intermediate
  // product is widened so huge grid x shard-count combinations cannot
  // overflow and silently break disjointness.
  const auto cut = [&](std::size_t i) {
    return static_cast<std::size_t>(static_cast<unsigned __int128>(num_cells) *
                                    i / shard.count);
  };
  ShardRange range;
  range.begin = cut(shard.index);
  range.end = cut(shard.index + 1);
  return range;
}

void SweepSpec::validate() const {
  CHRONOS_EXPECTS(!policies.empty(), "sweep needs at least one policy");
  CHRONOS_EXPECTS(replications >= 1, "sweep needs at least one replication");
  for (const Axis& axis : axes) {
    axis.validate();
  }
  adaptive.validate(replications);
}

std::size_t SweepSpec::num_cells() const {
  std::size_t cells = policies.size();
  for (const Axis& axis : axes) {
    cells *= axis.values.size();
  }
  return cells;
}

double SweepPoint::value(const std::string& axis) const {
  for (const AxisValue& coordinate : coordinates) {
    if (coordinate.name == axis) {
      return coordinate.value;
    }
  }
  CHRONOS_EXPECTS(false, "sweep point has no axis named '" + axis + "'");
}

std::size_t SweepPoint::index(const std::string& axis) const {
  for (const AxisValue& coordinate : coordinates) {
    if (coordinate.name == axis) {
      return coordinate.index;
    }
  }
  CHRONOS_EXPECTS(false, "sweep point has no axis named '" + axis + "'");
}

SweepResult run_sweep(const SweepSpec& spec, const SweepHooks& hooks,
                      const SweepOptions& options) {
  spec.validate();
  CHRONOS_EXPECTS(hooks.run != nullptr, "sweep needs a cell runner");
  CHRONOS_EXPECTS(options.threads >= 0, "threads must be >= 0");

  const std::size_t cells = spec.num_cells();
  const ShardRange owned = shard_cell_range(cells, options.shard);
  const std::size_t base_reps = static_cast<std::size_t>(spec.replications);
  const std::size_t rep_cap =
      spec.adaptive.enabled()
          ? static_cast<std::size_t>(spec.adaptive.max_replications)
          : base_reps;

  // Restore finished cells from the journal, when one is configured. An
  // incompatible journal (another spec's, or a stale format) is discarded
  // and rewritten rather than half-trusted.
  std::map<std::size_t, CellAggregate> finished;
  std::unique_ptr<JournalWriter> journal;
  if (!options.journal.empty()) {
    const std::string fingerprint =
        spec_fingerprint(spec, options.journal_salt);
    JournalContents contents = read_journal(options.journal, fingerprint);
    if (contents.compatible) {
      for (auto& [cell, aggregate] : contents.cells) {
        if (cell < cells) {
          finished.insert_or_assign(cell, std::move(aggregate));
        }
      }
    }
    journal = std::make_unique<JournalWriter>(options.journal, fingerprint,
                                              contents.compatible,
                                              contents.valid_bytes);
  }

  // One seed stream per cell, split off the master serially and in cell
  // order before any task runs: the seed of replication k of cell c depends
  // only on (spec.seed, c, k) — never on thread scheduling, on which cells
  // the journal already held, or on how many extra replications other cells
  // requested adaptively.
  Rng master(spec.seed);
  std::vector<Rng> streams;
  streams.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    streams.push_back(master.split());
  }

  std::vector<CellWork> pending;
  for (std::size_t c = owned.begin; c < owned.end; ++c) {
    if (finished.find(c) != finished.end()) {
      continue;
    }
    CellWork work;
    work.cell = c;
    work.point = decode_cell(spec, c);
    work.target = base_reps;
    pending.push_back(std::move(work));
  }

  obs::TraceSpan sweep_span("sweep.run", "exp");
  sweep_span.note("cells", static_cast<double>(owned.size()));
  sweep_span.note("resumed",
                  static_cast<double>(owned.size() - pending.size()));
  c_cells_planned.add(owned.size());
  c_cells_resumed.add(owned.size() - pending.size());
  ProgressTracker progress(options, owned.size(),
                           owned.size() - pending.size());
  progress.emit();  // startup snapshot: what the journal already covered

  if (!pending.empty()) {
    int threads = options.threads == 0 ? ThreadPool::hardware_threads()
                                       : options.threads;
    threads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), pending.size() * base_reps));
    ThreadPool pool(threads);

    // Setup phase: plan every unfinished cell once, in parallel. Journaled
    // cells never re-plan — on restart only the remaining work is redone.
    if (hooks.setup) {
      for (CellWork& work : pending) {
        pool.submit([&hooks, &work] {
          obs::TraceSpan span("sweep.setup", "exp");
          span.note("cell", static_cast<double>(work.cell));
          work.shared = hooks.setup(work.point);
        });
      }
      pool.wait();
    }

    // Replication rounds. Each round runs every pending cell up to its
    // current target across the pool, then decides — at the barrier, from
    // deterministic data — which cells are done (journal them) and which
    // need another adaptive batch.
    while (!pending.empty()) {
      // Graceful drain: stop at the barrier, before committing to another
      // round. Everything that finished is already journaled; sync so it
      // survives the process exit that normally follows.
      if (options.cancel != nullptr &&
          options.cancel->load(std::memory_order_relaxed)) {
        if (journal != nullptr) {
          journal->sync();
        }
        throw SweepCancelled();
      }
      for (CellWork& work : pending) {
        const std::size_t have = work.runs.size();
        work.runs.resize(work.target);
        for (std::size_t k = have; k < work.target; ++k) {
          const std::uint64_t seed = streams[work.cell].split_seed();
          RunRecord& record = work.runs[k];
          pool.submit([&hooks, &work, &record, seed, &progress] {
            run_one_replication(hooks, work, seed, record, &progress);
          });
        }
      }
      pool.wait();

      std::vector<CellWork> still_running;
      for (CellWork& work : pending) {
        CellAggregate aggregate = aggregate_runs(work.runs);
        if (wants_more_replications(spec, aggregate, work.runs.size(),
                                    rep_cap)) {
          work.target =
              next_replication_target(spec, work.runs.size(), rep_cap);
          c_adaptive_batches.add();
          still_running.push_back(std::move(work));
        } else {
          if (journal != nullptr) {
            journal->append({work.cell, aggregate});
          }
          finished.insert_or_assign(work.cell, std::move(aggregate));
          c_cells_finished.add();
          progress.cell_done();
        }
      }
      pending = std::move(still_running);
    }
  }

  // A sharded run reports only its own slice; restored journal entries
  // outside it (say, resuming a shard from a fused journal) are dropped.
  std::map<std::size_t, CellAggregate> owned_cells;
  for (std::size_t c = owned.begin; c < owned.end; ++c) {
    owned_cells.insert_or_assign(c, std::move(finished.at(c)));
  }
  return assemble_result(spec, owned_cells);
}

SweepResult assemble_result(
    const SweepSpec& spec,
    const std::map<std::size_t, CellAggregate>& cells) {
  spec.validate();
  const std::size_t num_cells = spec.num_cells();
  SweepResult result;
  result.name = spec.name;
  result.replications = spec.replications;
  for (const Axis& axis : spec.axes) {
    result.axis_names.push_back(axis.name);
  }
  result.cells.reserve(cells.size());
  for (const auto& [c, aggregate] : cells) {
    CHRONOS_EXPECTS(c < num_cells,
                    "cell index " + std::to_string(c) +
                        " out of range for a " + std::to_string(num_cells) +
                        "-cell sweep");
    CellResult cell;
    cell.point = decode_cell(spec, c);
    cell.policy_name = strategies::to_string(cell.point.policy);
    cell.aggregate = aggregate;
    result.cells.push_back(std::move(cell));
  }
  return result;
}

SweepResult run_sweep(const SweepSpec& spec, const CellFactory& factory,
                      const SweepOptions& options) {
  CHRONOS_EXPECTS(factory != nullptr, "sweep needs a cell factory");
  SweepHooks hooks;
  hooks.run = [&factory](const SweepPoint& point, std::uint64_t seed,
                         const SharedCell&) { return factory(point, seed); };
  return run_sweep(spec, hooks, options);
}

CellAggregate run_single_cell(const SweepSpec& spec, const SweepHooks& hooks,
                              std::size_t cell) {
  spec.validate();
  CHRONOS_EXPECTS(hooks.run != nullptr, "sweep needs a cell runner");
  const std::size_t cells = spec.num_cells();
  CHRONOS_EXPECTS(cell < cells,
                  "cell index " + std::to_string(cell) +
                      " out of range for a " + std::to_string(cells) +
                      "-cell sweep");
  const std::size_t base_reps = static_cast<std::size_t>(spec.replications);
  const std::size_t rep_cap =
      spec.adaptive.enabled()
          ? static_cast<std::size_t>(spec.adaptive.max_replications)
          : base_reps;

  // Re-derive this cell's seed stream exactly as run_sweep does: the master
  // is split serially in full grid order and this cell owns the (cell+1)-th
  // stream, so the seeds below match the full-sweep ones bit for bit.
  Rng master(spec.seed);
  for (std::size_t c = 0; c < cell; ++c) {
    master.split();
  }
  Rng stream = master.split();

  CellWork work;
  work.cell = cell;
  work.point = decode_cell(spec, cell);
  work.target = base_reps;
  if (hooks.setup) {
    obs::TraceSpan span("sweep.setup", "exp");
    span.note("cell", static_cast<double>(cell));
    work.shared = hooks.setup(work.point);
  }

  while (true) {
    const std::size_t have = work.runs.size();
    work.runs.resize(work.target);
    for (std::size_t k = have; k < work.target; ++k) {
      const std::uint64_t seed = stream.split_seed();
      run_one_replication(hooks, work, seed, work.runs[k], nullptr);
    }
    CellAggregate aggregate = aggregate_runs(work.runs);
    if (!wants_more_replications(spec, aggregate, work.runs.size(),
                                 rep_cap)) {
      c_cells_finished.add();
      return aggregate;
    }
    work.target = next_replication_target(spec, work.runs.size(), rep_cap);
    c_adaptive_batches.add();
  }
}

}  // namespace chronos::exp
