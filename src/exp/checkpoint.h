// Checkpoint/restart journal for experiment sweeps.
//
// A journal is an append-only text file: a header line binding the file to
// one exact sweep spec (via a fingerprint), then one line per finished cell
// carrying the cell index and its full CellAggregate. Doubles are encoded
// in hexadecimal float form (std::to_chars, chars_format::hex), so restored
// aggregates are bit-exact and any report rendered from them is
// byte-identical to an uninterrupted run. Every entry line ends in an
// FNV-1a checksum; a torn tail (the line a crash interrupted) fails its
// checksum and is ignored, losing only that cell's partial work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exp/aggregate.h"

namespace chronos::exp {

struct SweepSpec;

/// Stable hex fingerprint of everything that determines a sweep's numbers:
/// name, master seed, policies, axes (values and labels), base replication
/// count, and the adaptive-replication config. `salt` folds in caller state
/// the spec cannot see but the cell factory depends on — e.g. a manifest's
/// trace/planner/experiment templates (SweepOptions::journal_salt). A
/// journal written under one fingerprint must never seed a run with a
/// different one.
std::string spec_fingerprint(const SweepSpec& spec,
                             const std::string& salt = {});

/// One finished cell as stored in the journal.
struct JournalEntry {
  std::size_t cell = 0;
  CellAggregate aggregate;
};

/// Serializes one entry as a single journal line (no trailing newline).
std::string encode_journal_entry(const JournalEntry& entry);

/// Parses one journal line; nullopt when the line is malformed, truncated,
/// or fails its checksum.
std::optional<JournalEntry> decode_journal_entry(const std::string& line);

struct JournalContents {
  bool found = false;       ///< the file existed and was readable
  bool compatible = false;  ///< its header matched the given fingerprint
  std::map<std::size_t, CellAggregate> cells;  ///< valid entries, by index
  /// Byte length of the valid prefix (header + intact entries). A resuming
  /// writer truncates the file here first, so a torn tail can never fuse
  /// with the next appended entry.
  std::size_t valid_bytes = 0;
};

/// Reads a journal and validates its header against `fingerprint`. Entries
/// are read up to the first invalid line (a crash's torn tail); everything
/// before it is returned. A missing file yields {found = false}.
JournalContents read_journal(const std::string& path,
                             const std::string& fingerprint);

/// Canonical path of one shard's journal inside a shared journal directory:
/// `<dir>/<name>.shard-<index+1>-of-<count>.journal` (1-based in the file
/// name, matching sweeprun's --shard i/N). N machines pointed at the same
/// directory therefore never collide, and a merge can enumerate every
/// expected shard journal from (dir, name, count) alone.
std::string shard_journal_path(const std::string& dir,
                               const std::string& name, std::size_t index,
                               std::size_t count);

/// Fused view of several shard journals.
struct MergeStats {
  std::map<std::size_t, CellAggregate> cells;  ///< the single-run cell map
  std::size_t duplicates = 0;  ///< cells found identically in >1 journal
};

/// Merges per-shard journals into the cell map a single uninterrupted run
/// would have produced. Every journal must exist and carry `fingerprint`;
/// the fused map must cover exactly the cells [0, num_cells). Throws
/// PreconditionError on a missing or foreign journal, on a conflict (the
/// same cell with different aggregates in two journals — overlapping
/// identical entries are deduplicated instead), and on a gap (cells no
/// journal finished). Torn tails are dropped exactly as read_journal does,
/// but a torn shard then surfaces as a gap rather than a partial result.
MergeStats merge_journals(const std::vector<std::string>& paths,
                          const std::string& fingerprint,
                          std::size_t num_cells);

/// Outcome of compact_journal.
struct CompactStats {
  std::size_t entries = 0;      ///< entries in the compacted file
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
};

/// Rewrites a journal as its minimal equivalent: the header plus one entry
/// per cell (the last valid occurrence, i.e. what read_journal yields),
/// sorted by cell index, dropping duplicates and any torn tail. The rewrite
/// goes to a temp file that atomically renames over the original, so a
/// crash mid-compaction leaves the old journal intact. Resuming from a
/// compacted journal is identical to resuming from the original. Throws
/// PreconditionError when the journal is missing or does not carry
/// `fingerprint`.
CompactStats compact_journal(const std::string& path,
                             const std::string& fingerprint);

/// Append-only journal writer. With `resume` set the file is first cut back
/// to `resume_valid_bytes` (read_journal's valid prefix — dropping any torn
/// tail) and opened for append; otherwise it is truncated entirely and a
/// fresh header is written. Appends are flushed per entry so a crash can
/// lose at most the line being written.
class JournalWriter {
 public:
  JournalWriter(const std::string& path, const std::string& fingerprint,
                bool resume, std::size_t resume_valid_bytes = 0);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one finished cell. Thread-safe.
  void append(const JournalEntry& entry);

  /// Flushes buffered bytes and fsyncs the file, so everything appended so
  /// far survives a crash or power loss. Called on graceful shutdown
  /// (SIGINT/SIGTERM drain) and by the fabric controller before it exits;
  /// appends already flush per entry, so this only adds the fsync barrier.
  void sync();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
};

}  // namespace chronos::exp
