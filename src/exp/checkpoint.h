// Checkpoint/restart journal for experiment sweeps.
//
// A journal is an append-only text file: a header line binding the file to
// one exact sweep spec (via a fingerprint), then one line per finished cell
// carrying the cell index and its full CellAggregate. Doubles are encoded
// in hexadecimal float form (std::to_chars, chars_format::hex), so restored
// aggregates are bit-exact and any report rendered from them is
// byte-identical to an uninterrupted run. Every entry line ends in an
// FNV-1a checksum; a torn tail (the line a crash interrupted) fails its
// checksum and is ignored, losing only that cell's partial work.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "exp/aggregate.h"

namespace chronos::exp {

struct SweepSpec;

/// Stable hex fingerprint of everything that determines a sweep's numbers:
/// name, master seed, policies, axes (values and labels), base replication
/// count, and the adaptive-replication config. `salt` folds in caller state
/// the spec cannot see but the cell factory depends on — e.g. a manifest's
/// trace/planner/experiment templates (SweepOptions::journal_salt). A
/// journal written under one fingerprint must never seed a run with a
/// different one.
std::string spec_fingerprint(const SweepSpec& spec,
                             const std::string& salt = {});

/// One finished cell as stored in the journal.
struct JournalEntry {
  std::size_t cell = 0;
  CellAggregate aggregate;
};

/// Serializes one entry as a single journal line (no trailing newline).
std::string encode_journal_entry(const JournalEntry& entry);

/// Parses one journal line; nullopt when the line is malformed, truncated,
/// or fails its checksum.
std::optional<JournalEntry> decode_journal_entry(const std::string& line);

struct JournalContents {
  bool found = false;       ///< the file existed and was readable
  bool compatible = false;  ///< its header matched the given fingerprint
  std::map<std::size_t, CellAggregate> cells;  ///< valid entries, by index
  /// Byte length of the valid prefix (header + intact entries). A resuming
  /// writer truncates the file here first, so a torn tail can never fuse
  /// with the next appended entry.
  std::size_t valid_bytes = 0;
};

/// Reads a journal and validates its header against `fingerprint`. Entries
/// are read up to the first invalid line (a crash's torn tail); everything
/// before it is returned. A missing file yields {found = false}.
JournalContents read_journal(const std::string& path,
                             const std::string& fingerprint);

/// Append-only journal writer. With `resume` set the file is first cut back
/// to `resume_valid_bytes` (read_journal's valid prefix — dropping any torn
/// tail) and opened for append; otherwise it is truncated entirely and a
/// fresh header is written. Appends are flushed per entry so a crash can
/// lose at most the line being written.
class JournalWriter {
 public:
  JournalWriter(const std::string& path, const std::string& fingerprint,
                bool resume, std::size_t resume_valid_bytes = 0);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Appends one finished cell. Thread-safe.
  void append(const JournalEntry& entry);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
};

}  // namespace chronos::exp
