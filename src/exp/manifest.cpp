#include "exp/manifest.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <limits>
#include <memory>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "core/pocd.h"
#include "sim/open_system.h"
#include "trace/planner.h"
#include "trace/spot_price.h"

namespace chronos::exp {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  CHRONOS_EXPECTS(false,
                  "manifest line " + std::to_string(line) + ": " + message);
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// Strips a '#' comment that sits outside double quotes.
std::string strip_inline_comment(const std::string& text) {
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      quoted = !quoted;
    } else if (text[i] == '#' && !quoted) {
      return text.substr(0, i);
    }
  }
  return text;
}

struct IniEntry {
  std::string value;
  int line = 0;
  bool used = false;
};

struct IniSection {
  std::string name;
  int line = 0;
  std::vector<std::pair<std::string, IniEntry>> entries;  ///< in file order
  bool known = false;  ///< a reader claimed this section name
};

std::vector<IniSection> parse_ini(const std::string& text) {
  std::vector<IniSection> sections;
  int line_number = 0;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t end = text.find('\n', at);
    std::string raw = text.substr(
        at, end == std::string::npos ? std::string::npos : end - at);
    at = end == std::string::npos ? text.size() + 1 : end + 1;
    ++line_number;

    std::string line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') {
      continue;
    }
    line = trim(strip_inline_comment(line));
    if (line.empty()) {
      continue;
    }
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        fail(line_number, "malformed section header '" + line + "'");
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        fail(line_number, "empty section name");
      }
      for (const IniSection& section : sections) {
        if (section.name == name) {
          fail(line_number, "duplicate section [" + name + "]");
        }
      }
      IniSection section;
      section.name = name;
      section.line = line_number;
      sections.push_back(std::move(section));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_number, "expected 'key = value', got '" + line + "'");
    }
    if (sections.empty()) {
      fail(line_number, "key outside any [section]");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      fail(line_number, "empty key");
    }
    IniSection& section = sections.back();
    for (const auto& [existing, entry] : section.entries) {
      if (existing == key) {
        fail(line_number, "duplicate key '" + key + "' in [" +
                              section.name + "] (first on line " +
                              std::to_string(entry.line) + ")");
      }
    }
    IniEntry entry;
    entry.value = trim(line.substr(eq + 1));
    entry.line = line_number;
    section.entries.emplace_back(key, std::move(entry));
  }
  return sections;
}

/// Comma-separated list; double quotes protect commas inside an item.
std::vector<std::string> split_list(const std::string& value, int line) {
  std::vector<std::string> items;
  std::string current;
  bool quoted = false;
  bool had_quotes = false;
  const auto push = [&] {
    const std::string item = had_quotes ? current : trim(current);
    if (item.empty() && !had_quotes) {
      fail(line, "empty list item");
    }
    items.push_back(item);
    current.clear();
    had_quotes = false;
  };
  for (const char c : value) {
    if (c == '"') {
      if (had_quotes && !quoted) {
        fail(line, "unexpected text after closing quote in list");
      }
      quoted = !quoted;
      had_quotes = true;
    } else if (c == ',' && !quoted) {
      push();
    } else if (!had_quotes || quoted) {
      current += c;
    } else if (c != ' ' && c != '\t') {
      // Silently dropping stray characters would hide typos; every other
      // manifest mistake fails loudly, so this one does too.
      fail(line, "unexpected text after closing quote in list");
    }
  }
  if (quoted) {
    fail(line, "unterminated quote in list");
  }
  if (!trim(current).empty() || had_quotes) {
    push();
  }
  if (items.empty()) {
    fail(line, "empty list");
  }
  return items;
}

/// Typed, used-marking view over one section.
class SectionReader {
 public:
  explicit SectionReader(IniSection* section) : section_(section) {
    if (section_ != nullptr) {
      section_->known = true;
    }
  }

  bool present() const { return section_ != nullptr; }

  IniEntry* find(const std::string& key) const {
    if (section_ == nullptr) {
      return nullptr;
    }
    for (auto& [name, entry] : section_->entries) {
      if (name == key) {
        entry.used = true;
        return &entry;
      }
    }
    return nullptr;
  }

  const IniEntry& require(const std::string& key) const {
    IniEntry* entry = find(key);
    if (entry == nullptr) {
      // Built by append rather than operator+ chains: GCC 12 -Wrestrict
      // false positive (PR105329).
      std::string message = "[";
      message += section_ == nullptr ? std::string("?") : section_->name;
      message += "] is missing required key '";
      message += key;
      message += "'";
      fail(section_ == nullptr ? 0 : section_->line, message);
    }
    return *entry;
  }

  std::string get_string(const std::string& key,
                         const std::string& fallback) const {
    const IniEntry* entry = find(key);
    return entry == nullptr ? fallback : entry->value;
  }

  double get_double(const std::string& key, double fallback) const {
    const IniEntry* entry = find(key);
    if (entry == nullptr) {
      return fallback;
    }
    double parsed = 0.0;
    if (!numeric::parse_double(entry->value, parsed)) {
      fail(entry->line, "'" + entry->value + "' is not a number");
    }
    return parsed;
  }

  /// Exact integer parse (from_chars, never via double: a double round
  /// trip would silently round values above 2^53).
  long long get_int(const std::string& key, long long fallback) const {
    const IniEntry* entry = find(key);
    if (entry == nullptr) {
      return fallback;
    }
    std::string_view text = entry->value;
    if (!text.empty() && text.front() == '+') {
      text.remove_prefix(1);
    }
    long long parsed = 0;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (text.empty() || result.ec != std::errc() ||
        result.ptr != text.data() + text.size()) {
      fail(entry->line, "'" + entry->value + "' is not an integer");
    }
    return parsed;
  }

  /// Exact unsigned parse for 64-bit seeds; rejects negatives.
  std::uint64_t get_uint64(const std::string& key,
                           std::uint64_t fallback) const {
    const IniEntry* entry = find(key);
    if (entry == nullptr) {
      return fallback;
    }
    std::string_view text = entry->value;
    if (!text.empty() && text.front() == '+') {
      text.remove_prefix(1);
    }
    std::uint64_t parsed = 0;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    if (text.empty() || result.ec != std::errc() ||
        result.ptr != text.data() + text.size()) {
      fail(entry->line,
           "'" + entry->value + "' is not an unsigned integer");
    }
    return parsed;
  }

  bool get_bool(const std::string& key, bool fallback) const {
    const IniEntry* entry = find(key);
    if (entry == nullptr) {
      return fallback;
    }
    const std::string& v = entry->value;
    if (v == "on" || v == "true" || v == "yes" || v == "1") {
      return true;
    }
    if (v == "off" || v == "false" || v == "no" || v == "0") {
      return false;
    }
    fail(entry->line, "'" + v + "' is not a boolean (on/off/true/false)");
  }

 private:
  IniSection* section_;
};

IniSection* find_section(std::vector<IniSection>& sections,
                         const std::string& name) {
  for (IniSection& section : sections) {
    if (section.name == name) {
      return &section;
    }
  }
  return nullptr;
}

/// "@axis" -> binding to that axis; anything else must be a number.
Binding parse_binding(const IniEntry& entry, const SweepSpec& spec) {
  Binding binding;
  if (!entry.value.empty() && entry.value.front() == '@') {
    binding.axis = entry.value.substr(1);
    const bool known =
        std::any_of(spec.axes.begin(), spec.axes.end(),
                    [&](const Axis& a) { return a.name == binding.axis; });
    if (!known) {
      fail(entry.line, "'" + entry.value + "' binds to an axis that does "
                       "not exist");
    }
    return binding;
  }
  if (!numeric::parse_double(entry.value, binding.fixed)) {
    fail(entry.line,
         "'" + entry.value + "' is neither a number nor an '@axis' binding");
  }
  return binding;
}

std::optional<Binding> optional_binding(const SectionReader& reader,
                                        const std::string& key,
                                        const SweepSpec& spec) {
  const IniEntry* entry = reader.find(key);
  if (entry == nullptr) {
    return std::nullopt;
  }
  return parse_binding(*entry, spec);
}

double mean_baseline_pocd(const std::vector<trace::TracedJob>& jobs) {
  double sum = 0.0;
  for (const auto& job : jobs) {
    core::JobParams params;
    params.num_tasks = job.spec.stage(0).num_tasks;
    params.deadline = job.spec.deadline;
    params.t_min = job.spec.stage(0).t_min;
    params.beta = job.spec.stage(0).beta;
    sum += core::pocd_no_speculation(params);
  }
  return sum / static_cast<double>(jobs.size());
}

/// Resolves the manifest's [stage.N] templates against one cell's axis
/// coordinates into concrete StageSpecs for TraceConfig::extra_stages.
std::vector<mapreduce::StageSpec> resolve_stages(
    const std::vector<ManifestStage>& stages, const SweepPoint& point) {
  std::vector<mapreduce::StageSpec> resolved;
  resolved.reserve(stages.size());
  for (const ManifestStage& stage : stages) {
    mapreduce::StageSpec st;
    const long long tasks = std::llround(stage.tasks.resolve(point));
    CHRONOS_EXPECTS(tasks >= 1 && tasks <= (1 << 20),
                    "stage tasks must resolve to [1, 2^20]");
    st.num_tasks = static_cast<int>(tasks);
    st.t_min = stage.t_min.resolve(point);
    st.beta = stage.beta.resolve(point);
    st.deps = stage.deps;
    resolved.push_back(std::move(st));
  }
  return resolved;
}

}  // namespace

Manifest parse_manifest(const std::string& text) {
  std::vector<IniSection> sections = parse_ini(text);
  Manifest manifest;

  // [sweep] and the [axis.*] sections fix the grid; bindings in later
  // sections are validated against the axis names collected here.
  IniSection* sweep_section = find_section(sections, "sweep");
  if (sweep_section == nullptr) {
    fail(1, "missing required [sweep] section");
  }
  {
    const SectionReader sweep(sweep_section);
    manifest.spec.name = sweep.get_string("name", "sweep");
    const IniEntry& policies = sweep.require("policies");
    for (const std::string& name : split_list(policies.value, policies.line)) {
      const auto policy = strategies::policy_from_name(name);
      if (!policy.has_value()) {
        fail(policies.line, "unknown policy '" + name + "'");
      }
      manifest.spec.policies.push_back(*policy);
    }
    manifest.spec.replications =
        static_cast<int>(sweep.get_int("replications", 1));
    manifest.spec.seed = sweep.get_uint64("seed", 1);
  }

  for (IniSection& section : sections) {
    if (section.name.rfind("axis.", 0) != 0) {
      continue;
    }
    const SectionReader reader(&section);
    Axis axis;
    axis.name = section.name.substr(5);
    if (axis.name.empty()) {
      fail(section.line, "axis section needs a name: [axis.<name>]");
    }
    const IniEntry& values = reader.require("values");
    for (const std::string& item : split_list(values.value, values.line)) {
      double parsed = 0.0;
      if (!numeric::parse_double(item, parsed)) {
        fail(values.line, "axis value '" + item + "' is not a number");
      }
      axis.values.push_back(parsed);
    }
    if (const IniEntry* labels = reader.find("labels")) {
      axis.labels = split_list(labels->value, labels->line);
      if (axis.labels.size() != axis.values.size()) {
        fail(labels->line, "axis has " + std::to_string(axis.values.size()) +
                               " values but " +
                               std::to_string(axis.labels.size()) +
                               " labels");
      }
    }
    manifest.spec.axes.push_back(std::move(axis));
  }

  {
    const SectionReader adaptive(find_section(sections, "adaptive"));
    if (adaptive.present()) {
      manifest.spec.adaptive.metric =
          adaptive.get_string("metric", "pocd");
      manifest.spec.adaptive.target_ci95 =
          adaptive.get_double("target_ci95", 0.0);
      manifest.spec.adaptive.batch =
          static_cast<int>(adaptive.get_int("batch", 1));
      adaptive.require("max_replications");
      manifest.spec.adaptive.max_replications =
          static_cast<int>(adaptive.get_int("max_replications", 0));
    }
  }

  {
    const SectionReader reader(find_section(sections, "trace"));
    trace::TraceConfig& config = manifest.trace;
    config.num_jobs =
        static_cast<int>(reader.get_int("num_jobs", config.num_jobs));
    config.duration_hours =
        reader.get_double("duration_hours", config.duration_hours);
    config.mean_tasks = reader.get_double("mean_tasks", config.mean_tasks);
    config.tasks_log_sigma =
        reader.get_double("tasks_log_sigma", config.tasks_log_sigma);
    config.min_tasks =
        static_cast<int>(reader.get_int("min_tasks", config.min_tasks));
    config.max_tasks =
        static_cast<int>(reader.get_int("max_tasks", config.max_tasks));
    config.t_min_lo = reader.get_double("t_min_lo", config.t_min_lo);
    config.t_min_hi = reader.get_double("t_min_hi", config.t_min_hi);
    config.beta_lo = reader.get_double("beta_lo", config.beta_lo);
    config.beta_hi = reader.get_double("beta_hi", config.beta_hi);
    config.deadline_factor_lo =
        reader.get_double("deadline_factor_lo", config.deadline_factor_lo);
    config.deadline_factor_hi =
        reader.get_double("deadline_factor_hi", config.deadline_factor_hi);
    config.jvm_mean = reader.get_double("jvm_mean", config.jvm_mean);
    config.jvm_jitter = reader.get_double("jvm_jitter", config.jvm_jitter);
    config.seed = reader.get_uint64("seed", config.seed);
    manifest.trace_beta = optional_binding(reader, "beta", manifest.spec);
    manifest.trace_deadline_factor =
        optional_binding(reader, "deadline_factor", manifest.spec);
  }

  // [stage.N] templates: N must run 1, 2, ... without gaps (stage 0 is the
  // sampled root stage and has no section).
  {
    int next = 1;
    for (IniSection& section : sections) {
      if (section.name.rfind("stage.", 0) != 0) {
        continue;
      }
      const std::string suffix = section.name.substr(6);
      int number = 0;
      const auto result = std::from_chars(
          suffix.data(), suffix.data() + suffix.size(), number);
      if (suffix.empty() || result.ec != std::errc() ||
          result.ptr != suffix.data() + suffix.size()) {
        fail(section.line, "stage section needs a number: [stage.<N>]");
      }
      if (number != next) {
        fail(section.line, "stage sections must be contiguous from 1: "
                           "expected [stage." + std::to_string(next) +
                           "], got [stage." + suffix + "]");
      }
      const SectionReader reader(&section);
      ManifestStage stage;
      stage.tasks = parse_binding(reader.require("tasks"), manifest.spec);
      if (!stage.tasks.bound() &&
          !(std::isfinite(stage.tasks.fixed) && stage.tasks.fixed >= 1.0)) {
        fail(section.line, "stage tasks must be >= 1");
      }
      stage.t_min = parse_binding(reader.require("t_min"), manifest.spec);
      if (!stage.t_min.bound() &&
          !(std::isfinite(stage.t_min.fixed) && stage.t_min.fixed > 0.0)) {
        fail(section.line, "stage t_min must be positive and finite");
      }
      stage.beta = parse_binding(reader.require("beta"), manifest.spec);
      if (!stage.beta.bound() &&
          !(std::isfinite(stage.beta.fixed) && stage.beta.fixed > 1.0)) {
        fail(section.line, "stage beta must exceed 1 (finite mean)");
      }
      if (const IniEntry* deps = reader.find("deps")) {
        for (const std::string& item : split_list(deps->value, deps->line)) {
          int dep = 0;
          const auto parsed = std::from_chars(
              item.data(), item.data() + item.size(), dep);
          if (item.empty() || parsed.ec != std::errc() ||
              parsed.ptr != item.data() + item.size()) {
            fail(deps->line, "stage dep '" + item + "' is not an integer");
          }
          if (dep < 0 || dep >= number) {
            fail(deps->line, "stage dep " + item + " must reference an "
                             "earlier stage (0.." +
                             std::to_string(number - 1) + ")");
          }
          if (std::find(stage.deps.begin(), stage.deps.end(), dep) !=
              stage.deps.end()) {
            fail(deps->line, "duplicate stage dep " + item);
          }
          stage.deps.push_back(dep);
        }
      }
      manifest.stages.push_back(std::move(stage));
      ++next;
    }
  }

  {
    const SectionReader reader(find_section(sections, "planner"));
    if (const auto theta = optional_binding(reader, "theta", manifest.spec)) {
      manifest.planner_theta = *theta;
    }
    manifest.planner_tau_est_factor =
        optional_binding(reader, "tau_est_factor", manifest.spec);
    manifest.planner_tau_kill_factor =
        optional_binding(reader, "tau_kill_factor", manifest.spec);
  }

  {
    const SectionReader reader(find_section(sections, "experiment"));
    const std::string cluster =
        reader.get_string("cluster", "large_scale");
    if (cluster == "testbed") {
      manifest.cluster_testbed = true;
    } else if (cluster != "large_scale") {
      const IniEntry* entry = reader.find("cluster");
      fail(entry != nullptr ? entry->line : 0,
           "cluster must be 'large_scale' or 'testbed', got '" + cluster +
               "'");
    }
    manifest.report_utility = reader.get_bool("utility", false);
    if (const IniEntry* r_min = reader.find("r_min")) {
      if (r_min->value == "baseline") {
        manifest.r_min_mode = RMinMode::kBaseline;
      } else if (numeric::parse_double(r_min->value,
                                       manifest.r_min_fixed)) {
        manifest.r_min_mode = RMinMode::kFixed;
      } else {
        fail(r_min->line, "r_min must be 'baseline' or a number, got '" +
                              r_min->value + "'");
      }
    }
    manifest.r_min_offset = reader.get_double("r_min_offset", 0.0);
  }

  {
    IniSection* section = find_section(sections, "arrivals");
    const SectionReader reader(section);
    if (reader.present()) {
      ManifestArrivals arrivals;
      const IniEntry* kind = reader.find("kind");
      const std::string kind_name =
          kind == nullptr ? "poisson" : kind->value;
      if (kind_name == "poisson") {
        arrivals.spec.kind = trace::ArrivalKind::kPoisson;
      } else if (kind_name == "diurnal") {
        arrivals.spec.kind = trace::ArrivalKind::kDiurnal;
      } else if (kind_name == "trace") {
        arrivals.spec.kind = trace::ArrivalKind::kTrace;
      } else {
        fail(kind->line, "arrivals kind must be poisson, diurnal or trace, "
                         "got '" + kind_name + "'");
      }
      if (arrivals.spec.kind == trace::ArrivalKind::kTrace) {
        const IniEntry& file = reader.require("file");
        arrivals.file = file.value;
        arrivals.spec.times = trace::load_arrival_times(file.value);
      } else {
        const IniEntry& rate = reader.require("rate");
        arrivals.rate = parse_binding(rate, manifest.spec);
        if (!arrivals.rate.bound() &&
            !(std::isfinite(arrivals.rate.fixed) &&
              arrivals.rate.fixed > 0.0)) {
          fail(rate.line, "arrival rate must be positive and finite");
        }
        arrivals.spec.rate = arrivals.rate.fixed;
      }
      arrivals.spec.amplitude =
          reader.get_double("amplitude", arrivals.spec.amplitude);
      arrivals.spec.period =
          reader.get_double("period_hours", arrivals.spec.period / 3600.0) *
          3600.0;
      arrivals.duration_hours =
          reader.get_double("duration_hours", arrivals.duration_hours);
      arrivals.warm_up_hours =
          reader.get_double("warm_up_hours", arrivals.warm_up_hours);
      if (!(std::isfinite(arrivals.duration_hours) &&
            arrivals.duration_hours > 0.0 &&
            std::isfinite(arrivals.warm_up_hours) &&
            arrivals.warm_up_hours >= 0.0 &&
            arrivals.warm_up_hours < arrivals.duration_hours)) {
        fail(section->line, "[arrivals] needs duration_hours > 0 and "
                            "warm_up_hours in [0, duration_hours)");
      }
      arrivals.drain = reader.get_bool("drain", true);
      const IniEntry* plan = reader.find("plan");
      const std::string plan_name = plan == nullptr ? "policy" : plan->value;
      if (plan_name == "auto") {
        arrivals.auto_strategy = true;
      } else if (plan_name != "policy") {
        fail(plan->line,
             "plan must be 'policy' or 'auto', got '" + plan_name + "'");
      }
      const IniEntry* plan_cache = reader.find("plan_cache");
      if (plan_cache != nullptr) {
        const std::string& value = plan_cache->value;
        if (value == "off") {
          arrivals.plan_cache.mode = serve::CacheMode::kOff;
        } else if (value == "exact") {
          arrivals.plan_cache.mode = serve::CacheMode::kExact;
        } else if (value.rfind("quantized:", 0) == 0) {
          arrivals.plan_cache.mode = serve::CacheMode::kQuantized;
          double grid = 0.0;
          if (!numeric::parse_double(value.substr(10), grid) ||
              !std::isfinite(grid) || grid <= 0.0) {
            fail(plan_cache->line,
                 "plan_cache quantization grid must be a positive number, "
                 "got '" + value.substr(10) + "'");
          }
          arrivals.plan_cache.grid = grid;
        } else {
          fail(plan_cache->line,
               "plan_cache must be off, exact or quantized:<grid>, got '" +
                   value + "'");
        }
      }
      arrivals.admission_enabled = reader.get_bool("admission", true);
      arrivals.degrade_headroom =
          reader.get_double("degrade_headroom", arrivals.degrade_headroom);
      arrivals.reject_queue_factor = reader.get_double(
          "reject_queue_factor", arrivals.reject_queue_factor);
      if (!(std::isfinite(arrivals.degrade_headroom) &&
            arrivals.degrade_headroom > 0.0 &&
            std::isfinite(arrivals.reject_queue_factor) &&
            arrivals.reject_queue_factor > 0.0)) {
        fail(section->line, "[arrivals] admission factors must be positive "
                            "and finite");
      }
      arrivals.nodes = optional_binding(reader, "nodes", manifest.spec);
      const long long containers = reader.get_int("containers", 8);
      if (containers < 1 || containers > 1 << 20) {
        fail(section->line, "containers must lie in [1, 2^20]");
      }
      arrivals.containers = static_cast<int>(containers);
      arrivals.slow_fraction =
          optional_binding(reader, "slow_fraction", manifest.spec);
      if (arrivals.slow_fraction.has_value()) {
        if (!arrivals.nodes.has_value()) {
          fail(section->line,
               "slow_fraction needs an explicit cluster: set nodes too");
        }
        if (!arrivals.slow_fraction->bound() &&
            !(std::isfinite(arrivals.slow_fraction->fixed) &&
              arrivals.slow_fraction->fixed >= 0.0 &&
              arrivals.slow_fraction->fixed <= 1.0)) {
          fail(section->line, "slow_fraction must lie in [0, 1]");
        }
      }
      arrivals.slow_speed =
          reader.get_double("slow_speed", arrivals.slow_speed);
      if (!(std::isfinite(arrivals.slow_speed) &&
            arrivals.slow_speed > 0.0)) {
        fail(section->line, "slow_speed must be positive and finite");
      }
      // Validate the non-rate fields now so a bad manifest fails at parse
      // time; a bound rate is validated per cell at run time.
      {
        trace::ArrivalSpec probe = arrivals.spec;
        if (probe.kind != trace::ArrivalKind::kTrace &&
            arrivals.rate.bound()) {
          probe.rate = 1.0;  // placeholder for the per-cell axis value
        }
        probe.validate();
      }
      manifest.arrivals = std::move(arrivals);
      if (manifest.report_utility &&
          manifest.r_min_mode == RMinMode::kBaseline) {
        fail(section->line,
             "[arrivals] sweeps need a numeric r_min: the baseline r_min "
             "is a property of a pre-generated closed-system trace");
      }
    }
  }

  {
    const SectionReader reader(find_section(sections, "output"));
    manifest.outputs.csv = reader.get_string("csv", "");
    manifest.outputs.json = reader.get_string("json", "");
    manifest.outputs.journal = reader.get_string("journal", "");
    manifest.outputs.table = reader.get_bool("table", true);
  }

  {
    const SectionReader reader(find_section(sections, "shard"));
    if (reader.present()) {
      const IniEntry& count = reader.require("count");
      // Range-checked before narrowing: a count beyond int must fail, not
      // silently wrap into a different (valid-looking) shard layout.
      const long long parsed = reader.get_int("count", 0);
      if (parsed < 1 || parsed > std::numeric_limits<int>::max()) {
        fail(count.line, "shard count must be >= 1, got '" + count.value +
                             "'");
      }
      manifest.shard.count = static_cast<int>(parsed);
      manifest.shard.dir = reader.get_string("dir", ".");
      if (manifest.shard.dir.empty()) {
        fail(reader.find("dir")->line, "shard dir must not be empty");
      }
    }
  }

  // Reject anything the readers above did not claim: a typoed key or
  // section must not be silently ignored.
  for (const IniSection& section : sections) {
    if (!section.known) {
      fail(section.line, "unknown section [" + section.name + "]");
    }
    for (const auto& [key, entry] : section.entries) {
      if (!entry.used) {
        fail(entry.line,
             "unknown key '" + key + "' in [" + section.name + "]");
      }
    }
  }

  manifest.spec.validate();
  manifest.trace.validate();
  return manifest;
}

Manifest load_manifest(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  CHRONOS_EXPECTS(file != nullptr, "cannot open manifest '" + path + "'");
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return parse_manifest(text);
}

std::string manifest_journal_salt(const Manifest& manifest) {
  std::string salt = "trace=";
  salt += std::to_string(manifest.trace.num_jobs);
  for (const double v :
       {manifest.trace.duration_hours, manifest.trace.mean_tasks,
        manifest.trace.tasks_log_sigma, manifest.trace.t_min_lo,
        manifest.trace.t_min_hi, manifest.trace.beta_lo,
        manifest.trace.beta_hi, manifest.trace.deadline_factor_lo,
        manifest.trace.deadline_factor_hi, manifest.trace.jvm_mean,
        manifest.trace.jvm_jitter}) {
    salt += ',';
    salt += numeric::format_double(v);
  }
  salt += ',';
  salt += std::to_string(manifest.trace.min_tasks);
  salt += ',';
  salt += std::to_string(manifest.trace.max_tasks);
  salt += ',';
  salt += std::to_string(manifest.trace.seed);
  const auto append_binding = [&salt](const char* name,
                                      const std::optional<Binding>& binding) {
    salt += ';';
    salt += name;
    salt += '=';
    if (!binding.has_value()) {
      salt += "unset";
    } else if (binding->bound()) {
      salt += '@';
      salt += binding->axis;
    } else {
      salt += numeric::format_double(binding->fixed);
    }
  };
  append_binding("beta", manifest.trace_beta);
  append_binding("deadline_factor", manifest.trace_deadline_factor);
  // Stage templates enter the fingerprint only when present: single-stage
  // manifests keep their historical salt (and thus their journals).
  const auto encode_binding = [](const Binding& binding) {
    return binding.bound() ? "@" + binding.axis
                           : numeric::format_double(binding.fixed);
  };
  for (std::size_t i = 0; i < manifest.stages.size(); ++i) {
    const ManifestStage& stage = manifest.stages[i];
    salt += ";stage";
    salt += std::to_string(i + 1);
    salt += '=';
    salt += encode_binding(stage.tasks);
    salt += ',';
    salt += encode_binding(stage.t_min);
    salt += ',';
    salt += encode_binding(stage.beta);
    salt += ",deps:";
    for (const int dep : stage.deps) {
      salt += std::to_string(dep);
      salt += '.';
    }
  }
  append_binding("theta", std::optional<Binding>(manifest.planner_theta));
  append_binding("tau_est_factor", manifest.planner_tau_est_factor);
  append_binding("tau_kill_factor", manifest.planner_tau_kill_factor);
  salt += ";experiment=";
  salt += manifest.cluster_testbed ? "testbed" : "large_scale";
  salt += manifest.report_utility ? ",utility" : ",no-utility";
  salt += ',';
  salt += manifest.r_min_mode == RMinMode::kBaseline
              ? "baseline"
              : numeric::format_double(manifest.r_min_fixed);
  salt += ',';
  salt += numeric::format_double(manifest.r_min_offset);
  if (manifest.arrivals.has_value()) {
    const ManifestArrivals& a = *manifest.arrivals;
    salt += ";arrivals=";
    switch (a.spec.kind) {
      case trace::ArrivalKind::kPoisson:
        salt += "poisson";
        break;
      case trace::ArrivalKind::kDiurnal:
        salt += "diurnal";
        break;
      case trace::ArrivalKind::kTrace:
        salt += "trace";
        break;
    }
    salt += ",rate=";
    if (a.rate.bound()) {
      salt += '@';
      salt += a.rate.axis;
    } else {
      salt += numeric::format_double(a.rate.fixed);
    }
    for (const double v :
         {a.spec.amplitude, a.spec.period, a.duration_hours,
          a.warm_up_hours, a.degrade_headroom, a.reject_queue_factor}) {
      salt += ',';
      salt += numeric::format_double(v);
    }
    salt += a.drain ? ",drain" : ",no-drain";
    salt += a.auto_strategy ? ",auto" : ",policy";
    salt += a.admission_enabled ? ",admission" : ",no-admission";
    salt += ",nodes=";
    if (!a.nodes.has_value()) {
      salt += "preset";
    } else if (a.nodes->bound()) {
      salt += '@';
      salt += a.nodes->axis;
    } else {
      salt += numeric::format_double(a.nodes->fixed);
    }
    salt += ',';
    salt += std::to_string(a.containers);
    // Speed classes enter the fingerprint only when set — like the plan
    // cache below, the homogeneous default keeps the historical salt.
    if (a.slow_fraction.has_value()) {
      salt += ",slow_fraction=";
      if (a.slow_fraction->bound()) {
        salt += '@';
        salt += a.slow_fraction->axis;
      } else {
        salt += numeric::format_double(a.slow_fraction->fixed);
      }
      salt += ",slow_speed=";
      salt += numeric::format_double(a.slow_speed);
    }
    // The plan cache enters the fingerprint only when it is on: off is the
    // historical behavior, so pre-existing journals stay valid.
    if (a.plan_cache.mode != serve::CacheMode::kOff) {
      salt += ",plan_cache=";
      if (a.plan_cache.mode == serve::CacheMode::kExact) {
        salt += "exact";
      } else {
        salt += "quantized:";
        salt += numeric::format_double(a.plan_cache.grid);
      }
    }
    // Trace-driven arrivals: fingerprint the loaded times (FNV-1a over
    // their canonical decimal forms), never the file path — editing the
    // file must invalidate the journal even when the path is unchanged.
    if (a.spec.kind == trace::ArrivalKind::kTrace) {
      std::uint64_t hash = 1469598103934665603ull;
      for (const double t : a.spec.times) {
        for (const char c : numeric::format_double(t)) {
          hash ^= static_cast<unsigned char>(c);
          hash *= 1099511628211ull;
        }
        hash ^= static_cast<unsigned char>(';');
        hash *= 1099511628211ull;
      }
      salt += ",times=";
      salt += std::to_string(a.spec.times.size());
      salt += ':';
      salt += std::to_string(hash);
    }
  }
  return salt;
}

SweepHooks make_hooks(const Manifest& manifest) {
  // The hooks own a copy: they stay valid after the caller's Manifest dies.
  const auto m = std::make_shared<const Manifest>(manifest);
  SweepHooks hooks;
  hooks.setup = [m](const SweepPoint& point) {
    if (m->arrivals.has_value()) {
      // Open-system cells sample jobs on the fly — nothing to pre-plan.
      SharedCell shared;
      if (m->report_utility) {
        shared.r_min = std::max(0.0, m->r_min_fixed + m->r_min_offset);
      }
      return shared;
    }
    trace::TraceConfig config = m->trace;
    if (m->trace_beta.has_value()) {
      const double beta = m->trace_beta->resolve(point);
      config.beta_lo = beta;
      config.beta_hi = beta;
    }
    if (m->trace_deadline_factor.has_value()) {
      const double factor = m->trace_deadline_factor->resolve(point);
      config.deadline_factor_lo = factor;
      config.deadline_factor_hi = factor;
    }
    config.extra_stages = resolve_stages(m->stages, point);
    auto jobs = generate_trace(config);

    SharedCell shared;
    if (m->report_utility) {
      const double base = m->r_min_mode == RMinMode::kBaseline
                              ? mean_baseline_pocd(jobs)
                              : m->r_min_fixed;
      shared.r_min = std::max(0.0, base + m->r_min_offset);
    }

    trace::PlannerConfig planner;
    planner.theta = m->planner_theta.resolve(point);
    if (m->planner_tau_est_factor.has_value()) {
      planner.tau_est_factor = m->planner_tau_est_factor->resolve(point);
    }
    if (m->planner_tau_kill_factor.has_value()) {
      planner.tau_kill_factor = m->planner_tau_kill_factor->resolve(point);
    }
    const trace::SpotPriceModel prices;
    plan_trace(jobs, point.policy, planner, prices);
    shared.jobs = std::make_shared<const std::vector<trace::TracedJob>>(
        std::move(jobs));
    return shared;
  };
  hooks.run = [m](const SweepPoint& point, std::uint64_t seed,
                  const SharedCell& shared) {
    CellInstance instance;
    const trace::ExperimentConfig preset =
        m->cluster_testbed
            ? trace::ExperimentConfig::testbed(point.policy, seed)
            : trace::ExperimentConfig::large_scale(point.policy, seed);
    if (m->arrivals.has_value()) {
      const ManifestArrivals& a = *m->arrivals;
      auto open = std::make_shared<sim::OpenSystemConfig>();
      open->arrivals = a.spec;
      if (a.spec.kind != trace::ArrivalKind::kTrace) {
        open->arrivals.rate = a.rate.resolve(point);
      }
      open->workload = m->trace;
      if (m->trace_beta.has_value()) {
        const double beta = m->trace_beta->resolve(point);
        open->workload.beta_lo = beta;
        open->workload.beta_hi = beta;
      }
      if (m->trace_deadline_factor.has_value()) {
        const double factor = m->trace_deadline_factor->resolve(point);
        open->workload.deadline_factor_lo = factor;
        open->workload.deadline_factor_hi = factor;
      }
      open->workload.extra_stages = resolve_stages(m->stages, point);
      open->planner.theta = m->planner_theta.resolve(point);
      if (m->planner_tau_est_factor.has_value()) {
        open->planner.tau_est_factor =
            m->planner_tau_est_factor->resolve(point);
      }
      if (m->planner_tau_kill_factor.has_value()) {
        open->planner.tau_kill_factor =
            m->planner_tau_kill_factor->resolve(point);
      }
      open->plan_cache = a.plan_cache;
      open->admission.enabled = a.admission_enabled;
      open->admission.degrade_headroom = a.degrade_headroom;
      open->admission.reject_queue_factor = a.reject_queue_factor;
      if (a.nodes.has_value()) {
        const double resolved = a.nodes->resolve(point);
        const long long nodes = std::llround(resolved);
        CHRONOS_EXPECTS(nodes >= 1 && nodes <= (1 << 20),
                        "arrivals nodes must resolve to [1, 2^20]");
        sim::NodeConfig node;
        node.containers = a.containers;
        open->cluster =
            sim::ClusterConfig::uniform(static_cast<int>(nodes), node);
        if (a.slow_fraction.has_value()) {
          const double fraction = a.slow_fraction->resolve(point);
          CHRONOS_EXPECTS(
              std::isfinite(fraction) && fraction >= 0.0 && fraction <= 1.0,
              "slow_fraction must resolve to [0, 1]");
          const auto slow = static_cast<int>(
              std::llround(fraction * static_cast<double>(nodes)));
          for (int i = 0; i < slow; ++i) {
            open->cluster.nodes[static_cast<std::size_t>(i)].speed =
                a.slow_speed;
          }
        }
        open->scheduler.noise = mapreduce::ProgressNoiseConfig::realistic();
        open->scheduler.estimator = mapreduce::EstimatorKind::kChronos;
      } else {
        open->cluster = preset.cluster;
        open->scheduler = preset.scheduler;
      }
      open->policy = point.policy;
      open->auto_strategy = a.auto_strategy;
      open->duration = a.duration_hours * 3600.0;
      open->warm_up = a.warm_up_hours * 3600.0;
      open->drain = a.drain;
      open->seed = seed;
      instance.open_system = std::move(open);
    } else {
      instance.jobs = shared.jobs;
      instance.config = preset;
    }
    if (m->report_utility) {
      instance.report_utility = true;
      instance.theta = m->planner_theta.resolve(point);
      instance.r_min = shared.r_min;
    }
    return instance;
  };
  return hooks;
}

}  // namespace chronos::exp
