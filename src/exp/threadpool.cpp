#include "exp/threadpool.h"

#include <string>
#include <utility>

#include "common/error.h"
#include "obs/trace.h"

namespace chronos::exp {

namespace {

const obs::Counter c_tasks = obs::counter("exp.pool.tasks");
const obs::Gauge g_queue_depth = obs::gauge("exp.pool.queue_depth");
const obs::Timer t_wait = obs::timer("exp.pool.task_wait");
const obs::Timer t_run = obs::timer("exp.pool.task_run");

}  // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t max_pending)
    : max_pending_(max_pending) {
  CHRONOS_EXPECTS(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  try {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread creation failed (e.g. the host's thread limit); shut down the
    // workers that did start so the error is catchable instead of
    // std::terminate firing on a joinable std::thread.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CHRONOS_EXPECTS(task != nullptr, "cannot submit a null task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_pending_ > 0) {
      all_idle_.wait(lock, [this] { return queue_.size() < max_pending_; });
    }
    queue_.push_back(Queued{std::move(task), obs::Stopwatch()});
    g_queue_depth.update(queue_.size());
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop(int index) {
  obs::set_trace_thread_name("pool-" + std::to_string(index));
  for (;;) {
    Queued task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    // Bounded submitters wake as soon as a slot frees up.
    all_idle_.notify_all();
    t_wait.record_ns(task.enqueued.elapsed_ns());
    c_tasks.add();
    try {
      const obs::ScopedTimer run_timer(t_run);
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    all_idle_.notify_all();
  }
}

}  // namespace chronos::exp
