#include "exp/threadpool.h"

#include <utility>

#include "common/error.h"

namespace chronos::exp {

ThreadPool::ThreadPool(int num_threads, std::size_t max_pending)
    : max_pending_(max_pending) {
  CHRONOS_EXPECTS(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  try {
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation failed (e.g. the host's thread limit); shut down the
    // workers that did start so the error is catchable instead of
    // std::terminate firing on a joinable std::thread.
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_) {
      worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CHRONOS_EXPECTS(task != nullptr, "cannot submit a null task");
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_pending_ > 0) {
      all_idle_.wait(lock, [this] { return queue_.size() < max_pending_; });
    }
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  if (first_error_) {
    auto error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    // Bounded submitters wake as soon as a slot frees up.
    all_idle_.notify_all();
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    all_idle_.notify_all();
  }
}

}  // namespace chronos::exp
