#include "exp/checkpoint.h"

#include <unistd.h>

#include <charconv>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/numeric.h"
#include "exp/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chronos::exp {

namespace {

using numeric::append_hex_double;
using numeric::fnv1a;
using numeric::hex64;
using numeric::parse_hex_double;
using numeric::parse_u64;

const obs::Counter c_journal_entries = obs::counter("exp.journal.entries");
const obs::Counter c_journal_bytes = obs::counter("exp.journal.bytes");
const obs::Timer t_journal_flush = obs::timer("exp.journal.flush");

constexpr std::string_view kHeaderPrefix = "chronos-journal v1 fp=";
constexpr std::string_view kEntryPrefix = "cell ";
constexpr std::string_view kChecksumSep = " crc=";

/// Unlinks a scratch file on destruction unless the owner committed it
/// (renamed it into place). Covers every throw path between creation and
/// commit with one object instead of per-error cleanup calls.
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  ~TempFileGuard() {
    if (!committed_) {
      std::remove(path_.c_str());
    }
  }
  TempFileGuard(const TempFileGuard&) = delete;
  TempFileGuard& operator=(const TempFileGuard&) = delete;
  void commit() { committed_ = true; }

 private:
  std::string path_;
  bool committed_ = false;
};

void append_summary(std::string& out, const MetricSummary& summary) {
  out += ' ';
  out += std::to_string(summary.count);
  for (const double v : {summary.mean, summary.stddev, summary.ci95,
                         summary.min, summary.max}) {
    out += ' ';
    append_hex_double(out, v);
  }
}

/// Splits `text` on single spaces. Journal lines are machine-written, so a
/// double space is corruption and surfaces as a parse failure downstream.
std::vector<std::string_view> split_fields(std::string_view text) {
  std::vector<std::string_view> fields;
  while (!text.empty()) {
    const std::size_t space = text.find(' ');
    fields.push_back(text.substr(0, space));
    if (space == std::string_view::npos) {
      break;
    }
    text.remove_prefix(space + 1);
  }
  return fields;
}

/// Consumes one MetricSummary (6 fields) starting at fields[at].
bool parse_summary(const std::vector<std::string_view>& fields,
                   std::size_t& at, MetricSummary& summary) {
  if (at + 6 > fields.size()) {
    return false;
  }
  if (!parse_u64(fields[at], summary.count)) {
    return false;
  }
  double* const slots[] = {&summary.mean, &summary.stddev, &summary.ci95,
                           &summary.min, &summary.max};
  for (std::size_t i = 0; i < 5; ++i) {
    if (!parse_hex_double(fields[at + 1 + i], *slots[i])) {
      return false;
    }
  }
  at += 6;
  return true;
}

}  // namespace

std::string spec_fingerprint(const SweepSpec& spec,
                             const std::string& salt) {
  std::string canon = "name=";
  canon += spec.name;
  canon += ";seed=";
  canon += std::to_string(spec.seed);
  canon += ";replications=";
  canon += std::to_string(spec.replications);
  canon += ";policies=";
  for (const auto policy : spec.policies) {
    canon += strategies::to_string(policy);
    canon += ',';
  }
  for (const Axis& axis : spec.axes) {
    canon += ";axis=";
    canon += axis.name;
    canon += ':';
    for (const double value : axis.values) {
      append_hex_double(canon, value);
      canon += ',';
    }
    canon += ':';
    for (const std::string& label : axis.labels) {
      canon += label;
      canon += ',';
    }
  }
  if (spec.adaptive.enabled()) {
    canon += ";adaptive=";
    canon += spec.adaptive.metric;
    canon += ',';
    append_hex_double(canon, spec.adaptive.target_ci95);
    canon += ',';
    canon += std::to_string(spec.adaptive.batch);
    canon += ',';
    canon += std::to_string(spec.adaptive.max_replications);
  }
  if (!salt.empty()) {
    canon += ";salt=";
    canon += salt;
  }
  return hex64(fnv1a(canon));
}

std::string encode_journal_entry(const JournalEntry& entry) {
  std::string line(kEntryPrefix);
  line += std::to_string(entry.cell);
  const CellAggregate& agg = entry.aggregate;
  for (const std::uint64_t v :
       {agg.runs, agg.jobs, agg.attempts_launched, agg.attempts_killed,
        agg.attempts_failed, agg.events_executed}) {
    line += ' ';
    line += std::to_string(v);
  }
  append_summary(line, agg.pocd);
  append_summary(line, agg.cost);
  append_summary(line, agg.machine_time);
  append_summary(line, agg.mean_r);
  append_summary(line, agg.utility);
  line += kChecksumSep;
  line += hex64(fnv1a(std::string_view(line.data(),
                                       line.size() - kChecksumSep.size())));
  return line;
}

std::optional<JournalEntry> decode_journal_entry(const std::string& line) {
  std::string_view text = line;
  if (text.substr(0, kEntryPrefix.size()) != kEntryPrefix) {
    return std::nullopt;
  }
  const std::size_t crc_at = text.rfind(kChecksumSep);
  if (crc_at == std::string_view::npos) {
    return std::nullopt;
  }
  const std::string_view payload = text.substr(0, crc_at);
  const std::string_view checksum =
      text.substr(crc_at + kChecksumSep.size());
  if (checksum != hex64(fnv1a(payload))) {
    return std::nullopt;
  }
  const auto fields = split_fields(payload.substr(kEntryPrefix.size()));
  // cell index + 6 counters + 5 summaries x 6 fields.
  if (fields.size() != 7 + 5 * 6) {
    return std::nullopt;
  }
  JournalEntry entry;
  std::uint64_t cell = 0;
  if (!parse_u64(fields[0], cell)) {
    return std::nullopt;
  }
  entry.cell = static_cast<std::size_t>(cell);
  CellAggregate& agg = entry.aggregate;
  std::uint64_t* const counters[] = {
      &agg.runs,           &agg.jobs,            &agg.attempts_launched,
      &agg.attempts_killed, &agg.attempts_failed, &agg.events_executed};
  for (std::size_t i = 0; i < 6; ++i) {
    if (!parse_u64(fields[1 + i], *counters[i])) {
      return std::nullopt;
    }
  }
  std::size_t at = 7;
  MetricSummary* const summaries[] = {&agg.pocd, &agg.cost,
                                      &agg.machine_time, &agg.mean_r,
                                      &agg.utility};
  for (MetricSummary* summary : summaries) {
    if (!parse_summary(fields, at, *summary)) {
      return std::nullopt;
    }
  }
  return entry;
}

JournalContents read_journal(const std::string& path,
                             const std::string& fingerprint) {
  JournalContents contents;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return contents;
  }
  contents.found = true;
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);

  std::size_t at = 0;
  bool first = true;
  while (at < text.size()) {
    const std::size_t end = text.find('\n', at);
    if (end == std::string::npos) {
      break;  // torn tail: the line a crash interrupted
    }
    const std::string line = text.substr(at, end - at);
    at = end + 1;
    if (first) {
      first = false;
      if (line != std::string(kHeaderPrefix) + fingerprint) {
        return contents;  // another spec's journal; nothing is reusable
      }
      contents.compatible = true;
      contents.valid_bytes = at;
      continue;
    }
    const auto entry = decode_journal_entry(line);
    if (!entry.has_value()) {
      break;  // corrupt line; trust nothing after it
    }
    contents.cells.insert_or_assign(entry->cell, entry->aggregate);
    contents.valid_bytes = at;
  }
  return contents;
}

std::string shard_journal_path(const std::string& dir,
                               const std::string& name, std::size_t index,
                               std::size_t count) {
  CHRONOS_EXPECTS(count >= 1, "shard count must be >= 1");
  CHRONOS_EXPECTS(index < count,
                  "shard index " + std::to_string(index) +
                      " out of range for " + std::to_string(count) +
                      " shard(s)");
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') {
    path += '/';
  }
  path += name;
  path += ".shard-";
  path += std::to_string(index + 1);
  path += "-of-";
  path += std::to_string(count);
  path += ".journal";
  return path;
}

MergeStats merge_journals(const std::vector<std::string>& paths,
                          const std::string& fingerprint,
                          std::size_t num_cells) {
  CHRONOS_EXPECTS(!paths.empty(), "merge needs at least one journal");
  MergeStats merged;
  // Which journal first finished each cell, plus the cell's exact encoded
  // line: conflicts are detected on bytes, the same currency the journals
  // and reports deal in, so "equal" can never mean "close enough".
  std::map<std::size_t, std::pair<std::string, std::string>> first_seen;
  for (const std::string& path : paths) {
    const JournalContents contents = read_journal(path, fingerprint);
    CHRONOS_EXPECTS(contents.found,
                    "shard journal '" + path + "' is missing or unreadable");
    CHRONOS_EXPECTS(contents.compatible,
                    "shard journal '" + path +
                        "' belongs to a different sweep (fingerprint "
                        "mismatch); refusing to merge");
    for (const auto& [cell, aggregate] : contents.cells) {
      CHRONOS_EXPECTS(cell < num_cells,
                      "shard journal '" + path + "' has cell " +
                          std::to_string(cell) + ", beyond the " +
                          std::to_string(num_cells) + "-cell grid");
      const std::string line = encode_journal_entry({cell, aggregate});
      const auto [it, inserted] =
          first_seen.try_emplace(cell, path, line);
      if (!inserted) {
        CHRONOS_EXPECTS(it->second.second == line,
                        "cell " + std::to_string(cell) +
                            " appears in '" + it->second.first + "' and '" +
                            path +
                            "' with different aggregates; the shards did "
                            "not run the same sweep");
        ++merged.duplicates;
        continue;
      }
      merged.cells.insert_or_assign(cell, aggregate);
    }
  }
  if (merged.cells.size() != num_cells) {
    std::string missing;
    std::size_t listed = 0;
    for (std::size_t c = 0; c < num_cells && listed < 8; ++c) {
      if (merged.cells.find(c) == merged.cells.end()) {
        missing += missing.empty() ? "" : ", ";
        missing += std::to_string(c);
        ++listed;
      }
    }
    CHRONOS_EXPECTS(false,
                    "merged journals cover " +
                        std::to_string(merged.cells.size()) + " of " +
                        std::to_string(num_cells) +
                        " cells; missing cell(s): " + missing +
                        (merged.cells.size() + listed < num_cells ? ", ..."
                                                                  : ""));
  }
  return merged;
}

CompactStats compact_journal(const std::string& path,
                             const std::string& fingerprint) {
  const JournalContents contents = read_journal(path, fingerprint);
  CHRONOS_EXPECTS(contents.found,
                  "journal '" + path + "' is missing or unreadable");
  CHRONOS_EXPECTS(contents.compatible,
                  "journal '" + path +
                      "' belongs to a different sweep (fingerprint "
                      "mismatch); refusing to compact");
  CompactStats stats;
  stats.entries = contents.cells.size();
  std::error_code size_error;
  stats.bytes_before = static_cast<std::size_t>(
      std::filesystem::file_size(path, size_error));

  std::string compacted(kHeaderPrefix);
  compacted += fingerprint;
  compacted += '\n';
  for (const auto& [cell, aggregate] : contents.cells) {
    compacted += encode_journal_entry({cell, aggregate});
    compacted += '\n';
  }
  stats.bytes_after = compacted.size();

  // Write-then-rename: readers (and a crash) only ever see either the old
  // journal or the complete compacted one, never a half-written file. The
  // guard unlinks the temp file on *every* error path (short write, failed
  // flush, rename failure — e.g. the journal living on another device than
  // the temp would after a future layout change), so a failed compaction
  // can never strand a stale .compact.tmp next to the journal.
  const std::string temp = path + ".compact.tmp";
  TempFileGuard guard(temp);
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  CHRONOS_EXPECTS(file != nullptr,
                  "cannot open '" + temp + "' for writing");
  const std::size_t written =
      std::fwrite(compacted.data(), 1, compacted.size(), file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  CHRONOS_EXPECTS(written == compacted.size() && flushed,
                  "short write to '" + temp + "'");
  std::error_code rename_error;
  std::filesystem::rename(temp, path, rename_error);
  CHRONOS_EXPECTS(!rename_error, "cannot rename '" + temp + "' over '" +
                                     path + "': " + rename_error.message());
  guard.commit();
  return stats;
}

JournalWriter::JournalWriter(const std::string& path,
                             const std::string& fingerprint, bool resume,
                             std::size_t resume_valid_bytes)
    : path_(path) {
  if (resume) {
    // Drop any torn tail before appending, or the next entry would fuse
    // with it into one corrupt line.
    std::error_code ignored;
    std::filesystem::resize_file(path, resume_valid_bytes, ignored);
  }
  file_ = std::fopen(path.c_str(), resume ? "ab" : "wb");
  CHRONOS_EXPECTS(file_ != nullptr,
                  "cannot open journal '" + path + "' for writing");
  if (!resume) {
    const std::string header =
        std::string(kHeaderPrefix) + fingerprint + "\n";
    const std::size_t written =
        std::fwrite(header.data(), 1, header.size(), file_);
    CHRONOS_EXPECTS(written == header.size() && std::fflush(file_) == 0,
                    "short write to journal '" + path + "'");
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void JournalWriter::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  CHRONOS_EXPECTS(std::fflush(file_) == 0,
                  "cannot flush journal '" + path_ + "'");
  // Durability past the page cache: a signal-triggered drain (or a fabric
  // controller about to exit) must leave the entries on disk, not in RAM.
  ::fsync(::fileno(file_));
}

void JournalWriter::append(const JournalEntry& entry) {
  const std::string line = encode_journal_entry(entry) + "\n";
  obs::TraceSpan span("journal.append", "exp");
  span.note("cell", static_cast<double>(entry.cell));
  span.note("bytes", static_cast<double>(line.size()));
  const obs::ScopedTimer flush_timer(t_journal_flush);
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t written =
      std::fwrite(line.data(), 1, line.size(), file_);
  CHRONOS_EXPECTS(written == line.size() && std::fflush(file_) == 0,
                  "short write to journal '" + path_ + "'");
  c_journal_entries.add();
  c_journal_bytes.add(line.size());
}

}  // namespace chronos::exp
