// Report emitters for sweep results: CSV, JSON, and fixed-width text.
//
// All formats are deterministic and locale-free: rendering the same
// SweepResult always yields identical bytes, which is what makes "same CSV
// for any --threads" a checkable property.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace chronos::exp {

/// Simple fixed-width table printer (previously bench/bench_util.h; moved
/// here so sweep reports and the bench binaries share one implementation).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders the table (header, rule, rows) as a string.
  std::string str() const;

  void print() const { std::fputs(str().c_str(), stdout); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV: one row per cell. Columns: policy, one per axis (labels when the
/// axis has them), replications, then mean/ci95 pairs of every metric and
/// the attempt totals. Utility columns are empty when no cell reported one.
std::string to_csv(const SweepResult& result);

/// JSON object with the sweep name, axes and a `cells` array.
std::string to_json(const SweepResult& result);

/// Text table: policy + axis columns, then PoCD / cost / machine-time /
/// mean-r (and utility when present), each as "mean +- ci95".
Table to_table(const SweepResult& result);

/// Writes `content` to `path`, throwing PreconditionError on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace chronos::exp
