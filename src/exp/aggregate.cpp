#include "exp/aggregate.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "stats/summary.h"

namespace chronos::exp {

namespace {

// Two-sided 95% Student-t quantiles t_{0.975, df} for df = 1..30. Cells
// typically have only a handful of replications, where the normal z = 1.96
// would understate the interval by more than 2x; beyond df = 30 the normal
// approximation is within 2%.
constexpr double kT95[] = {
    12.706, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
    2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
    2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
    2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423};

double t95(std::uint64_t df) {
  if (df == 0) {
    return 0.0;
  }
  return df <= 30 ? kT95[df - 1] : 1.96;
}

MetricSummary from_stats(const stats::RunningStats& stats) {
  MetricSummary summary;
  summary.count = stats.count();
  if (stats.count() == 0) {
    return summary;
  }
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  if (stats.count() >= 2) {
    summary.ci95 = t95(stats.count() - 1) * stats.stddev() /
                   std::sqrt(static_cast<double>(stats.count()));
  }
  return summary;
}

double run_mean_r(const trace::ExperimentResult& result) {
  // The running sum stays available when outcome-row retention is off
  // (open-system runs) and matches summing outcomes() exactly.
  return static_cast<double>(result.metrics.total_r_used()) /
         static_cast<double>(result.metrics.jobs());
}

}  // namespace

MetricSummary summarize(std::span<const double> values) {
  stats::RunningStats stats;
  for (const double v : values) {
    stats.add(v);
  }
  return from_stats(stats);
}

CellAggregate aggregate_runs(std::span<const RunRecord> runs) {
  CHRONOS_EXPECTS(!runs.empty(), "cannot aggregate an empty cell");
  CellAggregate aggregate;
  aggregate.runs = runs.size();
  stats::RunningStats pocd, cost, machine_time, mean_r, utility;
  for (const auto& run : runs) {
    const auto& metrics = run.result.metrics;
    aggregate.jobs += metrics.jobs();
    aggregate.attempts_launched += metrics.attempts_launched();
    aggregate.attempts_killed += metrics.attempts_killed();
    aggregate.attempts_failed += metrics.attempts_failed();
    aggregate.events_executed += run.result.events_executed;
    pocd.add(metrics.pocd());
    cost.add(metrics.mean_cost());
    machine_time.add(metrics.mean_machine_time());
    mean_r.add(run_mean_r(run.result));
    if (run.has_utility) {
      utility.add(run.utility);
    }
  }
  aggregate.pocd = from_stats(pocd);
  aggregate.cost = from_stats(cost);
  aggregate.machine_time = from_stats(machine_time);
  aggregate.mean_r = from_stats(mean_r);
  aggregate.utility = from_stats(utility);
  return aggregate;
}

namespace {

constexpr const char* kMetricNames[] = {"pocd", "cost", "machine_time",
                                        "mean_r", "utility"};

}  // namespace

std::span<const char* const> metric_names() { return kMetricNames; }

const MetricSummary* find_metric(const CellAggregate& aggregate,
                                 const std::string& name) {
  if (name == "pocd") return &aggregate.pocd;
  if (name == "cost") return &aggregate.cost;
  if (name == "machine_time") return &aggregate.machine_time;
  if (name == "mean_r") return &aggregate.mean_r;
  if (name == "utility") return &aggregate.utility;
  return nullptr;
}

}  // namespace chronos::exp
