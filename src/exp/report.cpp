#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/numeric.h"

namespace chronos::exp {

namespace {

/// Shortest round-trip decimal form; used everywhere a number is emitted so
/// output bytes depend only on the value — never on the global locale
/// (std::to_chars underneath, which always emits '.').
std::string fmt_num(double v) { return numeric::format_double(v); }

std::string fmt_fixed(double v, int precision) {
  return numeric::format_double_fixed(v, precision);
}

std::string mean_pm_ci(const MetricSummary& summary, int precision) {
  return fmt_fixed(summary.mean, precision) + " +- " +
         fmt_fixed(summary.ci95, precision);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string escaped = "\"";
  for (const char c : field) {
    if (c == '"') {
      escaped += '"';
    }
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      case '\r': escaped += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char unicode[8];
          std::snprintf(unicode, sizeof(unicode), "\\u%04x",
                        static_cast<unsigned>(c));
          escaped += unicode;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

/// JSON has no inf/nan literals; emit them as strings.
std::string json_num(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    std::string quoted = "\"";
    quoted += fmt_num(v);
    quoted += '"';
    return quoted;
  }
  return fmt_num(v);
}

/// Appends one ","-prefixed CSV field (sidesteps the GCC 12 -Wrestrict
/// false positive on std::string operator+ chains, PR105329).
void append_field(std::string& out, const std::string& field) {
  out += ',';
  out += field;
}

void append_metric_json(std::string& out, const char* name,
                        const MetricSummary& summary) {
  out += "\"";
  out += name;
  out += "\":{\"count\":" + std::to_string(summary.count);
  out += ",\"mean\":" + json_num(summary.mean);
  out += ",\"stddev\":" + json_num(summary.stddev);
  out += ",\"ci95\":" + json_num(summary.ci95);
  out += ",\"min\":" + json_num(summary.min);
  out += ",\"max\":" + json_num(summary.max);
  out += "}";
}

bool any_utility(const SweepResult& result) {
  return std::any_of(result.cells.begin(), result.cells.end(),
                     [](const CellResult& cell) {
                       return cell.aggregate.utility.count > 0;
                     });
}

}  // namespace

std::string Table::str() const {
  // Size the width table to the widest row so rows longer than the header
  // still render instead of indexing out of bounds.
  std::size_t columns = headers_.size();
  for (const auto& row : rows_) {
    columns = std::max(columns, row.size());
  }
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < columns; ++c) {
    if (c < headers_.size()) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      if (c < row.size()) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
  }
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out += std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  append_row(headers_);
  std::string rule;
  for (const auto w : widths) {
    rule += std::string(w + 2, '-');
  }
  out += rule;
  out += '\n';
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

std::string to_csv(const SweepResult& result) {
  std::string out = "policy";
  for (const auto& axis : result.axis_names) {
    append_field(out, csv_escape(axis));
  }
  out +=
      ",replications,pocd_mean,pocd_ci95,cost_mean,cost_ci95,"
      "machine_time_mean,machine_time_ci95,r_mean,r_ci95,"
      "utility_mean,utility_ci95,attempts_launched,attempts_killed,"
      "attempts_failed\n";
  for (const CellResult& cell : result.cells) {
    out += csv_escape(cell.policy_name);
    for (const AxisValue& coordinate : cell.point.coordinates) {
      append_field(out, csv_escape(coordinate.label));
    }
    const CellAggregate& agg = cell.aggregate;
    append_field(out, std::to_string(agg.runs));
    append_field(out, fmt_num(agg.pocd.mean));
    append_field(out, fmt_num(agg.pocd.ci95));
    append_field(out, fmt_num(agg.cost.mean));
    append_field(out, fmt_num(agg.cost.ci95));
    append_field(out, fmt_num(agg.machine_time.mean));
    append_field(out, fmt_num(agg.machine_time.ci95));
    append_field(out, fmt_num(agg.mean_r.mean));
    append_field(out, fmt_num(agg.mean_r.ci95));
    if (agg.utility.count > 0) {
      append_field(out, fmt_num(agg.utility.mean));
      append_field(out, fmt_num(agg.utility.ci95));
    } else {
      out += ",,";
    }
    append_field(out, std::to_string(agg.attempts_launched));
    append_field(out, std::to_string(agg.attempts_killed));
    append_field(out, std::to_string(agg.attempts_failed));
    out += '\n';
  }
  return out;
}

std::string to_json(const SweepResult& result) {
  std::string out = "{\"name\":\"" + json_escape(result.name) + "\"";
  out += ",\"replications\":" + std::to_string(result.replications);
  out += ",\"axes\":[";
  for (std::size_t a = 0; a < result.axis_names.size(); ++a) {
    out += (a == 0 ? "\"" : ",\"") + json_escape(result.axis_names[a]) + "\"";
  }
  out += "],\"cells\":[";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    out += c == 0 ? "{" : ",{";
    out += "\"policy\":\"" + json_escape(cell.policy_name) + "\"";
    out += ",\"point\":{";
    for (std::size_t a = 0; a < cell.point.coordinates.size(); ++a) {
      const AxisValue& coordinate = cell.point.coordinates[a];
      out += (a == 0 ? "\"" : ",\"") + json_escape(coordinate.name) +
             "\":" + json_num(coordinate.value);
    }
    // Labels carry the display text of categorical axes (e.g. benchmark
    // names behind index values); the CSV emitter uses them as the cell
    // value, so the JSON must not lose them.
    out += "},\"point_labels\":{";
    for (std::size_t a = 0; a < cell.point.coordinates.size(); ++a) {
      const AxisValue& coordinate = cell.point.coordinates[a];
      out += (a == 0 ? "\"" : ",\"") + json_escape(coordinate.name) +
             "\":\"" + json_escape(coordinate.label) + "\"";
    }
    out += "},";
    append_metric_json(out, "pocd", cell.aggregate.pocd);
    out += ",";
    append_metric_json(out, "cost", cell.aggregate.cost);
    out += ",";
    append_metric_json(out, "machine_time", cell.aggregate.machine_time);
    out += ",";
    append_metric_json(out, "mean_r", cell.aggregate.mean_r);
    if (cell.aggregate.utility.count > 0) {
      out += ",";
      append_metric_json(out, "utility", cell.aggregate.utility);
    }
    out += ",\"runs\":" + std::to_string(cell.aggregate.runs);
    out += ",\"jobs\":" + std::to_string(cell.aggregate.jobs);
    out += ",\"attempts_launched\":" +
           std::to_string(cell.aggregate.attempts_launched);
    out += ",\"attempts_killed\":" +
           std::to_string(cell.aggregate.attempts_killed);
    out += ",\"attempts_failed\":" +
           std::to_string(cell.aggregate.attempts_failed);
    out += ",\"events_executed\":" +
           std::to_string(cell.aggregate.events_executed);
    out += "}";
  }
  out += "]}";
  return out;
}

Table to_table(const SweepResult& result) {
  const bool with_utility = any_utility(result);
  std::vector<std::string> headers = {"Strategy"};
  for (const auto& axis : result.axis_names) {
    headers.push_back(axis);
  }
  headers.insert(headers.end(), {"PoCD", "Cost", "Machine-s", "mean r"});
  if (with_utility) {
    headers.push_back("Utility");
  }
  Table table(std::move(headers));
  for (const CellResult& cell : result.cells) {
    std::vector<std::string> row = {cell.policy_name};
    for (const AxisValue& coordinate : cell.point.coordinates) {
      row.push_back(coordinate.label);
    }
    const CellAggregate& agg = cell.aggregate;
    row.push_back(mean_pm_ci(agg.pocd, 3));
    row.push_back(mean_pm_ci(agg.cost, 1));
    row.push_back(mean_pm_ci(agg.machine_time, 1));
    row.push_back(fmt_fixed(agg.mean_r.mean, 2));
    if (with_utility) {
      row.push_back(agg.utility.count > 0 ? mean_pm_ci(agg.utility, 3)
                                          : "-");
    }
    table.add_row(row);
  }
  return table;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  CHRONOS_EXPECTS(file != nullptr, "cannot open '" + path + "' for writing");
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const int close_status = std::fclose(file);
  CHRONOS_EXPECTS(written == content.size() && close_status == 0,
                  "short write to '" + path + "'");
}

}  // namespace chronos::exp
