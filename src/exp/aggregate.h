// Per-cell aggregation of replicated experiment runs: mean / spread / 95%
// confidence intervals over the §VII metrics, built on stats/summary.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/harness.h"

namespace chronos::exp {

/// Mean and spread of one scalar metric across a cell's replications.
struct MetricSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double ci95 = 0.0;    ///< Student-t 95% CI half-width, 0 for n < 2
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes a sample; an empty span yields an all-zero summary. Non-finite
/// values (e.g. -inf utilities) propagate into mean/min/max as IEEE demands.
MetricSummary summarize(std::span<const double> values);

/// What one replication of a cell produced. `utility` is only meaningful
/// when `has_utility` is set (the cell's factory supplied theta and R_min).
struct RunRecord {
  trace::ExperimentResult result;
  bool has_utility = false;
  double utility = 0.0;
};

/// Aggregate metrics of one sweep cell across its replications.
struct CellAggregate {
  std::uint64_t runs = 0;
  std::uint64_t jobs = 0;  ///< total jobs simulated across replications
  MetricSummary pocd;
  MetricSummary cost;          ///< mean per-job cost of each run
  MetricSummary machine_time;  ///< mean per-job machine time of each run
  MetricSummary mean_r;        ///< mean optimizer-chosen r of each run
  MetricSummary utility;       ///< count 0 when no run reported a utility
  std::uint64_t attempts_launched = 0;
  std::uint64_t attempts_killed = 0;
  std::uint64_t attempts_failed = 0;
  std::uint64_t events_executed = 0;  ///< simulator events across all runs
};

/// Reduces one cell's replications. Requires a non-empty span.
CellAggregate aggregate_runs(std::span<const RunRecord> runs);

/// Names of the per-cell summary metrics, in report order: "pocd", "cost",
/// "machine_time", "mean_r", "utility".
std::span<const char* const> metric_names();

/// The named summary of `aggregate`, or nullptr for an unknown name.
const MetricSummary* find_metric(const CellAggregate& aggregate,
                                 const std::string& name);

}  // namespace chronos::exp
