// Sweep manifests: experiment grids as config files instead of binaries.
//
// A manifest is a small INI-subset file (no external dependencies) that
// declares everything tools/sweeprun needs to run a grid: the axes,
// policies, replication policy (fixed or adaptive), the synthetic-trace and
// planner templates that build each cell, and where the reports and the
// checkpoint journal go. Example (the checked-in manifests/fig3_theta.ini
// reproduces bench/fig3_theta byte-for-byte):
//
//   [sweep]
//   name = fig3_theta
//   policies = mantri, clone, s-restart, s-resume
//   replications = 3
//   seed = 41
//
//   [axis.theta]
//   values = 1e-6, 1e-5, 1e-4, 1e-3
//
//   [trace]
//   num_jobs = 900
//   duration_hours = 30
//   mean_tasks = 60
//   max_tasks = 600
//   seed = 77
//
//   [planner]
//   theta = @theta          # "@name" binds the field to that axis' value
//
//   [experiment]
//   utility = on
//   r_min = baseline        # mean no-speculation PoCD of the cell's trace
//
//   [output]
//   csv = fig3.csv
//   journal = fig3.journal
//
//   [shard]                 # optional: cluster sharding defaults
//   count = 4               # sweeprun --shard i/4 on each machine,
//   dir = journals          # per-shard journals in this shared directory
//
// Syntax: "[section]" headers, "key = value" pairs, "#"/";" full-line
// comments plus "#" inline comments, comma-separated lists, double quotes
// around list items that contain commas. Parsing is locale-independent and
// every error names the offending line.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "serve/plan_cache.h"
#include "trace/arrivals.h"
#include "trace/google_trace.h"

namespace chronos::exp {

/// A manifest value that is either a fixed number or bound to an axis
/// ("@theta"): bound fields resolve to the cell's coordinate on that axis.
struct Binding {
  double fixed = 0.0;
  std::string axis;  ///< non-empty = bound

  bool bound() const { return !axis.empty(); }
  double resolve(const SweepPoint& point) const {
    return bound() ? point.value(axis) : fixed;
  }
};

/// Where the utility baseline R_min comes from when utility reporting is on.
enum class RMinMode {
  kBaseline,  ///< mean no-speculation PoCD of the cell's (unplanned) trace
  kFixed,     ///< the manifest's literal value
};

struct ManifestOutputs {
  std::string csv;      ///< empty = no CSV file
  std::string json;     ///< empty = no JSON file
  std::string journal;  ///< empty = no checkpoint journal
  bool table = true;    ///< print the fixed-width table to stdout
};

/// Optional [arrivals] section: switches the sweep's cells from replaying
/// the closed [trace] workload to running the open-system engine
/// (sim/open_system.h). The [trace] section still supplies the per-job
/// shape template; num_jobs/duration_hours/seed of [trace] are unused.
///
///   [arrivals]
///   kind = poisson          # poisson | diurnal | trace
///   rate = @lambda          # jobs/second; bindable (poisson/diurnal)
///   amplitude = 0.5         # diurnal modulation depth, [0, 1)
///   period_hours = 24       # diurnal period
///   file = arrivals.txt     # kind = trace: one arrival time per line
///   duration_hours = 1      # arrival horizon
///   warm_up_hours = 0.1     # measurement starts here
///   drain = on              # run to empty after the horizon
///   plan = policy           # policy | auto (per-job optimize_all)
///   plan_cache = off        # off | exact | quantized:<grid>; exact serves
///                           #   bit-identical plans for repeated inputs,
///                           #   quantized shares plans within geometric
///                           #   (1+grid)-ratio buckets (serve/plan_cache.h)
///   admission = on          # capacity-aware admission control
///   degrade_headroom = 1.0
///   reject_queue_factor = 4.0
///   nodes = @nodes          # bindable; uniform cluster of `containers`
///   containers = 8          #   per node (defaults to the preset cluster)
///   slow_fraction = 0.25    # optional speed-class axis: this fraction of
///   slow_speed = 0.5        #   the nodes runs at slow_speed (needs nodes)
///
/// With [arrivals], `r_min = baseline` is rejected: the baseline PoCD of a
/// pre-generated trace is a closed-system property; utility sweeps must
/// give a numeric r_min.
struct ManifestArrivals {
  trace::ArrivalSpec spec;  ///< rate overwritten per cell when bound
  Binding rate{.fixed = 0.1, .axis = {}};
  std::string file;  ///< kind = trace: source path (times pre-loaded)
  double duration_hours = 1.0;
  double warm_up_hours = 0.0;
  bool drain = true;
  bool auto_strategy = false;
  serve::PlanCacheConfig plan_cache;  ///< default: mode off
  bool admission_enabled = true;
  double degrade_headroom = 1.0;
  double reject_queue_factor = 4.0;
  std::optional<Binding> nodes;  ///< unset = preset cluster
  int containers = 8;

  /// Optional speed-class split of the explicit cluster: the first
  /// round(slow_fraction * nodes) nodes run at slow_speed, the rest at 1.0.
  /// Requires `nodes`; slow_fraction is axis-bindable so a sweep can walk
  /// the heterogeneity axis.
  std::optional<Binding> slow_fraction;
  double slow_speed = 0.5;
};

/// One [stage.N] section (N = 1, 2, ... contiguous): a deterministic stage
/// template appended after the sampled root stage, so every job of the cell
/// becomes an (N+1)-stage DAG. Shape fields are axis-bindable; `deps` lists
/// predecessor stage indices in final job numbering (0 = the sampled root),
/// empty meaning a barrier on the previous stage.
///
///   [stage.1]
///   tasks = 4
///   t_min = @t_min_reduce
///   beta = 1.6
///   deps = 0
struct ManifestStage {
  Binding tasks{.fixed = 1.0, .axis = {}};
  Binding t_min{.fixed = 1.0, .axis = {}};
  Binding beta{.fixed = 1.5, .axis = {}};
  std::vector<int> deps;
};

/// Optional [shard] section: defaults for process-level sharding, so a
/// cluster recipe ("run shard i/N on machine i, then merge") lives in the
/// manifest instead of every machine's command line. Never part of the
/// journal fingerprint — how a grid is split across processes must not
/// change its numbers.
struct ManifestShard {
  int count = 0;          ///< default shard count; 0 = unsharded
  std::string dir = "."; ///< shared directory for the per-shard journals
};

/// Everything a manifest declares. `spec` is fully validated; the remaining
/// fields parameterize the cell factory that make_hooks builds.
struct Manifest {
  SweepSpec spec;

  trace::TraceConfig trace;  ///< fixed trace-template fields
  std::optional<Binding> trace_beta;  ///< sets beta_lo = beta_hi per cell
  std::optional<Binding> trace_deadline_factor;  ///< sets factor lo = hi

  /// [stage.N] templates, in section order (stages[0] is [stage.1], the
  /// job's stage 1). Empty = single-stage jobs (the historical workload).
  std::vector<ManifestStage> stages;

  Binding planner_theta{.fixed = 1e-4, .axis = {}};
  std::optional<Binding> planner_tau_est_factor;
  std::optional<Binding> planner_tau_kill_factor;

  bool cluster_testbed = false;  ///< testbed vs large_scale harness config
  bool report_utility = false;
  RMinMode r_min_mode = RMinMode::kBaseline;
  double r_min_fixed = 0.0;
  double r_min_offset = 0.0;  ///< added to R_min (clamped at 0), cf. fig4

  ManifestOutputs outputs;
  ManifestShard shard;
  std::optional<ManifestArrivals> arrivals;  ///< open-system sweep when set
};

/// Parses manifest text. Throws PreconditionError with a line-numbered
/// message on any syntax or semantic problem (unknown section/key, bad
/// number, binding to a missing axis, ...).
Manifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file.
Manifest load_manifest(const std::string& path);

/// Builds the sweep hooks a manifest describes: a setup hook that generates
/// and plans each cell's trace once (resolving axis bindings, computing the
/// baseline R_min when asked) and a runner that wires the shared trace into
/// every replication.
SweepHooks make_hooks(const Manifest& manifest);

/// Canonical encoding of everything outside the SweepSpec that changes a
/// manifest sweep's numbers (trace/planner/experiment templates — not the
/// output paths). Pass it as SweepOptions::journal_salt so that editing
/// those sections invalidates an existing journal instead of silently
/// resuming from results of the old configuration.
std::string manifest_journal_salt(const Manifest& manifest);

}  // namespace chronos::exp
