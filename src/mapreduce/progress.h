// Progress observation and completion-time estimation (§VI-B).
//
// Two estimators are modelled:
//  - kHadoopNaive: Hadoop's default — assumes the attempt started processing
//    the moment it launched, dividing elapsed wall time by the progress
//    score. Systematically overestimates remaining time while the JVM is
//    starting up, producing false-positive stragglers.
//  - kChronos: the paper's estimator (Eq. 30) — measures the JVM startup as
//    the gap to the first progress report and extrapolates processing speed
//    from the (first report, now) progress delta.
//
// Observed progress carries measurement noise that shrinks as the attempt
// accumulates history; this reproduces the estimation-accuracy-vs-timeliness
// tradeoff of Tables I/II (early detection = noisy estimates = aggressive
// speculation).
#pragma once

#include "common/rng.h"
#include "mapreduce/job.h"

namespace chronos::mapreduce {

enum class EstimatorKind { kHadoopNaive, kChronos };

/// Multiplicative observation-noise model for progress scores.
struct ProgressNoiseConfig {
  double bias0 = 0.0;   ///< initial relative under-report of progress (>= 0)
  double sigma0 = 0.0;  ///< initial relative noise std-dev (>= 0)
  double decay = 20.0;  ///< seconds of history halving bias/variance (> 0)

  static ProgressNoiseConfig none() { return {0.0, 0.0, 20.0}; }
  /// Defaults calibrated to produce the Table I/II tradeoffs: early
  /// observations under-report progress strongly (JVM ramp-up), so early
  /// detection over-flags stragglers — high PoCD, high cost.
  static ProgressNoiseConfig realistic() { return {0.35, 0.25, 15.0}; }
};

/// A progress observation of a running attempt, as the AM would see it.
struct ProgressReport {
  bool available = false;   ///< false before the first report (JVM startup)
  double progress = 0.0;    ///< observed progress score in [0, 1]
  double time = 0.0;        ///< observation time
};

/// Observes the progress score of `attempt` at time `now`, applying the
/// noise model. Returns available == false while the JVM is starting.
ProgressReport observe_progress(const AttemptRecord& attempt, double now,
                                const ProgressNoiseConfig& noise, Rng& rng);

/// Sentinel returned when an estimator cannot produce a finite estimate
/// (no progress yet); treated as "will not finish".
double unknown_completion_time();

/// Estimates the absolute completion time of a running attempt at `now`.
/// `report` must be an observation taken at `now`; `attempt.reported` /
/// `first_report_*` supply the Eq. 30 inputs for the Chronos estimator.
/// Returns unknown_completion_time() when no estimate is possible.
double estimate_completion_time(const AttemptRecord& attempt,
                                const ProgressReport& report,
                                EstimatorKind kind);

/// Eq. 31: the byte offset (as a fraction of the split) from which resumed
/// attempts should start, anticipating the bytes the original attempt will
/// process while the new attempts' JVMs start. `observed_progress` is the
/// original attempt's progress score at detection time `now`.
double resume_offset(const AttemptRecord& attempt, double observed_progress,
                     double now);

}  // namespace chronos::mapreduce
