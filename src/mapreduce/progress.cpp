#include "mapreduce/progress.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace chronos::mapreduce {

ProgressReport observe_progress(const AttemptRecord& attempt, double now,
                                const ProgressNoiseConfig& noise, Rng& rng) {
  CHRONOS_EXPECTS(noise.bias0 >= 0.0 && noise.sigma0 >= 0.0,
                  "noise magnitudes must be non-negative");
  CHRONOS_EXPECTS(noise.decay > 0.0, "noise decay must be positive");
  ProgressReport report;
  report.time = now;
  if (!attempt.running() && !attempt.ended()) {
    return report;  // still waiting for a container
  }
  const double ready = attempt.launch_time + attempt.jvm_time;
  if (now < ready) {
    return report;  // JVM still starting: no progress report yet
  }
  const double truth = attempt.true_progress(now);
  // Noise decays as the attempt accumulates processing history; early
  // observations under-report progress (rate ramp-up), which makes naive
  // extrapolation overestimate completion time — the effect §VII-B reports.
  const double history = now - ready;
  const double shrink = noise.decay / (noise.decay + history);
  const double bias = noise.bias0 * shrink;
  const double sigma = noise.sigma0 * std::sqrt(shrink);
  const double factor = (1.0 - bias) * (1.0 + sigma * rng.normal());
  report.available = true;
  report.progress = std::clamp(truth * factor, 1e-6, 1.0);
  return report;
}

double unknown_completion_time() {
  return std::numeric_limits<double>::infinity();
}

namespace {

/// Progress within the attempt's own assigned work range, in [0, 1].
double within_work(double progress_score, double start_offset) {
  const double denom = 1.0 - start_offset;
  if (denom <= 0.0) {
    return 1.0;
  }
  return std::clamp((progress_score - start_offset) / denom, 0.0, 1.0);
}

}  // namespace

double estimate_completion_time(const AttemptRecord& attempt,
                                const ProgressReport& report,
                                EstimatorKind kind) {
  if (!report.available) {
    return unknown_completion_time();
  }
  const double now = report.time;
  const double cp = within_work(report.progress, attempt.start_offset);
  if (cp <= 0.0) {
    return unknown_completion_time();
  }
  if (cp >= 1.0) {
    return now;
  }
  switch (kind) {
    case EstimatorKind::kHadoopNaive: {
      // Hadoop default: elapsed wall time divided by progress — charges the
      // JVM startup as if it were data processing.
      const double elapsed = now - attempt.launch_time;
      return attempt.launch_time + elapsed / cp;
    }
    case EstimatorKind::kChronos: {
      if (!attempt.reported) {
        return unknown_completion_time();
      }
      const double t_fp = attempt.first_report_time;
      const double fp =
          within_work(attempt.first_report_progress, attempt.start_offset);
      if (cp - fp <= 1e-9) {
        return unknown_completion_time();
      }
      // Eq. 30 generalized to a non-zero first-report progress: the
      // remaining (1 - fp) of the work takes (now - t_fp) * (1-fp)/(cp-fp).
      return t_fp + (now - t_fp) * (1.0 - fp) / (cp - fp);
    }
  }
  CHRONOS_ENSURES(false, "unknown estimator kind");
}

double resume_offset(const AttemptRecord& attempt, double observed_progress,
                     double now) {
  CHRONOS_EXPECTS(observed_progress >= 0.0 && observed_progress <= 1.0,
                  "progress score must lie in [0, 1]");
  // b_est: fraction processed so far. b_extra (Eq. 31): the fraction the
  // original will process while a new attempt's JVM starts, estimated from
  // the measured processing rate and the measured JVM startup time
  // (t_FP - t_lau).
  const double b_est = observed_progress;
  double b_extra = 0.0;
  if (attempt.reported) {
    const double jvm = attempt.first_report_time - attempt.launch_time;
    const double processing = now - attempt.first_report_time;
    if (processing > 1e-9) {
      b_extra = b_est / processing * jvm;
    }
  }
  return std::clamp(b_est + b_extra, 0.0, 1.0);
}

}  // namespace chronos::mapreduce
