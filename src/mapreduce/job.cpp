#include "mapreduce/job.h"

#include <algorithm>
#include <cstddef>

#include "common/error.h"

namespace chronos::mapreduce {

void JobSpec::add_reduce_stage(int reduce_tasks, double reduce_t_min,
                               double reduce_beta, long long reduce_r,
                               double reduce_tau_est, double reduce_tau_kill) {
  CHRONOS_EXPECTS(!stages.empty(),
                  "JobSpec: add_reduce_stage needs an existing map stage");
  const StageSpec& map = stages.front();
  StageSpec reduce;
  reduce.num_tasks = reduce_tasks;
  reduce.t_min = reduce_t_min > 0.0 ? reduce_t_min : map.t_min;
  reduce.beta = reduce_beta > 0.0 ? reduce_beta : map.beta;
  reduce.r = reduce_r >= 0 ? reduce_r : map.r;
  reduce.tau_est = reduce_tau_est >= 0.0 ? reduce_tau_est : map.tau_est;
  reduce.tau_kill = reduce_tau_kill >= 0.0 ? reduce_tau_kill : map.tau_kill;
  // deps left empty: the barrier-chain default makes the new stage wait on
  // the previous one, which is exactly the historical shuffle barrier.
  stages.push_back(std::move(reduce));
}

void JobSpec::validate() const {
  CHRONOS_EXPECTS(deadline > 0.0, "JobSpec: deadline must be positive");
  CHRONOS_EXPECTS(price >= 0.0, "JobSpec: price must be non-negative");
  CHRONOS_EXPECTS(jvm_mean >= 0.0, "JobSpec: jvm_mean must be non-negative");
  CHRONOS_EXPECTS(jvm_jitter >= 0.0 && jvm_jitter <= jvm_mean + 1e-12,
                  "JobSpec: jvm_jitter must lie in [0, jvm_mean]");
  CHRONOS_EXPECTS(!stages.empty(), "JobSpec: job needs at least one stage");
  for (int s = 0; s < num_stages(); ++s) {
    const StageSpec& st = stage(s);
    CHRONOS_EXPECTS(st.num_tasks >= 1, "StageSpec: num_tasks must be >= 1");
    CHRONOS_EXPECTS(st.t_min > 0.0, "StageSpec: t_min must be positive");
    CHRONOS_EXPECTS(st.beta > 0.0, "StageSpec: beta must be positive");
    CHRONOS_EXPECTS(st.tau_est >= 0.0,
                    "StageSpec: tau_est must be non-negative");
    CHRONOS_EXPECTS(st.tau_kill >= st.tau_est,
                    "StageSpec: tau_kill must be >= tau_est");
    CHRONOS_EXPECTS(st.r >= 0, "StageSpec: r must be non-negative");
    // Deps must reference strictly earlier stages (so the stage index order
    // is a topological order by construction) and must not repeat.
    for (std::size_t i = 0; i < st.deps.size(); ++i) {
      CHRONOS_EXPECTS(st.deps[i] >= 0 && st.deps[i] < s,
                      "StageSpec: deps must reference earlier stages");
      for (std::size_t j = 0; j < i; ++j) {
        CHRONOS_EXPECTS(st.deps[j] != st.deps[i],
                        "StageSpec: deps must not repeat");
      }
    }
  }
}

double AttemptRecord::true_progress(double now) const {
  if (state == AttemptState::kWaiting || now <= launch_time + jvm_time) {
    return start_offset;
  }
  const double elapsed_work = now - launch_time - jvm_time;
  if (work_duration <= 0.0) {
    return 1.0;
  }
  const double fraction = std::min(1.0, elapsed_work / work_duration);
  return start_offset + (1.0 - start_offset) * fraction;
}

}  // namespace chronos::mapreduce
