#include "mapreduce/job.h"

#include <algorithm>

#include "common/error.h"

namespace chronos::mapreduce {

void JobSpec::validate() const {
  CHRONOS_EXPECTS(num_tasks >= 1, "JobSpec: num_tasks must be >= 1");
  CHRONOS_EXPECTS(t_min > 0.0, "JobSpec: t_min must be positive");
  CHRONOS_EXPECTS(beta > 0.0, "JobSpec: beta must be positive");
  CHRONOS_EXPECTS(deadline > 0.0, "JobSpec: deadline must be positive");
  CHRONOS_EXPECTS(tau_est >= 0.0, "JobSpec: tau_est must be non-negative");
  CHRONOS_EXPECTS(tau_kill >= tau_est, "JobSpec: tau_kill must be >= tau_est");
  CHRONOS_EXPECTS(r >= 0, "JobSpec: r must be non-negative");
  CHRONOS_EXPECTS(price >= 0.0, "JobSpec: price must be non-negative");
  CHRONOS_EXPECTS(jvm_mean >= 0.0, "JobSpec: jvm_mean must be non-negative");
  CHRONOS_EXPECTS(jvm_jitter >= 0.0 && jvm_jitter <= jvm_mean + 1e-12,
                  "JobSpec: jvm_jitter must lie in [0, jvm_mean]");
  CHRONOS_EXPECTS(reduce_tasks >= 0,
                  "JobSpec: reduce_tasks must be non-negative");
  if (reduce_tasks > 0) {
    CHRONOS_EXPECTS(effective_reduce_t_min() > 0.0,
                    "JobSpec: reduce t_min must be positive");
    CHRONOS_EXPECTS(effective_reduce_beta() > 0.0,
                    "JobSpec: reduce beta must be positive");
    CHRONOS_EXPECTS(
        effective_reduce_tau_kill() >= effective_reduce_tau_est(),
        "JobSpec: reduce tau_kill must be >= reduce tau_est");
  }
}

double AttemptRecord::true_progress(double now) const {
  if (state == AttemptState::kWaiting || now <= launch_time + jvm_time) {
    return start_offset;
  }
  const double elapsed_work = now - launch_time - jvm_time;
  if (work_duration <= 0.0) {
    return 1.0;
  }
  const double fraction = std::min(1.0, elapsed_work / work_duration);
  return start_offset + (1.0 - start_offset) * fraction;
}

}  // namespace chronos::mapreduce
