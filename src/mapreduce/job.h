// Job / task / attempt data model for the simulated MapReduce engine.
//
// Mirrors the Hadoop YARN entities of §VI: an application master creates
// tasks for a submitted job, asks the cluster (RM) for containers, launches
// attempts in them (paying a JVM startup delay), monitors progress scores,
// and kills or speculates attempts per the active strategy.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/event_queue.h"

namespace chronos::mapreduce {

/// Static description of one job, produced by the workload/trace generators.
struct JobSpec {
  int job_id = 0;
  int num_tasks = 1;
  double deadline = 0.0;    ///< relative to job submission
  double t_min = 1.0;       ///< Pareto scale of attempt execution time
  double beta = 1.5;        ///< Pareto tail index of attempt execution time
  double tau_est = 0.0;     ///< straggler-detection time (Chronos strategies)
  double tau_kill = 0.0;    ///< kill time (Chronos strategies)
  long long r = 0;          ///< extra attempts chosen by the optimizer
  double price = 1.0;       ///< VM price per machine-second at submission
  double jvm_mean = 0.0;    ///< mean JVM startup delay (0 = instant)
  double jvm_jitter = 0.0;  ///< +- uniform jitter around jvm_mean

  // Optional reduce stage (the paper optimizes map and reduce separately;
  // §III analyses one stage at a time). Reduce tasks launch when every map
  // task has completed (shuffle barrier).
  int reduce_tasks = 0;         ///< 0 = map-only job
  double reduce_t_min = 0.0;    ///< 0 = inherit t_min
  double reduce_beta = 0.0;     ///< 0 = inherit beta
  long long reduce_r = -1;      ///< -1 = inherit r
  double reduce_tau_est = -1.0;   ///< -1 = inherit; relative to stage start
  double reduce_tau_kill = -1.0;  ///< -1 = inherit; relative to stage start

  /// Effective reduce-stage parameters after inheritance.
  double effective_reduce_t_min() const {
    return reduce_t_min > 0.0 ? reduce_t_min : t_min;
  }
  double effective_reduce_beta() const {
    return reduce_beta > 0.0 ? reduce_beta : beta;
  }
  long long effective_reduce_r() const { return reduce_r >= 0 ? reduce_r : r; }
  double effective_reduce_tau_est() const {
    return reduce_tau_est >= 0.0 ? reduce_tau_est : tau_est;
  }
  double effective_reduce_tau_kill() const {
    return reduce_tau_kill >= 0.0 ? reduce_tau_kill : tau_kill;
  }

  int total_tasks() const { return num_tasks + reduce_tasks; }

  void validate() const;
};

enum class AttemptState {
  kWaiting,   ///< queued for a container
  kRunning,   ///< granted; executing (JVM startup included)
  kFinished,  ///< processed its assigned byte range
  kKilled,    ///< killed by the strategy or by task completion
  kFailed,    ///< crashed (node/VM failure); the scheduler retries the task
};

/// One execution attempt of a task.
struct AttemptRecord {
  int attempt_id = 0;       ///< index within the job's attempt table
  int task_index = 0;
  AttemptState state = AttemptState::kWaiting;
  int node = -1;

  double request_time = 0.0;   ///< when the container was requested
  double launch_time = 0.0;    ///< when the container was granted
  double jvm_time = 0.0;       ///< startup delay before any progress
  double work_duration = 0.0;  ///< time to process the assigned range
  double start_offset = 0.0;   ///< fraction of the split already processed
  double end_time = 0.0;       ///< finish or kill time (valid once ended)

  // First progress report (drives the Chronos estimator, Eq. 30).
  bool reported = false;
  double first_report_time = 0.0;
  double first_report_progress = 0.0;

  sim::EventId finish_event;

  /// True fraction of the task's split processed at time `now`
  /// (start_offset until the JVM is up, then linear to 1).
  double true_progress(double now) const;

  /// Absolute finish time (launch + jvm + work); valid once running.
  double planned_finish() const {
    return launch_time + jvm_time + work_duration;
  }

  bool running() const { return state == AttemptState::kRunning; }
  bool ended() const {
    return state == AttemptState::kFinished ||
           state == AttemptState::kKilled || state == AttemptState::kFailed;
  }
};

/// One map task (one input split).
struct TaskRecord {
  std::vector<int> attempt_ids;
  bool completed = false;
  double completion_time = 0.0;  ///< relative to job submission
  int winner_attempt = -1;
  int extra_attempts_launched = 0;  ///< speculative copies beyond the first
};

/// Runtime state of a submitted job.
struct JobRecord {
  JobSpec spec;
  double submit_time = 0.0;
  std::vector<TaskRecord> tasks;  ///< map tasks first, then reduce tasks
  std::vector<AttemptRecord> attempts;
  int tasks_completed = 0;
  bool done = false;
  bool reduce_started = false;
  double reduce_stage_start = 0.0;  ///< valid once reduce_started
  double completion_time = 0.0;  ///< relative to submission
  double machine_time = 0.0;     ///< accrued VM seconds
  int attempts_launched = 0;
  int attempts_killed = 0;
  int attempts_failed = 0;  ///< crashes injected by the failure model

  bool all_tasks_done() const {
    return tasks_completed == static_cast<int>(tasks.size());
  }

  /// True when `task` indexes into the reduce stage.
  bool is_reduce_task(int task) const { return task >= spec.num_tasks; }

  int map_tasks_completed() const {
    int count = 0;
    for (int t = 0; t < spec.num_tasks; ++t) {
      count += tasks[static_cast<std::size_t>(t)].completed ? 1 : 0;
    }
    return count;
  }
};

}  // namespace chronos::mapreduce
