// Job / task / attempt data model for the simulated MapReduce engine.
//
// Mirrors the Hadoop YARN entities of §VI: an application master creates
// tasks for a submitted job, asks the cluster (RM) for containers, launches
// attempts in them (paying a JVM startup delay), monitors progress scores,
// and kills or speculates attempts per the active strategy.
//
// Jobs are staged DAGs: a JobSpec carries one StageSpec per stage (the
// paper's §III analysis is explicitly per-stage — "PoCD for map and reduce
// stages can be optimized separately"), and a stage launches only when all
// of its predecessor stages have completed. The default dependency shape is
// the barrier chain (stage s waits on stage s-1), which reproduces the
// classic map -> shuffle -> reduce semantics; explicit dependency lists
// enable fan-in / fan-out pipelines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace chronos::mapreduce {

/// One stage of a job: a bag of identical tasks under one Pareto duration
/// law, with its own speculation plan. Timer fields are relative to the
/// stage's start (for stage 0 that is the job submission).
struct StageSpec {
  int num_tasks = 1;
  double t_min = 1.0;       ///< Pareto scale of attempt execution time
  double beta = 1.5;        ///< Pareto tail index of attempt execution time
  double tau_est = 0.0;     ///< straggler-detection time (Chronos strategies)
  double tau_kill = 0.0;    ///< kill time (Chronos strategies)
  long long r = 0;          ///< extra attempts chosen by the optimizer

  /// Predecessor stage indices. Empty = the default barrier chain: stage 0
  /// is a root, stage s depends on stage s-1 (today's shuffle barrier).
  /// Explicit lists enable fan-in / fan-out DAGs; every entry must name an
  /// earlier stage, so stage order is a topological order by construction.
  std::vector<int> deps;

  friend bool operator==(const StageSpec&, const StageSpec&) = default;
};

/// Static description of one job, produced by the workload/trace generators.
struct JobSpec {
  int job_id = 0;
  double deadline = 0.0;    ///< whole-DAG deadline, relative to submission
  double price = 1.0;       ///< VM price per machine-second at submission
  double jvm_mean = 0.0;    ///< mean JVM startup delay (0 = instant)
  double jvm_jitter = 0.0;  ///< +- uniform jitter around jvm_mean

  /// The stage vector — the single source of truth for the job's shape.
  /// Defaults to one map stage; every consumer resolves stages through the
  /// accessors below (there is no parallel scalar view to fall out of sync).
  std::vector<StageSpec> stages = {StageSpec{}};

  int num_stages() const { return static_cast<int>(stages.size()); }

  StageSpec& stage(int s) { return stages[static_cast<std::size_t>(s)]; }
  const StageSpec& stage(int s) const {
    return stages[static_cast<std::size_t>(s)];
  }

  int total_tasks() const {
    int total = 0;
    for (const StageSpec& st : stages) {
      total += st.num_tasks;
    }
    return total;
  }

  /// Task-index offset of stage `s`: tasks are laid out stage-major, so
  /// stage s owns [first_task(s), first_task(s) + stage(s).num_tasks).
  int first_task(int s) const {
    int offset = 0;
    for (int i = 0; i < s; ++i) {
      offset += stage(i).num_tasks;
    }
    return offset;
  }

  /// Stage that owns task index `task`.
  int stage_of_task(int task) const {
    int s = 0;
    while (task >= stage(s).num_tasks) {
      task -= stage(s).num_tasks;
      ++s;
    }
    return s;
  }

  /// The stage's predecessors with the barrier-chain default applied:
  /// explicit deps when given, otherwise {s - 1} (and {} for stage 0).
  std::vector<int> resolved_deps(int s) const {
    if (!stage(s).deps.empty()) {
      return stage(s).deps;
    }
    if (s == 0) {
      return {};
    }
    return {s - 1};
  }

  /// Legacy map+optional-reduce constructor: appends a reduce stage behind
  /// the shuffle barrier, resolving the historical inheritance sentinels
  /// (0 = inherit t_min/beta from the map stage, -1 = inherit r/taus) at
  /// construction time. Thin shim onto the staged form — after this call
  /// the job is an ordinary two-stage chain.
  void add_reduce_stage(int reduce_tasks, double reduce_t_min = 0.0,
                        double reduce_beta = 0.0, long long reduce_r = -1,
                        double reduce_tau_est = -1.0,
                        double reduce_tau_kill = -1.0);

  void validate() const;
};

enum class AttemptState {
  kWaiting,   ///< queued for a container
  kRunning,   ///< granted; executing (JVM startup included)
  kFinished,  ///< processed its assigned byte range
  kKilled,    ///< killed by the strategy or by task completion
  kFailed,    ///< crashed (node/VM failure); the scheduler retries the task
};

/// One execution attempt of a task.
struct AttemptRecord {
  int attempt_id = 0;       ///< index within the job's attempt table
  int task_index = 0;
  AttemptState state = AttemptState::kWaiting;
  int node = -1;

  double request_time = 0.0;   ///< when the container was requested
  double launch_time = 0.0;    ///< when the container was granted
  double jvm_time = 0.0;       ///< startup delay before any progress
  double work_duration = 0.0;  ///< time to process the assigned range
  double start_offset = 0.0;   ///< fraction of the split already processed
  double end_time = 0.0;       ///< finish or kill time (valid once ended)

  // First progress report (drives the Chronos estimator, Eq. 30).
  bool reported = false;
  double first_report_time = 0.0;
  double first_report_progress = 0.0;

  sim::EventId finish_event;

  /// True fraction of the task's split processed at time `now`
  /// (start_offset until the JVM is up, then linear to 1).
  double true_progress(double now) const;

  /// Absolute finish time (launch + jvm + work); valid once running.
  double planned_finish() const {
    return launch_time + jvm_time + work_duration;
  }

  bool running() const { return state == AttemptState::kRunning; }
  bool ended() const {
    return state == AttemptState::kFinished ||
           state == AttemptState::kKilled || state == AttemptState::kFailed;
  }
};

/// One task (one input split).
struct TaskRecord {
  std::vector<int> attempt_ids;
  bool completed = false;
  double completion_time = 0.0;  ///< relative to job submission
  int winner_attempt = -1;
  int extra_attempts_launched = 0;  ///< speculative copies beyond the first
};

/// Runtime state of a submitted job.
struct JobRecord {
  JobSpec spec;
  double submit_time = 0.0;
  std::vector<TaskRecord> tasks;  ///< stage-major: stage 0's tasks first
  std::vector<AttemptRecord> attempts;
  int tasks_completed = 0;
  bool done = false;

  // Per-stage runtime state, parallel to spec.stages.
  std::vector<std::uint8_t> stage_started;
  std::vector<double> stage_start_time;  ///< absolute; valid once started
  std::vector<int> stage_tasks_completed;

  double completion_time = 0.0;  ///< relative to submission
  double machine_time = 0.0;     ///< accrued VM seconds
  int attempts_launched = 0;
  int attempts_killed = 0;
  int attempts_failed = 0;  ///< crashes injected by the failure model

  bool all_tasks_done() const {
    return tasks_completed == static_cast<int>(tasks.size());
  }

  /// Stage that owns `task` (delegates to the spec's stage-major layout).
  int stage_of_task(int task) const { return spec.stage_of_task(task); }

  bool stage_done(int s) const {
    return stage_tasks_completed[static_cast<std::size_t>(s)] ==
           spec.stage(s).num_tasks;
  }
};

}  // namespace chronos::mapreduce
