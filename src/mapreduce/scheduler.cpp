#include "mapreduce/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace chronos::mapreduce {

Scheduler::Scheduler(sim::Simulator& simulator, sim::Cluster& cluster,
                     SpeculationPolicy& policy, SchedulerConfig config,
                     Rng rng)
    : simulator_(simulator),
      cluster_(cluster),
      policy_(policy),
      config_(config),
      rng_(rng),
      api_(std::make_unique<SchedulerApi>(*this)) {
  if (config_.failures.rate > 0.0) {
    crash_sampler_.emplace(config_.failures.rate);
  }
  metrics_.set_retain_outcomes(config_.retain_outcomes);
}

void Scheduler::compact_job(int job) {
  auto& record = job_mut(job);
  CHRONOS_EXPECTS(record.done, "compact_job requires a completed job");
  record.attempts.clear();
  record.attempts.shrink_to_fit();
  for (auto& task : record.tasks) {
    task.attempt_ids.clear();
    task.attempt_ids.shrink_to_fit();
  }
}

const JobRecord& Scheduler::job(int job) const {
  CHRONOS_EXPECTS(job >= 0 && job < num_jobs(), "job index out of range");
  return jobs_[static_cast<std::size_t>(job)];
}

JobRecord& Scheduler::job_mut(int job) {
  CHRONOS_EXPECTS(job >= 0 && job < num_jobs(), "job index out of range");
  return jobs_[static_cast<std::size_t>(job)];
}

int Scheduler::submit(const JobSpec& spec) {
  spec.validate();
  const int job_index = num_jobs();
  JobRecord record;
  record.spec = spec;
  record.submit_time = simulator_.now();
  // Tasks are laid out stage-major: stage s owns
  // [first_task(s), first_task(s) + stage(s).num_tasks).
  record.tasks.resize(static_cast<std::size_t>(spec.total_tasks()));
  const auto stages = static_cast<std::size_t>(spec.num_stages());
  record.stage_started.assign(stages, 0);
  record.stage_start_time.assign(stages, 0.0);
  record.stage_tasks_completed.assign(stages, 0);
  jobs_.push_back(std::move(record));
  std::vector<ParetoSampler> samplers;
  samplers.reserve(stages);
  for (const StageSpec& st : spec.stages) {
    samplers.emplace_back(st.t_min, st.beta);
  }
  job_samplers_.push_back(std::move(samplers));

  // Capacity hint: every task gets its stage's initial attempts (one
  // finish/crash event each) plus up to its stage's r speculative ones.
  // Crash retries can still exceed this; the queue grows geometrically.
  std::size_t event_hint = 0;
  for (int s = 0; s < spec.num_stages(); ++s) {
    const int copies = std::max(1, policy_.initial_attempts(spec, s));
    event_hint += static_cast<std::size_t>(spec.stage(s).num_tasks) *
                  static_cast<std::size_t>(copies + spec.stage(s).r);
  }
  simulator_.reserve_events(event_hint);
  start_stage(job_index, 0);
  policy_.on_job_start(job_index, *api_);
  return job_index;
}

void Scheduler::start_stage(int job, int stage) {
  auto& record = job_mut(job);
  record.stage_started[static_cast<std::size_t>(stage)] = 1;
  record.stage_start_time[static_cast<std::size_t>(stage)] = simulator_.now();
  const int copies = std::max(1, policy_.initial_attempts(record.spec, stage));
  const int first = record.spec.first_task(stage);
  const int last = first + record.spec.stage(stage).num_tasks;
  for (int task = first; task < last; ++task) {
    for (int copy = 0; copy < copies; ++copy) {
      launch_attempt(job, task, 0.0);
    }
    if (copies > 1) {
      // Only the first copy is the "original"; the rest are speculative.
      job_mut(job).tasks[static_cast<std::size_t>(task)]
          .extra_attempts_launched += copies - 1;
    }
  }
  policy_.on_stage_start(job, stage, *api_);
}

void Scheduler::maybe_start_stages(int job) {
  auto& record = job_mut(job);
  for (int s = 1; s < record.spec.num_stages(); ++s) {
    if (record.stage_started[static_cast<std::size_t>(s)]) {
      continue;
    }
    bool ready = true;
    for (const int dep : record.spec.resolved_deps(s)) {
      if (!record.stage_done(dep)) {
        ready = false;
        break;
      }
    }
    if (ready) {
      start_stage(job, s);
    }
  }
}

int Scheduler::launch_attempt(int job, int task, double offset) {
  auto& record = job_mut(job);
  CHRONOS_EXPECTS(task >= 0 && task < record.spec.total_tasks(),
                  "task index out of range");
  CHRONOS_EXPECTS(offset >= 0.0 && offset < 1.0,
                  "resume offset must lie in [0, 1)");
  const int attempt_id = static_cast<int>(record.attempts.size());
  AttemptRecord attempt;
  attempt.attempt_id = attempt_id;
  attempt.task_index = task;
  attempt.state = AttemptState::kWaiting;
  attempt.request_time = simulator_.now();
  attempt.start_offset = offset;
  record.attempts.push_back(attempt);
  record.tasks[static_cast<std::size_t>(task)].attempt_ids.push_back(
      attempt_id);
  ++record.attempts_launched;

  cluster_.request_container([this, job, attempt_id](int node) {
    on_container_granted(job, attempt_id, node);
  });
  return attempt_id;
}

void Scheduler::on_container_granted(int job, int attempt_id, int node) {
  auto& record = job_mut(job);
  if (attempt_id >= static_cast<int>(record.attempts.size())) {
    // The attempt was killed while queued and the job has since been
    // compacted away; only the cluster's grant callback survived.
    cluster_.release_container(node);
    return;
  }
  auto& attempt = record.attempts[static_cast<std::size_t>(attempt_id)];
  if (attempt.state != AttemptState::kWaiting) {
    // Killed while queued (or the task finished): return the container.
    cluster_.release_container(node);
    return;
  }
  attempt.state = AttemptState::kRunning;
  attempt.node = node;
  attempt.launch_time = simulator_.now();

  const auto& spec = record.spec;
  // Total execution time of a full-split attempt follows the stage's Pareto
  // law, scaled by the node's contention slowdown (§VII-A observed the
  // combined distribution is Pareto with beta < 2).
  const auto& samplers = job_samplers_[static_cast<std::size_t>(job)];
  const ParetoSampler& stage = samplers[static_cast<std::size_t>(
      record.stage_of_task(attempt.task_index))];
  const double slowdown = cluster_.sample_slowdown(node, rng_);
  const double total = stage(rng_) * slowdown;
  double jvm = 0.0;
  if (spec.jvm_mean > 0.0) {
    jvm = std::max(0.0, rng_.uniform(spec.jvm_mean - spec.jvm_jitter,
                                     spec.jvm_mean + spec.jvm_jitter));
    // The JVM startup is part of the attempt's execution time; never let it
    // consume the entire sampled duration.
    jvm = std::min(jvm, 0.9 * total);
  }
  const double full_work = total - jvm;
  attempt.jvm_time = jvm;
  attempt.work_duration = (1.0 - attempt.start_offset) * full_work;

  // Failure injection: the attempt crashes before finishing when an
  // exponential crash clock fires first.
  if (crash_sampler_) {
    const double crash_after = (*crash_sampler_)(rng_);
    if (attempt.launch_time + crash_after < attempt.planned_finish()) {
      attempt.finish_event = simulator_.at(
          attempt.launch_time + crash_after,
          [this, job, attempt_id] { on_attempt_failed(job, attempt_id); });
      return;
    }
  }
  attempt.finish_event = simulator_.at(
      attempt.planned_finish(),
      [this, job, attempt_id] { on_attempt_finished(job, attempt_id); });
}

void Scheduler::on_attempt_failed(int job, int attempt_id) {
  auto& record = job_mut(job);
  auto& attempt = record.attempts[static_cast<std::size_t>(attempt_id)];
  CHRONOS_ENSURES(attempt.state == AttemptState::kRunning,
                  "crash event fired for a non-running attempt");
  const int task = attempt.task_index;
  const double offset =
      config_.failures.lose_partial_output ? 0.0 : attempt.start_offset;
  end_attempt(job, attempt_id, AttemptState::kFailed);
  ++record.attempts_failed;
  // Hadoop retries failed attempts; keep the task alive with a fresh copy
  // (only when no sibling attempt is still working on it).
  const auto& task_record = record.tasks[static_cast<std::size_t>(task)];
  if (task_record.completed) {
    return;
  }
  bool sibling_active = false;
  for (const int id : task_record.attempt_ids) {
    if (!record.attempts[static_cast<std::size_t>(id)].ended()) {
      sibling_active = true;
      break;
    }
  }
  if (!sibling_active) {
    launch_attempt(job, task, offset);
  }
}

void Scheduler::on_attempt_finished(int job, int attempt_id) {
  auto& record = job_mut(job);
  auto& attempt = record.attempts[static_cast<std::size_t>(attempt_id)];
  CHRONOS_ENSURES(attempt.state == AttemptState::kRunning,
                  "finish event fired for a non-running attempt");
  end_attempt(job, attempt_id, AttemptState::kFinished);
  complete_task(job, attempt.task_index, attempt_id);
}

void Scheduler::kill_attempt(int job, int attempt_id) {
  auto& record = job_mut(job);
  CHRONOS_EXPECTS(
      attempt_id >= 0 &&
          attempt_id < static_cast<int>(record.attempts.size()),
      "attempt id out of range");
  auto& attempt = record.attempts[static_cast<std::size_t>(attempt_id)];
  if (attempt.ended()) {
    return;
  }
  if (attempt.state == AttemptState::kRunning) {
    simulator_.cancel(attempt.finish_event);
    end_attempt(job, attempt_id, AttemptState::kKilled);
  } else {
    // Still waiting: mark killed; the pending grant callback will return the
    // container immediately.
    attempt.state = AttemptState::kKilled;
    attempt.end_time = simulator_.now();
  }
  ++record.attempts_killed;
}

void Scheduler::end_attempt(int job, int attempt_id,
                            AttemptState final_state) {
  auto& record = job_mut(job);
  auto& attempt = record.attempts[static_cast<std::size_t>(attempt_id)];
  CHRONOS_ENSURES(attempt.state == AttemptState::kRunning,
                  "end_attempt on a non-running attempt");
  attempt.state = final_state;
  attempt.end_time = simulator_.now();
  record.machine_time += attempt.end_time - attempt.launch_time;
  cluster_.release_container(attempt.node);
}

void Scheduler::complete_task(int job, int task, int winner_attempt) {
  auto& record = job_mut(job);
  auto& task_record = record.tasks[static_cast<std::size_t>(task)];
  if (task_record.completed) {
    return;  // a sibling attempt already finished
  }
  task_record.completed = true;
  task_record.winner_attempt = winner_attempt;
  task_record.completion_time = simulator_.now() - record.submit_time;
  ++record.tasks_completed;
  ++record.stage_tasks_completed[static_cast<std::size_t>(
      record.stage_of_task(task))];
  // Hadoop kills the remaining attempts of a completed task.
  for (const int sibling : task_record.attempt_ids) {
    if (sibling != winner_attempt) {
      kill_attempt(job, sibling);
    }
  }
  policy_.on_task_completed(job, task, *api_);
  maybe_start_stages(job);
  maybe_complete_job(job);
}

void Scheduler::maybe_complete_job(int job) {
  auto& record = job_mut(job);
  if (record.done || !record.all_tasks_done()) {
    return;
  }
  record.done = true;
  record.completion_time = simulator_.now() - record.submit_time;

  sim::JobOutcome outcome;
  outcome.job_id = record.spec.job_id;
  outcome.met_deadline = record.completion_time <= record.spec.deadline;
  outcome.completion_time = record.completion_time;
  outcome.deadline = record.spec.deadline;
  outcome.machine_time = record.machine_time;
  outcome.cost = record.machine_time * record.spec.price;
  outcome.r_used = record.spec.stage(0).r;
  outcome.attempts_launched = record.attempts_launched;
  outcome.attempts_killed = record.attempts_killed;
  outcome.attempts_failed = record.attempts_failed;
  metrics_.record(outcome);

  policy_.on_job_completed(job, *api_);
}

// ---------------------------------------------------------------------------
// SchedulerApi

double SchedulerApi::now() const { return scheduler_.simulator_.now(); }

Rng& SchedulerApi::rng() { return scheduler_.rng_; }

const JobSpec& SchedulerApi::spec(int job) const {
  return scheduler_.job(job).spec;
}

const JobRecord& SchedulerApi::job(int job) const {
  return scheduler_.job(job);
}

double SchedulerApi::job_time(int job) const {
  return now() - scheduler_.job(job).submit_time;
}

std::vector<int> SchedulerApi::incomplete_tasks(int job) const {
  const auto& record = scheduler_.job(job);
  std::vector<int> tasks;
  for (int t = 0; t < record.spec.total_tasks(); ++t) {
    if (!record.tasks[static_cast<std::size_t>(t)].completed) {
      tasks.push_back(t);
    }
  }
  return tasks;
}

std::vector<int> SchedulerApi::incomplete_stage_tasks(int job,
                                                      int stage) const {
  const auto& record = scheduler_.job(job);
  std::vector<int> tasks;
  const int first = record.spec.first_task(stage);
  const int last = first + record.spec.stage(stage).num_tasks;
  for (int t = first; t < last; ++t) {
    if (!record.tasks[static_cast<std::size_t>(t)].completed) {
      tasks.push_back(t);
    }
  }
  return tasks;
}

std::vector<int> SchedulerApi::active_attempts(int job, int task) const {
  const auto& record = scheduler_.job(job);
  CHRONOS_EXPECTS(task >= 0 && task < record.spec.total_tasks(),
                  "task index out of range");
  std::vector<int> active;
  for (const int id :
       record.tasks[static_cast<std::size_t>(task)].attempt_ids) {
    if (!record.attempts[static_cast<std::size_t>(id)].ended()) {
      active.push_back(id);
    }
  }
  return active;
}

const AttemptRecord& SchedulerApi::attempt(int job, int attempt_id) const {
  const auto& record = scheduler_.job(job);
  CHRONOS_EXPECTS(
      attempt_id >= 0 &&
          attempt_id < static_cast<int>(record.attempts.size()),
      "attempt id out of range");
  return record.attempts[static_cast<std::size_t>(attempt_id)];
}

ProgressReport SchedulerApi::observe(int job, int attempt_id) {
  auto& record = scheduler_.job_mut(job);
  auto& att = record.attempts[static_cast<std::size_t>(attempt_id)];
  const auto report = observe_progress(att, now(), scheduler_.config_.noise,
                                       scheduler_.rng_);
  if (report.available && !att.reported) {
    // The first heartbeat carrying progress arrives as soon as the JVM is
    // up; the Chronos estimator anchors its startup correction there
    // (Eq. 30: t_FP). Progress at that instant is the resume offset.
    att.reported = true;
    att.first_report_time = att.launch_time + att.jvm_time;
    att.first_report_progress = att.start_offset;
  }
  return report;
}

double SchedulerApi::estimate_completion(int job, int attempt_id) {
  return estimate_completion(job, attempt_id,
                             scheduler_.config_.estimator);
}

double SchedulerApi::estimate_completion(int job, int attempt_id,
                                         EstimatorKind kind) {
  const auto report = observe(job, attempt_id);
  return estimate_completion_time(attempt(job, attempt_id), report, kind);
}

int SchedulerApi::launch_extra_attempt(int job, int task, double offset) {
  auto& record = scheduler_.job_mut(job);
  CHRONOS_EXPECTS(task >= 0 && task < record.spec.total_tasks(),
                  "task index out of range");
  ++record.tasks[static_cast<std::size_t>(task)].extra_attempts_launched;
  return scheduler_.launch_attempt(job, task, offset);
}

void SchedulerApi::kill_attempt(int job, int attempt_id) {
  scheduler_.kill_attempt(job, attempt_id);
}

void SchedulerApi::keep_best_progress(int job, int task) {
  const auto active = active_attempts(job, task);
  if (active.size() < 2) {
    return;
  }
  int best = active.front();
  double best_progress = -1.0;
  for (const int id : active) {
    const auto report = observe(job, id);
    const double progress = report.available ? report.progress : 0.0;
    if (progress > best_progress) {
      best_progress = progress;
      best = id;
    }
  }
  for (const int id : active) {
    if (id != best) {
      kill_attempt(job, id);
    }
  }
}

void SchedulerApi::keep_best_estimate(int job, int task) {
  const auto active = active_attempts(job, task);
  if (active.size() < 2) {
    return;
  }
  int best = active.front();
  double best_estimate = std::numeric_limits<double>::infinity();
  for (const int id : active) {
    const double estimate = estimate_completion(job, id);
    if (estimate < best_estimate) {
      best_estimate = estimate;
      best = id;
    }
  }
  for (const int id : active) {
    if (id != best) {
      kill_attempt(job, id);
    }
  }
}

double SchedulerApi::resume_offset_for(int job, int attempt_id) {
  const auto report = observe(job, attempt_id);
  const double progress = report.available ? report.progress : 0.0;
  if (!scheduler_.config_.anticipate_resume_offset) {
    // Ablation: resume exactly at the observed offset; the original's
    // progress during the new attempts' JVM startup is reprocessed.
    return std::clamp(progress, 0.0, 1.0);
  }
  return resume_offset(attempt(job, attempt_id), progress, now());
}

void SchedulerApi::schedule_after(double delay, std::function<void()> fn) {
  scheduler_.simulator_.after(delay, std::move(fn));
}

bool SchedulerApi::cluster_has_idle_container() const {
  return scheduler_.cluster_.has_idle_container();
}

std::size_t SchedulerApi::cluster_pending_requests() const {
  return scheduler_.cluster_.pending_requests();
}

double SchedulerApi::mean_completed_task_time(int job) const {
  const auto& record = scheduler_.job(job);
  double sum = 0.0;
  int count = 0;
  for (const auto& task : record.tasks) {
    if (task.completed) {
      sum += task.completion_time;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

int SchedulerApi::completed_task_count(int job) const {
  return scheduler_.job(job).tasks_completed;
}

}  // namespace chronos::mapreduce
