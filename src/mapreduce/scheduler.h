// The application-master / cluster driver.
//
// Owns all job state, talks to the Cluster for containers, executes attempt
// lifecycles on the discrete-event Simulator, and delegates every
// speculation decision to a pluggable SpeculationPolicy (one per run). The
// six strategies of §VII (Hadoop-NS/S, Mantri, Clone, S-Restart, S-Resume)
// are implemented as policies in src/strategies.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mapreduce/job.h"
#include "mapreduce/progress.h"
#include "sim/cluster.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace chronos::mapreduce {

class SchedulerApi;

/// Strategy hook interface. Policies keep per-job state keyed by the job
/// index passed to each hook and drive themselves with api.schedule_after.
class SpeculationPolicy {
 public:
  virtual ~SpeculationPolicy() = default;

  virtual std::string name() const = 0;

  /// How many attempts to launch per task when `stage` starts
  /// (Clone: the stage's r + 1).
  virtual int initial_attempts(const JobSpec& spec, int stage) const {
    (void)spec;
    (void)stage;
    return 1;
  }

  /// Invoked right after a job's stage-0 attempts have been requested (and
  /// after on_stage_start(job, 0)).
  virtual void on_job_start(int job, SchedulerApi& api) {
    (void)job;
    (void)api;
  }

  /// Invoked whenever a task of `job` completes.
  virtual void on_task_completed(int job, int task, SchedulerApi& api) {
    (void)job;
    (void)task;
    (void)api;
  }

  /// Invoked when a stage's barrier clears and the stage starts, right
  /// after its tasks' initial attempts have been requested. Fires for
  /// every stage, including stage 0 at submission; stage-relative timers
  /// (tau_est / tau_kill) are armed here.
  virtual void on_stage_start(int job, int stage, SchedulerApi& api) {
    (void)job;
    (void)stage;
    (void)api;
  }

  /// Invoked when the job's last task completes.
  virtual void on_job_completed(int job, SchedulerApi& api) {
    (void)job;
    (void)api;
  }
};

/// Crash-failure injection (§VII remarks on system breakdown / VM crash).
struct FailureConfig {
  /// Exponential crash rate per attempt-second of execution. 0 = disabled.
  double rate = 0.0;
  /// When true, a crashed attempt's partial output is lost and the
  /// scheduler's automatic retry restarts from byte 0 even for resumed
  /// attempts; when false the retry keeps the attempt's start offset (the
  /// work-preserving assumption of §VI-B2).
  bool lose_partial_output = true;
};

struct SchedulerConfig {
  ProgressNoiseConfig noise = ProgressNoiseConfig::none();
  /// Estimator used by api.estimate_completion unless overridden per call.
  EstimatorKind estimator = EstimatorKind::kChronos;
  /// When false, resume offsets skip the Eq. 31 anticipation of bytes the
  /// original processes during the new attempts' JVM startup (ablation).
  bool anticipate_resume_offset = true;
  /// When false, RunMetrics drops per-job outcome rows and keeps only the
  /// running aggregates (open-system million-job runs).
  bool retain_outcomes = true;
  FailureConfig failures;
};

class Scheduler {
 public:
  /// The simulator, cluster and policy must outlive the scheduler.
  Scheduler(sim::Simulator& simulator, sim::Cluster& cluster,
            SpeculationPolicy& policy, SchedulerConfig config, Rng rng);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits `spec` at the current simulated time; returns the job index.
  int submit(const JobSpec& spec);

  /// Metrics of all completed jobs.
  const sim::RunMetrics& metrics() const { return metrics_; }

  /// Read access for tests and policies.
  const JobRecord& job(int job) const;
  int num_jobs() const { return static_cast<int>(jobs_.size()); }

  /// Releases the per-attempt state of a completed job (attempts plus each
  /// task's attempt-id lists), keeping the aggregate counters. Long-running
  /// open-system drivers call this from on_job_completed so memory stays
  /// proportional to in-flight work rather than total jobs submitted.
  /// Requires the job to be done. Container grants still queued for killed
  /// attempts of a compacted job are detected and returned on arrival.
  void compact_job(int job);

 private:
  friend class SchedulerApi;

  JobRecord& job_mut(int job);

  /// Creates an attempt record for `task` starting at `offset` and requests
  /// a container. Returns the attempt id.
  int launch_attempt(int job, int task, double offset);

  /// Called when the cluster grants a container.
  void on_container_granted(int job, int attempt, int node);

  /// Called by the finish event of a running attempt.
  void on_attempt_finished(int job, int attempt);

  /// Called by the crash event of a running attempt (failure injection):
  /// marks it failed and retries the task with a fresh attempt.
  void on_attempt_failed(int job, int attempt);

  /// Kills a waiting or running attempt (no-op when already ended).
  void kill_attempt(int job, int attempt);

  /// Accrues machine time and frees the container of an ended attempt.
  void end_attempt(int job, int attempt, AttemptState final_state);

  void complete_task(int job, int task, int winner_attempt);

  /// Marks `stage` started, requests its tasks' initial attempts, and fires
  /// the policy's on_stage_start hook.
  void start_stage(int job, int stage);

  /// Starts every not-yet-started stage whose predecessor stages (the
  /// spec's resolved deps) have all completed — the generalized shuffle
  /// barrier. Stages are scanned in index (= topological) order.
  void maybe_start_stages(int job);

  void maybe_complete_job(int job);

  sim::Simulator& simulator_;
  sim::Cluster& cluster_;
  SpeculationPolicy& policy_;
  SchedulerConfig config_;
  Rng rng_;
  std::vector<JobRecord> jobs_;
  /// Pre-validated per-stage duration samplers (one per stage, parallel to
  /// jobs_), built once per job at submission so the per-attempt hot path
  /// skips parameter validation and exponent derivation (draws stay
  /// bit-identical to Rng::pareto).
  std::vector<std::vector<ParetoSampler>> job_samplers_;
  std::optional<ExponentialSampler> crash_sampler_;  ///< when failures on
  sim::RunMetrics metrics_;
  std::unique_ptr<SchedulerApi> api_;
};

/// Facade through which policies inspect and act on jobs.
class SchedulerApi {
 public:
  explicit SchedulerApi(Scheduler& scheduler) : scheduler_(scheduler) {}

  double now() const;
  Rng& rng();

  const JobSpec& spec(int job) const;
  const JobRecord& job(int job) const;

  /// Time relative to the job's submission (strategy timers are job-local).
  double job_time(int job) const;

  /// Indices of tasks not yet completed (all stages).
  std::vector<int> incomplete_tasks(int job) const;

  /// Incomplete tasks restricted to one stage.
  std::vector<int> incomplete_stage_tasks(int job, int stage) const;

  /// Attempt ids of `task` that are waiting or running.
  std::vector<int> active_attempts(int job, int task) const;

  const AttemptRecord& attempt(int job, int attempt_id) const;

  /// Observes the attempt's progress score now (noise model applied).
  ProgressReport observe(int job, int attempt_id);

  /// Estimated absolute completion time using the configured estimator, or
  /// `kind` when given. Infinite when no estimate is possible.
  double estimate_completion(int job, int attempt_id);
  double estimate_completion(int job, int attempt_id, EstimatorKind kind);

  /// Launches an extra attempt of `task` processing [offset, 1]; returns the
  /// attempt id. Counts toward extra_attempts_launched.
  int launch_extra_attempt(int job, int task, double offset = 0.0);

  /// Kills one attempt (idempotent on ended attempts).
  void kill_attempt(int job, int attempt_id);

  /// Kills all active attempts of `task` except the one with the best
  /// observed progress (ties: lowest attempt id). No-op with < 2 active.
  void keep_best_progress(int job, int task);

  /// Kills all active attempts of `task` except the one with the smallest
  /// estimated completion time. Attempts with unknown estimates are treated
  /// as worst. No-op with < 2 active attempts.
  void keep_best_estimate(int job, int task);

  /// Eq. 31 resume offset for a detected straggler attempt.
  double resume_offset_for(int job, int attempt_id);

  /// Schedules `fn` after `delay` seconds of simulated time.
  void schedule_after(double delay, std::function<void()> fn);

  /// Cluster occupancy, used by Mantri's launch condition.
  bool cluster_has_idle_container() const;
  std::size_t cluster_pending_requests() const;

  /// Mean completion time (relative to submission) of completed tasks.
  /// Returns 0 when none have completed.
  double mean_completed_task_time(int job) const;

  int completed_task_count(int job) const;

 private:
  Scheduler& scheduler_;
};

}  // namespace chronos::mapreduce
