#include "obs/metrics.h"

#if CHRONOS_OBS_ENABLED

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "common/error.h"

namespace chronos::obs {

namespace {

// Fixed per-kind shard capacities. Registration past the cap throws; the
// caps exist so a shard is one flat allocation the owning thread walks with
// plain indexed loads.
constexpr std::size_t kMaxCounters = 128;
constexpr std::size_t kMaxGauges = 32;
constexpr std::size_t kMaxTimers = 32;

constexpr std::uint64_t kNoMin = std::numeric_limits<std::uint64_t>::max();

/// log2 bucket of a duration: bit_width clamps [0,1] ns to bucket 0 and
/// anything >= 2^47 ns (~39 h) to the last bucket.
std::size_t bucket_of(std::uint64_t ns) {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(ns));
  return b < kTimerBuckets ? b : kTimerBuckets - 1;
}

/// Per-thread timer state. Only the owning thread writes; other threads
/// read during aggregation, hence the relaxed atomics.
struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{kNoMin};
  std::atomic<std::uint64_t> max_ns{0};
  std::array<std::atomic<std::uint64_t>, kTimerBuckets> buckets{};
};

/// Accumulated totals of exited threads (plain fields; registry-mutex
/// guarded).
struct RetiredTotals {
  std::array<std::uint64_t, kMaxCounters> counters{};
  std::array<std::uint64_t, kMaxGauges> gauge_max{};
  struct RetiredTimer {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = kNoMin;
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kTimerBuckets> buckets{};
  };
  std::array<RetiredTimer, kMaxTimers> timers{};
};

struct Shard;

struct Registry {
  std::mutex mu;
  std::map<std::string, std::pair<MetricKind, std::uint32_t>> names;
  std::size_t num_counters = 0;
  std::size_t num_gauges = 0;
  std::size_t num_timers = 0;
  std::vector<Shard*> shards;  ///< live per-thread shards
  RetiredTotals retired;
};

/// Leaked singleton: must outlive every thread_local Shard destructor, and
/// static-destruction order across translation units cannot guarantee that
/// for a plain static.
Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauge_max{};
  std::array<TimerCell, kMaxTimers> timers{};

  Shard() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.shards.push_back(this);
  }

  /// Thread exit: fold this thread's totals into the retired accumulator so
  /// finished workers' counts survive the shard.
  ~Shard() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      reg.retired.counters[i] +=
          counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxGauges; ++i) {
      const std::uint64_t v = gauge_max[i].load(std::memory_order_relaxed);
      if (v > reg.retired.gauge_max[i]) {
        reg.retired.gauge_max[i] = v;
      }
    }
    for (std::size_t i = 0; i < kMaxTimers; ++i) {
      const TimerCell& cell = timers[i];
      auto& out = reg.retired.timers[i];
      out.count += cell.count.load(std::memory_order_relaxed);
      out.total_ns += cell.total_ns.load(std::memory_order_relaxed);
      out.min_ns = std::min(out.min_ns,
                            cell.min_ns.load(std::memory_order_relaxed));
      out.max_ns = std::max(out.max_ns,
                            cell.max_ns.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kTimerBuckets; ++b) {
        out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (auto it = reg.shards.begin(); it != reg.shards.end(); ++it) {
      if (*it == this) {
        reg.shards.erase(it);
        break;
      }
    }
  }
};

Shard& local_shard() {
  thread_local Shard shard;
  return shard;
}

/// Owner-thread increment: a relaxed load+store (not fetch_add) — no other
/// thread ever writes the slot, so the RMW's lock prefix buys nothing.
void bump(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void raise_to(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  if (v > slot.load(std::memory_order_relaxed)) {
    slot.store(v, std::memory_order_relaxed);
  }
}

std::uint32_t register_metric(const std::string& name, MetricKind kind,
                              std::size_t& next, std::size_t cap) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.names.find(name);
  if (it != reg.names.end()) {
    CHRONOS_EXPECTS(it->second.first == kind,
                    "metric '" + name +
                        "' already registered with a different kind");
    return it->second.second;
  }
  CHRONOS_EXPECTS(next < cap, "metric shard capacity exhausted registering '" +
                                  name + "'");
  const auto slot = static_cast<std::uint32_t>(next++);
  reg.names.emplace(name, std::make_pair(kind, slot));
  return slot;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

void Counter::add(std::uint64_t n) const {
  bump(local_shard().counters[slot_], n);
}

void Gauge::update(std::uint64_t level) const {
  raise_to(local_shard().gauge_max[slot_], level);
}

void Timer::record_ns(std::uint64_t ns) const {
  TimerCell& cell = local_shard().timers[slot_];
  bump(cell.count, 1);
  bump(cell.total_ns, ns);
  if (ns < cell.min_ns.load(std::memory_order_relaxed)) {
    cell.min_ns.store(ns, std::memory_order_relaxed);
  }
  raise_to(cell.max_ns, ns);
  bump(cell.buckets[bucket_of(ns)], 1);
}

Counter counter(const std::string& name) {
  return Counter(register_metric(name, MetricKind::kCounter,
                                 registry().num_counters, kMaxCounters));
}

Gauge gauge(const std::string& name) {
  return Gauge(register_metric(name, MetricKind::kGauge,
                               registry().num_gauges, kMaxGauges));
}

Timer timer(const std::string& name) {
  return Timer(register_metric(name, MetricKind::kTimer,
                               registry().num_timers, kMaxTimers));
}

Stopwatch::Stopwatch()
    : start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

std::uint64_t Stopwatch::elapsed_ns() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now >= start_ns_ ? now - start_ns_ : 0;
}

std::vector<MetricValue> snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<MetricValue> out;
  out.reserve(reg.names.size());
  for (const auto& [name, meta] : reg.names) {  // std::map: sorted by name
    const auto [kind, slot] = meta;
    MetricValue value;
    value.name = name;
    value.kind = kind;
    switch (kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = reg.retired.counters[slot];
        for (const Shard* shard : reg.shards) {
          total += shard->counters[slot].load(std::memory_order_relaxed);
        }
        value.value = total;
        break;
      }
      case MetricKind::kGauge: {
        std::uint64_t high = reg.retired.gauge_max[slot];
        for (const Shard* shard : reg.shards) {
          high = std::max(
              high, shard->gauge_max[slot].load(std::memory_order_relaxed));
        }
        value.value = high;
        break;
      }
      case MetricKind::kTimer: {
        TimerStats stats;
        stats.buckets.assign(kTimerBuckets, 0);
        std::uint64_t min_ns = kNoMin;
        const auto& retired = reg.retired.timers[slot];
        stats.count = retired.count;
        stats.total_ns = retired.total_ns;
        stats.max_ns = retired.max_ns;
        min_ns = retired.min_ns;
        for (std::size_t b = 0; b < kTimerBuckets; ++b) {
          stats.buckets[b] = retired.buckets[b];
        }
        for (const Shard* shard : reg.shards) {
          const TimerCell& cell = shard->timers[slot];
          stats.count += cell.count.load(std::memory_order_relaxed);
          stats.total_ns += cell.total_ns.load(std::memory_order_relaxed);
          min_ns = std::min(min_ns,
                            cell.min_ns.load(std::memory_order_relaxed));
          stats.max_ns = std::max(
              stats.max_ns, cell.max_ns.load(std::memory_order_relaxed));
          for (std::size_t b = 0; b < kTimerBuckets; ++b) {
            stats.buckets[b] +=
                cell.buckets[b].load(std::memory_order_relaxed);
          }
        }
        stats.min_ns = stats.count == 0 ? 0 : min_ns;
        if (stats.count == 0) {
          stats.buckets.clear();
        }
        value.timer = std::move(stats);
        break;
      }
    }
    out.push_back(std::move(value));
  }
  return out;
}

std::string metrics_json() {
  const std::vector<MetricValue> metrics = snapshot();
  std::string json = "{\"chronos_metrics\":1,\"metrics\":[";
  bool first = true;
  for (const MetricValue& metric : metrics) {
    if (!first) {
      json += ',';
    }
    first = false;
    json += "\n  {\"name\":\"";
    json += metric.name;  // names are code literals: no escaping needed
    json += "\",\"kind\":\"";
    switch (metric.kind) {
      case MetricKind::kCounter:
        json += "counter";
        break;
      case MetricKind::kGauge:
        json += "gauge";
        break;
      case MetricKind::kTimer:
        json += "timer";
        break;
    }
    json += '"';
    if (metric.kind == MetricKind::kTimer) {
      const TimerStats& t = metric.timer;
      json += ",\"count\":";
      append_u64(json, t.count);
      json += ",\"total_ns\":";
      append_u64(json, t.total_ns);
      json += ",\"min_ns\":";
      append_u64(json, t.min_ns);
      json += ",\"max_ns\":";
      append_u64(json, t.max_ns);
      json += ",\"mean_ns\":";
      append_u64(json, t.count == 0 ? 0 : t.total_ns / t.count);
      // Trailing zero buckets are trimmed: the histogram stays compact and
      // the bucket index is still the log2(ns) exponent.
      std::size_t last = t.buckets.size();
      while (last > 0 && t.buckets[last - 1] == 0) {
        --last;
      }
      json += ",\"log2_ns_buckets\":[";
      for (std::size_t b = 0; b < last; ++b) {
        if (b > 0) {
          json += ',';
        }
        append_u64(json, t.buckets[b]);
      }
      json += ']';
    } else {
      json += ",\"value\":";
      append_u64(json, metric.value);
    }
    json += '}';
  }
  json += "\n]}\n";
  return json;
}

void reset_for_test() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired = RetiredTotals{};
  for (Shard* shard : reg.shards) {
    for (auto& c : shard->counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& g : shard->gauge_max) {
      g.store(0, std::memory_order_relaxed);
    }
    for (TimerCell& cell : shard->timers) {
      cell.count.store(0, std::memory_order_relaxed);
      cell.total_ns.store(0, std::memory_order_relaxed);
      cell.min_ns.store(kNoMin, std::memory_order_relaxed);
      cell.max_ns.store(0, std::memory_order_relaxed);
      for (auto& b : cell.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace chronos::obs

#endif  // CHRONOS_OBS_ENABLED
