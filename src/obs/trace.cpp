#include "obs/trace.h"

#include <cstdio>

#include "common/error.h"

#if CHRONOS_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/numeric.h"

namespace chronos::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t start_ns;  ///< absolute steady-clock ns
  std::uint64_t dur_ns;
  std::uint32_t tid;
  std::uint8_t nargs;
  const char* keys[4];
  double values[4];
};

struct ThreadBuffer;

struct Recorder {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::uint64_t epoch_ns = 0;            ///< subtracted at render time
  std::uint32_t next_tid = 1;
  std::vector<ThreadBuffer*> buffers;    ///< live threads
  std::vector<TraceEvent> retired;       ///< events of exited threads
  std::map<std::uint32_t, std::string> thread_names;
};

/// Leaked for the same static-destruction-order reason as the metrics
/// registry: thread_local buffers flush into it on thread exit.
Recorder& recorder() {
  static Recorder* instance = new Recorder;
  return *instance;
}

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::mutex mu;  ///< uncontended except while the trace is being drained
  std::vector<TraceEvent> events;

  ThreadBuffer() {
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    tid = rec.next_tid++;
    rec.buffers.push_back(this);
  }

  ~ThreadBuffer() {
    Recorder& rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mu);
    rec.retired.insert(rec.retired.end(), events.begin(), events.end());
    for (auto it = rec.buffers.begin(); it != rec.buffers.end(); ++it) {
      if (*it == this) {
        rec.buffers.erase(it);
        break;
      }
    }
  }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

/// Microseconds with nanosecond precision, locale-free ("12.345").
void append_us(std::string& out, std::uint64_t ns) {
  out += numeric::format_double_fixed(static_cast<double>(ns) / 1000.0, 3);
}

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_event(std::string& json, const TraceEvent& event,
                  std::uint64_t epoch_ns) {
  json += "\n  {\"name\":\"";
  json += event.name;
  json += "\",\"cat\":\"";
  json += event.category;
  json += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  json += std::to_string(event.tid);
  json += ",\"ts\":";
  append_us(json, event.start_ns >= epoch_ns ? event.start_ns - epoch_ns : 0);
  json += ",\"dur\":";
  append_us(json, event.dur_ns);
  if (event.nargs > 0) {
    json += ",\"args\":{";
    for (std::uint8_t a = 0; a < event.nargs; ++a) {
      if (a > 0) {
        json += ',';
      }
      json += '"';
      json += event.keys[a];
      json += "\":";
      json += numeric::format_double(event.values[a]);
    }
    json += '}';
  }
  json += '}';
}

}  // namespace

bool tracing_enabled() {
  return recorder().enabled.load(std::memory_order_relaxed);
}

void start_tracing() {
  Recorder& rec = recorder();
  std::lock_guard<std::mutex> lock(rec.mu);
  for (ThreadBuffer* buffer : rec.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  rec.retired.clear();
  rec.epoch_ns = steady_ns();
  rec.enabled.store(true, std::memory_order_relaxed);
}

std::string stop_tracing_to_json() {
  Recorder& rec = recorder();
  rec.enabled.store(false, std::memory_order_relaxed);
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> names;
  std::uint64_t epoch_ns = 0;
  {
    std::lock_guard<std::mutex> lock(rec.mu);
    events = std::move(rec.retired);
    rec.retired.clear();
    for (ThreadBuffer* buffer : rec.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
      buffer->events.clear();
    }
    names = rec.thread_names;
    epoch_ns = rec.epoch_ns;
  }
  // One track per thread; within a track children share the parent's start
  // at ns granularity only in degenerate cases, where the longer (outer)
  // span must come first for viewers to nest them.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) {
                return a.tid < b.tid;
              }
              if (a.start_ns != b.start_ns) {
                return a.start_ns < b.start_ns;
              }
              return a.dur_ns > b.dur_ns;
            });

  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  json +=
      "\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"chronos\"}}";
  for (const auto& [tid, name] : names) {
    json += ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    json += std::to_string(tid);
    json += ",\"args\":{\"name\":";
    append_json_string(json, name);
    json += "}}";
  }
  for (const TraceEvent& event : events) {
    json += ',';
    append_event(json, event, epoch_ns);
  }
  json += "\n]}\n";
  return json;
}

void set_trace_thread_name(const std::string& name) {
  Recorder& rec = recorder();
  const std::uint32_t tid = local_buffer().tid;
  std::lock_guard<std::mutex> lock(rec.mu);
  rec.thread_names[tid] = name;
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!tracing_enabled()) {
    return;
  }
  active_ = true;
  start_ns_ = steady_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_ || !tracing_enabled()) {
    return;  // spans straddling a stop are dropped, never half-recorded
  }
  const std::uint64_t end_ns = steady_ns();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  event.nargs = nargs_;
  for (std::uint8_t a = 0; a < nargs_; ++a) {
    event.keys[a] = keys_[a];
    event.values[a] = values_[a];
  }
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(event);
}

void TraceSpan::note(const char* key, double value) {
  if (!active_ || nargs_ >= 4) {
    return;
  }
  keys_[nargs_] = key;
  values_[nargs_] = value;
  ++nargs_;
}

void write_trace_json(const std::string& path) {
  const std::string json = stop_tracing_to_json();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  CHRONOS_EXPECTS(file != nullptr,
                  "cannot open trace file '" + path + "' for writing");
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fflush(file) == 0;
  std::fclose(file);
  CHRONOS_EXPECTS(ok, "short write to trace file '" + path + "'");
}

}  // namespace chronos::obs

#else  // CHRONOS_OBS_ENABLED == 0

namespace chronos::obs {

// The one non-inline piece of the disabled API: still writes a valid (empty)
// trace so tooling that always passes --trace-out keeps working.
void write_trace_json(const std::string& path) {
  const std::string json = stop_tracing_to_json();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  CHRONOS_EXPECTS(file != nullptr,
                  "cannot open trace file '" + path + "' for writing");
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fflush(file) == 0;
  std::fclose(file);
  CHRONOS_EXPECTS(ok, "short write to trace file '" + path + "'");
}

}  // namespace chronos::obs

#endif  // CHRONOS_OBS_ENABLED
