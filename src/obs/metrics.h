// Process-wide metrics registry: named counters, high-water gauges and
// timing histograms for the engine's hot paths.
//
// Design constraints (the hard invariant of the observability layer):
//  - recording must live entirely off the numeric path — no metric ever
//    touches an Rng, a seed stream, or an aggregate, so sweep goldens and
//    journal bytes are byte-identical with instrumentation on, off, or
//    compiled out;
//  - the hot-path cost of an update is one thread-local relaxed increment
//    (counters/gauges) — values live in per-thread shards that only the
//    owning thread writes, so there is no cross-thread cache-line traffic;
//    aggregation walks the shards at read time;
//  - with CHRONOS_OBS_ENABLED == 0 (cmake -DCHRONOS_OBS=OFF) every API
//    below collapses to a constexpr no-op and call sites compile to
//    nothing.
//
// Handles are small value types (a slot index) meant to be registered once
// and cached, typically in a namespace-scope const at the instrumentation
// site:
//
//   const obs::Counter c_fired = obs::counter("sim.events_fired");
//   ...
//   c_fired.add();                 // TLS shard increment
//
// Registration is idempotent by name; registering one name with two
// different kinds throws. snapshot()/metrics_json() aggregate live shards
// plus the totals of exited threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CHRONOS_OBS_ENABLED
#define CHRONOS_OBS_ENABLED 1
#endif

namespace chronos::obs {

enum class MetricKind { kCounter, kGauge, kTimer };

/// Number of log2(ns) latency buckets a timer keeps: bucket i counts
/// recordings whose elapsed ns has bit-width i, i.e. ns in [2^(i-1), 2^i)
/// (bucket 0 counts exact zeros; the last bucket absorbs the tail).
inline constexpr std::size_t kTimerBuckets = 48;

/// Aggregated timer state: count/total plus extrema and a log2 histogram.
struct TimerStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< 0 when count == 0
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;  ///< kTimerBuckets entries; empty when
                                       ///< count == 0
};

/// One aggregated metric, as returned by snapshot().
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  ///< counter total, or gauge high-water
  TimerStats timer;         ///< kTimer only
};

#if CHRONOS_OBS_ENABLED

/// Monotonic counter. add() is a thread-local relaxed increment.
class Counter {
 public:
  constexpr Counter() = default;
  void add(std::uint64_t n = 1) const;

 private:
  friend Counter counter(const std::string&);
  explicit constexpr Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = 0;
};

/// High-water gauge: update(v) records an instantaneous level; the
/// aggregated value is the maximum ever observed on any thread.
class Gauge {
 public:
  constexpr Gauge() = default;
  void update(std::uint64_t level) const;

 private:
  friend Gauge gauge(const std::string&);
  explicit constexpr Gauge(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = 0;
};

/// Timing histogram. record_ns() folds one duration into the thread's
/// shard; pair with Stopwatch or ScopedTimer for measurement.
class Timer {
 public:
  constexpr Timer() = default;
  void record_ns(std::uint64_t ns) const;

 private:
  friend Timer timer(const std::string&);
  explicit constexpr Timer(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = 0;
};

/// Registers (or finds) a metric. Idempotent per name; a name registered
/// with a different kind throws PreconditionError, as does exhausting the
/// fixed shard capacity for the kind.
Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Timer timer(const std::string& name);

/// Nanoseconds elapsed since construction (steady clock).
class Stopwatch {
 public:
  Stopwatch();
  std::uint64_t elapsed_ns() const;

 private:
  std::uint64_t start_ns_ = 0;
};

/// RAII: records the enclosing scope's duration into `timer`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer timer) : timer_(timer) {}
  ~ScopedTimer() { timer_.record_ns(watch_.elapsed_ns()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer timer_;
  Stopwatch watch_;
};

/// True when the registry is compiled in (CHRONOS_OBS=ON).
constexpr bool compiled_in() { return true; }

/// Aggregated view of every registered metric, sorted by name. Sums live
/// thread shards plus the flushed totals of exited threads; concurrent
/// updates may or may not be visible (each metric is internally
/// consistent, the set is not a point-in-time cut).
std::vector<MetricValue> snapshot();

/// The snapshot as deterministic, locale-free JSON:
/// {"chronos_metrics":1,"metrics":[{"name":...,"kind":...,...},...]}.
std::string metrics_json();

/// Zeroes every metric (live shards, retired totals, gauge high-waters).
/// Test-only: must not race concurrent writers.
void reset_for_test();

#else  // CHRONOS_OBS_ENABLED == 0: every operation is a constexpr no-op.

class Counter {
 public:
  constexpr Counter() = default;
  constexpr void add(std::uint64_t = 1) const {}
};

class Gauge {
 public:
  constexpr Gauge() = default;
  constexpr void update(std::uint64_t) const {}
};

class Timer {
 public:
  constexpr Timer() = default;
  constexpr void record_ns(std::uint64_t) const {}
};

constexpr Counter counter(const std::string&) { return {}; }
constexpr Gauge gauge(const std::string&) { return {}; }
constexpr Timer timer(const std::string&) { return {}; }

class Stopwatch {
 public:
  constexpr Stopwatch() = default;
  constexpr std::uint64_t elapsed_ns() const { return 0; }
};

class ScopedTimer {
 public:
  explicit constexpr ScopedTimer(Timer) {}
};

constexpr bool compiled_in() { return false; }

inline std::vector<MetricValue> snapshot() { return {}; }
inline std::string metrics_json() {
  return "{\"chronos_metrics\":1,\"metrics\":[]}\n";
}
inline void reset_for_test() {}

#endif  // CHRONOS_OBS_ENABLED

}  // namespace chronos::obs
