// Span/trace recorder emitting Chrome trace-event JSON ("catapult" format),
// viewable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Tracing is off by default: a TraceSpan constructed while tracing is
// disabled costs one relaxed atomic load and records nothing. When enabled
// (start_tracing), each thread appends completed spans to its own buffer,
// so recording never blocks another thread; buffers of exited threads are
// kept until the trace is written. Spans are strictly scoped (RAII), so
// spans on one thread always nest.
//
//   obs::start_tracing();
//   {
//     obs::TraceSpan span("sweep.rep");
//     span.note("cell", 3);
//     ...
//   }
//   obs::write_trace_json("trace.json");   // stops tracing, writes the file
//
// Like the metrics registry, the recorder lives entirely off the numeric
// path, and compiles out to constexpr no-ops with CHRONOS_OBS_ENABLED == 0.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"  // CHRONOS_OBS_ENABLED default

namespace chronos::obs {

#if CHRONOS_OBS_ENABLED

/// True while spans are being collected.
bool tracing_enabled();

/// Enables collection and clears any previously collected events.
void start_tracing();

/// Disables collection and renders every collected span as Chrome
/// trace-event JSON. Deterministically ordered (by thread track, then start
/// time). Call after worker threads have quiesced — spans still open on
/// other threads when tracing stops are dropped.
std::string stop_tracing_to_json();

/// stop_tracing_to_json() into a file; throws PreconditionError on I/O
/// failure.
void write_trace_json(const std::string& path);

/// Names the calling thread's track in the trace ("main", "pool-3", ...).
/// Idempotent; safe to call whether or not tracing is active.
void set_trace_thread_name(const std::string& name);

/// RAII span: records [construction, destruction) on the calling thread's
/// track. `name` and `category` must be string literals (the recorder
/// stores the pointers). Up to 4 numeric args via note().
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "chronos");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (shown in the Perfetto span details).
  /// `key` must be a string literal. Extra notes beyond 4 are dropped.
  void note(const char* key, double value);

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  std::uint8_t nargs_ = 0;
  bool active_ = false;
  const char* keys_[4];
  double values_[4];
};

#else  // CHRONOS_OBS_ENABLED == 0

constexpr bool tracing_enabled() { return false; }
inline void start_tracing() {}
inline std::string stop_tracing_to_json() {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
}
void write_trace_json(const std::string& path);  // still writes empty JSON
inline void set_trace_thread_name(const std::string&) {}

class TraceSpan {
 public:
  explicit constexpr TraceSpan(const char*, const char* = "chronos") {}
  constexpr void note(const char*, double) {}
};

#endif  // CHRONOS_OBS_ENABLED

}  // namespace chronos::obs
