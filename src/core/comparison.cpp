#include "core/comparison.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace chronos::core {

double clone_vs_restart_ratio(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "r must be >= 0");
  return std::pow((params.deadline - params.tau_est) / params.deadline,
                  params.beta * r);
}

double restart_vs_resume_ratio(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "r must be >= 0");
  const double d_bar = params.deadline - params.tau_est;
  const double phi_bar = 1.0 - params.phi_est;
  // Eq. 58 evaluated for r extra attempts:
  //   (1 - R_Restart)^{1/N} = (t_min/D)^beta (t_min/D_bar)^{beta r}
  //   (1 - R_Resume)^{1/N}  = (t_min/D)^beta (phi_bar t_min/D_bar)^{beta(r+1)}
  const double restart_fail = std::pow(params.t_min / d_bar, params.beta * r);
  const double resume_fail =
      std::pow(phi_bar * params.t_min / d_bar, params.beta * (r + 1.0));
  return restart_fail / resume_fail;
}

double clone_vs_resume_ratio(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "r must be >= 0");
  const double d_bar = params.deadline - params.tau_est;
  const double phi_bar = 1.0 - params.phi_est;
  // Eq. 59: ratio of per-task failure probabilities.
  const double num = std::pow(d_bar, params.beta * (r + 1.0));
  const double den = std::pow(phi_bar, params.beta * (r + 1.0)) *
                     std::pow(params.deadline, params.beta * r) *
                     std::pow(params.t_min, params.beta);
  return num / den;
}

double clone_beats_resume_threshold(const JobParams& params) {
  params.validate();
  const double d_bar = params.deadline - params.tau_est;
  const double phi_bar = 1.0 - params.phi_est;
  // Derived from Eq. 59 (ratio < 1):
  //   r * ln(D_bar / (phi_bar D)) < ln(phi_bar t_min / D_bar).
  // The paper's Eq. 60 carries stray beta exponents (a typo: every term of
  // the log inequality has a common factor beta); the form below is the one
  // consistent with Theorem 5/Eq. 59 and is validated against the direct
  // PoCD ordering in tests.
  //
  // When D_bar >= phi_bar * D the log base is >= 1; since
  // phi_bar * t_min < D_bar always holds, the right side is negative and
  // Clone can never beat S-Resume — return +infinity.
  const double base = d_bar / (phi_bar * params.deadline);
  const double arg = phi_bar * params.t_min / d_bar;
  CHRONOS_ENSURES(arg > 0.0 && arg < 1.0,
                  "phi_bar * t_min must lie below D - tau_est");
  if (base >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::log(arg) / std::log(base);
}

bool clone_beats_resume(const JobParams& params, double r) {
  return clone_vs_resume_ratio(params, r) < 1.0;
}

}  // namespace chronos::core
