#include "core/optimizer.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/thresholds.h"

namespace chronos::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

class Objective {
 public:
  Objective(Strategy strategy, const JobParams& params, const Economics& econ)
      : strategy_(strategy), params_(params), econ_(econ) {}

  double operator()(long long r) {
    ++evaluations_;
    const auto point =
        evaluate_utility(strategy_, params_, econ_, static_cast<double>(r));
    if (evaluations_ == 1 || point.utility > best_.utility) {
      best_ = point;
    }
    return point.utility;
  }

  const UtilityPoint& best() const { return best_; }
  std::int64_t evaluations() const { return evaluations_; }

 private:
  Strategy strategy_;
  const JobParams& params_;
  const Economics& econ_;
  UtilityPoint best_{};
  std::int64_t evaluations_ = 0;
};

OptimizationResult finish(const Objective& objective, Strategy strategy,
                          const JobParams& params) {
  OptimizationResult result;
  result.best = objective.best();
  result.r_opt = static_cast<long long>(std::llround(result.best.r));
  result.gamma = gamma_threshold(strategy, params);
  result.evaluations = objective.evaluations();
  result.feasible = std::isfinite(result.best.utility);
  if (!result.feasible) {
    result.r_opt = 0;
  }
  return result;
}

}  // namespace

OptimizationResult optimize(Strategy strategy, const JobParams& params,
                            const Economics& econ,
                            const OptimizerOptions& options) {
  params.validate();
  econ.validate();
  CHRONOS_EXPECTS(options.max_r >= 0, "max_r must be >= 0");

  Objective objective(strategy, params, econ);
  const long long start = concave_start(strategy, params);

  // Phase 2 of Algorithm 1 (run first here; order does not matter): the
  // non-concave prefix 0 .. ceil(Gamma)-1 is scanned exhaustively.
  for (long long r = 0; r < std::min(start, options.max_r + 1); ++r) {
    objective(r);
  }

  // Phase 1: the concave region [ceil(Gamma), max_r]. Concavity makes U
  // unimodal over the integers, except that a prefix of the region may be
  // -infinity (R(r) <= R_min); utility is increasing through that prefix,
  // so a guarded ternary search remains exact.
  long long lo = std::min(start, options.max_r);
  long long hi = options.max_r;
  while (hi - lo > 2) {
    const long long m1 = lo + (hi - lo) / 3;
    const long long m2 = hi - (hi - lo) / 3;
    const double f1 = objective(m1);
    const double f2 = objective(m2);
    if (f1 == kNegInf && f2 == kNegInf) {
      // Still inside the infeasible prefix where U is -inf; the optimum (if
      // any) lies to the right of m2.
      lo = m2 + 1;
    } else if (f1 < f2) {
      lo = m1 + 1;
    } else {
      hi = m2 - 1;
    }
  }
  for (long long r = lo; r <= hi; ++r) {
    objective(r);
  }

  return finish(objective, strategy, params);
}

OptimizationResult brute_force_optimize(Strategy strategy,
                                        const JobParams& params,
                                        const Economics& econ,
                                        const OptimizerOptions& options) {
  params.validate();
  econ.validate();
  CHRONOS_EXPECTS(options.max_r >= 0, "max_r must be >= 0");
  Objective objective(strategy, params, econ);
  for (long long r = 0; r <= options.max_r; ++r) {
    objective(r);
  }
  return finish(objective, strategy, params);
}

BestStrategy optimize_all(const JobParams& params, const Economics& econ,
                          const OptimizerOptions& options) {
  BestStrategy best;
  bool first = true;
  for (const Strategy strategy :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    auto result = optimize(strategy, params, econ, options);
    if (first || result.best.utility > best.result.best.utility) {
      best.strategy = strategy;
      best.result = result;
      first = false;
    }
  }
  return best;
}

}  // namespace chronos::core
