#include "core/optimizer.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "core/thresholds.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace chronos::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// The memoized search already counts unique evaluations and total lookups
// per call (OptimizationResult); the registry exposes the process-wide
// totals so a long-running planner's workload is visible without plumbing
// every result somewhere.
const obs::Counter c_calls = obs::counter("core.optimizer.calls");
const obs::Counter c_evaluations = obs::counter("core.optimizer.evaluations");
const obs::Counter c_lookups = obs::counter("core.optimizer.lookups");

/// Memoizing objective over a precomputed AnalyticContext. The guarded
/// ternary search revisits probe points when the bracket shrinks; the memo
/// guarantees each distinct r is evaluated exactly once (evaluations()),
/// while lookups() counts every query including memo hits.
class Objective {
 public:
  explicit Objective(const AnalyticContext& context) : context_(context) {}

  double operator()(long long r) {
    ++lookups_;
    if (const auto it = memo_.find(r); it != memo_.end()) {
      return it->second;
    }
    const auto point = context_.evaluate(static_cast<double>(r));
    memo_.emplace(r, point.utility);
    if (memo_.size() == 1 || point.utility > best_.utility) {
      best_ = point;
    }
    return point.utility;
  }

  const UtilityPoint& best() const { return best_; }
  std::int64_t evaluations() const {
    return static_cast<std::int64_t>(memo_.size());
  }
  std::int64_t lookups() const { return lookups_; }

 private:
  const AnalyticContext& context_;
  std::unordered_map<long long, double> memo_;
  UtilityPoint best_{};
  std::int64_t lookups_ = 0;
};

OptimizationResult finish(const Objective& objective,
                          const AnalyticContext& context) {
  OptimizationResult result;
  result.best = objective.best();
  result.r_opt = static_cast<long long>(std::llround(result.best.r));
  result.gamma = context.gamma();
  result.evaluations = objective.evaluations();
  result.lookups = objective.lookups();
  result.feasible = std::isfinite(result.best.utility);
  if (!result.feasible) {
    result.r_opt = 0;
  }
  c_calls.add();
  c_evaluations.add(static_cast<std::uint64_t>(result.evaluations));
  c_lookups.add(static_cast<std::uint64_t>(result.lookups));
  return result;
}

}  // namespace

OptimizationResult optimize(const AnalyticContext& context,
                            const OptimizerOptions& options) {
  CHRONOS_EXPECTS(options.max_r >= 0, "max_r must be >= 0");

  Objective objective(context);
  const long long start = concave_start(context.gamma());

  // Phase 2 of Algorithm 1 (run first here; order does not matter): the
  // non-concave prefix 0 .. ceil(Gamma)-1 is scanned exhaustively.
  for (long long r = 0; r < std::min(start, options.max_r + 1); ++r) {
    objective(r);
  }

  // Phase 1: the concave region [ceil(Gamma), max_r]. Concavity makes U
  // unimodal over the integers, except that a prefix of the region may be
  // -infinity (R(r) <= R_min); utility is increasing through that prefix,
  // so a guarded ternary search remains exact.
  long long lo = std::min(start, options.max_r);
  long long hi = options.max_r;
  while (hi - lo > 2) {
    const long long m1 = lo + (hi - lo) / 3;
    const long long m2 = hi - (hi - lo) / 3;
    const double f1 = objective(m1);
    const double f2 = objective(m2);
    if (f1 == kNegInf && f2 == kNegInf) {
      // Still inside the infeasible prefix where U is -inf; the optimum (if
      // any) lies to the right of m2.
      lo = m2 + 1;
    } else if (f1 < f2) {
      lo = m1 + 1;
    } else {
      hi = m2 - 1;
    }
  }
  for (long long r = lo; r <= hi; ++r) {
    objective(r);
  }

  return finish(objective, context);
}

OptimizationResult optimize(Strategy strategy, const JobParams& params,
                            const Economics& econ,
                            const OptimizerOptions& options) {
  CHRONOS_EXPECTS(options.max_r >= 0, "max_r must be >= 0");
  const AnalyticContext context(strategy, params, econ);
  return optimize(context, options);
}

OptimizationResult brute_force_optimize(Strategy strategy,
                                        const JobParams& params,
                                        const Economics& econ,
                                        const OptimizerOptions& options) {
  CHRONOS_EXPECTS(options.max_r >= 0, "max_r must be >= 0");
  const AnalyticContext context(strategy, params, econ);
  Objective objective(context);
  for (long long r = 0; r <= options.max_r; ++r) {
    objective(r);
  }
  return finish(objective, context);
}

BestStrategy optimize_all(const JobParams& params, const Economics& econ,
                          const OptimizerOptions& options) {
  // One SharedAnalytics instance computes the constants every strategy's
  // context needs (P(T > D) and the truncated Pareto means) exactly once;
  // the three contexts borrow them instead of recomputing per strategy.
  const SharedAnalytics shared(params);
  return optimize_all(shared, econ, options);
}

BestStrategy optimize_all(const SharedAnalytics& shared, const Economics& econ,
                          const OptimizerOptions& options) {
  obs::TraceSpan span("core.optimize_all", "core");
  BestStrategy best;
  bool first = true;
  for (const Strategy strategy :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    const AnalyticContext context(strategy, shared, econ);
    auto result = optimize(context, options);
    if (first || result.best.utility > best.result.best.utility) {
      best.strategy = strategy;
      best.result = result;
      first = false;
    }
  }
  span.note("r_opt", static_cast<double>(best.result.r_opt));
  span.note("evaluations", static_cast<double>(best.result.evaluations));
  return best;
}

}  // namespace chronos::core
