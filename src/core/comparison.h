// Strategy PoCD comparisons — Theorem 7.
//
// For the same number of extra attempts r:
//   1. R_Clone > R_S-Restart (always),
//   2. R_S-Resume > R_S-Restart (whenever D - tau_est >= (1-phi) t_min),
//   3. R_Clone > R_S-Resume iff r exceeds a closed-form threshold.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// Failure-probability ratio (1 - R_Clone)^{1/N} / (1 - R_S-Restart)^{1/N}
/// = ((D - tau_est)/D)^{beta r}  (Eq. 57). Values < 1 mean Clone wins.
double clone_vs_restart_ratio(const JobParams& params, double r);

/// Failure-probability ratio (1 - R_S-Restart)^{1/N} /
/// (1 - R_S-Resume)^{1/N}  (Eq. 58). Values > 1 mean S-Resume wins.
double restart_vs_resume_ratio(const JobParams& params, double r);

/// Failure-probability ratio (1 - R_Clone)^{1/N} / (1 - R_S-Resume)^{1/N}
/// (Eq. 59). Values < 1 mean Clone wins.
double clone_vs_resume_ratio(const JobParams& params, double r);

/// The r threshold of Theorem 7(3): Clone beats S-Resume iff
/// r > clone_beats_resume_threshold(params). Note: the paper's printed
/// Eq. 60 carries stray beta exponents; this implements the form derived
/// from Eq. 59, validated against the direct PoCD ordering. Returns
/// +infinity when D - tau_est >= (1 - phi) D (Clone can never win).
double clone_beats_resume_threshold(const JobParams& params);

/// Theorem 7(3) as a predicate.
bool clone_beats_resume(const JobParams& params, double r);

}  // namespace chronos::core
