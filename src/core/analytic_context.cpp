#include "core/analytic_context.h"

#include <cmath>

#include "common/error.h"
#include "core/cost.h"
#include "core/thresholds.h"
#include "stats/pareto.h"

namespace chronos::core {

namespace {

double job_from_task(double task_success, int num_tasks) {
  // Task failures are independent under the model, so the job succeeds iff
  // every task does (same expression as pocd.cpp).
  return std::pow(task_success, static_cast<double>(num_tasks));
}

}  // namespace

AnalyticContext::AnalyticContext(Strategy strategy, const JobParams& params,
                                 const Economics& econ)
    : strategy_(strategy), params_(params), econ_(econ) {
  params_.validate();
  econ_.validate();
  gamma_ = gamma_threshold(strategy_, params_);
  p_straggle_ = std::pow(params_.t_min / params_.deadline, params_.beta);
  switch (strategy_) {
    case Strategy::kClone:
      // Clone needs no further constants; its E(T) requires
      // beta * (r + 1) > 1, which is r-dependent and checked per call.
      break;
    case Strategy::kSpeculativeRestart:
      CHRONOS_EXPECTS(params_.beta > 1.0,
                      "machine_time_s_restart requires beta > 1");
      // Each of the r attempts launched at tau_est fails iff its execution
      // time exceeds D - tau_est (Eq. 34).
      p_extra_ = std::pow(
          params_.t_min / (params_.deadline - params_.tau_est), params_.beta);
      below_ = expected_time_below_deadline(params_);
      above_r0_ = stats::Pareto(params_.t_min, params_.beta)
                      .truncated_mean_above(params_.deadline);
      break;
    case Strategy::kSpeculativeResume:
      CHRONOS_EXPECTS(params_.beta > 1.0,
                      "machine_time_s_resume requires beta > 1");
      // r+1 fresh attempts process the remaining (1 - phi_est) fraction, so
      // each fails iff (1-phi) T > D - tau_est (Eq. 47).
      p_extra_ = std::pow((1.0 - params_.phi_est) * params_.t_min /
                              (params_.deadline - params_.tau_est),
                          params_.beta);
      below_ = expected_time_below_deadline(params_);
      break;
  }
}

double AnalyticContext::pocd(double r) const {
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
  double task_fail = 0.0;
  switch (strategy_) {
    case Strategy::kClone:
      task_fail = std::pow(p_straggle_, r + 1.0);
      break;
    case Strategy::kSpeculativeRestart:
      task_fail = p_straggle_ * std::pow(p_extra_, r);
      break;
    case Strategy::kSpeculativeResume:
      task_fail = p_straggle_ * std::pow(p_extra_, r + 1.0);
      break;
  }
  return job_from_task(1.0 - task_fail, params_.num_tasks);
}

double AnalyticContext::machine_time(double r) const {
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
  switch (strategy_) {
    case Strategy::kClone: {
      const double n_eff = params_.beta * (r + 1.0);
      CHRONOS_EXPECTS(n_eff > 1.0,
                      "machine_time_clone requires beta * (r + 1) > 1");
      // r attempts are charged until tau_kill; the winner is the min of r+1
      // Pareto variates (Lemma 1).
      const double winner =
          params_.t_min + params_.t_min / (n_eff - 1.0);
      return static_cast<double>(params_.num_tasks) *
             (r * params_.tau_kill + winner);
    }
    case Strategy::kSpeculativeRestart: {
      double above = 0.0;
      if (r == 0.0) {
        // No extra attempts: the straggler simply runs to completion.
        above = above_r0_;
      } else {
        // The winner integral depends on r and stays quadrature-backed; the
        // optimizer memoizes evaluations so it runs once per distinct r.
        above = params_.tau_est +
                r * (params_.tau_kill - params_.tau_est) +
                s_restart_winner_time(params_, r);
      }
      return static_cast<double>(params_.num_tasks) *
             (below_ * (1.0 - p_straggle_) + above * p_straggle_);
    }
    case Strategy::kSpeculativeResume: {
      const double n_eff = params_.beta * (r + 1.0);
      CHRONOS_EXPECTS(n_eff > 1.0,
                      "machine_time_s_resume requires beta * (r + 1) > 1");
      // Published Eq. 56 winner mean, as in machine_time_s_resume.
      const double winner =
          params_.t_min * std::pow(1.0 - params_.phi_est, n_eff) /
              (n_eff - 1.0) +
          params_.t_min;
      const double above = params_.tau_est +
                           r * (params_.tau_kill - params_.tau_est) + winner;
      return static_cast<double>(params_.num_tasks) *
             (below_ * (1.0 - p_straggle_) + above * p_straggle_);
    }
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

UtilityPoint AnalyticContext::evaluate(double r) const {
  ++evaluations_;
  UtilityPoint point;
  point.r = r;
  point.pocd = pocd(r);
  point.machine_time = machine_time(r);
  point.cost = econ_.price * point.machine_time;
  point.utility =
      utility_shaping(point.pocd - econ_.r_min) - econ_.theta * point.cost;
  return point;
}

}  // namespace chronos::core
