#include "core/analytic_context.h"

#include <cmath>

#include "common/error.h"
#include "core/cost.h"
#include "core/kernels.h"
#include "core/thresholds.h"
#include "stats/pareto.h"

namespace chronos::core {

SharedAnalytics::SharedAnalytics(const JobParams& params) : params_(params) {
  params_.validate();
  CHRONOS_EXPECTS(params_.beta > 1.0,
                  "SharedAnalytics requires beta > 1 (S-Restart / S-Resume "
                  "expected machine time is infinite otherwise)");
  p_straggle_ = kernels::straggler_probability(params_);
  below_ = expected_time_below_deadline(params_);
  above_r0_ = stats::Pareto(params_.t_min, params_.beta)
                  .truncated_mean_above(params_.deadline);
}

AnalyticContext::AnalyticContext(Strategy strategy, const JobParams& params,
                                 const Economics& econ)
    : strategy_(strategy), params_(params), econ_(econ) {
  params_.validate();
  econ_.validate();
  gamma_ = gamma_threshold(strategy_, params_);
  p_straggle_ = kernels::straggler_probability(params_);
  switch (strategy_) {
    case Strategy::kClone:
      // Clone needs no further constants; its E(T) requires
      // beta * (r + 1) > 1, which is r-dependent and checked per call.
      break;
    case Strategy::kSpeculativeRestart:
      CHRONOS_EXPECTS(params_.beta > 1.0,
                      "machine_time_s_restart requires beta > 1");
      p_extra_ = kernels::s_restart_extra_failure(params_);
      below_ = expected_time_below_deadline(params_);
      above_r0_ = stats::Pareto(params_.t_min, params_.beta)
                      .truncated_mean_above(params_.deadline);
      break;
    case Strategy::kSpeculativeResume:
      CHRONOS_EXPECTS(params_.beta > 1.0,
                      "machine_time_s_resume requires beta > 1");
      p_extra_ = kernels::s_resume_extra_failure(params_);
      below_ = expected_time_below_deadline(params_);
      break;
  }
}

AnalyticContext::AnalyticContext(Strategy strategy,
                                 const SharedAnalytics& shared,
                                 const Economics& econ)
    : strategy_(strategy), params_(shared.params()), econ_(econ) {
  // params were validated (and beta > 1 established) by SharedAnalytics.
  econ_.validate();
  gamma_ = gamma_threshold(strategy_, params_);
  p_straggle_ = shared.p_straggle();
  switch (strategy_) {
    case Strategy::kClone:
      break;
    case Strategy::kSpeculativeRestart:
      p_extra_ = kernels::s_restart_extra_failure(params_);
      below_ = shared.below();
      above_r0_ = shared.above_r0();
      break;
    case Strategy::kSpeculativeResume:
      p_extra_ = kernels::s_resume_extra_failure(params_);
      below_ = shared.below();
      break;
  }
}

double AnalyticContext::pocd(double r) const {
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
  double task_fail = 0.0;
  switch (strategy_) {
    case Strategy::kClone:
      task_fail = kernels::clone_task_failure(p_straggle_, r);
      break;
    case Strategy::kSpeculativeRestart:
      task_fail = kernels::s_restart_task_failure(p_straggle_, p_extra_, r);
      break;
    case Strategy::kSpeculativeResume:
      task_fail = kernels::s_resume_task_failure(p_straggle_, p_extra_, r);
      break;
  }
  return kernels::job_from_task(1.0 - task_fail, params_.num_tasks);
}

double AnalyticContext::machine_time(double r) const {
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
  switch (strategy_) {
    case Strategy::kClone:
      return kernels::clone_machine_time(params_, r);
    case Strategy::kSpeculativeRestart:
      return kernels::s_restart_machine_time(params_, r, p_straggle_, below_,
                                             above_r0_);
    case Strategy::kSpeculativeResume:
      return kernels::s_resume_machine_time(params_, r, p_straggle_, below_);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

UtilityPoint AnalyticContext::evaluate(double r) const {
  ++evaluations_;
  UtilityPoint point;
  point.r = r;
  point.pocd = pocd(r);
  point.machine_time = machine_time(r);
  point.cost = econ_.price * point.machine_time;
  point.utility =
      utility_shaping(point.pocd - econ_.r_min) - econ_.theta * point.cost;
  return point;
}

}  // namespace chronos::core
