#include "core/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/summary.h"

namespace chronos::core {

namespace {

struct TaskOutcome {
  bool met_deadline = false;
  double machine_time = 0.0;
};

TaskOutcome simulate_clone(const JobParams& p, long long r, Rng& rng) {
  // r+1 attempts run from t = 0; losers are killed at tau_kill.
  double winner = rng.pareto(p.t_min, p.beta);
  for (long long k = 0; k < r; ++k) {
    winner = std::min(winner, rng.pareto(p.t_min, p.beta));
  }
  TaskOutcome out;
  out.met_deadline = winner <= p.deadline;
  out.machine_time = static_cast<double>(r) * p.tau_kill + winner;
  return out;
}

TaskOutcome simulate_s_restart(const JobParams& p, long long r, Rng& rng) {
  const double original = rng.pareto(p.t_min, p.beta);
  TaskOutcome out;
  if (original <= p.deadline || r == 0) {
    out.met_deadline = original <= p.deadline;
    out.machine_time = original;
    return out;
  }
  // Straggler: r fresh attempts start at tau_est; original keeps running.
  // Remaining time of the winner, measured from tau_est:
  double winner = original - p.tau_est;
  for (long long k = 0; k < r; ++k) {
    winner = std::min(winner, rng.pareto(p.t_min, p.beta));
  }
  out.met_deadline = winner <= p.deadline - p.tau_est;
  // Machine time: original up to tau_est, r losers charged until tau_kill,
  // winner runs from tau_est to completion (Theorem 4 decomposition).
  out.machine_time = p.tau_est +
                     static_cast<double>(r) * (p.tau_kill - p.tau_est) +
                     winner;
  return out;
}

TaskOutcome simulate_s_resume(const JobParams& p, long long r, Rng& rng) {
  const double original = rng.pareto(p.t_min, p.beta);
  TaskOutcome out;
  if (original <= p.deadline) {
    out.met_deadline = true;
    out.machine_time = original;
    return out;
  }
  // Straggler: the original is killed at tau_est; r+1 fresh attempts resume
  // from progress phi_est, i.e. each needs (1 - phi_est) of a full duration.
  const double remaining_fraction = 1.0 - p.phi_est;
  double winner = remaining_fraction * rng.pareto(p.t_min, p.beta);
  for (long long k = 0; k < r; ++k) {
    winner = std::min(winner, remaining_fraction * rng.pareto(p.t_min, p.beta));
  }
  out.met_deadline = winner <= p.deadline - p.tau_est;
  out.machine_time = p.tau_est +
                     static_cast<double>(r) * (p.tau_kill - p.tau_est) +
                     winner;
  return out;
}

TaskOutcome simulate_task(Strategy strategy, const JobParams& p, long long r,
                          Rng& rng) {
  switch (strategy) {
    case Strategy::kClone:
      return simulate_clone(p, r, rng);
    case Strategy::kSpeculativeRestart:
      return simulate_s_restart(p, r, rng);
    case Strategy::kSpeculativeResume:
      return simulate_s_resume(p, r, rng);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

}  // namespace

MonteCarloResult monte_carlo(Strategy strategy, const JobParams& params,
                             long long r, std::uint64_t jobs, Rng& rng) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0, "r must be >= 0");
  CHRONOS_EXPECTS(jobs > 0, "at least one simulated job is required");

  std::uint64_t met = 0;
  stats::RunningStats times;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    bool job_met = true;
    double job_time = 0.0;
    for (int t = 0; t < params.num_tasks; ++t) {
      const auto outcome = simulate_task(strategy, params, r, rng);
      job_met = job_met && outcome.met_deadline;
      job_time += outcome.machine_time;
    }
    met += job_met ? 1 : 0;
    times.add(job_time);
  }

  MonteCarloResult result;
  result.jobs = jobs;
  result.pocd = static_cast<double>(met) / static_cast<double>(jobs);
  result.pocd_ci = stats::proportion_ci_halfwidth(met, jobs);
  result.machine_time = times.mean();
  result.machine_time_sem =
      times.stddev() / std::sqrt(static_cast<double>(jobs));
  return result;
}

MonteCarloResult monte_carlo_no_speculation(const JobParams& params,
                                            std::uint64_t jobs, Rng& rng) {
  params.validate();
  CHRONOS_EXPECTS(jobs > 0, "at least one simulated job is required");
  std::uint64_t met = 0;
  stats::RunningStats times;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    bool job_met = true;
    double job_time = 0.0;
    for (int t = 0; t < params.num_tasks; ++t) {
      const double duration = rng.pareto(params.t_min, params.beta);
      job_met = job_met && duration <= params.deadline;
      job_time += duration;
    }
    met += job_met ? 1 : 0;
    times.add(job_time);
  }
  MonteCarloResult result;
  result.jobs = jobs;
  result.pocd = static_cast<double>(met) / static_cast<double>(jobs);
  result.pocd_ci = stats::proportion_ci_halfwidth(met, jobs);
  result.machine_time = times.mean();
  result.machine_time_sem =
      times.stddev() / std::sqrt(static_cast<double>(jobs));
  return result;
}

}  // namespace chronos::core
