#include "core/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.h"
#include "obs/metrics.h"
#include "stats/summary.h"

namespace chronos::core {

namespace {

// The sampler's draw volume, counted in bulk after each run (one add per
// monte_carlo call, not per task): every task invokes its kernel exactly
// once, so kernel invocations are jobs * num_tasks.
const obs::Counter c_mc_runs = obs::counter("core.mc.runs");
const obs::Counter c_mc_jobs = obs::counter("core.mc.jobs");
const obs::Counter c_mc_task_draws = obs::counter("core.mc.task_draws");

struct TaskOutcome {
  bool met_deadline = false;
  double machine_time = 0.0;
};

// ---------------------------------------------------------------------------
// Fast-path kernels.
//
// Each kernel is constructed once per monte_carlo() call (hoisting the
// strategy dispatch, parameter validation and all derived constants out of
// the per-task loop) and samples one task outcome per invocation. Winner
// durations come straight from their order-statistic law: the min of k
// i.i.d. Pareto(t_min, beta) variates is Pareto(t_min, k*beta) (Lemma 1),
// which collapses the O(r) winner loops of the literal semantics to a
// single draw.

/// Clone: r+1 attempts from t = 0; losers are killed at tau_kill.
class CloneKernel {
 public:
  CloneKernel(const JobParams& p, long long r)
      : winner_(p.t_min, p.beta * static_cast<double>(r + 1)),
        deadline_(p.deadline),
        kill_charge_(static_cast<double>(r) * p.tau_kill) {}

  TaskOutcome operator()(Rng& rng) const {
    const double winner = winner_(rng);
    return {winner <= deadline_, kill_charge_ + winner};
  }

 private:
  ParetoSampler winner_;  ///< min of r+1 draws ~ Pareto(t_min, (r+1) beta)
  double deadline_;
  double kill_charge_;
};

/// S-Restart: r fresh attempts start at tau_est; the original keeps running.
class SRestartKernel {
 public:
  SRestartKernel(const JobParams& p, long long r)
      : original_(p.t_min, p.beta),
        deadline_(p.deadline),
        tau_est_(p.tau_est),
        d_bar_(p.deadline - p.tau_est),
        kill_charge_(static_cast<double>(r) * (p.tau_kill - p.tau_est)) {
    if (r > 0) {
      // min of the r restarted attempts ~ Pareto(t_min, r beta).
      fresh_.emplace(p.t_min, p.beta * static_cast<double>(r));
    }
  }

  TaskOutcome operator()(Rng& rng) const {
    const double original = original_(rng);
    if (original <= deadline_ || !fresh_) {
      return {original <= deadline_, original};
    }
    // Remaining time of the winner, measured from tau_est.
    const double winner = std::min(original - tau_est_, (*fresh_)(rng));
    // Machine time: original up to tau_est, r losers charged until tau_kill,
    // winner runs from tau_est to completion (Theorem 4 decomposition).
    return {winner <= d_bar_, tau_est_ + kill_charge_ + winner};
  }

 private:
  ParetoSampler original_;
  std::optional<ParetoSampler> fresh_;
  double deadline_;
  double tau_est_;
  double d_bar_;
  double kill_charge_;
};

/// No speculation: a single attempt per task, no kills.
class NoSpeculationKernel {
 public:
  explicit NoSpeculationKernel(const JobParams& p)
      : attempt_(p.t_min, p.beta), deadline_(p.deadline) {}

  TaskOutcome operator()(Rng& rng) const {
    const double duration = attempt_(rng);
    return {duration <= deadline_, duration};
  }

 private:
  ParetoSampler attempt_;
  double deadline_;
};

/// S-Resume: the straggler is killed at tau_est; r+1 fresh attempts resume
/// from progress phi_est, i.e. each needs (1 - phi_est) of a full duration.
class SResumeKernel {
 public:
  SResumeKernel(const JobParams& p, long long r)
      : original_(p.t_min, p.beta),
        resumed_(p.t_min, p.beta * static_cast<double>(r + 1)),
        remaining_fraction_(1.0 - p.phi_est),
        deadline_(p.deadline),
        tau_est_(p.tau_est),
        d_bar_(p.deadline - p.tau_est),
        kill_charge_(static_cast<double>(r) * (p.tau_kill - p.tau_est)) {}

  TaskOutcome operator()(Rng& rng) const {
    const double original = original_(rng);
    if (original <= deadline_) {
      return {true, original};
    }
    // min over r+1 copies of (1-phi) T is (1-phi) Pareto(t_min, (r+1) beta).
    const double winner = remaining_fraction_ * resumed_(rng);
    return {winner <= d_bar_, tau_est_ + kill_charge_ + winner};
  }

 private:
  ParetoSampler original_;
  ParetoSampler resumed_;  ///< min of r+1 full-duration draws
  double remaining_fraction_;
  double deadline_;
  double tau_est_;
  double d_bar_;
  double kill_charge_;
};

// ---------------------------------------------------------------------------
// Reference kernels: the literal r+1-draw semantics, kept as the
// cross-validation oracle for the order-statistic fast path.

class CloneReferenceKernel {
 public:
  CloneReferenceKernel(const JobParams& p, long long r)
      : attempt_(p.t_min, p.beta), p_(p), r_(r) {}

  TaskOutcome operator()(Rng& rng) const {
    double winner = attempt_(rng);
    for (long long k = 0; k < r_; ++k) {
      winner = std::min(winner, attempt_(rng));
    }
    return {winner <= p_.deadline,
            static_cast<double>(r_) * p_.tau_kill + winner};
  }

 private:
  ParetoSampler attempt_;
  const JobParams& p_;
  long long r_;
};

class SRestartReferenceKernel {
 public:
  SRestartReferenceKernel(const JobParams& p, long long r)
      : attempt_(p.t_min, p.beta), p_(p), r_(r) {}

  TaskOutcome operator()(Rng& rng) const {
    const double original = attempt_(rng);
    if (original <= p_.deadline || r_ == 0) {
      return {original <= p_.deadline, original};
    }
    double winner = original - p_.tau_est;
    for (long long k = 0; k < r_; ++k) {
      winner = std::min(winner, attempt_(rng));
    }
    return {winner <= p_.deadline - p_.tau_est,
            p_.tau_est + static_cast<double>(r_) * (p_.tau_kill - p_.tau_est) +
                winner};
  }

 private:
  ParetoSampler attempt_;
  const JobParams& p_;
  long long r_;
};

class SResumeReferenceKernel {
 public:
  SResumeReferenceKernel(const JobParams& p, long long r)
      : attempt_(p.t_min, p.beta), p_(p), r_(r) {}

  TaskOutcome operator()(Rng& rng) const {
    const double original = attempt_(rng);
    if (original <= p_.deadline) {
      return {true, original};
    }
    const double remaining_fraction = 1.0 - p_.phi_est;
    double winner = remaining_fraction * attempt_(rng);
    for (long long k = 0; k < r_; ++k) {
      winner = std::min(winner, remaining_fraction * attempt_(rng));
    }
    return {winner <= p_.deadline - p_.tau_est,
            p_.tau_est + static_cast<double>(r_) * (p_.tau_kill - p_.tau_est) +
                winner};
  }

 private:
  ParetoSampler attempt_;
  const JobParams& p_;
  long long r_;
};

// ---------------------------------------------------------------------------

/// Shared job loop: one kernel invocation per task, Welford aggregation per
/// job. Templated so each strategy's kernel is inlined with its constants.
template <typename Kernel>
MonteCarloResult run_jobs(const Kernel& kernel, int num_tasks,
                          std::uint64_t jobs, Rng& rng) {
  std::uint64_t met = 0;
  stats::RunningStats times;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    bool job_met = true;
    double job_time = 0.0;
    for (int t = 0; t < num_tasks; ++t) {
      const TaskOutcome outcome = kernel(rng);
      job_met = job_met && outcome.met_deadline;
      job_time += outcome.machine_time;
    }
    met += job_met ? 1 : 0;
    times.add(job_time);
  }

  c_mc_runs.add();
  c_mc_jobs.add(jobs);
  c_mc_task_draws.add(jobs * static_cast<std::uint64_t>(num_tasks));

  MonteCarloResult result;
  result.jobs = jobs;
  result.pocd = static_cast<double>(met) / static_cast<double>(jobs);
  result.pocd_ci = stats::proportion_ci_halfwidth(met, jobs);
  result.machine_time = times.mean();
  result.machine_time_sem =
      times.stddev() / std::sqrt(static_cast<double>(jobs));
  return result;
}

void check_inputs(const JobParams& params, long long r, std::uint64_t jobs) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0, "r must be >= 0");
  CHRONOS_EXPECTS(jobs > 0, "at least one simulated job is required");
}

}  // namespace

MonteCarloResult monte_carlo(Strategy strategy, const JobParams& params,
                             long long r, std::uint64_t jobs, Rng& rng) {
  check_inputs(params, r, jobs);
  switch (strategy) {
    case Strategy::kClone:
      return run_jobs(CloneKernel(params, r), params.num_tasks, jobs, rng);
    case Strategy::kSpeculativeRestart:
      return run_jobs(SRestartKernel(params, r), params.num_tasks, jobs, rng);
    case Strategy::kSpeculativeResume:
      return run_jobs(SResumeKernel(params, r), params.num_tasks, jobs, rng);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

MonteCarloResult monte_carlo_reference(Strategy strategy,
                                       const JobParams& params, long long r,
                                       std::uint64_t jobs, Rng& rng) {
  check_inputs(params, r, jobs);
  switch (strategy) {
    case Strategy::kClone:
      return run_jobs(CloneReferenceKernel(params, r), params.num_tasks, jobs,
                      rng);
    case Strategy::kSpeculativeRestart:
      return run_jobs(SRestartReferenceKernel(params, r), params.num_tasks,
                      jobs, rng);
    case Strategy::kSpeculativeResume:
      return run_jobs(SResumeReferenceKernel(params, r), params.num_tasks,
                      jobs, rng);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

MonteCarloResult monte_carlo_no_speculation(const JobParams& params,
                                            std::uint64_t jobs, Rng& rng) {
  params.validate();
  CHRONOS_EXPECTS(jobs > 0, "at least one simulated job is required");
  return run_jobs(NoSpeculationKernel(params), params.num_tasks, jobs, rng);
}

}  // namespace chronos::core
