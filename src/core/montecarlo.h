// Monte-Carlo estimators of PoCD and expected machine time under the exact
// model semantics of §III/§IV. These validate every closed form in the
// analytic core (tests) and provide reference numbers for the benches.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/model.h"

namespace chronos::core {

struct MonteCarloResult {
  double pocd = 0.0;            ///< fraction of simulated jobs meeting D
  double pocd_ci = 0.0;         ///< ~95% CI half-width on pocd
  double machine_time = 0.0;    ///< mean per-job machine time
  double machine_time_sem = 0.0;  ///< standard error of the mean
  std::uint64_t jobs = 0;
};

/// Simulates `jobs` independent jobs of `params.num_tasks` tasks under the
/// idealized strategy semantics the theorems assume:
///  - attempt durations are i.i.d. Pareto(t_min, beta);
///  - straggler detection at tau_est is exact (an attempt is a straggler iff
///    its sampled duration exceeds D);
///  - killed attempts are charged machine time up to tau_kill;
///  - S-Resume attempts process the remaining (1 - phi_est) fraction.
/// Requires r >= 0 and valid params.
MonteCarloResult monte_carlo(Strategy strategy, const JobParams& params,
                             long long r, std::uint64_t jobs, Rng& rng);

/// Monte-Carlo estimate for the no-speculation baseline (single attempt per
/// task, no kills).
MonteCarloResult monte_carlo_no_speculation(const JobParams& params,
                                            std::uint64_t jobs, Rng& rng);

}  // namespace chronos::core
