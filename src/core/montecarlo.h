// Monte-Carlo estimators of PoCD and expected machine time under the exact
// model semantics of §III/§IV. These validate every closed form in the
// analytic core (tests) and provide reference numbers for the benches.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/model.h"

namespace chronos::core {

struct MonteCarloResult {
  double pocd = 0.0;            ///< fraction of simulated jobs meeting D
  double pocd_ci = 0.0;         ///< ~95% CI half-width on pocd
  double machine_time = 0.0;    ///< mean per-job machine time
  double machine_time_sem = 0.0;  ///< standard error of the mean
  std::uint64_t jobs = 0;
};

/// Simulates `jobs` independent jobs of `params.num_tasks` tasks under the
/// idealized strategy semantics the theorems assume:
///  - attempt durations are i.i.d. Pareto(t_min, beta);
///  - straggler detection at tau_est is exact (an attempt is a straggler iff
///    its sampled duration exceeds D);
///  - killed attempts are charged machine time up to tau_kill;
///  - S-Resume attempts process the remaining (1 - phi_est) fraction.
/// Requires r >= 0 and valid params.
///
/// Fast path: instead of drawing all r+1 attempt durations and taking their
/// minimum, the winner is sampled directly from its order-statistic law —
/// the min of k i.i.d. Pareto(t_min, beta) variates is exactly
/// Pareto(t_min, k*beta) (Lemma 1) — so the per-task cost is O(1) in r.
/// Every per-task outcome is therefore drawn from the exact distribution of
/// the literal semantics, but the stream consumes fewer variates, so
/// results differ sample-wise (never distribution-wise) from
/// `monte_carlo_reference`.
MonteCarloResult monte_carlo(Strategy strategy, const JobParams& params,
                             long long r, std::uint64_t jobs, Rng& rng);

/// Literal-semantics reference: draws every one of the r+1 attempt durations
/// and takes their minimum, exactly as the model text reads. O(r) per task.
/// Kept as the cross-validation oracle for the order-statistic fast path
/// (tests assert both agree with each other and with the closed forms).
MonteCarloResult monte_carlo_reference(Strategy strategy,
                                       const JobParams& params, long long r,
                                       std::uint64_t jobs, Rng& rng);

/// Monte-Carlo estimate for the no-speculation baseline (single attempt per
/// task, no kills).
MonteCarloResult monte_carlo_no_speculation(const JobParams& params,
                                            std::uint64_t jobs, Rng& rng);

}  // namespace chronos::core
