// Shared inline formula kernels for the analytic core (Theorems 2, 4, 6).
//
// Before this header existed, cost.cpp, pocd.cpp and analytic_context.cpp
// carried copy-pasted bodies of the same expressions (e.g. the Eq. 56 winner
// mean appeared verbatim in both cost.cpp and analytic_context.cpp). The
// AnalyticContext is documented to be *bit-identical* to the free functions;
// that used to be enforced only by tests. Funnelling every formula body
// through a single inline kernel makes the identity hold by construction:
// both call paths execute the same floating-point expression in the same
// order, so they cannot drift apart.
//
// Kernels take the r-independent constants (straggler probability, truncated
// Pareto means) as arguments so that AnalyticContext / SharedAnalytics can
// pass memoized values while the free functions compute them per call — the
// values are identical either way because both sides compute them with the
// same kernel expressions.
#pragma once

#include <cmath>

#include "common/error.h"
#include "core/model.h"

namespace chronos::core::kernels {

/// expm1(x) / x with the removable singularity at x == 0 filled in.
/// Relative accuracy is ~1 ulp everywhere (expm1 is exact near 0).
inline double expm1_ratio(double x) {
  if (x == 0.0) {
    return 1.0;
  }
  return std::expm1(x) / x;
}

/// P(T_1 > D) = (t_min / D)^beta — straggler probability of one attempt.
inline double straggler_probability(const JobParams& p) {
  return std::pow(p.t_min / p.deadline, p.beta);
}

/// Per-extra-attempt failure factor of S-Restart (Eq. 34): a fresh attempt
/// launched at tau_est misses the deadline iff its execution time exceeds
/// D - tau_est.
inline double s_restart_extra_failure(const JobParams& p) {
  return std::pow(p.t_min / (p.deadline - p.tau_est), p.beta);
}

/// Per-attempt failure factor of S-Resume (Eq. 47): each of the r+1 resumed
/// attempts processes the remaining (1 - phi_est) fraction and misses the
/// deadline iff (1 - phi) T > D - tau_est.
inline double s_resume_extra_failure(const JobParams& p) {
  return std::pow((1.0 - p.phi_est) * p.t_min / (p.deadline - p.tau_est),
                  p.beta);
}

/// Job PoCD from one task's success probability: tasks fail independently,
/// so the job succeeds iff every task does.
inline double job_from_task(double task_success, int num_tasks) {
  return std::pow(task_success, static_cast<double>(num_tasks));
}

/// Clone task failure: all r+1 independent copies must straggle.
inline double clone_task_failure(double p_straggle, double r) {
  return std::pow(p_straggle, r + 1.0);
}

/// S-Restart task failure: original straggles AND each of the r restarted
/// attempts misses D - tau_est.
inline double s_restart_task_failure(double p_straggle, double p_extra,
                                     double r) {
  return p_straggle * std::pow(p_extra, r);
}

/// S-Resume task failure: original straggles AND each of the r+1 resumed
/// attempts misses D - tau_est.
inline double s_resume_task_failure(double p_straggle, double p_extra,
                                    double r) {
  return p_straggle * std::pow(p_extra, r + 1.0);
}

// --- Theorem 2: Clone ------------------------------------------------------

/// Lemma 1 winner mean E[min of r+1 i.i.d. Pareto(t_min, beta)] written as
/// t_min + t_min / (n_eff - 1) with n_eff = beta (r + 1) > 1.
inline double clone_winner_mean(const JobParams& p, double n_eff) {
  return p.t_min + p.t_min / (n_eff - 1.0);
}

/// Theorem 2: E_Clone(T) = N [ r tau_kill + winner ]. The r losing attempts
/// are each charged until tau_kill.
inline double clone_machine_time(const JobParams& p, double r) {
  const double n_eff = p.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_clone requires beta * (r + 1) > 1");
  return static_cast<double>(p.num_tasks) *
         (r * p.tau_kill + clone_winner_mean(p, n_eff));
}

// --- Theorem 4: S-Restart --------------------------------------------------

/// Iteration cap for the 2F1 tail series of s_restart_winner_mean. The
/// per-term ratio is at most z = tau_est / deadline < 1, so the series always
/// converges; the cap only guards pathological jobs with tau_est within a
/// few parts in 1e5 of the deadline, where millions of terms would be needed.
inline constexpr int kWinnerSeriesMaxTerms = 2'000'000;

/// Relative truncation target of the tail series (well below the 1e-9
/// agreement requirement against the quadrature reference).
inline constexpr double kWinnerSeriesTol = 1e-17;

/// Closed form of E(W_hat), the Theorem 4 / Lemma 3 winner time (Eq. 45):
/// the quadrature-free replacement for s_restart_winner_time_reference.
/// See the derivation note in cost.h. Requires beta (r + 1) > 1; the
/// survival-product integral diverges otherwise.
inline double s_restart_winner_mean(const JobParams& p, double r) {
  const double beta = p.beta;
  const double q = beta * r;                // fresh-attempts tail exponent
  const double a = beta * (r + 1.0) - 1.0;  // combined tail decay minus 1
  CHRONOS_EXPECTS(a > 0.0,
                  "s_restart_winner_time requires beta * (r + 1) > 1: the "
                  "survival product decays like w^{-beta(r+1)}, so the "
                  "winner-time integral diverges otherwise");
  const double t_min = p.t_min;
  const double d_bar = p.deadline - p.tau_est;  // >= t_min by validate()
  // L = ln(d_bar / t_min), via log1p for accuracy when d_bar ~ t_min.
  const double log_ratio = std::log1p((d_bar - t_min) / t_min);
  // Piece 2, [t_min, d_bar]: int (t_min/w)^q dw
  //   = t_min (e^{(1-q)L} - 1) / (1-q)  =  t_min L expm1_ratio((1-q) L),
  // removable singularity at q = beta r = 1 handled by expm1_ratio.
  const double middle =
      t_min * log_ratio * expm1_ratio((1.0 - q) * log_ratio);
  // Piece 3, [d_bar, inf): t_min e^{(1-q)L} F / a with
  //   F = 2F1(1, beta; a + 1; z),  z = tau_est / deadline,
  // summed directly: term_0 = 1, term_{k+1} = term_k z (beta+k)/(a+1+k).
  // Every ratio is <= z < 1 (beta <= a + 1), so terms decay monotonically
  // and the remainder after term_k is bounded by term_k z / (1 - z).
  const double z = p.tau_est / p.deadline;
  double f = 0.0;
  double term = 1.0;
  bool converged = false;
  for (int k = 0; k < kWinnerSeriesMaxTerms; ++k) {
    f += term;
    if (term * z <= f * (1.0 - z) * kWinnerSeriesTol) {
      converged = true;
      break;
    }
    term *= z * (beta + k) / (a + 1.0 + k);
  }
  CHRONOS_ENSURES(converged,
                  "S-Restart winner-time tail series did not converge "
                  "(tau_est is pathologically close to the deadline)");
  const double tail = t_min * std::exp((1.0 - q) * log_ratio) * f / a;
  return t_min + middle + tail;
}

/// Expected time already sunk into the straggler plus the r speculative
/// attempts when the winner takes `winner` more time after tau_est:
/// tau_est + r (tau_kill - tau_est) + winner (Theorems 4 and 6).
inline double speculation_above(const JobParams& p, double r, double winner) {
  return p.tau_est + r * (p.tau_kill - p.tau_est) + winner;
}

/// Theorem 4 "above" branch: expected machine time charged when the original
/// attempt straggles. This is the single place the r == 0 case is selected:
/// callers establish r >= 0, so `r > 0.0` tests exactly "at least one
/// restarted attempt exists" (structural, not an epsilon compare). With no
/// restarts the straggler simply runs to completion (above_r0 = E[T | T > D]);
/// the general branch is continuous as r -> 0+ with that same limit
/// (pinned by ClosedForm.MachineTimeContinuousAsRApproachesZero).
inline double s_restart_above(const JobParams& p, double r, double above_r0) {
  if (r > 0.0) {
    return speculation_above(p, r, s_restart_winner_mean(p, r));
  }
  return above_r0;
}

/// Straggler-split total shared by Theorems 4 and 6:
/// N [ below (1 - p_straggle) + above p_straggle ].
inline double straggler_split_total(const JobParams& p, double below,
                                    double above, double p_straggle) {
  return static_cast<double>(p.num_tasks) *
         (below * (1.0 - p_straggle) + above * p_straggle);
}

/// Theorem 4: E_S-Restart(T) from the precomputed constants.
inline double s_restart_machine_time(const JobParams& p, double r,
                                     double p_straggle, double below,
                                     double above_r0) {
  return straggler_split_total(p, below, s_restart_above(p, r, above_r0),
                               p_straggle);
}

// --- Theorem 6: S-Resume ---------------------------------------------------

/// Eq. 56 winner mean (published closed form; a slight upper bound, see the
/// header note in cost.h):
/// E(W_new) = t_min (1 - phi)^{beta(r+1)} / (beta(r+1) - 1) + t_min.
inline double s_resume_winner_mean(const JobParams& p, double n_eff) {
  return p.t_min * std::pow(1.0 - p.phi_est, n_eff) / (n_eff - 1.0) +
         p.t_min;
}

/// Exact S-Resume winner mean using the true support (1 - phi) t_min:
/// min of r+1 copies of (1-phi) T is Pareto((1-phi) t_min, beta (r+1)).
inline double s_resume_winner_mean_exact(const JobParams& p, double n_eff) {
  return (1.0 - p.phi_est) * p.t_min * n_eff / (n_eff - 1.0);
}

/// Theorem 6 (published form): E_S-Resume(T) from precomputed constants.
inline double s_resume_machine_time(const JobParams& p, double r,
                                    double p_straggle, double below) {
  const double n_eff = p.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_s_resume requires beta * (r + 1) > 1");
  const double above =
      speculation_above(p, r, s_resume_winner_mean(p, n_eff));
  return straggler_split_total(p, below, above, p_straggle);
}

}  // namespace chronos::core::kernels
