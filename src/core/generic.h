// Distribution-generic PoCD and machine-time analysis.
//
// §IV: "our analysis of PoCD and cost (including proof techniques of
// Theorems 1-6) actually works with other distributions as well". This
// module generalizes the three strategies' PoCD and expected machine time
// to an arbitrary task-duration Distribution, using numeric quadrature for
// the expectations the Pareto case solves in closed form.
//
// With a ParetoDistribution these functions agree with the closed forms in
// core/pocd.h and core/cost.h (verified by tests/test_generic.cpp); the
// S-Resume machine time matches machine_time_s_resume_exact (the corrected
// form, not the paper's Eq. 56 upper bound).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "core/model.h"
#include "core/montecarlo.h"
#include "stats/distribution.h"

namespace chronos::core {

/// Job description for the generic analysis: same timers/geometry as
/// JobParams, with the duration law abstracted.
struct GenericJobParams {
  int num_tasks = 1;
  double deadline = 0.0;
  double tau_est = 0.0;
  double tau_kill = 0.0;
  double phi_est = 0.0;

  void validate(const stats::Distribution& dist) const;
};

/// PoCD under the given strategy and duration distribution (generalizes
/// Theorems 1, 3, 5). Requires r >= 0.
double generic_pocd(Strategy strategy, const GenericJobParams& params,
                    const stats::Distribution& dist, double r);

/// Expected machine time (generalizes Theorems 2, 4, 6 — the S-Resume
/// branch uses the exact winner expectation). Requires a finite mean.
double generic_machine_time(Strategy strategy, const GenericJobParams& params,
                            const stats::Distribution& dist, double r);

/// Net utility at integer r (same shaping as evaluate_utility).
double generic_utility(Strategy strategy, const GenericJobParams& params,
                       const stats::Distribution& dist,
                       const Economics& econ, long long r);

/// Brute-force optimizer over r in [0, max_r]: no concavity structure is
/// assumed for arbitrary distributions. Returns the utility-maximizing r
/// (feasibility mirrors OptimizationResult).
struct GenericOptimum {
  long long r_opt = 0;
  double pocd = 0.0;
  double machine_time = 0.0;
  double utility = 0.0;
  bool feasible = false;
};
GenericOptimum generic_optimize(Strategy strategy,
                                const GenericJobParams& params,
                                const stats::Distribution& dist,
                                const Economics& econ, long long max_r = 64);

/// Monte-Carlo estimate under the generic model semantics (mirrors
/// core/montecarlo.h for arbitrary distributions).
MonteCarloResult generic_monte_carlo(Strategy strategy,
                                     const GenericJobParams& params,
                                     const stats::Distribution& dist,
                                     long long r, std::uint64_t jobs,
                                     Rng& rng);

}  // namespace chronos::core
