#include "core/utility.h"

#include <cmath>
#include <limits>

#include "core/cost.h"
#include "core/pocd.h"

namespace chronos::core {

double utility_shaping(double x) {
  if (x <= 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return std::log10(x);
}

UtilityPoint evaluate_utility(Strategy strategy, const JobParams& params,
                              const Economics& econ, double r) {
  econ.validate();
  UtilityPoint point;
  point.r = r;
  point.pocd = pocd(strategy, params, r);
  point.machine_time = machine_time(strategy, params, r);
  point.cost = econ.price * point.machine_time;
  point.utility =
      utility_shaping(point.pocd - econ.r_min) - econ.theta * point.cost;
  return point;
}

}  // namespace chronos::core
