// Concavity thresholds Gamma_strategy of Theorem 8: the net utility U(r) is
// concave in r for r > Gamma. Algorithm 1 searches exhaustively below
// ceil(Gamma) and convexly above it.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// Gamma_Clone = -(1/beta) log_{t_min/D} N - 1.
double gamma_clone(const JobParams& params);

/// Gamma_S-Restart = (1/beta) log_{t_min/(D - tau_est)}
///                   (D^beta / (N t_min^beta)).
double gamma_s_restart(const JobParams& params);

/// Gamma_S-Resume = (1/beta) log_{(1-phi) t_min/(D - tau_est)}
///                  (D^beta / (N t_min^beta)) - 1.
double gamma_s_resume(const JobParams& params);

/// Dispatch on `strategy`.
double gamma_threshold(Strategy strategy, const JobParams& params);

/// First integer r at or above which concavity is guaranteed:
/// max(0, ceil(gamma_threshold)).
long long concave_start(Strategy strategy, const JobParams& params);

/// As above for an already-computed Gamma (e.g. AnalyticContext::gamma()).
long long concave_start(double gamma);

}  // namespace chronos::core
