// Probability of Completion before Deadline (PoCD) — closed forms from
// Theorems 1, 3 and 5 of the paper.
//
// All functions accept a real-valued r so the optimizer can run its
// continuous line-search phase; integer r gives the paper's quantities.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// Theorem 1:  R_Clone = [1 - (t_min/D)^{beta (r+1)}]^N.
double pocd_clone(const JobParams& params, double r);

/// Theorem 3:  R_S-Restart = [1 - t_min^{beta(r+1)} /
///                            (D^beta (D - tau_est)^{beta r})]^N.
double pocd_s_restart(const JobParams& params, double r);

/// Theorem 5:  R_S-Resume = [1 - (1-phi)^{beta(r+1)} t_min^{beta(r+2)} /
///                           (D^beta (D - tau_est)^{beta(r+1)})]^N.
double pocd_s_resume(const JobParams& params, double r);

/// Dispatch on `strategy`. Requires r >= 0 and valid params.
double pocd(Strategy strategy, const JobParams& params, double r);

/// Probability that a single task (not the whole job) completes before D
/// under the strategy; the job PoCD is this value raised to the N-th power.
double task_pocd(Strategy strategy, const JobParams& params, double r);

/// PoCD of default Hadoop with no speculation: every task has a single
/// attempt, so R = [1 - (t_min/D)^beta]^N. Used as R_min in the evaluation.
double pocd_no_speculation(const JobParams& params);

}  // namespace chronos::core
