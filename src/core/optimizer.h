// Algorithm 1 — the unifying optimization algorithm of §V-B.
//
// Maximizes U(r) = lg(R(r) - R_min) - theta * C * E(T) over integer r >= 0.
// Phase 1 searches the provably concave region r >= ceil(Gamma) (Theorem 8);
// phase 2 exhaustively checks the handful of integers below ceil(Gamma).
// Theorem 9: the combination returns a global optimum.
#pragma once

#include <cstdint>

#include "core/analytic_context.h"
#include "core/model.h"
#include "core/utility.h"

namespace chronos::core {

struct OptimizerOptions {
  /// Upper bound on r explored by the concave-phase search. The objective
  /// decays like -theta*C*E(T) for large r, so the optimum is far below this.
  long long max_r = 4096;
};

struct OptimizationResult {
  long long r_opt = 0;       ///< optimal number of extra attempts
  UtilityPoint best;         ///< objective components at r_opt
  double gamma = 0.0;        ///< concavity threshold used (Theorem 8)
  std::int64_t evaluations = 0;  ///< number of UNIQUE U(r) evaluations
                                 ///< actually computed (memoized)
  std::int64_t lookups = 0;  ///< total objective queries, incl. memo hits
  bool feasible = false;     ///< true when U(r_opt) is finite
                             ///< (R(r_opt) > R_min is attainable)
};

/// Runs Algorithm 1 for `strategy`. Requires valid params/econ. When no
/// integer r in [0, max_r] achieves R(r) > R_min, the result has
/// feasible == false and r_opt == 0 with utility == -infinity.
///
/// Internally builds an AnalyticContext so every r-independent constant is
/// computed once, and memoizes U(r) so the guarded ternary search never
/// evaluates the same integer twice.
OptimizationResult optimize(Strategy strategy, const JobParams& params,
                            const Economics& econ,
                            const OptimizerOptions& options = {});

/// As above, but evaluates through a caller-supplied context (lets callers
/// amortize the context across searches and instrument evaluation counts).
OptimizationResult optimize(const AnalyticContext& context,
                            const OptimizerOptions& options = {});

/// Reference implementation: linear scan of U(r) for r in [0, max_r].
/// Exponential-time-free but O(max_r); used to validate `optimize`.
OptimizationResult brute_force_optimize(Strategy strategy,
                                        const JobParams& params,
                                        const Economics& econ,
                                        const OptimizerOptions& options = {});

/// Runs `optimize` for all three strategies and returns the strategy/result
/// pair with the highest net utility. The strategy-independent constants
/// (straggler probability, truncated Pareto means) are computed once in a
/// SharedAnalytics and borrowed by every strategy's context, so the batched
/// search does strictly less r-independent work than three optimize() calls
/// while returning bit-identical results.
struct BestStrategy {
  Strategy strategy = Strategy::kClone;
  OptimizationResult result;
};
BestStrategy optimize_all(const JobParams& params, const Economics& econ,
                          const OptimizerOptions& options = {});

/// As above, but borrows an already-built SharedAnalytics (whose params are
/// the job's S-Resume-style params). Lets a batch planner amortize the
/// strategy-independent constants across many economics (price / theta)
/// values for the same job shape; bit-identical to the params overload.
BestStrategy optimize_all(const SharedAnalytics& shared, const Economics& econ,
                          const OptimizerOptions& options = {});

}  // namespace chronos::core
