#include "core/frontier.h"

#include <algorithm>

#include "common/error.h"
#include "core/cost.h"
#include "core/pocd.h"

namespace chronos::core {

std::vector<FrontierPoint> enumerate_operating_points(
    const JobParams& params, double price, long long max_r) {
  params.validate();
  CHRONOS_EXPECTS(price >= 0.0, "price must be non-negative");
  CHRONOS_EXPECTS(max_r >= 0, "max_r must be >= 0");
  std::vector<FrontierPoint> points;
  points.reserve(static_cast<std::size_t>(3 * (max_r + 1)));
  for (const Strategy strategy :
       {Strategy::kClone, Strategy::kSpeculativeRestart,
        Strategy::kSpeculativeResume}) {
    for (long long r = 0; r <= max_r; ++r) {
      FrontierPoint point;
      point.strategy = strategy;
      point.r = r;
      point.pocd = pocd(strategy, params, static_cast<double>(r));
      point.cost =
          price * machine_time(strategy, params, static_cast<double>(r));
      points.push_back(point);
    }
  }
  return points;
}

std::vector<FrontierPoint> pareto_frontier(
    std::vector<FrontierPoint> points) {
  // Sort by cost ascending, PoCD descending on ties; then sweep keeping
  // points that strictly improve the best PoCD seen so far.
  std::sort(points.begin(), points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.cost != b.cost) {
                return a.cost < b.cost;
              }
              return a.pocd > b.pocd;
            });
  std::vector<FrontierPoint> frontier;
  double best_pocd = -1.0;
  for (const auto& point : points) {
    if (point.pocd > best_pocd) {
      frontier.push_back(point);
      best_pocd = point.pocd;
    }
  }
  return frontier;
}

std::optional<FrontierPoint> cheapest_for_target(
    const std::vector<FrontierPoint>& points, double target_pocd) {
  CHRONOS_EXPECTS(target_pocd >= 0.0 && target_pocd <= 1.0,
                  "target PoCD must lie in [0, 1]");
  std::optional<FrontierPoint> best;
  for (const auto& point : points) {
    if (point.pocd >= target_pocd &&
        (!best.has_value() || point.cost < best->cost)) {
      best = point;
    }
  }
  return best;
}

std::optional<FrontierPoint> best_within_budget(
    const std::vector<FrontierPoint>& points, double budget) {
  CHRONOS_EXPECTS(budget >= 0.0, "budget must be non-negative");
  std::optional<FrontierPoint> best;
  for (const auto& point : points) {
    if (point.cost <= budget &&
        (!best.has_value() || point.pocd > best->pocd)) {
      best = point;
    }
  }
  return best;
}

}  // namespace chronos::core
