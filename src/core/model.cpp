#include "core/model.h"

#include "common/error.h"

namespace chronos::core {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kClone:
      return "Clone";
    case Strategy::kSpeculativeRestart:
      return "S-Restart";
    case Strategy::kSpeculativeResume:
      return "S-Resume";
  }
  return "?";
}

std::string to_string(Baseline baseline) {
  switch (baseline) {
    case Baseline::kHadoopNS:
      return "Hadoop-NS";
    case Baseline::kHadoopS:
      return "Hadoop-S";
    case Baseline::kMantri:
      return "Mantri";
  }
  return "?";
}

void JobParams::validate() const {
  CHRONOS_EXPECTS(num_tasks >= 1, "JobParams: num_tasks must be >= 1");
  CHRONOS_EXPECTS(t_min > 0.0, "JobParams: t_min must be positive");
  CHRONOS_EXPECTS(beta > 0.0, "JobParams: beta must be positive");
  CHRONOS_EXPECTS(deadline > t_min, "JobParams: deadline must exceed t_min");
  CHRONOS_EXPECTS(tau_est >= 0.0 && tau_est < deadline,
                  "JobParams: tau_est must lie in [0, deadline)");
  CHRONOS_EXPECTS(tau_kill >= tau_est,
                  "JobParams: tau_kill must be >= tau_est");
  CHRONOS_EXPECTS(phi_est >= 0.0 && phi_est < 1.0,
                  "JobParams: phi_est must lie in [0, 1)");
  // Launching extra attempts at tau_est only makes sense when a fresh attempt
  // could still meet the deadline (paper, proof of Theorem 4).
  CHRONOS_EXPECTS(deadline - tau_est >= t_min,
                  "JobParams: deadline - tau_est must be >= t_min");
}

void Economics::validate() const {
  CHRONOS_EXPECTS(price >= 0.0, "Economics: price must be non-negative");
  CHRONOS_EXPECTS(theta >= 0.0, "Economics: theta must be non-negative");
  CHRONOS_EXPECTS(r_min >= 0.0 && r_min < 1.0,
                  "Economics: r_min must lie in [0, 1)");
}

double default_phi_est(const JobParams& params) {
  // E[1/T | T > D] for Pareto(t_min, beta) truncated above D: the conditional
  // distribution is Pareto(D, beta), and E[1/T] for Pareto(a, b) is
  // b / (a * (b + 1)).
  return params.tau_est * params.beta /
         ((params.beta + 1.0) * params.deadline);
}

}  // namespace chronos::core
