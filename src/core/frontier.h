// PoCD-vs-cost tradeoff frontier (§V).
//
// "The optimal tradeoff frontier ... can be employed to determine user's
// budget for desired PoCD performance, and vice versa. For a given target
// PoCD (e.g., as specified in the SLAs), users can select the corresponding
// scheduling strategy and optimize its parameters."
//
// This module enumerates the (strategy, r) operating points of a job,
// reduces them to the Pareto-efficient frontier, and answers the two §V
// queries: cheapest point meeting a PoCD target, and best PoCD within a
// cost budget.
#pragma once

#include <optional>
#include <vector>

#include "core/model.h"

namespace chronos::core {

struct FrontierPoint {
  Strategy strategy = Strategy::kClone;
  long long r = 0;
  double pocd = 0.0;
  double cost = 0.0;  ///< price * E(T)
};

/// Enumerates all (strategy, r) points for r in [0, max_r] across the three
/// strategies. Requires valid params and price >= 0.
std::vector<FrontierPoint> enumerate_operating_points(
    const JobParams& params, double price, long long max_r = 16);

/// Filters `points` down to the Pareto-efficient set (no other point has
/// both higher-or-equal PoCD and lower-or-equal cost, with at least one
/// strict), sorted by increasing cost.
std::vector<FrontierPoint> pareto_frontier(std::vector<FrontierPoint> points);

/// Cheapest operating point with pocd >= target, or nullopt if the target
/// is unattainable within the enumerated set.
std::optional<FrontierPoint> cheapest_for_target(
    const std::vector<FrontierPoint>& points, double target_pocd);

/// Highest-PoCD operating point with cost <= budget, or nullopt if nothing
/// fits.
std::optional<FrontierPoint> best_within_budget(
    const std::vector<FrontierPoint>& points, double budget);

}  // namespace chronos::core
