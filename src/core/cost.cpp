#include "core/cost.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "core/kernels.h"
#include "stats/pareto.h"

namespace chronos::core {

namespace {

void check(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
}

}  // namespace

double expected_time_below_deadline(const JobParams& params) {
  const stats::Pareto attempt(params.t_min, params.beta);
  return attempt.truncated_mean_below(params.deadline);
}

double machine_time_clone(const JobParams& params, double r) {
  check(params, r);
  return kernels::clone_machine_time(params, r);
}

double s_restart_winner_time(const JobParams& params, double r) {
  check(params, r);
  // Closed form (see the derivation note in cost.h); the kernel enforces
  // beta * (r + 1) > 1, without which the integral diverges.
  return kernels::s_restart_winner_mean(params, r);
}

double s_restart_winner_time_reference(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta * (r + 1.0) > 1.0,
                  "s_restart_winner_time requires beta * (r + 1) > 1: the "
                  "survival product decays like w^{-beta(r+1)}, so the "
                  "winner-time integral diverges otherwise");
  const double d_bar = params.deadline - params.tau_est;
  const double beta = params.beta;
  const double t_min = params.t_min;
  // W_hat = min(T_hat_1 - tau_est, T_2, ..., T_{r+1}) where
  // T_hat_1 ~ Pareto(D, beta) (original conditioned on missing the deadline,
  // Lemma 3) and the r restarted attempts are fresh Pareto(t_min, beta).
  //
  // E(W_hat) = int_0^inf  S_orig(w) * S_fresh(w)^r  dw with
  //   S_orig(w)  = 1 for w < D - tau_est, else (D / (w + tau_est))^beta
  //   S_fresh(w) = 1 for w < t_min,       else (t_min / w)^beta.
  // The piecewise product is integrated numerically; this is the quadrature
  // implementation the closed form is validated against.
  const auto survival_product = [&](double w) {
    double s = 1.0;
    if (w >= d_bar) {
      s *= std::pow(params.deadline / (w + params.tau_est), beta);
    }
    if (r > 0.0 && w >= t_min) {
      s *= std::pow(t_min / w, beta * r);
    }
    return s;
  };
  const double knee1 = std::min(t_min, d_bar);
  const double knee2 = std::max(t_min, d_bar);
  double total = knee1;  // survival product is exactly 1 below the first knee
  total += numeric::integrate(survival_product, knee1, knee2);
  total += numeric::integrate_to_infinity(survival_product, knee2);
  return total;
}

double machine_time_s_restart(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_s_restart requires beta > 1");
  const double p_straggle = kernels::straggler_probability(params);
  const double below = expected_time_below_deadline(params);
  const double above_r0 = stats::Pareto(params.t_min, params.beta)
                              .truncated_mean_above(params.deadline);
  return kernels::s_restart_machine_time(params, r, p_straggle, below,
                                         above_r0);
}

double machine_time_s_resume(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0, "machine_time_s_resume requires beta > 1");
  const double p_straggle = kernels::straggler_probability(params);
  const double below = expected_time_below_deadline(params);
  return kernels::s_resume_machine_time(params, r, p_straggle, below);
}

double machine_time_s_resume_exact(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_s_resume_exact requires beta > 1");
  const double n_eff = params.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_s_resume_exact requires beta * (r + 1) > 1");
  const double winner = kernels::s_resume_winner_mean_exact(params, n_eff);
  const double p_straggle = kernels::straggler_probability(params);
  const double below = expected_time_below_deadline(params);
  return kernels::straggler_split_total(
      params, below, kernels::speculation_above(params, r, winner),
      p_straggle);
}

double machine_time(Strategy strategy, const JobParams& params, double r) {
  switch (strategy) {
    case Strategy::kClone:
      return machine_time_clone(params, r);
    case Strategy::kSpeculativeRestart:
      return machine_time_s_restart(params, r);
    case Strategy::kSpeculativeResume:
      return machine_time_s_resume(params, r);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

double machine_time_no_speculation(const JobParams& params) {
  params.validate();
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_no_speculation requires beta > 1");
  const stats::Pareto attempt(params.t_min, params.beta);
  return static_cast<double>(params.num_tasks) * attempt.mean();
}

}  // namespace chronos::core
