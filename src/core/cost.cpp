#include "core/cost.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/numeric.h"
#include "stats/pareto.h"

namespace chronos::core {

namespace {

void check(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
}

/// P(T_1 > D) for the original attempt.
double straggler_probability(const JobParams& params) {
  return std::pow(params.t_min / params.deadline, params.beta);
}

}  // namespace

double expected_time_below_deadline(const JobParams& params) {
  const stats::Pareto attempt(params.t_min, params.beta);
  return attempt.truncated_mean_below(params.deadline);
}

double machine_time_clone(const JobParams& params, double r) {
  check(params, r);
  const double n_eff = params.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_clone requires beta * (r + 1) > 1");
  // r attempts are charged until tau_kill; the winner is the min of r+1
  // Pareto variates (Lemma 1).
  const double winner = params.t_min + params.t_min / (n_eff - 1.0);
  return static_cast<double>(params.num_tasks) *
         (r * params.tau_kill + winner);
}

double s_restart_winner_time(const JobParams& params, double r) {
  check(params, r);
  const double d_bar = params.deadline - params.tau_est;
  const double beta = params.beta;
  const double t_min = params.t_min;
  // W_hat = min(T_hat_1 - tau_est, T_2, ..., T_{r+1}) where
  // T_hat_1 ~ Pareto(D, beta) (original conditioned on missing the deadline,
  // Lemma 3) and the r restarted attempts are fresh Pareto(t_min, beta).
  //
  // E(W_hat) = int_0^inf  S_orig(w) * S_fresh(w)^r  dw with
  //   S_orig(w)  = 1 for w < D - tau_est, else (D / (w + tau_est))^beta
  //   S_fresh(w) = 1 for w < t_min,       else (t_min / w)^beta.
  // Integrating the piecewise product numerically avoids the removable
  // singularities of the published closed form at beta * r == 1.
  const auto survival_product = [&](double w) {
    double s = 1.0;
    if (w >= d_bar) {
      s *= std::pow(params.deadline / (w + params.tau_est), beta);
    }
    if (r > 0.0 && w >= t_min) {
      s *= std::pow(t_min / w, beta * r);
    }
    return s;
  };
  const double knee1 = std::min(t_min, d_bar);
  const double knee2 = std::max(t_min, d_bar);
  double total = knee1;  // survival product is exactly 1 below the first knee
  total += numeric::integrate(survival_product, knee1, knee2);
  total += numeric::integrate_to_infinity(survival_product, knee2);
  return total;
}

double machine_time_s_restart(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_s_restart requires beta > 1");
  const double p_straggle = straggler_probability(params);
  const double below = expected_time_below_deadline(params);
  double above = 0.0;
  if (r == 0.0) {
    // No extra attempts: the straggler simply runs to completion.
    const stats::Pareto attempt(params.t_min, params.beta);
    above = attempt.truncated_mean_above(params.deadline);
  } else {
    above = params.tau_est + r * (params.tau_kill - params.tau_est) +
            s_restart_winner_time(params, r);
  }
  return static_cast<double>(params.num_tasks) *
         (below * (1.0 - p_straggle) + above * p_straggle);
}

namespace {

double s_resume_total(const JobParams& params, double r, double winner) {
  const double p_straggle = straggler_probability(params);
  const double below = expected_time_below_deadline(params);
  const double above = params.tau_est +
                       r * (params.tau_kill - params.tau_est) + winner;
  return static_cast<double>(params.num_tasks) *
         (below * (1.0 - p_straggle) + above * p_straggle);
}

}  // namespace

double machine_time_s_resume(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0, "machine_time_s_resume requires beta > 1");
  const double n_eff = params.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_s_resume requires beta * (r + 1) > 1");
  // Published Eq. 56: E(W_new) = t_min (1-phi)^{beta(r+1)} / (beta(r+1)-1)
  //                             + t_min.
  const double winner =
      params.t_min * std::pow(1.0 - params.phi_est, n_eff) / (n_eff - 1.0) +
      params.t_min;
  return s_resume_total(params, r, winner);
}

double machine_time_s_resume_exact(const JobParams& params, double r) {
  check(params, r);
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_s_resume_exact requires beta > 1");
  const double n_eff = params.beta * (r + 1.0);
  CHRONOS_EXPECTS(n_eff > 1.0,
                  "machine_time_s_resume_exact requires beta * (r + 1) > 1");
  // min of r+1 copies of (1-phi) T is Pareto((1-phi) t_min, beta (r+1)),
  // whose mean is the Lemma-1 expression below.
  const double winner =
      (1.0 - params.phi_est) * params.t_min * n_eff / (n_eff - 1.0);
  return s_resume_total(params, r, winner);
}

double machine_time(Strategy strategy, const JobParams& params, double r) {
  switch (strategy) {
    case Strategy::kClone:
      return machine_time_clone(params, r);
    case Strategy::kSpeculativeRestart:
      return machine_time_s_restart(params, r);
    case Strategy::kSpeculativeResume:
      return machine_time_s_resume(params, r);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

double machine_time_no_speculation(const JobParams& params) {
  params.validate();
  CHRONOS_EXPECTS(params.beta > 1.0,
                  "machine_time_no_speculation requires beta > 1");
  const stats::Pareto attempt(params.t_min, params.beta);
  return static_cast<double>(params.num_tasks) * attempt.mean();
}

}  // namespace chronos::core
