#include "core/pocd.h"

#include <cmath>

#include "common/error.h"
#include "core/kernels.h"

namespace chronos::core {

namespace {

void check(const JobParams& params, double r) {
  params.validate();
  CHRONOS_EXPECTS(r >= 0.0, "number of extra attempts r must be >= 0");
}

}  // namespace

double pocd_clone(const JobParams& params, double r) {
  check(params, r);
  const double task_fail =
      kernels::clone_task_failure(kernels::straggler_probability(params), r);
  return kernels::job_from_task(1.0 - task_fail, params.num_tasks);
}

double pocd_s_restart(const JobParams& params, double r) {
  check(params, r);
  // Original attempt fails iff T_1 > D; each of the r attempts launched at
  // tau_est fails iff its execution time exceeds D - tau_est (Eq. 34).
  const double task_fail = kernels::s_restart_task_failure(
      kernels::straggler_probability(params),
      kernels::s_restart_extra_failure(params), r);
  return kernels::job_from_task(1.0 - task_fail, params.num_tasks);
}

double pocd_s_resume(const JobParams& params, double r) {
  check(params, r);
  // Straggler is killed; r+1 fresh attempts process the remaining
  // (1 - phi_est) fraction, so each fails iff (1-phi) T > D - tau_est
  // (Eq. 47).
  const double task_fail = kernels::s_resume_task_failure(
      kernels::straggler_probability(params),
      kernels::s_resume_extra_failure(params), r);
  return kernels::job_from_task(1.0 - task_fail, params.num_tasks);
}

double pocd(Strategy strategy, const JobParams& params, double r) {
  switch (strategy) {
    case Strategy::kClone:
      return pocd_clone(params, r);
    case Strategy::kSpeculativeRestart:
      return pocd_s_restart(params, r);
    case Strategy::kSpeculativeResume:
      return pocd_s_resume(params, r);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

double task_pocd(Strategy strategy, const JobParams& params, double r) {
  const double job = pocd(strategy, params, r);
  return std::pow(job, 1.0 / static_cast<double>(params.num_tasks));
}

double pocd_no_speculation(const JobParams& params) {
  params.validate();
  const double task_fail = kernels::straggler_probability(params);
  return kernels::job_from_task(1.0 - task_fail, params.num_tasks);
}

}  // namespace chronos::core
