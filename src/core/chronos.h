// Umbrella header for the Chronos analytic core — the paper's primary
// contribution.
//
// Quick use:
//   chronos::core::JobParams job{.num_tasks = 10, .deadline = 100,
//                                .t_min = 20, .beta = 1.5,
//                                .tau_est = 40, .tau_kill = 80,
//                                .phi_est = 0.2};
//   chronos::core::Economics econ{.price = 0.05, .theta = 1e-4,
//                                 .r_min = 0.5};
//   auto best = chronos::core::optimize(
//       chronos::core::Strategy::kSpeculativeResume, job, econ);
//   // best.r_opt extra attempts maximize lg(PoCD - R_min) - theta*C*E(T).
#pragma once

#include "core/analytic_context.h"  // IWYU pragma: export
#include "core/comparison.h"   // IWYU pragma: export
#include "core/cost.h"         // IWYU pragma: export
#include "core/frontier.h"     // IWYU pragma: export
#include "core/generic.h"      // IWYU pragma: export
#include "core/model.h"        // IWYU pragma: export
#include "core/montecarlo.h"   // IWYU pragma: export
#include "core/optimizer.h"    // IWYU pragma: export
#include "core/pocd.h"         // IWYU pragma: export
#include "core/thresholds.h"   // IWYU pragma: export
#include "core/utility.h"      // IWYU pragma: export
