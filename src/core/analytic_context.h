// Precomputed evaluation context for the analytic PoCD / cost / utility
// kernels.
//
// Algorithm 1 evaluates U(r) at dozens of integers for one fixed
// (strategy, params, econ) triple. The free functions in pocd.cpp / cost.cpp
// recompute every pow(t_min/D, beta)-family constant — and re-validate the
// parameter records — on each call. AnalyticContext hoists all r-independent
// work to construction time (straggler probability, the per-extra-attempt
// failure factors, the truncated Pareto means behind E(T), the Gamma
// threshold), so each evaluation is reduced to the r-dependent remainder:
// a couple of pow calls and a handful of multiplies.
//
// The context is deliberately bit-identical to the free functions: both call
// paths evaluate the shared inline kernels in core/kernels.h, so they execute
// the exact same floating-point expressions in the same order, only with the
// r-independent factors computed once. evaluate(r) therefore equals
// evaluate_utility(strategy, params, econ, r) bit for bit (enforced by the
// compiler, asserted by tests), and switching the optimizer onto the context
// cannot perturb planner decisions or sweep goldens.
//
// SharedAnalytics goes one step further for optimize_all: the constants that
// all three strategies share (straggler probability and the truncated Pareto
// means) are computed once and borrowed by each strategy's context.
#pragma once

#include <cstdint>

#include "core/model.h"
#include "core/utility.h"

namespace chronos::core {

/// Per-job constants shared by all three strategies' analytic kernels.
/// optimize_all builds one instance and hands it to each strategy's
/// AnalyticContext so P(T > D), E[T; T <= D] and E[T | T > D] are computed
/// exactly once per job instead of once per strategy. The values are
/// bit-identical to what each context would compute on its own (same kernel
/// expressions), so the batched path cannot move any planner decision.
class SharedAnalytics {
 public:
  /// Validates params once. Requires beta > 1: S-Restart / S-Resume have
  /// infinite expected machine time otherwise, exactly as their contexts do.
  explicit SharedAnalytics(const JobParams& params);

  const JobParams& params() const { return params_; }

  /// P(T_1 > D) = pow(t_min / D, beta).
  double p_straggle() const { return p_straggle_; }

  /// Truncated Pareto mean below the deadline: E[T | T <= D].
  double below() const { return below_; }

  /// Truncated Pareto mean above the deadline: E[T | T > D] — the
  /// S-Restart r == 0 branch.
  double above_r0() const { return above_r0_; }

 private:
  JobParams params_;
  double p_straggle_ = 0.0;
  double below_ = 0.0;
  double above_r0_ = 0.0;
};

class AnalyticContext {
 public:
  /// Validates params/econ once. For S-Restart / S-Resume additionally
  /// requires beta > 1 (finite expected machine time), like the
  /// machine_time_* free functions.
  AnalyticContext(Strategy strategy, const JobParams& params,
                  const Economics& econ);

  /// As above, but borrows the strategy-independent constants from an
  /// already-built SharedAnalytics (optimize_all's batched path) instead of
  /// recomputing them. Bit-identical to the params ctor.
  AnalyticContext(Strategy strategy, const SharedAnalytics& shared,
                  const Economics& econ);

  Strategy strategy() const { return strategy_; }
  const JobParams& params() const { return params_; }
  const Economics& econ() const { return econ_; }

  /// Concavity threshold Gamma (Theorem 8), precomputed.
  double gamma() const { return gamma_; }

  /// PoCD R(r); bit-identical to pocd(strategy, params, r).
  double pocd(double r) const;

  /// Expected machine time E(T); bit-identical to
  /// machine_time(strategy, params, r). Clone additionally requires
  /// beta * (r + 1) > 1 per call, as the free function does.
  double machine_time(double r) const;

  /// Full utility point; bit-identical to
  /// evaluate_utility(strategy, params, econ, r).
  UtilityPoint evaluate(double r) const;

  /// Number of evaluate() calls made through this context. Lets tests prove
  /// the optimizer's memoization never evaluates the same r twice.
  std::int64_t evaluations() const { return evaluations_; }

 private:
  Strategy strategy_;
  JobParams params_;
  Economics econ_;
  double gamma_ = 0.0;
  double p_straggle_ = 0.0;  ///< pow(t_min / D, beta): P(T > D)
  double p_extra_ = 0.0;     ///< per-extra-attempt failure factor (S-R / S-Res)
  double below_ = 0.0;       ///< E[T; T <= D] contribution (S-R / S-Res)
  double above_r0_ = 0.0;    ///< E[T | T > D] (S-Restart with r == 0)
  mutable std::int64_t evaluations_ = 0;
};

}  // namespace chronos::core
