#include "core/thresholds.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace chronos::core {

namespace {

/// log_base(x) for base in (0, 1): ln(x) / ln(base).
double log_base(double base, double x) {
  CHRONOS_ENSURES(base > 0.0 && base != 1.0, "invalid logarithm base");
  CHRONOS_ENSURES(x > 0.0, "logarithm of a non-positive value");
  return std::log(x) / std::log(base);
}

/// D^beta / (N t_min^beta) — the logarithm argument shared by the S-Restart
/// and S-Resume thresholds of Theorem 8 (previously duplicated verbatim).
double gamma_log_arg(const JobParams& params) {
  return std::pow(params.deadline, params.beta) /
         (static_cast<double>(params.num_tasks) *
          std::pow(params.t_min, params.beta));
}

}  // namespace

double gamma_clone(const JobParams& params) {
  params.validate();
  const double base = params.t_min / params.deadline;
  return -log_base(base, static_cast<double>(params.num_tasks)) /
             params.beta -
         1.0;
}

double gamma_s_restart(const JobParams& params) {
  params.validate();
  const double base = params.t_min / (params.deadline - params.tau_est);
  return log_base(base, gamma_log_arg(params)) / params.beta;
}

double gamma_s_resume(const JobParams& params) {
  params.validate();
  const double base = (1.0 - params.phi_est) * params.t_min /
                      (params.deadline - params.tau_est);
  return log_base(base, gamma_log_arg(params)) / params.beta - 1.0;
}

double gamma_threshold(Strategy strategy, const JobParams& params) {
  switch (strategy) {
    case Strategy::kClone:
      return gamma_clone(params);
    case Strategy::kSpeculativeRestart:
      return gamma_s_restart(params);
    case Strategy::kSpeculativeResume:
      return gamma_s_resume(params);
  }
  CHRONOS_ENSURES(false, "unknown strategy");
}

long long concave_start(Strategy strategy, const JobParams& params) {
  return concave_start(gamma_threshold(strategy, params));
}

long long concave_start(double gamma) {
  const auto ceil_gamma = static_cast<long long>(std::ceil(gamma));
  return std::max<long long>(0, ceil_gamma);
}

}  // namespace chronos::core
