// Expected machine running time E(T) of a job — Theorems 2, 4 and 6.
//
// The paper measures execution cost as C * E(T), where E(T) is the total
// (virtual) machine time consumed by all attempts of all N tasks, including
// the speculative attempts that are killed at tau_kill.
//
// S-Resume note: the paper's closed form (Theorem 6, Eq. 56) integrates the
// survival of the resumed attempts from t_min even though their support
// starts at (1 - phi) t_min, which makes the published expression a slight
// upper bound on the exact expectation. Both are provided; benches use the
// paper's form, tests validate the exact one against Monte-Carlo.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// Theorem 2:  E_Clone(T) = N [ r tau_kill + t_min + t_min/(beta(r+1) - 1) ].
/// Requires beta * (r + 1) > 1 (otherwise the expectation diverges).
double machine_time_clone(const JobParams& params, double r);

/// Theorem 4, with the winner time evaluated in closed form (see
/// s_restart_winner_time). Requires beta > 1 for the no-straggler branch to
/// have finite mean.
double machine_time_s_restart(const JobParams& params, double r);

/// Theorem 6, published closed form (slight upper bound; see header note).
/// Requires beta > 1 and beta * (r + 1) > 1.
double machine_time_s_resume(const JobParams& params, double r);

/// Exact S-Resume expectation using the true support (1-phi) t_min of the
/// resumed attempts: E(W_new) = (1-phi) t_min beta(r+1) / (beta(r+1) - 1).
double machine_time_s_resume_exact(const JobParams& params, double r);

/// Dispatch on `strategy` (paper formulas).
double machine_time(Strategy strategy, const JobParams& params, double r);

/// Machine time with no speculation: N * E[T] = N * t_min * beta/(beta - 1).
/// Requires beta > 1.
double machine_time_no_speculation(const JobParams& params);

/// E[T_j | T_j,1 <= D]: truncated-Pareto mean below the deadline — the
/// no-straggler branch shared by Theorems 4 and 6.
double expected_time_below_deadline(const JobParams& params);

// E(W_hat_all) of Theorem 4 / Eq. 45: expected remaining running time, from
// tau_est, of the fastest among {original | T1 > D, r restarted attempts}.
//
// Closed-form derivation (Lemma 3 / Theorem 4 of the paper). Conditioned on
// the original attempt missing the deadline, its total execution time is
// Pareto(D, beta) (Lemma 3), so its remaining time past tau_est survives as
//   S_orig(w) = 1                           for w <  D - tau_est,
//               (D / (w + tau_est))^beta    for w >= D - tau_est,
// while each of the r fresh restarts survives as
//   S_fresh(w) = 1                 for w <  t_min,
//                (t_min / w)^beta  for w >= t_min.
// E(W_hat) = int_0^inf S_orig(w) S_fresh(w)^r dw splits at the two knees
// t_min <= D - tau_est =: d_bar (JobParams::validate() guarantees the
// order), with q = beta r, a = beta (r + 1) - 1 and L = ln(d_bar / t_min):
//
//   [0, t_min]      the product is exactly 1:        t_min
//   [t_min, d_bar]  int (t_min/w)^q dw
//                     = t_min (e^{(1-q) L} - 1) / (1 - q)
//                     = t_min L expm1((1-q) L) / ((1-q) L),
//                   whose removable singularity at beta r == 1 (the 0/0 of
//                   the published Eq. 45) is filled by the stable
//                   expm1/log1p form.
//   [d_bar, inf)    int (D/(w+tau))^beta (t_min/w)^q dw. Substituting
//                   u = w + tau and expanding (1 - tau/u)^{-q} yields
//                   t_min e^{(1-q) L} / a * 2F1(a, q; a+1; tau/D); the
//                   Euler transformation 2F1(a, q; a+1; z) =
//                   (1-z)^{1-q} 2F1(1, beta; a+1; z) turns it into
//                   t_min e^{(1-q) L} / a * sum_k c_k,  c_0 = 1,
//                   c_{k+1} = c_k z (beta+k)/(a+1+k),  z = tau_est / D,
//                   a positive series whose per-term ratio is <= z < 1 from
//                   the first term on — no growth phase, geometric
//                   convergence for every valid parameter set.
//
// The integral (and hence E(W_hat)) is finite iff a > 0, i.e.
// beta (r + 1) > 1; both implementations reject the divergent regime.
/// Requires beta * (r + 1) > 1 (throws PreconditionError otherwise).
double s_restart_winner_time(const JobParams& params, double r);

/// Adaptive-quadrature reference implementation of s_restart_winner_time
/// (the pre-closed-form code path). Kept for validation: the closed form is
/// tolerance-checked against it across a randomized parameter grid in
/// tests/test_cost_closedform.cpp. Same preconditions as the closed form.
double s_restart_winner_time_reference(const JobParams& params, double r);

}  // namespace chronos::core
