// Expected machine running time E(T) of a job — Theorems 2, 4 and 6.
//
// The paper measures execution cost as C * E(T), where E(T) is the total
// (virtual) machine time consumed by all attempts of all N tasks, including
// the speculative attempts that are killed at tau_kill.
//
// S-Resume note: the paper's closed form (Theorem 6, Eq. 56) integrates the
// survival of the resumed attempts from t_min even though their support
// starts at (1 - phi) t_min, which makes the published expression a slight
// upper bound on the exact expectation. Both are provided; benches use the
// paper's form, tests validate the exact one against Monte-Carlo.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// Theorem 2:  E_Clone(T) = N [ r tau_kill + t_min + t_min/(beta(r+1) - 1) ].
/// Requires beta * (r + 1) > 1 (otherwise the expectation diverges).
double machine_time_clone(const JobParams& params, double r);

/// Theorem 4 (with the tail term evaluated by adaptive quadrature).
/// Requires beta > 1 for the no-straggler branch to have finite mean.
double machine_time_s_restart(const JobParams& params, double r);

/// Theorem 6, published closed form (slight upper bound; see header note).
/// Requires beta > 1 and beta * (r + 1) > 1.
double machine_time_s_resume(const JobParams& params, double r);

/// Exact S-Resume expectation using the true support (1-phi) t_min of the
/// resumed attempts: E(W_new) = (1-phi) t_min beta(r+1) / (beta(r+1) - 1).
double machine_time_s_resume_exact(const JobParams& params, double r);

/// Dispatch on `strategy` (paper formulas).
double machine_time(Strategy strategy, const JobParams& params, double r);

/// Machine time with no speculation: N * E[T] = N * t_min * beta/(beta - 1).
/// Requires beta > 1.
double machine_time_no_speculation(const JobParams& params);

/// E[T_j | T_j,1 <= D]: truncated-Pareto mean below the deadline — the
/// no-straggler branch shared by Theorems 4 and 6.
double expected_time_below_deadline(const JobParams& params);

/// E(W_hat_all) of Theorem 4 / Eq. 45: expected remaining running time, from
/// tau_est, of the fastest among {original | T1 > D, r restarted attempts}.
double s_restart_winner_time(const JobParams& params, double r);

}  // namespace chronos::core
