#include "core/generic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/numeric.h"
#include "core/montecarlo.h"
#include "core/utility.h"
#include "stats/summary.h"

namespace chronos::core {

namespace {

/// E[min(T_1..T_n)] = lower + int_lower^inf S(t)^n dt.
double expected_min(const stats::Distribution& dist, double n) {
  const double lower = dist.lower_bound();
  return lower + numeric::integrate_to_infinity(
                     [&](double t) { return std::pow(dist.survival(t), n); },
                     lower, 1e-9);
}

/// E[T 1{T <= d}] = int_0^d S(t) dt - d S(d).
double partial_mean_below(const stats::Distribution& dist, double d) {
  const double lower = dist.lower_bound();
  const double integral =
      lower + numeric::integrate(
                  [&](double t) { return dist.survival(t); }, lower, d, 1e-9);
  return integral - d * dist.survival(d);
}

}  // namespace

void GenericJobParams::validate(const stats::Distribution& dist) const {
  CHRONOS_EXPECTS(num_tasks >= 1, "num_tasks must be >= 1");
  CHRONOS_EXPECTS(deadline > dist.lower_bound(),
                  "deadline must exceed the distribution's lower bound");
  CHRONOS_EXPECTS(tau_est >= 0.0 && tau_est < deadline,
                  "tau_est must lie in [0, deadline)");
  CHRONOS_EXPECTS(tau_kill >= tau_est, "tau_kill must be >= tau_est");
  CHRONOS_EXPECTS(phi_est >= 0.0 && phi_est < 1.0,
                  "phi_est must lie in [0, 1)");
  CHRONOS_EXPECTS(deadline - tau_est >= dist.lower_bound(),
                  "deadline - tau_est must be >= the lower bound");
}

double generic_pocd(Strategy strategy, const GenericJobParams& params,
                    const stats::Distribution& dist, double r) {
  params.validate(dist);
  CHRONOS_EXPECTS(r >= 0.0, "r must be >= 0");
  const double s_d = dist.survival(params.deadline);
  const double d_bar = params.deadline - params.tau_est;
  double task_fail = 0.0;
  switch (strategy) {
    case Strategy::kClone:
      task_fail = std::pow(s_d, r + 1.0);
      break;
    case Strategy::kSpeculativeRestart:
      task_fail = s_d * std::pow(dist.survival(d_bar), r);
      break;
    case Strategy::kSpeculativeResume: {
      // A resumed attempt misses iff (1-phi) T > D - tau_est.
      const double s_resume =
          dist.survival(d_bar / (1.0 - params.phi_est));
      task_fail = s_d * std::pow(s_resume, r + 1.0);
      break;
    }
  }
  return std::pow(1.0 - task_fail,
                  static_cast<double>(params.num_tasks));
}

double generic_machine_time(Strategy strategy,
                            const GenericJobParams& params,
                            const stats::Distribution& dist, double r) {
  params.validate(dist);
  CHRONOS_EXPECTS(r >= 0.0, "r must be >= 0");
  const double n = static_cast<double>(params.num_tasks);
  const double d = params.deadline;
  const double d_bar = d - params.tau_est;
  const double s_d = dist.survival(d);
  const double lower = dist.lower_bound();

  if (strategy == Strategy::kClone) {
    return n * (r * params.tau_kill + expected_min(dist, r + 1.0));
  }

  const double below = partial_mean_below(dist, d) / (1.0 - s_d);
  double above = 0.0;
  switch (strategy) {
    case Strategy::kSpeculativeRestart: {
      if (r == 0.0) {
        above = (dist.mean() - partial_mean_below(dist, d)) / s_d;
        break;
      }
      // W = min(T_hat - tau_est, T_1..T_r) with T_hat the original
      // conditioned on T > D: survival S(w + tau_est)/S(D) beyond D - tau.
      const auto survival_product = [&](double w) {
        double s = 1.0;
        if (w >= d_bar) {
          s *= dist.survival(w + params.tau_est) / s_d;
        }
        if (w >= lower) {
          s *= std::pow(dist.survival(w), r);
        }
        return s;
      };
      const double knee1 = std::min(lower, d_bar);
      const double knee2 = std::max(lower, d_bar);
      double winner = knee1;
      winner += numeric::integrate(survival_product, knee1, knee2, 1e-9);
      winner += numeric::integrate_to_infinity(survival_product, knee2, 1e-9);
      above = params.tau_est + r * (params.tau_kill - params.tau_est) +
              winner;
      break;
    }
    case Strategy::kSpeculativeResume: {
      // min of r+1 copies of (1-phi) T scales linearly.
      const double winner =
          (1.0 - params.phi_est) * expected_min(dist, r + 1.0);
      above = params.tau_est + r * (params.tau_kill - params.tau_est) +
              winner;
      break;
    }
    case Strategy::kClone:
      CHRONOS_ENSURES(false, "handled above");
  }
  return n * (below * (1.0 - s_d) + above * s_d);
}

double generic_utility(Strategy strategy, const GenericJobParams& params,
                       const stats::Distribution& dist,
                       const Economics& econ, long long r) {
  econ.validate();
  const double pocd =
      generic_pocd(strategy, params, dist, static_cast<double>(r));
  const double machine =
      generic_machine_time(strategy, params, dist, static_cast<double>(r));
  return utility_shaping(pocd - econ.r_min) -
         econ.theta * econ.price * machine;
}

GenericOptimum generic_optimize(Strategy strategy,
                                const GenericJobParams& params,
                                const stats::Distribution& dist,
                                const Economics& econ, long long max_r) {
  CHRONOS_EXPECTS(max_r >= 0, "max_r must be >= 0");
  GenericOptimum best;
  best.utility = -std::numeric_limits<double>::infinity();
  for (long long r = 0; r <= max_r; ++r) {
    const double u = generic_utility(strategy, params, dist, econ, r);
    if (r == 0 || u > best.utility) {
      best.r_opt = r;
      best.utility = u;
      best.pocd = generic_pocd(strategy, params, dist,
                               static_cast<double>(r));
      best.machine_time = generic_machine_time(strategy, params, dist,
                                               static_cast<double>(r));
    }
  }
  best.feasible = std::isfinite(best.utility);
  if (!best.feasible) {
    best.r_opt = 0;
  }
  return best;
}

MonteCarloResult generic_monte_carlo(Strategy strategy,
                                     const GenericJobParams& params,
                                     const stats::Distribution& dist,
                                     long long r, std::uint64_t jobs,
                                     Rng& rng) {
  params.validate(dist);
  CHRONOS_EXPECTS(r >= 0, "r must be >= 0");
  CHRONOS_EXPECTS(jobs > 0, "at least one simulated job is required");

  std::uint64_t met = 0;
  stats::RunningStats times;
  const double d = params.deadline;
  const double d_bar = d - params.tau_est;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    bool job_met = true;
    double job_time = 0.0;
    for (int t = 0; t < params.num_tasks; ++t) {
      double machine = 0.0;
      bool task_met = false;
      switch (strategy) {
        case Strategy::kClone: {
          double winner = dist.sample(rng);
          for (long long k = 0; k < r; ++k) {
            winner = std::min(winner, dist.sample(rng));
          }
          task_met = winner <= d;
          machine = static_cast<double>(r) * params.tau_kill + winner;
          break;
        }
        case Strategy::kSpeculativeRestart: {
          const double original = dist.sample(rng);
          if (original <= d || r == 0) {
            task_met = original <= d;
            machine = original;
            break;
          }
          double winner = original - params.tau_est;
          for (long long k = 0; k < r; ++k) {
            winner = std::min(winner, dist.sample(rng));
          }
          task_met = winner <= d_bar;
          machine = params.tau_est +
                    static_cast<double>(r) *
                        (params.tau_kill - params.tau_est) +
                    winner;
          break;
        }
        case Strategy::kSpeculativeResume: {
          const double original = dist.sample(rng);
          if (original <= d) {
            task_met = true;
            machine = original;
            break;
          }
          const double remaining = 1.0 - params.phi_est;
          double winner = remaining * dist.sample(rng);
          for (long long k = 0; k < r; ++k) {
            winner = std::min(winner, remaining * dist.sample(rng));
          }
          task_met = winner <= d_bar;
          machine = params.tau_est +
                    static_cast<double>(r) *
                        (params.tau_kill - params.tau_est) +
                    winner;
          break;
        }
      }
      job_met = job_met && task_met;
      job_time += machine;
    }
    met += job_met ? 1 : 0;
    times.add(job_time);
  }

  MonteCarloResult result;
  result.jobs = jobs;
  result.pocd = static_cast<double>(met) / static_cast<double>(jobs);
  result.pocd_ci = stats::proportion_ci_halfwidth(met, jobs);
  result.machine_time = times.mean();
  result.machine_time_sem =
      times.stddev() / std::sqrt(static_cast<double>(jobs));
  return result;
}

}  // namespace chronos::core
