// Parameter records shared by the whole analytic core.
//
// Notation follows the paper (§III):
//   N        number of tasks in the job
//   D        job deadline (all N tasks must finish by D)
//   t_min    Pareto scale of a single attempt's execution time
//   beta     Pareto tail index of a single attempt's execution time
//   tau_est  time at which stragglers are detected (S-Restart / S-Resume)
//   tau_kill time at which all but the best attempt are killed
//   phi_est  average progress fraction of a straggling original attempt at
//            tau_est (S-Resume resumes from this fraction)
//   r        number of EXTRA attempts (Clone runs r+1 copies total)
#pragma once

#include <string>

namespace chronos::core {

/// The three Chronos strategies analysed in closed form.
enum class Strategy { kClone, kSpeculativeRestart, kSpeculativeResume };

/// All strategies, including the baselines evaluated in §VII.
enum class Baseline { kHadoopNS, kHadoopS, kMantri };

/// Human-readable strategy name ("Clone", "S-Restart", "S-Resume").
std::string to_string(Strategy strategy);

/// Human-readable baseline name ("Hadoop-NS", "Hadoop-S", "Mantri").
std::string to_string(Baseline baseline);

/// Static description of one MapReduce job for the analytic model.
struct JobParams {
  int num_tasks = 1;       ///< N >= 1
  double deadline = 0.0;   ///< D > t_min
  double t_min = 0.0;      ///< Pareto scale, > 0
  double beta = 0.0;       ///< Pareto tail index, > 0
  double tau_est = 0.0;    ///< straggler-detection time, in [0, D)
  double tau_kill = 0.0;   ///< kill time, >= tau_est
  double phi_est = 0.0;    ///< progress fraction at tau_est, in [0, 1)

  /// Throws PreconditionError when any field is outside its documented
  /// domain, or when deadline - tau_est < t_min (speculation after tau_est
  /// could never help; the paper excludes this regime).
  void validate() const;
};

/// Pricing and optimization weights (§V).
struct Economics {
  double price = 1.0;     ///< C: usage-based VM price per unit machine time
  double theta = 1e-4;    ///< tradeoff factor between PoCD utility and cost
  double r_min = 0.0;     ///< R_min: minimum required PoCD (utility -> -inf
                          ///< when R(r) <= R_min)

  void validate() const;
};

/// Model-based default for phi_est: the expected progress fraction
/// tau_est * E[1/T | T > D] of an original attempt that misses the deadline,
/// which for Pareto(t_min, beta) equals tau_est * beta / ((beta + 1) * D).
double default_phi_est(const JobParams& params);

}  // namespace chronos::core
