// Net utility U(r) = f(R(r) - R_min) - theta * C * E(T)  (§V, Eq. 23), with
// the paper's logarithmic utility f(x) = lg(x) (base-10, proportional
// fairness). U is -infinity whenever R(r) <= R_min.
#pragma once

#include "core/model.h"

namespace chronos::core {

/// A single evaluation of the objective at a given r.
struct UtilityPoint {
  double r = 0.0;
  double pocd = 0.0;          ///< R(r)
  double machine_time = 0.0;  ///< E(T)
  double cost = 0.0;          ///< C * E(T)
  double utility = 0.0;       ///< U(r); -infinity if pocd <= r_min
};

/// Evaluates U at real-valued r >= 0 for `strategy`.
UtilityPoint evaluate_utility(Strategy strategy, const JobParams& params,
                              const Economics& econ, double r);

/// The utility shaping function f(x) = log10(x), -infinity for x <= 0.
double utility_shaping(double x);

}  // namespace chronos::core
