#include "trace/harness.h"

#include "common/error.h"
#include "common/log.h"
#include "mapreduce/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace chronos::trace {

namespace {

const obs::Counter c_runs = obs::counter("sim.runs");
const obs::Timer t_run = obs::timer("sim.run");

}  // namespace

ExperimentConfig ExperimentConfig::large_scale(
    strategies::PolicyKind policy, std::uint64_t seed) {
  ExperimentConfig config;
  config.policy = policy;
  config.seed = seed;
  sim::NodeConfig node;
  node.containers = 64;
  config.cluster = sim::ClusterConfig::uniform(64, node);
  config.scheduler.noise = mapreduce::ProgressNoiseConfig::realistic();
  config.scheduler.estimator = mapreduce::EstimatorKind::kChronos;
  return config;
}

ExperimentConfig ExperimentConfig::testbed(strategies::PolicyKind policy,
                                           std::uint64_t seed) {
  ExperimentConfig config;
  config.policy = policy;
  config.seed = seed;
  sim::NodeConfig node;
  node.containers = 8;  // 8 vCPUs per EC2 node (§VII-A)
  config.cluster = sim::ClusterConfig::uniform(40, node);
  config.scheduler.noise = mapreduce::ProgressNoiseConfig::realistic();
  config.scheduler.estimator = mapreduce::EstimatorKind::kChronos;
  return config;
}

ExperimentResult run_experiment(const std::vector<TracedJob>& jobs,
                                const ExperimentConfig& config) {
  CHRONOS_EXPECTS(!jobs.empty(), "experiment needs at least one job");
  obs::TraceSpan span("sim.run", "sim");
  span.note("jobs", static_cast<double>(jobs.size()));
  const obs::ScopedTimer run_timer(t_run);
  c_runs.add();
  sim::Simulator simulator;
  sim::Cluster cluster(config.cluster);
  auto policy = strategies::make_policy(config.policy, config.policy_options);
  mapreduce::Scheduler scheduler(simulator, cluster, *policy,
                                 config.scheduler, Rng(config.seed));

  for (const auto& job : jobs) {
    simulator.at(job.submit_time,
                 [&scheduler, spec = job.spec] { scheduler.submit(spec); });
  }
  simulator.run();

  CHRONOS_ENSURES(scheduler.metrics().jobs() == jobs.size(),
                  "not every job completed");
  ExperimentResult result;
  result.policy_name = policy->name();
  result.metrics = scheduler.metrics();
  result.events_executed = simulator.events_executed();
  span.note("events", static_cast<double>(result.events_executed));
  CHRONOS_LOG(kDebug) << result.policy_name << ": " << jobs.size()
                      << " jobs, " << result.events_executed << " events";
  return result;
}

}  // namespace chronos::trace
