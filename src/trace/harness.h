// Experiment harness: replays a (planned) trace against the discrete-event
// cluster under one strategy and collects the §VII metrics. Shared by all
// bench binaries, the examples, and the integration tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"
#include "strategies/policies.h"
#include "trace/google_trace.h"

namespace chronos::trace {

struct ExperimentConfig {
  strategies::PolicyKind policy = strategies::PolicyKind::kHadoopNS;
  strategies::PolicyOptions policy_options;
  sim::ClusterConfig cluster;
  mapreduce::SchedulerConfig scheduler;
  std::uint64_t seed = 1;

  /// A generously provisioned cluster (no container contention), used for
  /// the trace-driven simulations of §VII-B.
  static ExperimentConfig large_scale(strategies::PolicyKind policy,
                                      std::uint64_t seed = 1);

  /// The 40-node testbed of §VII-A (8 containers per node).
  static ExperimentConfig testbed(strategies::PolicyKind policy,
                                  std::uint64_t seed = 1);
};

struct ExperimentResult {
  std::string policy_name;
  sim::RunMetrics metrics;
  std::uint64_t events_executed = 0;

  double pocd() const { return metrics.pocd(); }
  double mean_cost() const { return metrics.mean_cost(); }
  double utility(double theta, double r_min) const {
    return metrics.utility(theta, r_min);
  }
};

/// Runs the whole trace to completion under the configured policy. The
/// specs must already be planned (plan_trace) for Chronos policies.
ExperimentResult run_experiment(const std::vector<TracedJob>& jobs,
                                const ExperimentConfig& config);

}  // namespace chronos::trace
