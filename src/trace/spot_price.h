// Spot-price substitute for the Amazon EC2 price history of §VII-B.
//
// The paper multiplies machine time by the spot price at job submission.
// Only the average level and mild variability of the price matter for the
// evaluation, so we model it as a mean-reverting AR(1) process sampled on a
// fixed step grid — deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace chronos::trace {

struct SpotPriceConfig {
  double base_price = 0.4;     ///< long-run mean (cost units per VM-second)
  double volatility = 0.05;    ///< per-step innovation std-dev (fraction)
  double reversion = 0.2;      ///< pull toward base per step, in (0, 1]
  double step_seconds = 3600;  ///< grid granularity (one EC2 price per hour)
  double horizon_seconds = 40.0 * 3600.0;
  std::uint64_t seed = 7;
};

class SpotPriceModel {
 public:
  explicit SpotPriceModel(SpotPriceConfig config = {});

  /// Price at absolute time t (clamped to the modelled horizon).
  double price_at(double t) const;

  /// Long-run mean price.
  double base_price() const { return config_.base_price; }

  /// Mean of the generated price path.
  double mean_price() const;

 private:
  SpotPriceConfig config_;
  std::vector<double> path_;
};

}  // namespace chronos::trace
