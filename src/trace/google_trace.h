// Synthetic Google-trace-style workload (§VII-B substitution).
//
// The paper replays 30 hours / 2700 jobs / ~1M tasks from the 2011 Google
// cluster trace, extracting per-job arrival time, task count and execution-
// time distribution, then regenerates task durations from a fitted Pareto.
// We synthesize a trace with the same statistical structure (Poisson
// arrivals, heavy-tailed task counts, per-job Pareto parameters), seeded and
// fully deterministic. DESIGN.md documents why this preserves the
// evaluation's behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mapreduce/job.h"

namespace chronos::trace {

/// One job of the trace: a submission time plus the job description.
struct TracedJob {
  double submit_time = 0.0;
  mapreduce::JobSpec spec;
};

struct TraceConfig {
  int num_jobs = 2700;
  double duration_hours = 30.0;

  // Task counts: lognormal, heavy-tailed like the Google trace, clamped.
  double mean_tasks = 370.0;  ///< ~1M tasks / 2700 jobs
  double tasks_log_sigma = 1.0;
  int min_tasks = 1;
  int max_tasks = 5000;

  // Per-job Pareto duration parameters.
  double t_min_lo = 20.0;   ///< log-uniform range of t_min (seconds)
  double t_min_hi = 80.0;
  double beta_lo = 1.2;     ///< uniform range of the tail index
  double beta_hi = 1.8;

  // Deadline = factor * mean task execution time, factor ~ U[lo, hi].
  // (Figure 4 uses a fixed factor of 2.)
  double deadline_factor_lo = 2.0;
  double deadline_factor_hi = 2.0;

  // JVM startup model applied to every job.
  double jvm_mean = 2.0;
  double jvm_jitter = 1.0;

  /// Deterministic stage templates appended after the sampled root stage:
  /// stages[0] of every job is sampled as above, then each entry here
  /// becomes stage 1, 2, ... verbatim (its `deps` indices refer to the
  /// final stage numbering, where 0 is the sampled root). No RNG is drawn
  /// for them, so map-only traces (`extra_stages` empty) are bit-identical
  /// to traces generated before staged jobs existed.
  std::vector<mapreduce::StageSpec> extra_stages;

  std::uint64_t seed = 42;

  void validate() const;
};

/// Generates the trace. Jobs are sorted by submission time; job ids are
/// sequential. Strategy fields (r, tau_est, tau_kill, price) are left at
/// defaults for the planner to fill.
std::vector<TracedJob> generate_trace(const TraceConfig& config);

/// Samples one job's shape (task count, t_min, beta, deadline, JVM model)
/// from the trace template, drawing from the caller's rng — the per-job
/// kernel of generate_trace, exposed so the open-system engine can sample
/// shapes per arrival from the same statistical model. `config` must be
/// validated by the caller; num_jobs/duration_hours/seed are not consumed.
mapreduce::JobSpec sample_job_spec(const TraceConfig& config, int job_id,
                                   Rng& rng);

/// Total task count of a trace.
std::int64_t total_tasks(const std::vector<TracedJob>& jobs);

}  // namespace chronos::trace
