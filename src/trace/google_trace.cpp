#include "trace/google_trace.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/error.h"
#include "common/rng.h"

namespace chronos::trace {

void TraceConfig::validate() const {
  CHRONOS_EXPECTS(num_jobs >= 1, "trace needs at least one job");
  CHRONOS_EXPECTS(duration_hours > 0.0, "duration must be positive");
  CHRONOS_EXPECTS(mean_tasks >= 1.0, "mean_tasks must be >= 1");
  CHRONOS_EXPECTS(tasks_log_sigma >= 0.0, "tasks_log_sigma must be >= 0");
  CHRONOS_EXPECTS(min_tasks >= 1 && max_tasks >= min_tasks,
                  "invalid task-count clamp range");
  CHRONOS_EXPECTS(t_min_lo > 0.0 && t_min_hi >= t_min_lo,
                  "invalid t_min range");
  CHRONOS_EXPECTS(beta_lo > 1.0 && beta_hi >= beta_lo,
                  "beta range must lie above 1 (finite mean)");
  CHRONOS_EXPECTS(deadline_factor_lo > 1.0 &&
                      deadline_factor_hi >= deadline_factor_lo,
                  "deadline factors must exceed 1");
  CHRONOS_EXPECTS(jvm_mean >= 0.0 && jvm_jitter >= 0.0 &&
                      jvm_jitter <= jvm_mean + 1e-12,
                  "invalid JVM model");
  for (std::size_t i = 0; i < extra_stages.size(); ++i) {
    const auto& st = extra_stages[i];
    CHRONOS_EXPECTS(st.num_tasks >= 1, "extra stage needs >= 1 task");
    CHRONOS_EXPECTS(st.t_min > 0.0 && st.beta > 1.0,
                    "extra stage needs t_min > 0 and beta > 1");
    for (const int dep : st.deps) {
      // Deps are in final job numbering: stage 0 is the sampled root, this
      // template is stage i + 1.
      CHRONOS_EXPECTS(dep >= 0 && dep < static_cast<int>(i) + 1,
                      "extra stage dep must reference an earlier stage");
    }
  }
}

mapreduce::JobSpec sample_job_spec(const TraceConfig& config, int job_id,
                                   Rng& rng) {
  mapreduce::JobSpec spec;
  spec.job_id = job_id;
  auto& root = spec.stage(0);

  // Lognormal task count with the requested mean:
  // E[exp(mu + sigma Z)] = exp(mu + sigma^2/2) = mean_tasks.
  const double sigma = config.tasks_log_sigma;
  const double mu = std::log(config.mean_tasks) - 0.5 * sigma * sigma;
  const auto tasks =
      static_cast<int>(std::llround(std::exp(mu + sigma * rng.normal())));
  root.num_tasks = std::clamp(tasks, config.min_tasks, config.max_tasks);

  // Per-job duration model: log-uniform scale, uniform tail index.
  root.t_min = std::exp(
      rng.uniform(std::log(config.t_min_lo), std::log(config.t_min_hi)));
  root.beta = rng.uniform(config.beta_lo, config.beta_hi);

  const double mean_exec = root.t_min * root.beta / (root.beta - 1.0);
  const double factor =
      rng.uniform(config.deadline_factor_lo, config.deadline_factor_hi);
  spec.deadline = factor * mean_exec;

  spec.jvm_mean = config.jvm_mean;
  spec.jvm_jitter = config.jvm_jitter;

  // Stage templates ride along verbatim — deliberately after every RNG
  // draw and drawing nothing themselves, so the root-stage stream (and
  // thus every map-only golden) is untouched by their presence. The
  // sampled deadline factor budgets the whole pipeline: each extra stage
  // extends the root-only deadline by its own mean execution time
  // (deterministic, so again no stream perturbation).
  double extra_exec = 0.0;
  for (const auto& extra : config.extra_stages) {
    spec.stages.push_back(extra);
    extra_exec += extra.t_min * extra.beta / (extra.beta - 1.0);
  }
  spec.deadline += factor * extra_exec;
  return spec;
}

std::vector<TracedJob> generate_trace(const TraceConfig& config) {
  config.validate();
  Rng rng(config.seed);
  const double horizon = config.duration_hours * 3600.0;

  std::vector<TracedJob> jobs;
  jobs.reserve(static_cast<std::size_t>(config.num_jobs));
  for (int i = 0; i < config.num_jobs; ++i) {
    TracedJob job;
    job.submit_time = rng.uniform(0.0, horizon);
    job.spec = sample_job_spec(config, i, rng);
    jobs.push_back(job);
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const TracedJob& a, const TracedJob& b) {
              return a.submit_time < b.submit_time;
            });
  for (int i = 0; i < config.num_jobs; ++i) {
    jobs[static_cast<std::size_t>(i)].spec.job_id = i;
  }
  return jobs;
}

std::int64_t total_tasks(const std::vector<TracedJob>& jobs) {
  std::int64_t total = 0;
  for (const auto& job : jobs) {
    total += job.spec.total_tasks();
  }
  return total;
}

}  // namespace chronos::trace
