// Per-job planning: maps a JobSpec onto the analytic model, runs the
// Algorithm-1 optimizer, and fills the strategy fields (r, tau_est,
// tau_kill, price) — exactly what the Application Master does at job
// submission in §VI.
#pragma once

#include <vector>

#include "core/chronos.h"
#include "strategies/policies.h"
#include "trace/google_trace.h"
#include "trace/spot_price.h"

namespace chronos::trace {

/// Planning knobs shared by an experiment run.
struct PlannerConfig {
  /// Strategy timers as multiples of the job's t_min (Tables I/II sweep
  /// these). Clone uses tau_est = 0 regardless.
  double tau_est_factor = 0.3;
  double tau_kill_factor = 0.8;
  double theta = 1e-4;
  /// R_min policy: PoCD of the no-speculation baseline (the paper uses
  /// Hadoop-NS's PoCD as R_min in §VII-A).
  bool r_min_from_baseline = true;
  double r_min = 0.0;  ///< used when r_min_from_baseline is false
  core::OptimizerOptions optimizer;
};

/// Analytic-model view of one stage under its deadline share.
core::JobParams stage_job_params(const mapreduce::StageSpec& stage,
                                 double deadline, const PlannerConfig& config,
                                 core::Strategy strategy);

/// Economics for one stage: spot price at submission plus the run's theta
/// and R_min policy (baseline PoCD evaluated against the stage's own shape
/// and deadline share).
core::Economics stage_economics(const mapreduce::StageSpec& stage,
                                double deadline, const PlannerConfig& config,
                                double price);

/// Analytic-model view of a single-stage job (stage 0 under the full job
/// deadline); the serve layer keys its plan cache off this view.
core::JobParams to_job_params(const mapreduce::JobSpec& spec,
                              const PlannerConfig& config,
                              core::Strategy strategy);

/// Economics for a single-stage job.
core::Economics to_economics(const mapreduce::JobSpec& spec,
                             const PlannerConfig& config, double price);

/// Maps a simulator policy to its analytic strategy; only the three Chronos
/// policies have one.
bool has_analytic_strategy(strategies::PolicyKind kind);
core::Strategy analytic_strategy(strategies::PolicyKind kind);

/// Inverse of analytic_strategy: the simulator policy that executes an
/// analytic strategy (total on core::Strategy).
strategies::PolicyKind policy_of(core::Strategy strategy);

/// Price-free planning core: fills spec.price (from the given spot price)
/// and, per stage, tau_est/tau_kill plus — for Chronos policies — r via the
/// Algorithm-1 optimizer. Baseline policies get r = 0 and the timer fields
/// only. Multi-stage jobs go through the critical-path deadline split (see
/// plan_staged_spec); the returned result is stage 0's. Every planning path
/// (closed-system plan_job, the serve::PlannerService) funnels through
/// this, so *when* a job is priced is decided exactly once by the caller
/// handing over `price`.
core::OptimizationResult plan_spec(mapreduce::JobSpec& spec,
                                   strategies::PolicyKind policy,
                                   const PlannerConfig& config, double price);

/// Plans a traced job at its submission time: plan_spec with the spot price
/// sampled at job.submit_time (the §VI Application Master clock — never
/// trace-generation or retry time).
core::OptimizationResult plan_job(TracedJob& job,
                                  strategies::PolicyKind policy,
                                  const PlannerConfig& config,
                                  const SpotPriceModel& prices);

/// Plans a whole trace in place.
void plan_trace(std::vector<TracedJob>& jobs, strategies::PolicyKind policy,
                const PlannerConfig& config, const SpotPriceModel& prices);

/// Expected makespan of N i.i.d. Pareto(t_min, beta) tasks:
/// E[max] = t_min * Gamma(N+1) Gamma(1 - 1/beta) / Gamma(N+1 - 1/beta).
/// Requires N >= 1, beta > 1.
double expected_stage_makespan(int num_tasks, double t_min, double beta);

/// Critical-path proportional deadline split. Each stage's expected
/// makespan is chained through the dependency DAG; the stage deadline is
/// deadline * span_s / L where L is the longest (critical) path's total
/// expected makespan. Stages on the critical path get shares that sum to
/// the whole deadline; off-path stages get proportionally generous slack.
/// For a two-stage barrier chain this reduces to the classic proportional
/// map/reduce split. Requires every stage beta > 1.
std::vector<double> critical_path_split(const mapreduce::JobSpec& spec);

/// Result of planning a staged job: one deadline share and one optimizer
/// result per stage (results are default-constructed for non-analytic
/// policies, which take r = 0 and timer fields only).
struct StagedPlan {
  std::vector<double> stage_deadlines;
  std::vector<core::OptimizationResult> stages;
};

/// Plans every stage of a job: splits the deadline along the critical path
/// and runs one optimize() per stage (§III: stage PoCDs are optimized
/// separately), sharing SharedAnalytics across same-shape stages. Fills
/// each stage's r and tau fields in place. Single-stage jobs use spec.
/// deadline directly and are bit-identical to the historical plan_spec.
StagedPlan plan_staged_spec(mapreduce::JobSpec& spec,
                            strategies::PolicyKind policy,
                            const PlannerConfig& config, double price);

/// plan_staged_spec with the spot price sampled at job.submit_time.
StagedPlan plan_staged_job(TracedJob& job, strategies::PolicyKind policy,
                           const PlannerConfig& config,
                           const SpotPriceModel& prices);

}  // namespace chronos::trace
