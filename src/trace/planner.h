// Per-job planning: maps a JobSpec onto the analytic model, runs the
// Algorithm-1 optimizer, and fills the strategy fields (r, tau_est,
// tau_kill, price) — exactly what the Application Master does at job
// submission in §VI.
#pragma once

#include <vector>

#include "core/chronos.h"
#include "strategies/policies.h"
#include "trace/google_trace.h"
#include "trace/spot_price.h"

namespace chronos::trace {

/// Planning knobs shared by an experiment run.
struct PlannerConfig {
  /// Strategy timers as multiples of the job's t_min (Tables I/II sweep
  /// these). Clone uses tau_est = 0 regardless.
  double tau_est_factor = 0.3;
  double tau_kill_factor = 0.8;
  double theta = 1e-4;
  /// R_min policy: PoCD of the no-speculation baseline (the paper uses
  /// Hadoop-NS's PoCD as R_min in §VII-A).
  bool r_min_from_baseline = true;
  double r_min = 0.0;  ///< used when r_min_from_baseline is false
  core::OptimizerOptions optimizer;
};

/// Analytic-model view of one job under a given planner configuration.
core::JobParams to_job_params(const mapreduce::JobSpec& spec,
                              const PlannerConfig& config,
                              core::Strategy strategy);

/// Economics for one job: spot price at submission plus the run's theta and
/// R_min policy.
core::Economics to_economics(const mapreduce::JobSpec& spec,
                             const PlannerConfig& config, double price);

/// Maps a simulator policy to its analytic strategy; only the three Chronos
/// policies have one.
bool has_analytic_strategy(strategies::PolicyKind kind);
core::Strategy analytic_strategy(strategies::PolicyKind kind);

/// Inverse of analytic_strategy: the simulator policy that executes an
/// analytic strategy (total on core::Strategy).
strategies::PolicyKind policy_of(core::Strategy strategy);

/// Price-free planning core: fills spec.price (from the given spot price),
/// spec.tau_est/tau_kill, and — for Chronos policies — spec.r via the
/// Algorithm-1 optimizer. Baseline policies get r = 0 and the timer fields
/// only. Every planning path (closed-system plan_job, the serve::
/// PlannerService) funnels through this, so *when* a job is priced is
/// decided exactly once by the caller handing over `price`.
core::OptimizationResult plan_spec(mapreduce::JobSpec& spec,
                                   strategies::PolicyKind policy,
                                   const PlannerConfig& config, double price);

/// Plans a traced job at its submission time: plan_spec with the spot price
/// sampled at job.submit_time (the §VI Application Master clock — never
/// trace-generation or retry time).
core::OptimizationResult plan_job(TracedJob& job,
                                  strategies::PolicyKind policy,
                                  const PlannerConfig& config,
                                  const SpotPriceModel& prices);

/// Plans a whole trace in place.
void plan_trace(std::vector<TracedJob>& jobs, strategies::PolicyKind policy,
                const PlannerConfig& config, const SpotPriceModel& prices);

/// Expected makespan of N i.i.d. Pareto(t_min, beta) tasks:
/// E[max] = t_min * Gamma(N+1) Gamma(1 - 1/beta) / Gamma(N+1 - 1/beta).
/// Requires N >= 1, beta > 1.
double expected_stage_makespan(int num_tasks, double t_min, double beta);

/// Result of planning a two-stage (map + reduce) job.
struct TwoStagePlan {
  double map_deadline = 0.0;     ///< share of the job deadline for maps
  double reduce_deadline = 0.0;  ///< remainder for the reduce stage
  core::OptimizationResult map;
  core::OptimizationResult reduce;
};

/// Plans a job with reduce_tasks > 0 for a Chronos policy: splits the job
/// deadline across the stages in proportion to their expected makespans and
/// optimizes r independently per stage (§III: map and reduce PoCD are
/// optimized separately). Fills r, reduce_r and both stages' tau fields.
/// For map-only jobs, falls back to plan_job.
TwoStagePlan plan_two_stage_job(TracedJob& job,
                                strategies::PolicyKind policy,
                                const PlannerConfig& config,
                                const SpotPriceModel& prices);

}  // namespace chronos::trace
