#include "trace/workload.h"

#include <cmath>

#include "common/error.h"

namespace chronos::trace {

mapreduce::JobSpec WorkloadProfile::make_job(int job_id, int num_tasks) const {
  CHRONOS_EXPECTS(num_tasks >= 1, "make_job needs num_tasks >= 1");
  CHRONOS_EXPECTS(std::isfinite(t_min) && t_min > 0.0,
                  "profile t_min must be positive and finite");
  CHRONOS_EXPECTS(std::isfinite(beta) && beta > 1.0,
                  "profile beta must exceed 1 (finite mean execution time)");
  CHRONOS_EXPECTS(std::isfinite(deadline) && deadline > 0.0,
                  "profile deadline must be positive and finite");
  CHRONOS_EXPECTS(std::isfinite(jvm_mean) && jvm_mean >= 0.0 &&
                      std::isfinite(jvm_jitter) && jvm_jitter >= 0.0 &&
                      jvm_jitter <= jvm_mean + 1e-12,
                  "profile JVM model invalid (need 0 <= jitter <= mean)");
  mapreduce::JobSpec spec;
  spec.job_id = job_id;
  spec.stage(0).num_tasks = num_tasks;
  spec.stage(0).t_min = t_min;
  spec.stage(0).beta = beta;
  spec.deadline = deadline;
  spec.jvm_mean = jvm_mean;
  spec.jvm_jitter = jvm_jitter;
  return spec;
}

const std::vector<WorkloadProfile>& benchmark_suite() {
  // t_min / beta calibrated so the no-speculation PoCD of a 10-task job
  // lands in the 0.15 - 0.30 band the paper's Figure 2(a) shows, with the
  // I/O-bound benchmarks carrying heavier tails (more contention).
  static const std::vector<WorkloadProfile> kSuite = {
      {"Sort", /*io_bound=*/true, /*t_min=*/30.0, /*beta=*/1.50,
       /*jvm_mean=*/2.5, /*jvm_jitter=*/1.5, /*deadline=*/100.0},
      {"SecondarySort", /*io_bound=*/true, /*t_min=*/40.0, /*beta=*/1.45,
       /*jvm_mean=*/2.5, /*jvm_jitter=*/1.5, /*deadline=*/150.0},
      {"TeraSort", /*io_bound=*/false, /*t_min=*/28.0, /*beta=*/1.40,
       /*jvm_mean=*/2.0, /*jvm_jitter=*/1.0, /*deadline=*/100.0},
      {"WordCount", /*io_bound=*/false, /*t_min=*/45.0, /*beta=*/1.75,
       /*jvm_mean=*/2.0, /*jvm_jitter=*/1.0, /*deadline=*/150.0},
  };
  return kSuite;
}

const WorkloadProfile& benchmark(const std::string& name) {
  for (const auto& profile : benchmark_suite()) {
    if (profile.name == name) {
      return profile;
    }
  }
  CHRONOS_EXPECTS(false, "unknown benchmark: " + name);
}

}  // namespace chronos::trace
