// Benchmark workload profiles for the testbed experiment (§VII-A).
//
// The paper drives its EC2 testbed with the map phases of four classic
// benchmarks. What the evaluation consumes from each benchmark is its task
// duration statistics (Pareto t_min / beta fitted on the noisy testbed), its
// JVM startup overhead, and its deadline class (100 s for Sort/TeraSort,
// 150 s for SecondarySort/WordCount). These profiles encode exactly that.
#pragma once

#include <string>
#include <vector>

#include "mapreduce/job.h"

namespace chronos::trace {

struct WorkloadProfile {
  std::string name;
  bool io_bound = false;   ///< Sort/SecondarySort are I/O bound (§VII-A)
  double t_min = 30.0;     ///< Pareto scale of task execution time (s)
  double beta = 1.5;       ///< Pareto tail index (< 2 on the noisy testbed)
  double jvm_mean = 2.0;   ///< mean JVM startup (s)
  double jvm_jitter = 1.5; ///< +- uniform jitter on JVM startup (s)
  double deadline = 100.0; ///< per-job deadline (s)

  /// Builds a JobSpec for one job of this benchmark. Strategy fields
  /// (r, tau_est, tau_kill, price) are filled by the planner.
  mapreduce::JobSpec make_job(int job_id, int num_tasks) const;
};

/// The four benchmarks of Figure 2, with the paper's deadline assignment
/// (100 s for Sort and TeraSort, 150 s for SecondarySort and WordCount).
const std::vector<WorkloadProfile>& benchmark_suite();

/// Profile by name ("Sort", "SecondarySort", "TeraSort", "WordCount");
/// throws PreconditionError for unknown names.
const WorkloadProfile& benchmark(const std::string& name);

}  // namespace chronos::trace
