#include "trace/spot_price.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace chronos::trace {

SpotPriceModel::SpotPriceModel(SpotPriceConfig config) : config_(config) {
  CHRONOS_EXPECTS(config.base_price > 0.0, "base price must be positive");
  CHRONOS_EXPECTS(config.volatility >= 0.0, "volatility must be >= 0");
  CHRONOS_EXPECTS(config.reversion > 0.0 && config.reversion <= 1.0,
                  "reversion must lie in (0, 1]");
  CHRONOS_EXPECTS(config.step_seconds > 0.0, "step must be positive");
  CHRONOS_EXPECTS(config.horizon_seconds > 0.0, "horizon must be positive");
  const auto steps = static_cast<std::size_t>(
                         config.horizon_seconds / config.step_seconds) +
                     2;
  Rng rng(config.seed);
  path_.reserve(steps);
  double level = config.base_price;
  for (std::size_t i = 0; i < steps; ++i) {
    path_.push_back(level);
    const double noise =
        config.volatility * config.base_price * rng.normal();
    level += config.reversion * (config.base_price - level) + noise;
    // Spot prices never go non-positive; floor at 10% of base.
    level = std::max(level, 0.1 * config.base_price);
  }
}

double SpotPriceModel::price_at(double t) const {
  CHRONOS_EXPECTS(t >= 0.0, "time must be non-negative");
  const auto index = static_cast<std::size_t>(t / config_.step_seconds);
  return path_[std::min(index, path_.size() - 1)];
}

double SpotPriceModel::mean_price() const {
  double sum = 0.0;
  for (const double p : path_) {
    sum += p;
  }
  return sum / static_cast<double>(path_.size());
}

}  // namespace chronos::trace
