#include "trace/arrivals.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/numeric.h"

namespace chronos::trace {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate) : sampler_(rate) {}

  double next_after(double now, Rng& rng) override {
    return now + sampler_(rng);
  }

 private:
  ExponentialSampler sampler_;
};

/// Lewis-Shedler thinning against the envelope rate * (1 + amplitude):
/// candidate gaps are drawn at the envelope rate and accepted with
/// probability lambda(t) / lambda_max, which reproduces the nonhomogeneous
/// Poisson law exactly. amplitude < 1 keeps lambda(t) strictly positive, so
/// the acceptance loop terminates with probability 1.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  DiurnalArrivals(double rate, double amplitude, double period)
      : rate_(rate),
        amplitude_(amplitude),
        omega_(2.0 * M_PI / period),
        envelope_(rate * (1.0 + amplitude)),
        sampler_(rate * (1.0 + amplitude)) {}

  double next_after(double now, Rng& rng) override {
    double t = now;
    while (true) {
      t += sampler_(rng);
      const double lambda = rate_ * (1.0 + amplitude_ * std::sin(omega_ * t));
      if (envelope_ * rng.uniform() <= lambda) {
        return t;
      }
    }
  }

 private:
  double rate_;
  double amplitude_;
  double omega_;
  double envelope_;
  ExponentialSampler sampler_;
};

class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<double> times)
      : times_(std::move(times)) {}

  double next_after(double now, Rng& rng) override {
    (void)rng;
    // Entries strictly before `now` are skipped; ties are returned one per
    // call (next_ always advances on return, so batch arrivals at the same
    // instant — including t == 0 on the first call — each fire once).
    while (next_ < times_.size() && times_[next_] < now) {
      ++next_;
    }
    return next_ < times_.size() ? times_[next_++] : kInf;
  }

 private:
  std::vector<double> times_;
  std::size_t next_ = 0;
};

}  // namespace

void ArrivalSpec::validate() const {
  switch (kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kDiurnal:
      CHRONOS_EXPECTS(std::isfinite(rate) && rate > 0.0,
                      "arrival rate must be positive and finite");
      break;
    case ArrivalKind::kTrace:
      break;
  }
  if (kind == ArrivalKind::kDiurnal) {
    CHRONOS_EXPECTS(amplitude >= 0.0 && amplitude < 1.0,
                    "diurnal amplitude must lie in [0, 1)");
    CHRONOS_EXPECTS(std::isfinite(period) && period > 0.0,
                    "diurnal period must be positive and finite");
  }
  if (kind == ArrivalKind::kTrace) {
    double previous = 0.0;
    for (const double t : times) {
      CHRONOS_EXPECTS(std::isfinite(t) && t >= 0.0,
                      "trace arrival times must be finite and >= 0");
      CHRONOS_EXPECTS(t >= previous, "trace arrival times must not decrease");
      previous = t;
    }
  }
}

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrivals>(spec.rate);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(spec.rate, spec.amplitude,
                                               spec.period);
    case ArrivalKind::kTrace:
      return std::make_unique<TraceArrivals>(spec.times);
  }
  CHRONOS_EXPECTS(false, "unknown arrival kind");
}

std::vector<double> parse_arrival_times(const std::string& text) {
  std::vector<double> times;
  int line_number = 0;
  std::size_t at = 0;
  while (at <= text.size()) {
    const std::size_t end = text.find('\n', at);
    std::string line = text.substr(
        at, end == std::string::npos ? std::string::npos : end - at);
    at = end == std::string::npos ? text.size() + 1 : end + 1;
    ++line_number;

    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(begin, last - begin + 1);
    if (line.front() == '#' || line.front() == ';') {
      continue;
    }
    double parsed = 0.0;
    CHRONOS_EXPECTS(numeric::parse_double(line, parsed),
                    "arrival times line " + std::to_string(line_number) +
                        ": '" + line + "' is not a number");
    CHRONOS_EXPECTS(std::isfinite(parsed) && parsed >= 0.0,
                    "arrival times line " + std::to_string(line_number) +
                        ": times must be finite and >= 0");
    CHRONOS_EXPECTS(times.empty() || parsed >= times.back(),
                    "arrival times line " + std::to_string(line_number) +
                        ": times must not decrease");
    times.push_back(parsed);
  }
  return times;
}

std::vector<double> load_arrival_times(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  CHRONOS_EXPECTS(file != nullptr, "cannot open arrival file '" + path + "'");
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return parse_arrival_times(text);
}

}  // namespace chronos::trace
