#include "trace/planner.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace chronos::trace {

core::JobParams to_job_params(const mapreduce::JobSpec& spec,
                              const PlannerConfig& config,
                              core::Strategy strategy) {
  core::JobParams params;
  params.num_tasks = spec.num_tasks;
  params.deadline = spec.deadline;
  params.t_min = spec.t_min;
  params.beta = spec.beta;
  params.tau_est = strategy == core::Strategy::kClone
                       ? 0.0
                       : config.tau_est_factor * spec.t_min;
  params.tau_kill = config.tau_kill_factor * spec.t_min;
  params.phi_est = core::default_phi_est(params);
  return params;
}

core::Economics to_economics(const mapreduce::JobSpec& spec,
                             const PlannerConfig& config, double price) {
  core::Economics econ;
  econ.price = price;
  econ.theta = config.theta;
  if (config.r_min_from_baseline) {
    core::JobParams baseline;
    baseline.num_tasks = spec.num_tasks;
    baseline.deadline = spec.deadline;
    baseline.t_min = spec.t_min;
    baseline.beta = spec.beta;
    baseline.tau_est = 0.0;
    baseline.tau_kill = 0.0;
    baseline.phi_est = 0.0;
    econ.r_min = core::pocd_no_speculation(baseline);
  } else {
    econ.r_min = config.r_min;
  }
  return econ;
}

bool has_analytic_strategy(strategies::PolicyKind kind) {
  switch (kind) {
    case strategies::PolicyKind::kClone:
    case strategies::PolicyKind::kSRestart:
    case strategies::PolicyKind::kSResume:
      return true;
    default:
      return false;
  }
}

core::Strategy analytic_strategy(strategies::PolicyKind kind) {
  switch (kind) {
    case strategies::PolicyKind::kClone:
      return core::Strategy::kClone;
    case strategies::PolicyKind::kSRestart:
      return core::Strategy::kSpeculativeRestart;
    case strategies::PolicyKind::kSResume:
      return core::Strategy::kSpeculativeResume;
    default:
      break;
  }
  CHRONOS_EXPECTS(false, "policy has no analytic strategy");
}

strategies::PolicyKind policy_of(core::Strategy strategy) {
  switch (strategy) {
    case core::Strategy::kClone:
      return strategies::PolicyKind::kClone;
    case core::Strategy::kSpeculativeRestart:
      return strategies::PolicyKind::kSRestart;
    case core::Strategy::kSpeculativeResume:
      return strategies::PolicyKind::kSResume;
  }
  CHRONOS_EXPECTS(false, "unknown analytic strategy");
}

core::OptimizationResult plan_spec(mapreduce::JobSpec& spec,
                                   strategies::PolicyKind policy,
                                   const PlannerConfig& config, double price) {
  spec.price = price;

  if (!has_analytic_strategy(policy)) {
    spec.r = 0;
    spec.tau_est = config.tau_est_factor * spec.t_min;
    spec.tau_kill = config.tau_kill_factor * spec.t_min;
    return core::OptimizationResult{};
  }

  const core::Strategy strategy = analytic_strategy(policy);
  const auto params = to_job_params(spec, config, strategy);
  const auto econ = to_economics(spec, config, spec.price);
  auto result = core::optimize(strategy, params, econ, config.optimizer);
  spec.tau_est = params.tau_est;
  spec.tau_kill = params.tau_kill;
  spec.r = result.feasible ? result.r_opt : 1;  // fall back to one copy
  return result;
}

core::OptimizationResult plan_job(TracedJob& job,
                                  strategies::PolicyKind policy,
                                  const PlannerConfig& config,
                                  const SpotPriceModel& prices) {
  return plan_spec(job.spec, policy, config,
                   prices.price_at(job.submit_time));
}

void plan_trace(std::vector<TracedJob>& jobs, strategies::PolicyKind policy,
                const PlannerConfig& config, const SpotPriceModel& prices) {
  for (auto& job : jobs) {
    plan_job(job, policy, config, prices);
  }
}

double expected_stage_makespan(int num_tasks, double t_min, double beta) {
  CHRONOS_EXPECTS(num_tasks >= 1, "num_tasks must be >= 1");
  CHRONOS_EXPECTS(t_min > 0.0 && beta > 1.0,
                  "makespan requires t_min > 0 and beta > 1");
  // E[max of N] for Pareto via the Beta-function identity
  // E[max] = t_min N B(N, 1 - 1/beta).
  const double n = static_cast<double>(num_tasks);
  const double a = 1.0 - 1.0 / beta;
  return t_min * std::exp(std::lgamma(n + 1.0) + std::lgamma(a) -
                          std::lgamma(n + a));
}

TwoStagePlan plan_two_stage_job(TracedJob& job,
                                strategies::PolicyKind policy,
                                const PlannerConfig& config,
                                const SpotPriceModel& prices) {
  auto& spec = job.spec;
  TwoStagePlan plan;
  if (spec.reduce_tasks == 0 || !has_analytic_strategy(policy)) {
    plan.map = plan_job(job, policy, config, prices);
    plan.map_deadline = spec.deadline;
    return plan;
  }
  spec.price = prices.price_at(job.submit_time);
  const core::Strategy strategy = analytic_strategy(policy);

  // Split the deadline in proportion to the stages' expected makespans.
  const double map_span =
      expected_stage_makespan(spec.num_tasks, spec.t_min, spec.beta);
  const double reduce_span = expected_stage_makespan(
      spec.reduce_tasks, spec.effective_reduce_t_min(),
      spec.effective_reduce_beta());
  const double share = map_span / (map_span + reduce_span);
  plan.map_deadline = spec.deadline * share;
  plan.reduce_deadline = spec.deadline - plan.map_deadline;

  // Map stage.
  {
    mapreduce::JobSpec stage = spec;
    stage.deadline = plan.map_deadline;
    const auto params = to_job_params(stage, config, strategy);
    const auto econ = to_economics(stage, config, spec.price);
    plan.map = core::optimize(strategy, params, econ, config.optimizer);
    spec.tau_est = params.tau_est;
    spec.tau_kill = params.tau_kill;
    spec.r = plan.map.feasible ? plan.map.r_opt : 1;
  }
  // Reduce stage: same machinery against the stage's own duration law and
  // deadline share.
  {
    mapreduce::JobSpec stage = spec;
    stage.num_tasks = spec.reduce_tasks;
    stage.t_min = spec.effective_reduce_t_min();
    stage.beta = spec.effective_reduce_beta();
    stage.deadline = plan.reduce_deadline;
    const auto params = to_job_params(stage, config, strategy);
    const auto econ = to_economics(stage, config, spec.price);
    plan.reduce = core::optimize(strategy, params, econ, config.optimizer);
    spec.reduce_tau_est = params.tau_est;
    spec.reduce_tau_kill = params.tau_kill;
    spec.reduce_r = plan.reduce.feasible ? plan.reduce.r_opt : 1;
  }
  return plan;
}

}  // namespace chronos::trace
